//! Figure 11 (and Figure 14): lesion study of the materialization strategies.
//!
//! Compares incremental inference for a supervision-style update when (a) the
//! optimizer is free to choose, (b) the sampling approach is disabled
//! (NoSamplingAll → always variational), and (c) the variational approach is
//! disabled (NoRelaxation → always sampling, even when its acceptance rate
//! collapses).  The full per-rule table is produced by `reproduce_fig11`.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_factorgraph::{EvidenceChange, GraphDelta, VariableRole};
use dd_inference::{
    DistributionChange, GibbsOptions, SampleMaterialization, VariationalMaterialization,
    VariationalOptions,
};
use dd_workloads::{pairwise_graph, SyntheticConfig};
use deepdive::{choose_strategy, StrategyChoice};

fn setup() -> (
    dd_factorgraph::FactorGraph,
    GraphDelta,
    SampleMaterialization,
    VariationalMaterialization,
) {
    let g = pairwise_graph(&SyntheticConfig {
        num_variables: 80,
        sparsity: 0.4,
        seed: 3,
        ..Default::default()
    });
    // A supervision-style update: a batch of variables becomes evidence.
    let delta = GraphDelta {
        evidence_changes: (0..20)
            .map(|v| EvidenceChange {
                var: v,
                new_role: if v % 2 == 0 {
                    VariableRole::PositiveEvidence
                } else {
                    VariableRole::NegativeEvidence
                },
            })
            .collect(),
        ..Default::default()
    };
    let sampling = SampleMaterialization::materialize(&g, 600, 60, 9);
    let variational = VariationalMaterialization::materialize(
        &g,
        &VariationalOptions {
            num_samples: 300,
            burn_in: 30,
            exact_solver_max_vars: 0,
            ..Default::default()
        },
    );
    (g, delta, sampling, variational)
}

fn bench_lesion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_supervision_update");
    group.sample_size(10);
    let (g, delta, sampling, variational) = setup();
    let mut updated = g.clone();
    let change = DistributionChange::apply_and_describe(&mut updated, &delta);
    let gibbs = GibbsOptions::new(80, 20, 4);

    group.bench_function("full_optimizer", |b| {
        b.iter(|| match choose_strategy(&change, sampling.num_samples()) {
            StrategyChoice::Sampling => {
                let _ = sampling.infer(&updated, &change, 300, 5);
            }
            StrategyChoice::Variational => {
                let _ = variational.infer(&delta, &gibbs);
            }
        })
    });
    group.bench_function("no_sampling (always variational)", |b| {
        b.iter(|| variational.infer(&delta, &gibbs))
    });
    group.bench_function("no_relaxation (always sampling)", |b| {
        b.iter(|| sampling.infer(&updated, &change, 300, 5))
    });
    group.finish();
}

criterion_group!(benches, bench_lesion);
criterion_main!(benches);

//! Figures 12–13: Gibbs convergence of the Voting program under the three
//! semantics.  The bench measures the per-sweep cost and the convergence
//! measurement at one size; the |U|+|D| sweep is produced by `reproduce_fig13`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd_factorgraph::Semantics;
use dd_inference::{iterations_to_converge, GibbsOptions, GibbsSampler};
use dd_workloads::voting_graph;

fn bench_sweep_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_voting_sweeps");
    group.sample_size(10);
    for s in Semantics::all() {
        let (g, _q) = voting_graph(50, 50, 0.5, s);
        group.bench_with_input(BenchmarkId::new("run_200_sweeps", s.label()), &g, |b, g| {
            b.iter(|| GibbsSampler::new(g, 1).run(&GibbsOptions::new(200, 20, 1)))
        });
    }
    group.finish();
}

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_voting_convergence");
    group.sample_size(10);
    for s in Semantics::all() {
        let (g, q) = voting_graph(20, 20, 0.5, s);
        group.bench_with_input(
            BenchmarkId::new("iterations_to_1pct", s.label()),
            &g,
            |b, g| b.iter(|| iterations_to_converge(g, q, 0.5, 0.01, 20_000, 100, 7)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_cost, bench_convergence);
criterion_main!(benches);

//! Figure 16: incremental learning strategies.
//!
//! Benchmarks one learning run with SGD+warmstart, cold-start SGD, and
//! full-batch gradient descent with warmstart over the same updated graph.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_factorgraph::{Factor, FactorGraph, FactorGraphBuilder};
use dd_inference::{LearnOptions, LearnStrategy, Learner};

fn classifier(n: usize) -> FactorGraph {
    let mut b = FactorGraphBuilder::new();
    let wa = b.tied_weight("feat:A", 0.0, false);
    let wb = b.tied_weight("feat:B", 0.0, false);
    for i in 0..n {
        let label = i % 2 == 0;
        let v = b.add_evidence_variable(label);
        b.add_factor(Factor::is_true(if label { wa } else { wb }, v));
    }
    b.build()
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_learning_strategies");
    group.sample_size(10);

    // A warm model obtained before the (simulated) update.
    let mut warm_graph = classifier(120);
    let warm = Learner::new(&mut warm_graph)
        .learn(&LearnOptions {
            epochs: 20,
            learning_rate: 0.3,
            ..Default::default()
        })
        .final_weights;

    let fresh = classifier(160);
    let run = |strategy: LearnStrategy, warmstart: Option<Vec<f64>>| {
        let mut g = fresh.clone();
        Learner::new(&mut g).learn(&LearnOptions {
            strategy,
            epochs: 5,
            warmstart,
            ..Default::default()
        })
    };

    group.bench_function("sgd_warmstart", |b| {
        b.iter(|| run(LearnStrategy::Sgd, Some(warm.clone())))
    });
    group.bench_function("sgd_cold", |b| b.iter(|| run(LearnStrategy::Sgd, None)));
    group.bench_function("gd_warmstart", |b| {
        b.iter(|| run(LearnStrategy::GradientDescent, Some(warm.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);

//! Figure 5: the materialization/inference tradeoff space.
//!
//! Benchmarks the materialization cost of the three strategies (strawman,
//! sampling, variational) as the synthetic pairwise graph grows, and the
//! incremental-inference cost of sampling vs variational for a small and a large
//! distribution change (the acceptance-rate axis).  The full sweep with the
//! paper's parameter grid is produced by the `reproduce_fig5` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd_factorgraph::GraphDelta;
use dd_inference::{
    DistributionChange, SampleMaterialization, StrawmanMaterialization, VariationalMaterialization,
    VariationalOptions,
};
use dd_workloads::{pairwise_graph, weight_perturbation, SyntheticConfig};

fn graph(n: usize) -> dd_factorgraph::FactorGraph {
    pairwise_graph(&SyntheticConfig {
        num_variables: n,
        sparsity: 0.5,
        seed: 5,
        ..Default::default()
    })
}

fn bench_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_materialization");
    group.sample_size(10);
    for &n in &[10usize, 17, 100] {
        let g = graph(n);
        if n <= 17 {
            group.bench_with_input(BenchmarkId::new("strawman", n), &g, |b, g| {
                b.iter(|| StrawmanMaterialization::materialize(g))
            });
        }
        group.bench_with_input(BenchmarkId::new("sampling", n), &g, |b, g| {
            b.iter(|| SampleMaterialization::materialize(g, 100, 20, 1))
        });
        group.bench_with_input(BenchmarkId::new("variational", n), &g, |b, g| {
            b.iter(|| {
                VariationalMaterialization::materialize(
                    g,
                    &VariationalOptions {
                        num_samples: 100,
                        burn_in: 20,
                        exact_solver_max_vars: 0,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_inference_by_change(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_inference_by_change");
    group.sample_size(10);
    let g0 = graph(100);
    let sampling = SampleMaterialization::materialize(&g0, 500, 50, 2);
    let variational = VariationalMaterialization::materialize(
        &g0,
        &VariationalOptions {
            num_samples: 300,
            burn_in: 30,
            exact_solver_max_vars: 0,
            ..Default::default()
        },
    );
    for (label, magnitude) in [("small_change", 0.05f64), ("large_change", 1.5f64)] {
        let delta: GraphDelta = weight_perturbation(&g0, 0.3, magnitude, 7);
        let mut updated = g0.clone();
        let change = DistributionChange::apply_and_describe(&mut updated, &delta);
        group.bench_function(BenchmarkId::new("sampling", label), |b| {
            b.iter(|| sampling.infer(&updated, &change, 300, 3))
        });
        group.bench_function(BenchmarkId::new("variational", label), |b| {
            b.iter(|| variational.infer(&delta, &dd_inference::GibbsOptions::new(60, 10, 3)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_materialization, bench_inference_by_change);
criterion_main!(benches);

//! Figure 9: Rerun vs Incremental execution of one rule-template update.
//!
//! Benchmarks the learning + inference cost of applying the FE2 (new feature)
//! update to a scaled-down News system from scratch vs incrementally.  The full
//! 5-systems × 6-rules table is produced by `reproduce_fig9`.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_grounding::standard_udfs;
use dd_workloads::{KbcSystem, RuleTemplate, SystemKind};
use deepdive::{DeepDive, EngineConfig, ExecutionMode};

fn prepared_engine() -> (DeepDive, dd_grounding::KbcUpdate) {
    let system = KbcSystem::generate(SystemKind::News, 0.15, 11);
    let mut engine = DeepDive::builder()
        .program(system.program.clone())
        .database(system.corpus.database.clone())
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()
        .expect("engine builds");
    // Bring the system to the state just before the FE2 iteration.
    engine
        .run_update(
            &system.template_update(RuleTemplate::FE1),
            ExecutionMode::Rerun,
        )
        .expect("FE1 applies");
    engine
        .run_update(
            &system.template_update(RuleTemplate::S1),
            ExecutionMode::Rerun,
        )
        .expect("S1 applies");
    engine.materialize().unwrap();
    (engine, system.template_update(RuleTemplate::FE2))
}

fn bench_rerun_vs_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fe2_update_news");
    group.sample_size(10);
    let (engine, update) = prepared_engine();

    group.bench_function("rerun", |b| {
        b.iter_batched(
            || engine_clone(&engine),
            |mut e| e.run_update(&update, ExecutionMode::Rerun).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("incremental", |b| {
        b.iter_batched(
            || engine_clone(&engine),
            |mut e| e.run_update(&update, ExecutionMode::Incremental).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// The engine is not `Clone` (it owns a grounder with interior state), so the
/// benchmark rebuilds it from the same seed for every batch.
fn engine_clone(_proto: &DeepDive) -> DeepDive {
    prepared_engine().0
}

criterion_group!(benches, bench_rerun_vs_incremental);
criterion_main!(benches);

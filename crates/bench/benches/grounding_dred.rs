//! Incremental grounding (§3.1, §4.2): DRed delta-rule maintenance vs full
//! recomputation of a candidate-mapping view when a handful of new documents
//! arrive.  The paper reports speedups of up to 360× for rule FE1 on News; the
//! shape here is the same — the incremental path touches only the delta.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd_relstore::view::{Filter, QueryAtom, Term};
use dd_relstore::{
    ConjunctiveQuery, DataType, Database, DeltaRelation, MaterializedView, Schema, Tuple, Value,
};
use std::collections::HashMap;

/// Build a PersonCandidate table with `docs` documents of two mentions each and
/// the self-join candidate query of rule R1.
fn setup(docs: usize) -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    db.create_table(
        "PersonCandidate",
        Schema::of(&[("s", DataType::Int), ("m", DataType::Int)]),
    )
    .unwrap();
    for d in 0..docs {
        for k in 0..2 {
            db.insert(
                "PersonCandidate",
                Tuple::new(vec![Value::Int(d as i64), Value::Int((2 * d + k) as i64)]),
            )
            .unwrap();
        }
    }
    let query = ConjunctiveQuery::new(
        "MarriedCandidate",
        vec!["m1".into(), "m2".into()],
        vec![
            QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m1")]),
            QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m2")]),
        ],
    )
    .with_filters(vec![Filter::Lt("m1".into(), "m2".into())]);
    (db, query)
}

fn new_document_delta(docs: usize) -> HashMap<String, DeltaRelation> {
    let mut d = DeltaRelation::new("PersonCandidate");
    for k in 0..2i64 {
        d.insert(Tuple::new(vec![
            Value::Int(docs as i64),
            Value::Int(2 * docs as i64 + k),
        ]));
    }
    let mut m = HashMap::new();
    m.insert("PersonCandidate".to_string(), d);
    m
}

fn bench_grounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("grounding_dred_vs_rerun");
    group.sample_size(10);
    for &docs in &[500usize, 2000] {
        let (db, query) = setup(docs);
        let view = MaterializedView::materialize(query.clone(), &db).unwrap();
        let deltas = new_document_delta(docs);

        group.bench_with_input(BenchmarkId::new("full_recompute", docs), &db, |b, db| {
            b.iter(|| query.evaluate(db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("incremental_dred", docs), &db, |b, db| {
            b.iter_batched(
                || view.clone(),
                |mut v| v.refresh_incremental(db, &deltas).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grounding);
criterion_main!(benches);

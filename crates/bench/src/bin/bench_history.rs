//! Append one per-commit snapshot to the bench history (`dev/bench/data.js`).
//!
//! The history file follows the github-action-benchmark `data.js` convention:
//! an append-only array of `{commit, date, tool, benches}` snapshots under
//! one suite, assigned to `window.BENCHMARK_DATA` so the stock dashboard
//! HTML can load it directly.  CI calls this after the bench gates pass, so
//! every green commit extends the trajectory.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p dd-bench --bin bench_history -- \
//!     [--data dev/bench/data.js] [--commit <sha>] [--message <subject>] \
//!     [--timestamp-ms <ms>] [--repo-url <url>] BENCH_sweeps.json [more.json...]
//! ```
//!
//! Unset commit metadata is resolved from `git` (then `$GITHUB_SHA`, then
//! "unknown"), and the timestamp from the system clock.  The rewritten file
//! is re-parsed before being reported, so a corrupt append cannot land.

use dd_bench::history::{append_point, encode_history, parse_history, run_count, HistoryPoint};
use dd_bench::sweeps::parse_bench_entries;
use std::process::{Command, ExitCode};

fn git(args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).output().ok()?;
    out.status
        .success()
        .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
}

fn main() -> ExitCode {
    let mut data_path = "dev/bench/data.js".to_string();
    let mut commit: Option<String> = None;
    let mut message: Option<String> = None;
    let mut timestamp_ms: Option<f64> = None;
    let mut repo_url: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().ok_or_else(|| {
                eprintln!("bench_history: {flag} expects a value");
            })
        };
        match arg.as_str() {
            "--data" => match value("--data") {
                Ok(v) => data_path = v,
                Err(()) => return ExitCode::FAILURE,
            },
            "--commit" => match value("--commit") {
                Ok(v) => commit = Some(v),
                Err(()) => return ExitCode::FAILURE,
            },
            "--message" => match value("--message") {
                Ok(v) => message = Some(v),
                Err(()) => return ExitCode::FAILURE,
            },
            "--timestamp-ms" => match value("--timestamp-ms").map(|v| v.parse::<f64>()) {
                Ok(Ok(v)) => timestamp_ms = Some(v),
                _ => return ExitCode::FAILURE,
            },
            "--repo-url" => match value("--repo-url") {
                Ok(v) => repo_url = Some(v),
                Err(()) => return ExitCode::FAILURE,
            },
            path => inputs.push(path.to_string()),
        }
    }
    if inputs.is_empty() {
        eprintln!("bench_history: no input BENCH_*.json files given");
        return ExitCode::FAILURE;
    }

    let mut benches = Vec::new();
    for input in &inputs {
        let text = match std::fs::read_to_string(input) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("bench_history: cannot read {input}: {err}");
                return ExitCode::FAILURE;
            }
        };
        match parse_bench_entries(&text) {
            Ok(entries) => benches.extend(entries),
            Err(err) => {
                eprintln!("bench_history: {input} is not a valid benchmark file: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    let commit_id = commit
        .or_else(|| git(&["rev-parse", "HEAD"]))
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .unwrap_or_else(|| "unknown".to_string());
    let message = message
        .or_else(|| git(&["log", "-1", "--format=%s"]))
        .unwrap_or_else(|| "unknown".to_string());
    let timestamp_ms = timestamp_ms.unwrap_or_else(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0.0, |d| d.as_millis() as f64)
    });

    let existing = std::fs::read_to_string(&data_path).unwrap_or_default();
    let mut history = match parse_history(&existing) {
        Ok(history) => history,
        Err(err) => {
            eprintln!("bench_history: {data_path} is corrupt: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(url) = repo_url {
        if let dd_wire::json::Json::Object(fields) = &mut history {
            for (key, value) in fields.iter_mut() {
                if key == "repoUrl" {
                    *value = dd_wire::json::Json::String(url.clone());
                }
            }
        }
    }

    let point = HistoryPoint {
        commit_id,
        message,
        timestamp_ms,
        benches,
    };
    let appended = match append_point(&history, &point) {
        Ok(appended) => appended,
        Err(err) => {
            eprintln!("bench_history: cannot append: {err}");
            return ExitCode::FAILURE;
        }
    };
    let text = encode_history(&appended);
    // Verify the write parses back before it lands.
    if let Err(err) = parse_history(&text) {
        eprintln!("bench_history: refusing to write unparseable history: {err}");
        return ExitCode::FAILURE;
    }
    if let Some(parent) = std::path::Path::new(&data_path).parent() {
        if let Err(err) = std::fs::create_dir_all(parent) {
            eprintln!("bench_history: cannot create {}: {err}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(err) = std::fs::write(&data_path, &text) {
        eprintln!("bench_history: cannot write {data_path}: {err}");
        return ExitCode::FAILURE;
    }
    println!(
        "bench_history: {} now holds {} snapshot(s); appended {} series for commit {}",
        data_path,
        run_count(&appended),
        point.benches.len(),
        point.commit_id
    );
    ExitCode::SUCCESS
}

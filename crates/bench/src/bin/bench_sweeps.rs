//! Gibbs sweep throughput benchmark, emitting a machine-readable trajectory.
//!
//! Measures sweeps/second of the inference hot path on the two workloads the
//! paper's headline figures are bottlenecked on — the fig9 end-to-end News
//! system graph and a fig5-style synthetic pairwise graph — and writes
//! `BENCH_sweeps.json` in the `[{name, unit, value}]` schema
//! (github-action-benchmark style) so future PRs can track the trajectory.
//!
//! Three implementations are timed per workload:
//!
//! * `legacy`   — the pre-compilation hot path: jagged adjacency on
//!   [`FactorGraph`], two `local_energy` passes per resample, weight-table
//!   indirection (kept in-tree as the build/delta representation);
//! * `flat`     — [`GibbsSampler`] on the compiled [`FlatGraph`] (CSR,
//!   literal arenas, pre-resolved weights, single-pass energy deltas);
//! * `parallel` — hogwild [`ParallelGibbs`] on the same flat path, dispatched
//!   on the process-global persistent worker pool.
//!
//! On top of that, the parallel *runtime* is A/B'd across explicit thread
//! counts: for each `t` a persistent `ThreadPool` of size `t`
//! (`parallel_pooled_t{t}`) is raced against the retired spawn-scoped-threads
//! -per-sweep dispatcher at the same thread count (`parallel_spawn_t{t}`),
//! with identical chunking and identical per-chunk RNG streams — the measured
//! gap (`pooled_vs_spawn_speedup_t{t}`) is purely the dispatch overhead the
//! persistent pool removes.
//!
//! A third series, `publish_cost/*`, tracks the snapshot-publish path: the
//! old full catalog rebuild (`CatalogShards::build` over every entry) raced
//! against the sharded Δ-merge publish the engine actually performs
//! (`clone` + `merge_delta` on the one touched relation) at growing catalog
//! sizes.  `publish_speedup_n{N}` is the factor the sharding buys for a
//! Δ-update against an N-entry catalog.
//!
//! A fourth series, `retraction_cost/*`, prices deletion the paper's way
//! (Fig 10's rerun-vs-incremental axis, pointed at retractions): the same
//! batch of base-tuple deletions is grounded twice — once by rebuilding a
//! fresh grounder over the post-delete corpus (what a rerun pays), once by
//! `Grounder::ground_incremental`'s DRed retraction sweep on the live
//! graph (what the engine actually pays).  `delete_speedup_n{N}` is the
//! O(n)-vs-O(Δ) factor incrementality buys at an N-claim KB, and
//! `deletes_per_sec_n{N}` tracks absolute retraction throughput.
//!
//! A fifth series, `query_cost/*`, prices the serving read path: the
//! probability-ordered index every publish maintains (`FactQuery::run`)
//! raced against the full tuple-index scan (`FactQuery::run_scan`) on
//! synthetic snapshots of growing size, for the top-k and selective
//! threshold query shapes.  `{topk,threshold}_speedup_n{N}` is the factor
//! the ranked index buys over rescanning at an N-fact relation.
//!
//! Usage: `cargo run --release -p dd-bench --bin bench_sweeps [--smoke] [output.json]`
//!
//! `--smoke` runs a reduced-iteration profile (fewer sweeps, smaller publish
//! catalogs) for CI: the emitted metrics keep the same names and the same
//! `*_speedup >= 1` gate semantics (enforced by `check_sweeps`), just with
//! cheaper, noisier estimates.

use dd_bench::secs;
use dd_factorgraph::{FactorGraph, FlatGraph};
use dd_grounding::{standard_udfs, KbcUpdate};
use dd_inference::{sigmoid, GibbsSampler, Marginals, ParallelGibbs, SweepRng};
use dd_relstore::{tuple, DataType, Database, Schema, Tuple};
use dd_workloads::{pairwise_graph, KbcSystem, RuleTemplate, SyntheticConfig, SystemKind};
use deepdive::{CatalogShards, DeepDive, EngineConfig, ExecutionMode, Snapshot};
use rand::{Rng, SeedableRng};
use rayon::ThreadPool;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Explicit thread counts for the pooled-vs-spawn dispatch comparison.
const THREAD_COUNTS: [usize; 2] = [2, 4];

/// Relations the synthetic publish-cost catalog is spread over.
const PUBLISH_RELATIONS: usize = 16;

/// Tuples added by the Δ-update whose publish cost is measured.
const PUBLISH_DELTA: usize = 64;

struct Entry {
    name: String,
    unit: &'static str,
    value: f64,
}

/// One sweep of the pre-compilation implementation (the seed hot path,
/// verbatim): two-pass energy delta on the jagged graph, mutating the world.
fn legacy_sweep(
    graph: &FactorGraph,
    free_vars: &[usize],
    world: &mut dd_factorgraph::World,
    rng: &mut SweepRng,
) {
    for &v in free_vars {
        let delta = graph.energy_delta(v, world);
        let p_true = sigmoid(delta);
        let value = rng.gen::<f64>() < p_true;
        world.set(v, value);
    }
}

/// Time `sweeps` legacy sweeps, returning sweeps/second.
fn bench_legacy(graph: &FactorGraph, sweeps: usize, seed: u64) -> f64 {
    let free_vars = graph.query_variables();
    let mut world = graph.initial_world();
    let mut rng = SweepRng::seed_from_u64(seed);
    // Warm up one sweep outside the timed region.
    legacy_sweep(graph, &free_vars, &mut world, &mut rng);
    let start = Instant::now();
    for _ in 0..sweeps {
        legacy_sweep(graph, &free_vars, &mut world, &mut rng);
    }
    sweeps as f64 / start.elapsed().as_secs_f64()
}

/// Time `sweeps` compiled-representation sweeps, returning sweeps/second.
fn bench_flat(flat: &FlatGraph, sweeps: usize, seed: u64) -> f64 {
    let mut sampler = GibbsSampler::from_flat(flat, seed);
    sampler.sweep();
    let start = Instant::now();
    for _ in 0..sweeps {
        sampler.sweep();
    }
    sweeps as f64 / start.elapsed().as_secs_f64()
}

/// Time `sweeps` hogwild sweeps on the global pool, returning sweeps/second.
fn bench_parallel(flat: &FlatGraph, sweeps: usize, seed: u64) -> f64 {
    let sampler = ParallelGibbs::from_flat(flat.clone(), seed);
    time_sweeps(sampler, sweeps)
}

/// Time hogwild sweeps on an explicit persistent pool of size `threads`.
fn bench_parallel_pooled(
    flat: &FlatGraph,
    sweeps: usize,
    seed: u64,
    pool: &Arc<ThreadPool>,
) -> f64 {
    let sampler = ParallelGibbs::from_flat(flat.clone(), seed).with_pool(Arc::clone(pool));
    time_sweeps(sampler, sweeps)
}

/// Time hogwild sweeps with the spawn-per-sweep baseline dispatcher at the
/// same thread count and chunk layout as the pooled leg.
fn bench_parallel_spawn(flat: &FlatGraph, sweeps: usize, seed: u64, pool: &Arc<ThreadPool>) -> f64 {
    let sampler = ParallelGibbs::from_flat(flat.clone(), seed)
        .with_pool(Arc::clone(pool))
        .with_spawn_dispatch();
    time_sweeps(sampler, sweeps)
}

fn time_sweeps(mut sampler: ParallelGibbs, sweeps: usize) -> f64 {
    sampler.sweep(); // warm up (and fault in the pool) outside the timed region
                     // Best of five reps: scheduler interference only ever slows a rep down,
                     // so the max is the least-noisy throughput estimate (the dispatch gap
                     // being measured is ~10% on the large workload, well under raw run
                     // jitter on a busy box).
    let mut best = 0.0f64;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..sweeps {
            sampler.sweep();
        }
        best = best.max(sweeps as f64 / start.elapsed().as_secs_f64());
    }
    best
}

fn bench_workload(label: &str, graph: &FactorGraph, sweeps: usize, entries: &mut Vec<Entry>) {
    let stats = graph.stats();
    println!(
        "\n{label}: {} variables ({} query), {} factors, avg degree {:.2}",
        stats.num_variables, stats.num_query_variables, stats.num_factors, stats.avg_degree
    );

    let compile_start = Instant::now();
    let flat = graph.compile();
    let compile_secs = compile_start.elapsed().as_secs_f64();

    let legacy = bench_legacy(graph, sweeps, 7);
    let flat_rate = bench_flat(&flat, sweeps, 7);
    let parallel = bench_parallel(&flat, sweeps, 7);
    let speedup = flat_rate / legacy;
    let parallel_speedup = parallel / legacy;

    println!("  compile:  {}", secs(compile_secs));
    println!("  legacy:   {legacy:>12.1} sweeps/s");
    println!("  flat:     {flat_rate:>12.1} sweeps/s  ({speedup:.2}x legacy)");
    println!("  parallel: {parallel:>12.1} sweeps/s  ({parallel_speedup:.2}x legacy)");

    for (kind, value, unit) in [
        ("legacy_sequential", legacy, "sweeps/s"),
        ("flat_sequential", flat_rate, "sweeps/s"),
        ("flat_parallel", parallel, "sweeps/s"),
        ("flat_vs_legacy_speedup", speedup, "x"),
        ("compile_seconds", compile_secs, "s"),
    ] {
        entries.push(Entry {
            name: format!("{label}/{kind}"),
            unit,
            value,
        });
    }

    for &threads in &THREAD_COUNTS {
        let pool = Arc::new(ThreadPool::new(threads));
        let pooled = bench_parallel_pooled(&flat, sweeps, 7, &pool);
        let spawned = bench_parallel_spawn(&flat, sweeps, 7, &pool);
        let dispatch_speedup = pooled / spawned;
        println!(
            "  t={threads}: pooled {pooled:>12.1} sweeps/s | spawn-per-sweep {spawned:>12.1} sweeps/s  ({dispatch_speedup:.2}x)"
        );
        for (kind, value, unit) in [
            (format!("parallel_pooled_t{threads}"), pooled, "sweeps/s"),
            (format!("parallel_spawn_t{threads}"), spawned, "sweeps/s"),
            (
                format!("pooled_vs_spawn_speedup_t{threads}"),
                dispatch_speedup,
                "x",
            ),
        ] {
            entries.push(Entry {
                name: format!("{label}/{kind}"),
                unit,
                value,
            });
        }
    }
}

/// The fig9 end-to-end workload graph: the News KBC system brought to the
/// state just before the FE2 iteration, exactly like the fig9 bench.
fn fig9_graph() -> FactorGraph {
    let system = KbcSystem::generate(SystemKind::News, 0.3, 11);
    let mut engine = DeepDive::builder()
        .program(system.program.clone())
        .database(system.corpus.database.clone())
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()
        .expect("engine builds");
    engine
        .run_update(
            &system.template_update(RuleTemplate::FE1),
            ExecutionMode::Rerun,
        )
        .expect("FE1 applies");
    engine
        .run_update(
            &system.template_update(RuleTemplate::S1),
            ExecutionMode::Rerun,
        )
        .expect("S1 applies");
    engine.graph().clone()
}

/// A fig5-style synthetic pairwise graph (the tradeoff-study shape).  The
/// smoke profile shrinks it: the `pooled_vs_spawn` gap being gated is
/// per-sweep dispatch overhead, and on a sweep big enough to hide that
/// overhead the metric degenerates to noise around 1.0× — a small graph keeps
/// the measured quantity the dispatch cost itself, so the CI floor is stable.
fn fig5_graph(smoke: bool) -> FactorGraph {
    pairwise_graph(&SyntheticConfig {
        num_variables: if smoke { 400 } else { 4000 },
        sparsity: 0.8,
        factors_per_variable: 6,
        seed: 5,
        ..Default::default()
    })
}

/// Time the two snapshot-publish strategies over synthetic catalogs of
/// growing size: the old O(n) full rebuild vs the sharded publish (clone the
/// shard vector, Δ-merge the one touched relation) that `commit_marginals`
/// performs after a Δ-update.
fn bench_publish_cost(sizes: &[usize], reps: usize, entries: &mut Vec<Entry>) {
    println!(
        "\npublish_cost: full rebuild vs sharded Δ-publish \
         ({PUBLISH_RELATIONS} relations, Δ = {PUBLISH_DELTA} tuples in one relation)"
    );
    for &n in sizes {
        // A synthetic `(relation, tuple) → variable` catalog with `n` entries
        // spread evenly over the relations — the shape the engine's catalog
        // cache holds after grounding a large KB.
        let catalog: HashMap<(String, Tuple), usize> = (0..n)
            .map(|i| {
                let relation = format!("Rel{:02}", i % PUBLISH_RELATIONS);
                ((relation, tuple![i as i64]), i)
            })
            .collect();
        let mut base = CatalogShards::build(catalog.iter(), 1);
        // Rank the base once against a fixed marginal vector, as the engine's
        // cache is ranked by its first publish; the timed Δ-publish below then
        // pays the realistic incremental ranked maintenance, not a first-time
        // build.
        let marginals = Marginals::from_values(
            (0..n + PUBLISH_DELTA)
                .map(|i| (i % 997) as f64 / 997.0)
                .collect(),
        );
        base.refresh_ranked(&marginals, 1);
        let delta: Vec<(Tuple, usize)> = (0..PUBLISH_DELTA)
            .map(|i| (tuple![(n + i) as i64], n + i))
            .collect();

        // Baseline: the pre-sharding publish — re-index every relation from a
        // full catalog scan, as the engine used to do whenever the graph grew.
        let mut full_secs = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            let rebuilt = CatalogShards::build(catalog.iter(), 2);
            full_secs = full_secs.min(start.elapsed().as_secs_f64());
            assert_eq!(rebuilt.num_entries(), n);
        }

        // Sharded: what `commit_marginals` pays now — clone the shard vector
        // (Arc bumps for every untouched relation) and sorted-merge the Δ
        // entries into the single touched shard.
        let mut sharded_secs = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            let mut next = base.clone();
            next.merge_delta("Rel00", delta.clone(), 2, &marginals);
            sharded_secs = sharded_secs.min(start.elapsed().as_secs_f64());
            assert_eq!(next.num_entries(), n + PUBLISH_DELTA);
        }

        let speedup = full_secs / sharded_secs;
        println!(
            "  n={n:>8}: full rebuild {:>10} | sharded publish {:>10}  ({speedup:.1}x)",
            secs(full_secs),
            secs(sharded_secs)
        );
        for (kind, value, unit) in [
            (format!("full_rebuild_ms_n{n}"), full_secs * 1e3, "ms"),
            (format!("sharded_publish_ms_n{n}"), sharded_secs * 1e3, "ms"),
            (format!("publish_speedup_n{n}"), speedup, "x"),
        ] {
            entries.push(Entry {
                name: format!("publish_cost/{kind}"),
                unit,
                value,
            });
        }
    }
}

/// Time the two read paths over synthetic snapshots of growing size: the
/// full scan (`FactQuery::run_scan`, iterate the tuple-sorted index and
/// filter) vs the ranked-index path (`FactQuery::run`, prefix/partition-point
/// reads of the probability-ordered view every publish maintains).  Two
/// query shapes per size — a top-k page over a threshold (the serving
/// harness's `topk` op) and a selective threshold selection — with the
/// indexed result asserted byte-identical to the scan before timing.
/// Emits `query_cost/{scan,indexed}_{shape}_us_n{N}` and
/// `query_cost/{shape}_speedup_n{N}`.
fn bench_query_cost(sizes: &[usize], reps: usize, entries: &mut Vec<Entry>) {
    println!("\nquery_cost: ranked-index read path vs full scan");
    for &n in sizes {
        // One n-tuple relation with marginals spread over [0, 1): the shape
        // a catalog shard holds after grounding and inferring a large KB.
        let catalog: HashMap<(String, Tuple), usize> = (0..n)
            .map(|i| (("Fact".to_string(), tuple![i as i64]), i))
            .collect();
        let marginals: Vec<f64> = (0..n).map(|i| (i % 997) as f64 / 997.0).collect();
        let snapshot = Snapshot::synthetic(1, marginals, CatalogShards::build(catalog.iter(), 1));

        // (label, min_probability, top_k, limit): the top-k page mirrors the
        // serving harness's `topk` op; the threshold shape selects the ~1%
        // high-confidence slice without pagination.
        let shapes: [(&str, f64, Option<usize>, Option<usize>); 2] = [
            ("topk", 0.5, Some(10), Some(10)),
            ("threshold", 0.99, None, None),
        ];
        for (label, min_p, top_k, limit) in shapes {
            let make = || {
                let mut query = snapshot.facts("Fact").min_probability(min_p);
                if let Some(k) = top_k {
                    query = query.top_k(k);
                }
                if let Some(l) = limit {
                    query = query.limit(l);
                }
                query
            };
            // The indexed path must answer byte-identically to the scan.
            assert_eq!(make().run(), make().run_scan());

            let iters = (1_000_000 / n).clamp(3, 200);
            let (mut indexed_secs, mut scan_secs) = (f64::INFINITY, f64::INFINITY);
            let mut sink = 0usize;
            for _ in 0..reps {
                let start = Instant::now();
                for _ in 0..iters {
                    sink += make().run().len();
                }
                indexed_secs = indexed_secs.min(start.elapsed().as_secs_f64() / iters as f64);
                let start = Instant::now();
                for _ in 0..iters {
                    sink += make().run_scan().len();
                }
                scan_secs = scan_secs.min(start.elapsed().as_secs_f64() / iters as f64);
            }
            assert!(sink > 0, "queries returned no facts — nothing was measured");

            let speedup = scan_secs / indexed_secs;
            println!(
                "  n={n:>8} {label:>9}: scan {:>10} | indexed {:>10}  ({speedup:.1}x)",
                secs(scan_secs),
                secs(indexed_secs)
            );
            for (kind, value, unit) in [
                (format!("scan_{label}_us_n{n}"), scan_secs * 1e6, "us"),
                (format!("indexed_{label}_us_n{n}"), indexed_secs * 1e6, "us"),
                (format!("{label}_speedup_n{n}"), speedup, "x"),
            ] {
                entries.push(Entry {
                    name: format!("query_cost/{kind}"),
                    unit,
                    value,
                });
            }
        }
    }
}

/// The program the retraction benchmark grounds: claims become facts, every
/// third claim is positively labelled.
const RETRACTION_PROGRAM: &str = "\
    relation Claim(id: int) base.\n\
    relation Label(id: int) base.\n\
    relation Fact(id: int) variable.\n\
    rule F feature: Fact(id) :- Claim(id) weight = 1.5.\n\
    rule S supervision+: Fact(id) :- Claim(id), Label(id).\n";

/// A corpus of `n` claims, every third one labelled, minus the ids in
/// `skip` (sorted).
fn retraction_database(n: usize, skip: &[usize]) -> Database {
    let mut db = Database::new();
    db.create_table("Claim", Schema::of(&[("id", DataType::Int)]))
        .expect("fresh table");
    db.create_table("Label", Schema::of(&[("id", DataType::Int)]))
        .expect("fresh table");
    for i in 0..n {
        if skip.binary_search(&i).is_ok() {
            continue;
        }
        db.insert("Claim", tuple![i as i64]).expect("seed row");
        if i % 3 == 0 {
            db.insert("Label", tuple![i as i64]).expect("seed label");
        }
    }
    db
}

/// Time the same deletion batch grounded from scratch vs through the DRed
/// retraction sweep.  Emits `retraction_cost/{rerun_delete_ms,
/// incremental_delete_ms, delete_speedup, deletes_per_sec}_n{N}`.
fn bench_retraction_cost(sizes: &[usize], reps: usize, entries: &mut Vec<Entry>) {
    println!("\nretraction_cost: from-scratch re-ground vs incremental DRed deletes");
    let program = dd_grounding::parse_program(RETRACTION_PROGRAM).expect("program parses");
    for &n in sizes {
        let deletes = (n / 20).max(1);
        let victims: Vec<usize> = (0..deletes).map(|i| i * 20).collect();
        let mut update = KbcUpdate::new();
        for &id in &victims {
            update.delete("Claim", tuple![id as i64]);
            if id % 3 == 0 {
                update.delete("Label", tuple![id as i64]);
            }
        }

        // Baseline: what a rerun pays for the deletion — re-grounding the
        // whole post-delete corpus into a fresh graph.
        let mut rerun_secs = f64::INFINITY;
        for _ in 0..reps {
            let db = retraction_database(n, &victims);
            let start = Instant::now();
            let mut grounder = dd_grounding::Grounder::new(program.clone(), db, standard_udfs())
                .expect("grounder builds");
            grounder.ground().expect("full re-ground");
            rerun_secs = rerun_secs.min(start.elapsed().as_secs_f64());
            assert_eq!(grounder.num_catalogued_variables(), n - deletes);
        }

        // Incremental: the DRed retraction sweep on a live, fully-grounded
        // graph (preparation untimed).
        let mut incremental_secs = f64::INFINITY;
        for _ in 0..reps {
            let mut grounder = dd_grounding::Grounder::new(
                program.clone(),
                retraction_database(n, &[]),
                standard_udfs(),
            )
            .expect("grounder builds");
            grounder.ground().expect("initial ground");
            let start = Instant::now();
            let grounding = grounder
                .ground_incremental(&update)
                .expect("incremental delete batch");
            incremental_secs = incremental_secs.min(start.elapsed().as_secs_f64());
            // Every victim loses its feature grounding; labelled victims
            // lose their supervision grounding too.
            let labelled = victims.iter().filter(|id| *id % 3 == 0).count();
            assert_eq!(grounding.retracted_groundings, deletes + labelled);
            assert_eq!(grounder.num_catalogued_variables(), n - deletes);
        }

        let speedup = rerun_secs / incremental_secs;
        let throughput = deletes as f64 / incremental_secs;
        println!(
            "  n={n:>6} (Δ = {deletes} deletes): re-ground {:>10} | incremental {:>10}  \
             ({speedup:.1}x, {throughput:.0} deletes/s)",
            secs(rerun_secs),
            secs(incremental_secs)
        );
        for (kind, value, unit) in [
            (format!("rerun_delete_ms_n{n}"), rerun_secs * 1e3, "ms"),
            (
                format!("incremental_delete_ms_n{n}"),
                incremental_secs * 1e3,
                "ms",
            ),
            (format!("delete_speedup_n{n}"), speedup, "x"),
            (format!("deletes_per_sec_n{n}"), throughput, "deletes/s"),
        ] {
            entries.push(Entry {
                name: format!("retraction_cost/{kind}"),
                unit,
                value,
            });
        }
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_sweeps.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other if other.starts_with('-') => {
                eprintln!(
                    "bench_sweeps: unknown flag '{other}' (expected [--smoke] [output.json])"
                );
                std::process::exit(2);
            }
            other => out_path = other.to_string(),
        }
    }

    // Smoke mode trades precision for CI wall-clock: fewer timed sweeps and
    // smaller publish catalogs, same metrics, same gates.
    let (fig9_sweeps, fig5_sweeps) = if smoke { (60, 40) } else { (300, 100) };
    let publish_sizes: &[usize] = if smoke {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let publish_reps = if smoke { 3 } else { 5 };
    let retraction_sizes: &[usize] = if smoke {
        &[500, 2_000]
    } else {
        &[2_000, 8_000]
    };

    let mut entries = Vec::new();
    bench_workload(
        "fig9_news_end_to_end",
        &fig9_graph(),
        fig9_sweeps,
        &mut entries,
    );
    bench_workload(
        "fig5_synthetic_pairwise",
        &fig5_graph(smoke),
        fig5_sweeps,
        &mut entries,
    );
    bench_publish_cost(publish_sizes, publish_reps, &mut entries);
    bench_retraction_cost(retraction_sizes, publish_reps, &mut entries);
    bench_query_cost(publish_sizes, publish_reps, &mut entries);

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "  {{\"name\": \"{}\", \"unit\": \"{}\", \"value\": {:.6}}}{}\n",
            e.name,
            e.unit,
            e.value,
            if i + 1 == entries.len() { "" } else { "," }
        );
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("\nwrote {} entries to {out_path}", entries.len());
}

//! CI doc-rot gate: intra-repo links and `file:line` anchors in the
//! top-level docs must resolve against the checkout.
//!
//! Scans the audited docs (README, ARCHITECTURE, PERFORMANCE, BENCHMARKING,
//! ROADMAP) for markdown links to repo paths and backticked `path.rs:123`
//! anchors, and fails when a link target does not exist or an anchor points
//! past the end of its file.  Usage:
//!
//! ```sh
//! cargo run --release -p dd-bench --bin check_docs [--root <repo-root>]
//! ```
//!
//! The default root is the current directory (CI runs from the checkout
//! root).  Docs that do not exist yet are skipped, not failed — the list is
//! a superset so new docs join the audit by being created.

use dd_bench::docs::{check_doc, AUDITED_DOCS};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("check_docs: --root expects a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("check_docs: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut violations = Vec::new();
    let mut checked = 0usize;
    for doc in AUDITED_DOCS {
        let path = root.join(doc);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // not every audited doc exists in every checkout
        };
        checked += 1;
        violations.extend(check_doc(&root, doc, &text));
    }
    if checked == 0 {
        eprintln!(
            "check_docs: no audited docs found under {} — wrong --root?",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    if violations.is_empty() {
        println!("check_docs: {checked} docs audited, all links and anchors resolve");
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("check_docs: FAIL {violation}");
        }
        ExitCode::FAILURE
    }
}

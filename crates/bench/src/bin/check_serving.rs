//! CI serving gate over a `BENCH_serving.json` produced by `dd-loadgen`.
//!
//! Exits non-zero when the file is unreadable, malformed, missing any
//! required series for either target (`serving_server/`, `serving_router/`),
//! holds non-finite values or non-monotone percentiles, saw any unexpected
//! error (the zero-hang proxy — every loadgen client runs under a read
//! timeout, so a wedged server lands here instead of wedging the harness),
//! or refused more than half its traffic (`overload_rate` bound).
//!
//! When the per-commit history (`dev/bench/data.js`) is present, the
//! trailing-window regression gate also runs: each target's top-k/threshold
//! p99 must stay within `MAX_REGRESSION_FACTOR`× the median of the last
//! `REGRESSION_WINDOW` banked runs.  A missing history file or one with too
//! few usable points skips that gate cleanly; a *malformed* history fails
//! the build (it is a CI artifact, not user input).
//!
//! Usage:
//! `cargo run --release -p dd-bench --bin check_serving [file.json] [history.js]`
//! (defaults `BENCH_serving.json` and `dev/bench/data.js`).  CI runs it
//! against a fresh smoke file:
//!
//! ```sh
//! cargo run --release -p dd-bench --bin dd-loadgen -- --smoke ci-serving.json
//! cargo run --release -p dd-bench --bin check_serving -- ci-serving.json dev/bench/data.js
//! ```

use dd_bench::history::{parse_history, run_count};
use dd_bench::serving::{regression_violations, serving_violations};
use dd_bench::sweeps::parse_bench_entries;
use std::process::ExitCode;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serving.json".to_string());
    let history_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "dev/bench/data.js".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("check_serving: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let entries = match parse_bench_entries(&text) {
        Ok(entries) => entries,
        Err(err) => {
            eprintln!("check_serving: {path} is not a valid benchmark file: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!("check_serving: {path}: {} entries", entries.len());
    for entry in entries
        .iter()
        .filter(|e| e.name.ends_with("_p99_ms") || e.name.contains("rate"))
    {
        println!("  {:<48} {:>12.4} {}", entry.name, entry.value, entry.unit);
    }

    let mut violations = serving_violations(&entries);

    match std::fs::read_to_string(&history_path) {
        Err(_) => {
            println!("check_serving: no history at {history_path} — regression gate skipped");
        }
        Ok(history_text) => match parse_history(&history_text) {
            Err(err) => {
                eprintln!("check_serving: {history_path} is not a valid history: {err}");
                return ExitCode::FAILURE;
            }
            Ok(history) => {
                println!(
                    "check_serving: regression gate against {} banked runs in {history_path}",
                    run_count(&history)
                );
                violations.extend(regression_violations(&entries, &history));
            }
        },
    }

    if violations.is_empty() {
        println!("check_serving: all serving gates pass");
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("check_serving: FAIL {violation}");
        }
        ExitCode::FAILURE
    }
}

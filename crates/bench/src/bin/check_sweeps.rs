//! CI perf gate over a `BENCH_sweeps.json` produced by `bench_sweeps`.
//!
//! Exits non-zero when the file is unreadable, malformed, empty, holds a
//! non-finite value, any `*_speedup` metric sits below 1.0× — i.e. when an
//! optimization this repo has already banked (compiled flat graph, persistent
//! pool dispatch, sharded O(Δ) publish, incremental retraction) has regressed
//! behind its baseline — or a whole required series stopped emitting speedup
//! entries (the coverage floor: a sweep that silently stops running is a
//! regression too).
//!
//! Usage: `cargo run --release -p dd-bench --bin check_sweeps [file.json]`
//! (default `BENCH_sweeps.json`).  CI runs it against a fresh `--smoke` file:
//!
//! ```sh
//! cargo run --release -p dd-bench --bin bench_sweeps -- --smoke ci-smoke.json
//! cargo run --release -p dd-bench --bin check_sweeps -- ci-smoke.json
//! ```

use dd_bench::sweeps::{coverage_violations, gate_violations, parse_bench_entries};
use std::process::ExitCode;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweeps.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("check_sweeps: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let entries = match parse_bench_entries(&text) {
        Ok(entries) => entries,
        Err(err) => {
            eprintln!("check_sweeps: {path} is not a valid benchmark file: {err}");
            return ExitCode::FAILURE;
        }
    };

    let speedups: Vec<_> = entries
        .iter()
        .filter(|e| e.name.contains("speedup"))
        .collect();
    println!(
        "check_sweeps: {path}: {} entries, {} speedup gates",
        entries.len(),
        speedups.len()
    );
    for entry in &speedups {
        println!("  {:<55} {:>9.3}{}", entry.name, entry.value, entry.unit);
    }

    let mut violations = gate_violations(&entries, 1.0);
    violations.extend(coverage_violations(&entries));
    if violations.is_empty() {
        println!("check_sweeps: all gates pass");
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("check_sweeps: FAIL {violation}");
        }
        ExitCode::FAILURE
    }
}

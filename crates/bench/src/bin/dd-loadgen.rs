//! The serving-path load generator: drive a live `dd-server` and a sharded
//! routed front door over loopback with mixed read traffic plus concurrent
//! update/retraction rounds, and write the measured latency/overload/
//! staleness series to `BENCH_serving.json`.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p dd-bench --bin dd-loadgen -- \
//!     [--smoke] [--streaming] [--overload] [--target server|router] [output.json]
//! ```
//!
//! `--smoke` runs the seconds-long CI profile instead of the nominal one;
//! `--streaming` switches the percentile estimator to the bounded-memory
//! sketch; `--target` restricts the run to one deployment (the emitted file
//! then fails `check_serving`'s coverage floor by design — it is for local
//! iteration, not CI).  `--overload` runs the deliberate-overload profile
//! instead: a one-worker, tiny-queue server is flooded above its *measured*
//! capacity so the bounded queue fills, then probed for recovery; the
//! emitted `serving_overload/` series likewise skip the coverage floor.
//! Default output: `BENCH_serving.json`.

use dd_bench::loadgen::{run, run_overload, run_target, LoadgenConfig, OverloadConfig, Target};
use dd_bench::serving::encode_bench_entries;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut config = LoadgenConfig::nominal();
    let mut smoke = false;
    let mut overload = false;
    let mut target: Option<Target> = None;
    let mut output = "BENCH_serving.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--streaming" => config.streaming = true,
            "--overload" => overload = true,
            "--target" => match args.next().as_deref() {
                Some("server") => target = Some(Target::Server),
                Some("router") => target = Some(Target::Router),
                other => {
                    eprintln!("dd-loadgen: --target expects server|router, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: dd-loadgen [--smoke] [--streaming] [--overload] \
                     [--target server|router] [out.json]"
                );
                return ExitCode::SUCCESS;
            }
            path => output = path.to_string(),
        }
    }
    if smoke {
        let streaming = config.streaming;
        config = LoadgenConfig::smoke();
        config.streaming = streaming;
    }

    let profile = if smoke { "smoke" } else { "nominal" };
    let result = if overload {
        let overload_config = if smoke {
            OverloadConfig::smoke()
        } else {
            OverloadConfig::nominal()
        };
        println!(
            "dd-loadgen: {profile} overload profile — {} flood clients at {}x measured \
             capacity, {} worker(s), queue of {}",
            overload_config.flood_clients,
            overload_config.rate_factor,
            overload_config.workers,
            overload_config.queue_capacity
        );
        run_overload(&overload_config)
    } else {
        println!(
            "dd-loadgen: {profile} profile — {}s per target, {} closed + {} open clients, {} shards",
            config.duration.as_secs_f64(),
            config.closed_clients,
            config.open_clients,
            config.shards
        );
        match target {
            None => run(&config),
            Some(t) => {
                println!(
                    "dd-loadgen: single target {:?} (coverage gate will not pass)",
                    t
                );
                run_target(t, &config)
            }
        }
    };
    let entries = match result {
        Ok(entries) => entries,
        Err(err) => {
            eprintln!("dd-loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };
    for entry in &entries {
        println!("  {:<48} {:>14.4} {}", entry.name, entry.value, entry.unit);
    }
    if let Err(err) = std::fs::write(&output, encode_bench_entries(&entries)) {
        eprintln!("dd-loadgen: cannot write {output}: {err}");
        return ExitCode::FAILURE;
    }
    println!("dd-loadgen: wrote {} entries to {output}", entries.len());
    ExitCode::SUCCESS
}

//! Figure 10(a): quality (F1) over cumulative execution time, Rerun vs
//! Incremental, across the six development snapshots of the News system.
//! Figure 10(b): end-to-end F1 under the Linear / Logical / Ratio semantics for
//! each of the five systems.  Also reports the §4.2 fact-agreement statistics
//! (high-confidence overlap, fraction differing by more than 0.05).

use dd_bench::print_table;
use dd_factorgraph::Semantics;
use dd_grounding::standard_udfs;
use dd_workloads::{KbcSystem, SystemKind};
use deepdive::{DeepDive, EngineConfig, ExecutionMode};

fn engine_for(system: &KbcSystem) -> DeepDive {
    DeepDive::builder()
        .program(system.program.clone())
        .database(system.corpus.database.clone())
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()
        .expect("engine builds")
}

fn main() {
    println!("# Figure 10(a) — quality over time (News, six snapshots)");
    let system = KbcSystem::generate(SystemKind::News, 0.3, 51);

    let mut rows = Vec::new();
    let mut marginal_pairs = None;
    for mode in [ExecutionMode::Rerun, ExecutionMode::Incremental] {
        let mut engine = engine_for(&system);
        if mode == ExecutionMode::Incremental {
            engine.initial_run().expect("initial run");
            engine.materialize().unwrap();
        }
        let mut cumulative = 0.0;
        for (template, update) in system.development_updates() {
            let report = engine.run_update(&update, mode).expect("update applies");
            cumulative += report.inference_and_learning_secs();
            let q = engine.quality("MarriedMentions", system.truth());
            rows.push(vec![
                mode.label().to_string(),
                template.name().to_string(),
                format!("{cumulative:.2}s"),
                format!("{:.3}", q.f1),
                format!("{:.3}", q.precision),
                format!("{:.3}", q.recall),
            ]);
        }
        // keep the final marginals of each mode for the agreement comparison
        let snapshot = engine.snapshot();
        let m = (snapshot.epoch() > 0).then(|| snapshot.marginals().clone());
        marginal_pairs = match (marginal_pairs, m) {
            (None, Some(m)) => Some((Some(m), None)),
            (Some((a, _)), Some(m)) => Some((a, Some(m))),
            (p, None) => p,
        };
    }
    print_table(
        "F1 vs cumulative learning+inference time",
        &[
            "mode",
            "after rule",
            "cumulative time",
            "F1",
            "precision",
            "recall",
        ],
        &rows,
    );

    if let Some((Some(rerun_m), Some(inc_m))) = marginal_pairs {
        let overlap = rerun_m.high_confidence_overlap(&inc_m, 0.9);
        let differing = rerun_m.fraction_differing(&inc_m, 0.05);
        println!(
            "Fact agreement (§4.2): {:.1}% of Rerun's high-confidence (p > 0.9) facts are\n\
             also high-confidence under Incremental; {:.1}% of facts differ by more than\n\
             0.05 in probability (paper: 99% and <4%).\n",
            overlap * 100.0,
            differing * 100.0
        );
    }

    println!("# Figure 10(b) — F1 under Linear / Logical / Ratio semantics");
    let mut rows = Vec::new();
    for kind in SystemKind::all() {
        let mut cells = vec![kind.name().to_string()];
        for semantics in [Semantics::Linear, Semantics::Logical, Semantics::Ratio] {
            let system = KbcSystem::generate_with_semantics(kind, 0.2, 61, semantics);
            let mut engine = engine_for(&system);
            for (_, update) in system.development_updates() {
                engine
                    .run_update(&update, ExecutionMode::Rerun)
                    .expect("update applies");
            }
            let q = engine.quality("MarriedMentions", system.truth());
            cells.push(format!("{:.3}", q.f1));
        }
        rows.push(cells);
    }
    print_table(
        "End-to-end F1 per semantics",
        &["system", "Linear", "Logical", "Ratio"],
        &rows,
    );
    println!("Paper shape: Logical/Ratio match or beat Linear on every system (up to ~10% F1).");
}

//! Figure 11: lesion study of the materialization strategies on the News rule
//! templates — the full system vs NoSamplingAll (sampling disabled),
//! NoRelaxation (variational disabled), and NoWorkloadInfo (use sampling until
//! exhausted, then variational, ignoring the workload-based rules of §3.3).

use dd_bench::{print_table, secs, timed};
use dd_grounding::standard_udfs;
use dd_inference::{DistributionChange, GibbsOptions};
use dd_workloads::{KbcSystem, RuleTemplate, SystemKind};
use deepdive::{choose_strategy, DeepDive, EngineConfig, ExecutionMode, StrategyChoice};

fn main() {
    println!("# Figure 11 — lesion study of the materialization strategies (News)");
    let system = KbcSystem::generate(SystemKind::News, 0.2, 71);

    let mut rows = Vec::new();
    for template in RuleTemplate::all() {
        // Prepare a trained, materialized engine just before this rule's iteration.
        let mut engine = DeepDive::builder()
            .program(system.program.clone())
            .database(system.corpus.database.clone())
            .udfs(standard_udfs())
            .config(EngineConfig::fast())
            .build()
            .expect("engine builds");
        engine
            .run_update(
                &system.template_update(RuleTemplate::FE1),
                ExecutionMode::Rerun,
            )
            .expect("FE1 applies");
        engine
            .run_update(
                &system.template_update(RuleTemplate::S1),
                ExecutionMode::Rerun,
            )
            .expect("S1 applies");
        engine.materialize().unwrap();
        let update = system.template_update(template);

        let mat = engine.materialization().expect("materialized").clone();
        let gibbs = GibbsOptions::new(120, 30, 3);

        // Grounding of the update (shared by all variants).
        let mut grounded_engine = engine;
        let pre_graph = grounded_engine.graph().clone();
        // Apply the update once so the updated graph (and the same distribution
        // change) is shared by every lesion variant.
        grounded_engine
            .run_update(&update, ExecutionMode::Incremental)
            .expect("update applies");
        let updated_graph = grounded_engine.graph().clone();
        // Reconstruct the distribution change from the graphs' difference: new
        // factors are those beyond the pre-update count.
        let mut change = DistributionChange::default();
        change.new_factors = (pre_graph.num_factors()..updated_graph.num_factors()).collect();
        change.new_variables = (pre_graph.num_variables()..updated_graph.num_variables()).collect();
        for v in 0..pre_graph.num_variables() {
            let before = pre_graph.variable(v).fixed_value();
            let after = updated_graph.variable(v).fixed_value();
            if before != after {
                if let Some(val) = after {
                    change.new_evidence.push((v, val));
                }
            }
        }
        let (_, t_full) = timed(
            || match choose_strategy(&change, mat.sampling.num_samples()) {
                StrategyChoice::Sampling => {
                    let out = mat.sampling.infer(&updated_graph, &change, 400, 3);
                    if out.exhausted {
                        let _ = mat.variational.infer(&Default::default(), &gibbs);
                    }
                }
                StrategyChoice::Variational => {
                    let _ = mat.variational.infer(&Default::default(), &gibbs);
                }
            },
        );
        let (_, t_no_sampling) = timed(|| mat.variational.infer(&Default::default(), &gibbs));
        let (out_sampling, t_no_relax) =
            timed(|| mat.sampling.infer(&updated_graph, &change, 400, 3));
        let (_, t_no_workload) = timed(|| {
            let out = mat.sampling.infer(&updated_graph, &change, 400, 3);
            if out.exhausted || out.acceptance_rate < 0.05 {
                let _ = mat.variational.infer(&Default::default(), &gibbs);
            }
        });

        rows.push(vec![
            template.name().to_string(),
            secs(t_full),
            secs(t_no_sampling),
            secs(t_no_relax),
            secs(t_no_workload),
            format!("{:.2}", out_sampling.acceptance_rate),
        ]);
    }
    print_table(
        "Inference time per rule template under each lesion",
        &[
            "rule",
            "full system",
            "NoSamplingAll",
            "NoRelaxation",
            "NoWorkloadInfo",
            "sampling acceptance",
        ],
        &rows,
    );
    println!(
        "Paper shape: disabling either strategy slows some rule class down (A1/FE suffer\n\
         without sampling; supervision rules suffer without the variational fallback)."
    );
}

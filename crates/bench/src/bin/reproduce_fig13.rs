//! Figures 12 & 13: convergence of Gibbs sampling on the Voting program under
//! the Linear / Ratio / Logical semantics as the number of vote variables grows.
//! The paper's bound (Figure 12) is Θ(n log n) sweeps for Logical/Ratio and
//! exponential for Linear; Figure 13 plots the measured iterations to get within
//! 1% of the correct marginal.

use dd_bench::print_table;
use dd_factorgraph::Semantics;
use dd_inference::iterations_to_converge;
use dd_workloads::voting_graph;

fn main() {
    println!("# Figures 12–13 — Voting-program convergence per semantics");
    let sizes = [10usize, 30, 100, 300, 1000];
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut cells = vec![format!("{}", 2 * n)];
        for semantics in [Semantics::Logical, Semantics::Ratio, Semantics::Linear] {
            let (graph, q) = voting_graph(n, n, 0.5, semantics);
            // Symmetric votes -> exact marginal 0.5; measure sweeps to 1%.
            let max_sweeps = if semantics == Semantics::Linear {
                60_000
            } else {
                30_000
            };
            let report = iterations_to_converge(&graph, q, 0.5, 0.01, max_sweeps, 200, 9);
            cells.push(if report.converged {
                report.sweeps_to_converge.to_string()
            } else {
                format!(">{max_sweeps}")
            });
        }
        rows.push(cells);
    }
    print_table(
        "Gibbs sweeps to reach within 1% of the correct marginal of q",
        &["|U| + |D|", "Logical", "Ratio", "Linear"],
        &rows,
    );
    println!(
        "Paper shape (Figure 13): Logical and Ratio converge in near-linear time in the\n\
         number of votes, while Linear's convergence deteriorates sharply — consistent\n\
         with the Θ(n log n) vs exponential bounds of Figure 12."
    );
}

//! Figure 14: lesion study of the decomposition optimization (Appendix B.1).
//!
//! Compares materializing and re-sampling the whole factor graph against
//! materializing each Algorithm-2 group independently, for a graph whose active
//! variables ("the interest area for the next iteration") separate the inactive
//! variables into many small groups.

use dd_bench::{print_table, secs, timed};
use dd_inference::{GibbsOptions, GibbsSampler};
use dd_workloads::{pairwise_graph, SyntheticConfig};
use deepdive::decompose;

fn main() {
    println!("# Figure 14 — decomposition with inactive variables");
    // A blocky graph: 20 blocks of 20 variables, connected through one active
    // variable each, so conditioning on the active variables decomposes it.
    let g = pairwise_graph(&SyntheticConfig {
        num_variables: 400,
        sparsity: 0.6,
        factors_per_variable: 2,
        seed: 3,
        ..Default::default()
    });
    // Every 20th variable is in the developer's interest area (active).
    let active: Vec<bool> = (0..g.num_variables()).map(|v| v % 20 == 0).collect();
    let groups = decompose(&g, &active);

    let gibbs = GibbsOptions::new(150, 30, 5);
    let (_, t_whole) = timed(|| GibbsSampler::new(&g, 5).run(&gibbs));
    let (_, t_grouped) = timed(|| {
        for group in &groups {
            let free = group.all_variables();
            let mut sampler = GibbsSampler::new(&g, 5).with_free_vars(free);
            let _ = sampler.run(&gibbs);
        }
    });

    print_table(
        "Materialization sampling cost: whole graph vs per-group",
        &["configuration", "groups", "time"],
        &[
            vec![
                "NoDecomposition (whole graph)".into(),
                "1".into(),
                secs(t_whole),
            ],
            vec![
                "Decomposition (Algorithm 2)".into(),
                groups.len().to_string(),
                secs(t_grouped),
            ],
        ],
    );
    println!(
        "Paper shape: per-group sampling is comparable or faster for feature/supervision\n\
         workloads because each group touches a fraction of the variables; the analysis\n\
         rule A1 sees little difference."
    );
}

//! Figure 15: how many samples each system can materialize within a fixed
//! wall-clock budget (the paper uses 8 hours; here the budget is scaled down
//! with everything else).

use dd_bench::print_table;
use dd_grounding::standard_udfs;
use dd_workloads::{KbcSystem, RuleTemplate, SystemKind};
use deepdive::{DeepDive, EngineConfig, ExecutionMode, Materialization};

fn main() {
    println!("# Figure 15 — samples materializable within a fixed budget");
    let budget_seconds = 2.0;
    let mut rows = Vec::new();
    for kind in SystemKind::all() {
        let system = KbcSystem::generate(kind, 0.15, 81);
        let mut engine = DeepDive::builder()
            .program(system.program.clone())
            .database(system.corpus.database.clone())
            .udfs(standard_udfs())
            .config(EngineConfig::fast())
            .build()
            .expect("engine builds");
        engine
            .run_update(
                &system.template_update(RuleTemplate::FE1),
                ExecutionMode::Rerun,
            )
            .expect("FE1 applies");
        engine
            .run_update(
                &system.template_update(RuleTemplate::S1),
                ExecutionMode::Rerun,
            )
            .expect("S1 applies");
        let mat =
            Materialization::build_with_budget(engine.graph(), engine.config(), budget_seconds);
        rows.push(vec![
            kind.name().to_string(),
            engine.graph().num_variables().to_string(),
            mat.num_samples.to_string(),
            format!("{} bytes", mat.sample_storage_bytes()),
        ]);
    }
    print_table(
        &format!("Samples drawn in a {budget_seconds}s budget"),
        &["system", "#vars", "#samples", "sample storage"],
        &rows,
    );
    println!(
        "Paper shape: every system materializes thousands of samples within the budget;\n\
         smaller graphs (Genomics) materialize the most."
    );
}

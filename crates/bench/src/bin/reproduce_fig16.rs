//! Figure 16: convergence of the incremental learning strategies —
//! SGD+warmstart (DeepDive's choice), SGD from a cold start, and full gradient
//! descent with warmstart — after an update (new features + new labels) to the
//! News system.

use dd_bench::print_table;
use dd_grounding::standard_udfs;
use dd_workloads::{KbcSystem, RuleTemplate, SystemKind};
use deepdive::{compare_learning_strategies, DeepDive, EngineConfig, ExecutionMode};

fn main() {
    println!("# Figure 16 — incremental learning strategies (News, FE2 + S2 update)");
    let system = KbcSystem::generate(SystemKind::News, 0.25, 91);
    let mut engine = DeepDive::builder()
        .program(system.program.clone())
        .database(system.corpus.database.clone())
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()
        .expect("engine builds");
    // Learn the "previous" model on FE1 + S1.
    engine
        .run_update(
            &system.template_update(RuleTemplate::FE1),
            ExecutionMode::Rerun,
        )
        .expect("FE1 applies");
    engine
        .run_update(
            &system.template_update(RuleTemplate::S1),
            ExecutionMode::Rerun,
        )
        .expect("S1 applies");
    let warm = engine.learned_weights().to_vec();

    // Apply the update that introduces new features and new labels (FE2 + S2),
    // then compare restart strategies on the resulting graph.
    engine
        .run_update(
            &system.template_update(RuleTemplate::FE2),
            ExecutionMode::Incremental,
        )
        .expect("FE2 applies");
    engine
        .run_update(
            &system.template_update(RuleTemplate::S2),
            ExecutionMode::Incremental,
        )
        .expect("S2 applies");

    let mut warm_padded = warm.clone();
    warm_padded.resize(engine.graph().num_weights(), 0.0);
    let comparisons = compare_learning_strategies(engine.graph(), &warm_padded, 12, 5);

    let optimal = comparisons
        .iter()
        .map(|c| c.trace.best_loss())
        .fold(f64::INFINITY, f64::min);

    let mut rows = Vec::new();
    for c in &comparisons {
        rows.push(vec![
            c.strategy.clone(),
            format!("{:.4}", c.trace.losses[0]),
            format!("{:.4}", c.trace.best_loss()),
            c.trace
                .epochs_to_within(optimal, 0.10)
                .map(|e| e.to_string())
                .unwrap_or_else(|| "not reached".into()),
            format!("{:.2}s", c.seconds),
        ]);
    }
    print_table(
        "Loss trajectories per strategy",
        &[
            "strategy",
            "loss after epoch 1",
            "best loss",
            "epochs to within 10% of optimal",
            "time",
        ],
        &rows,
    );
    println!(
        "Paper shape: SGD+Warmstart reaches within 10% of the optimal loss fastest\n\
         (≈2× faster than cold-start SGD, ≈10× faster than batch gradient descent)."
    );
}

//! Figure 17: impact of concept drift (Appendix B.4).
//!
//! Train a spam classifier on the first 10% of a drifting e-mail stream
//! (the materialized model), then compare Incremental (warmstart from that
//! model) against Rerun (cold start) when training on the first 30%, measuring
//! test-set loss on the remaining 70% after every epoch.

use dd_bench::print_table;
use dd_inference::{LearnOptions, Learner};
use dd_workloads::{spam_stream, SpamConfig};

fn main() {
    println!("# Figure 17 — concept drift (synthetic e-mail stream)");
    let stream = spam_stream(SpamConfig::default());
    let p10 = stream.prefix(0.10);
    let p30 = stream.prefix(0.30);
    let test = p30..stream.len();

    // Materialized model: trained on the 10% prefix (pre-drift distribution).
    let (mut g10, _) = stream.build_training_graph(0..p10);
    let warm = Learner::new(&mut g10)
        .learn(&LearnOptions {
            epochs: 20,
            learning_rate: 0.3,
            ..Default::default()
        })
        .final_weights;

    // Both systems now train on the 30% prefix (which crosses the drift point).
    let (g30, weight_of) = stream.build_training_graph(0..p30);
    let mut rows = Vec::new();
    for (label, warmstart) in [
        ("Incremental (warmstart from 10% model)", {
            let mut w = warm.clone();
            w.resize(g30.num_weights(), 0.0);
            Some(w)
        }),
        ("Rerun (cold start)", None),
    ] {
        // Probe the test loss after 1 epoch and after 15 epochs: the warmstarted
        // run should start lower and both should converge to similar losses.
        let loss_after = |epochs: usize| {
            let mut g = g30.clone();
            Learner::new(&mut g).learn(&LearnOptions {
                epochs,
                learning_rate: 0.3,
                warmstart: warmstart.clone(),
                seed: 3,
                ..Default::default()
            });
            stream.test_loss(test.clone(), &weight_of, &g.weight_values())
        };
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", loss_after(1)),
            format!("{:.4}", loss_after(15)),
        ]);
    }
    print_table(
        "Test-set loss (70% suffix) after training on the 30% prefix",
        &["system", "after 1 epoch", "after 15 epochs"],
        &rows,
    );
    println!(
        "Paper shape: both systems converge to the same loss; warmstart starts lower and\n\
         converges faster even though the distribution drifted between the prefixes."
    );
}

//! Figure 5: the tradeoff space of the three materialization strategies.
//!
//! Reproduces the three panels at laptop scale:
//!   (a) materialization + inference time vs graph size,
//!   (b) inference time vs acceptance rate (amount of change),
//!   (c) inference time vs sparsity of correlations.

use dd_bench::{print_table, secs, timed};
use dd_factorgraph::GraphDelta;
use dd_inference::{
    DistributionChange, GibbsOptions, SampleMaterialization, StrawmanMaterialization,
    VariationalMaterialization, VariationalOptions,
};
use dd_workloads::{pairwise_graph, weight_perturbation, SyntheticConfig};

fn variational_opts() -> VariationalOptions {
    VariationalOptions {
        num_samples: 300,
        burn_in: 40,
        lambda: 0.01,
        exact_solver_max_vars: 60,
        ..Default::default()
    }
}

fn main() {
    println!("# Figure 5 — tradeoffs between materialization strategies");

    // ---------------------------------------------------------------- panel (a)
    let mut rows = Vec::new();
    for &n in &[2usize, 10, 17, 100, 1000] {
        let g = pairwise_graph(&SyntheticConfig {
            num_variables: n,
            sparsity: 0.5,
            seed: 5,
            ..Default::default()
        });
        let straw = if n <= 17 {
            let (m, t) = timed(|| StrawmanMaterialization::materialize(&g));
            m.map(|_| secs(t)).unwrap_or_else(|| "—".into())
        } else {
            "infeasible".to_string()
        };
        let (_, t_samp) = timed(|| SampleMaterialization::materialize(&g, 500, 50, 1));
        let (_, t_var) = timed(|| VariationalMaterialization::materialize(&g, &variational_opts()));
        rows.push(vec![n.to_string(), straw, secs(t_samp), secs(t_var)]);
    }
    print_table(
        "Figure 5(a): materialization time vs graph size",
        &["#vars", "strawman", "sampling (500 samples)", "variational"],
        &rows,
    );

    // ---------------------------------------------------------------- panel (b)
    let g = pairwise_graph(&SyntheticConfig {
        num_variables: 200,
        sparsity: 0.5,
        seed: 7,
        ..Default::default()
    });
    let sampling = SampleMaterialization::materialize(&g, 2000, 100, 2);
    let variational = VariationalMaterialization::materialize(&g, &variational_opts());
    let mut rows = Vec::new();
    for &magnitude in &[0.0f64, 0.05, 0.3, 1.0, 3.0] {
        let delta: GraphDelta = weight_perturbation(&g, 0.5, magnitude, 11);
        let mut updated = g.clone();
        let change = DistributionChange::apply_and_describe(&mut updated, &delta);
        let (outcome, t_samp) = timed(|| sampling.infer(&updated, &change, 1000, 3));
        let (_, t_var) = timed(|| variational.infer(&delta, &GibbsOptions::new(150, 30, 3)));
        rows.push(vec![
            format!("{magnitude:.2}"),
            format!("{:.2}", outcome.acceptance_rate),
            secs(t_samp),
            secs(t_var),
            if outcome.acceptance_rate > 0.2 {
                "sampling"
            } else {
                "variational"
            }
            .to_string(),
        ]);
    }
    print_table(
        "Figure 5(b): inference time vs amount of change (acceptance rate)",
        &[
            "perturbation",
            "acceptance rate",
            "sampling",
            "variational",
            "winner (expected)",
        ],
        &rows,
    );

    // ---------------------------------------------------------------- panel (c)
    let mut rows = Vec::new();
    for &sparsity in &[0.1f64, 0.2, 0.3, 0.5, 1.0] {
        let g = pairwise_graph(&SyntheticConfig {
            num_variables: 200,
            sparsity,
            seed: 13,
            ..Default::default()
        });
        let sampling = SampleMaterialization::materialize(&g, 800, 60, 2);
        let variational = VariationalMaterialization::materialize(&g, &variational_opts());
        // a moderate change so the sampling approach actually works
        let delta = weight_perturbation(&g, 0.5, 0.4, 17);
        let mut updated = g.clone();
        let change = DistributionChange::apply_and_describe(&mut updated, &delta);
        let (_, t_samp) = timed(|| sampling.infer(&updated, &change, 600, 3));
        let (_, t_var) = timed(|| variational.infer(&delta, &GibbsOptions::new(150, 30, 3)));
        rows.push(vec![
            format!("{sparsity:.1}"),
            variational.num_pairwise_factors().to_string(),
            secs(t_samp),
            secs(t_var),
        ]);
    }
    print_table(
        "Figure 5(c): inference time vs sparsity of correlations",
        &[
            "non-zero weight fraction",
            "approx-graph factors",
            "sampling",
            "variational",
        ],
        &rows,
    );
}

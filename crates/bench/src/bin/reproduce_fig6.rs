//! Figure 6: quality (F1) and number of retained factors of the News system as
//! the variational regularization parameter λ varies.

use dd_bench::print_table;
use dd_grounding::standard_udfs;
use dd_inference::{GibbsOptions, GibbsSampler, VariationalMaterialization, VariationalOptions};
use dd_relstore::Tuple;
use dd_workloads::{KbcSystem, RuleTemplate, SystemKind};
use deepdive::{evaluate_quality, DeepDive, EngineConfig, ExecutionMode};

fn main() {
    println!("# Figure 6 — variational regularization parameter λ (News)");

    // Build the News system with features + supervision so the graph is non-trivial.
    let system = KbcSystem::generate(SystemKind::News, 0.3, 21);
    let mut engine = DeepDive::builder()
        .program(system.program.clone())
        .database(system.corpus.database.clone())
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()
        .expect("engine builds");
    for t in [
        RuleTemplate::FE1,
        RuleTemplate::FE2,
        RuleTemplate::S1,
        RuleTemplate::S2,
    ] {
        engine
            .run_update(&system.template_update(t), ExecutionMode::Rerun)
            .expect("update applies");
    }
    let graph = engine.graph().clone();
    let truth = system.truth();

    let mut rows = Vec::new();
    for &lambda in &[0.001f64, 0.01, 0.1, 1.0, 10.0] {
        let mat = VariationalMaterialization::materialize(
            &graph,
            &VariationalOptions {
                num_samples: 400,
                burn_in: 50,
                lambda,
                exact_solver_max_vars: 0,
                ..Default::default()
            },
        );
        let marginals =
            GibbsSampler::new(mat.approx_graph(), 5).run(&GibbsOptions::new(200, 40, 5));
        // Extract facts above the threshold through the engine's variable catalog.
        let extracted: Vec<Tuple> = engine
            .grounder()
            .variable_catalog()
            .filter(|((rel, _), _)| rel == "MarriedMentions")
            .filter(|(_, &v)| marginals.get(v) > 0.9)
            .map(|((_, t), _)| t.clone())
            .collect();
        let q = evaluate_quality(&extracted, truth);
        rows.push(vec![
            format!("{lambda}"),
            format!("{}", mat.num_pairwise_factors()),
            format!("{:.3}", mat.retention()),
            format!("{:.3}", q.f1),
        ]);
    }
    print_table(
        "F1 and retained factors vs λ",
        &["λ", "# pairwise factors", "retention", "F1"],
        &rows,
    );
    println!(
        "Paper shape: quality is flat for λ ≲ 0.1 and degrades for large λ, while the\n\
         number of factors (and hence inference time) drops steeply with λ."
    );
}

//! Figure 7: statistics of the five KBC systems — the paper's deployment sizes
//! next to the scaled-down synthetic equivalents this repository generates.

use dd_bench::print_table;
use dd_grounding::standard_udfs;
use dd_workloads::{KbcSystem, SystemKind};
use deepdive::{DeepDive, EngineConfig, ExecutionMode};

fn main() {
    println!("# Figure 7 — statistics of the KBC systems");
    let mut rows = Vec::new();
    for kind in SystemKind::all() {
        let paper = kind.paper_stats();
        let system = KbcSystem::generate(kind, 0.2, 31);
        let mut engine = DeepDive::builder()
            .program(system.program.clone())
            .database(system.corpus.database.clone())
            .udfs(standard_udfs())
            .config(EngineConfig::fast())
            .build()
            .expect("engine builds");
        // Apply every rule template so the graph contains all rules (as Figure 7
        // counts "factor graphs that contain all rules").
        for (_, update) in system.development_updates() {
            engine
                .run_update(&update, ExecutionMode::Incremental)
                .expect("update applies");
        }
        let stats = engine.graph().stats();
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1e}", paper.documents as f64),
            paper.relations.to_string(),
            paper.rules.to_string(),
            format!("{:.1e}", paper.variables),
            format!("{:.1e}", paper.factors),
            system
                .corpus
                .database
                .table("Sentence")
                .map(|t| t.len())
                .unwrap_or(0)
                .to_string(),
            stats.num_variables.to_string(),
            stats.num_factors.to_string(),
        ]);
    }
    print_table(
        "Paper deployments vs scaled-down synthetic systems",
        &[
            "system",
            "paper #docs",
            "paper #rels",
            "paper #rules",
            "paper #vars",
            "paper #factors",
            "ours #docs",
            "ours #vars",
            "ours #factors",
        ],
        &rows,
    );
}

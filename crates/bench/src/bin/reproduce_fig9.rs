//! Figures 8 & 9: the rule templates and the end-to-end efficiency of
//! incremental inference and learning (Rerun vs Incremental, per rule template,
//! per system).

use dd_bench::{print_table, secs, speedup, timed};
use dd_grounding::standard_udfs;
use dd_workloads::{KbcSystem, RuleTemplate, SystemKind};
use deepdive::{DeepDive, EngineConfig, ExecutionMode};

/// Build an engine that has already executed the FE1 + S1 iterations (so that
/// every later rule template operates on a trained system), then materialize.
fn prepared(system: &KbcSystem) -> DeepDive {
    let mut engine = DeepDive::builder()
        .program(system.program.clone())
        .database(system.corpus.database.clone())
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()
        .expect("engine builds");
    engine
        .run_update(
            &system.template_update(RuleTemplate::FE1),
            ExecutionMode::Rerun,
        )
        .expect("FE1 applies");
    engine
        .run_update(
            &system.template_update(RuleTemplate::S1),
            ExecutionMode::Rerun,
        )
        .expect("S1 applies");
    engine.materialize().unwrap();
    engine
}

fn main() {
    println!("# Figure 8 — rule templates");
    let rows: Vec<Vec<String>> = RuleTemplate::all()
        .iter()
        .map(|t| vec![t.name().to_string(), t.description().to_string()])
        .collect();
    print_table("The six rule templates", &["rule", "description"], &rows);

    println!("# Figure 9 — Rerun vs Incremental, inference + learning time");
    let scale = 0.15;
    let mut rows = Vec::new();
    for kind in SystemKind::all() {
        let system = KbcSystem::generate(kind, scale, 41);
        for template in RuleTemplate::all() {
            let update = system.template_update(template);

            let mut rerun_engine = prepared(&system);
            let (rerun_report, _) = timed(|| {
                rerun_engine
                    .run_update(&update, ExecutionMode::Rerun)
                    .expect("rerun applies")
            });
            let mut inc_engine = prepared(&system);
            let (inc_report, _) = timed(|| {
                inc_engine
                    .run_update(&update, ExecutionMode::Incremental)
                    .expect("incremental applies")
            });

            let rerun_t = rerun_report.inference_and_learning_secs();
            let inc_t = inc_report.inference_and_learning_secs();
            rows.push(vec![
                kind.name().to_string(),
                template.name().to_string(),
                secs(rerun_t),
                secs(inc_t),
                speedup(rerun_t, inc_t),
                inc_report
                    .strategy
                    .map(|s| s.label().to_string())
                    .unwrap_or_default(),
                inc_report
                    .acceptance_rate
                    .map(|a| format!("{a:.2}"))
                    .unwrap_or_else(|| "—".into()),
            ]);
        }
    }
    print_table(
        "Per-rule execution time (learning + inference)",
        &[
            "system",
            "rule",
            "Rerun",
            "Incremental",
            "speedup",
            "strategy",
            "acceptance",
        ],
        &rows,
    );
    println!(
        "Paper shape: A1 achieves the largest speedups (distribution unchanged → 100%\n\
         acceptance); feature/supervision/inference rules achieve smaller but still\n\
         order-of-magnitude speedups."
    );
}

//! §3.1 / §4.2: incremental grounding speedup.
//!
//! Measures DRed delta-rule maintenance of the candidate-mapping view against
//! full recomputation as the corpus grows; the paper reports up to 360× for rule
//! FE1 on News.

use dd_bench::{print_table, secs, speedup, timed};
use dd_relstore::view::{Filter, QueryAtom, Term};
use dd_relstore::{
    ConjunctiveQuery, DataType, Database, DeltaRelation, MaterializedView, Schema, Tuple, Value,
};
use std::collections::HashMap;

fn main() {
    println!("# Incremental grounding (DRed) vs full recomputation");
    let mut rows = Vec::new();
    for &docs in &[1_000usize, 5_000, 20_000] {
        let mut db = Database::new();
        db.create_table(
            "PersonCandidate",
            Schema::of(&[("s", DataType::Int), ("m", DataType::Int)]),
        )
        .unwrap();
        for d in 0..docs {
            for k in 0..2i64 {
                db.insert(
                    "PersonCandidate",
                    Tuple::new(vec![Value::Int(d as i64), Value::Int(2 * d as i64 + k)]),
                )
                .unwrap();
            }
        }
        let query = ConjunctiveQuery::new(
            "MarriedCandidate",
            vec!["m1".into(), "m2".into()],
            vec![
                QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m1")]),
                QueryAtom::new("PersonCandidate", vec![Term::var("s"), Term::var("m2")]),
            ],
        )
        .with_filters(vec![Filter::Lt("m1".into(), "m2".into())]);
        let mut view = MaterializedView::materialize(query.clone(), &db).unwrap();

        // One new document arrives.
        let mut delta = DeltaRelation::new("PersonCandidate");
        delta.insert(Tuple::new(vec![
            Value::Int(docs as i64),
            Value::Int(2 * docs as i64),
        ]));
        delta.insert(Tuple::new(vec![
            Value::Int(docs as i64),
            Value::Int(2 * docs as i64 + 1),
        ]));
        let mut deltas = HashMap::new();
        deltas.insert("PersonCandidate".to_string(), delta);

        let (_, t_full) = timed(|| query.evaluate(&db).unwrap());
        let (_, t_inc) = timed(|| view.refresh_incremental(&db, &deltas).unwrap());
        rows.push(vec![
            docs.to_string(),
            secs(t_full),
            secs(t_inc),
            speedup(t_full, t_inc),
        ]);
    }
    print_table(
        "Candidate-rule grounding after one new document",
        &[
            "#documents",
            "full recompute",
            "incremental (DRed)",
            "speedup",
        ],
        &rows,
    );
    println!("Paper shape: the speedup grows with corpus size (up to 360× on News).");
}

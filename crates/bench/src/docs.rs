//! Mechanical doc-rot detection: intra-repo links and `file:line` anchors.
//!
//! The top-level docs cite code as `path/to/file.rs:123` and link to each
//! other with ordinary markdown links.  Both rot silently as the code moves;
//! this module extracts every such reference and checks it against the
//! repository on disk — links must resolve to existing files, and `file:line`
//! anchors must point inside a file that is at least that long.  The
//! `check_docs` binary runs it over every audited doc and the CI docs job
//! gates on the result, so a refactor that breaks an anchor fails the build
//! instead of shipping a stale citation.
//!
//! Line-existence is a necessary, not sufficient, check — it cannot prove
//! the *named symbol* still lives at that line.  It is still the floor worth
//! gating: every stale anchor found in the PR-9 audit was stale because the
//! file had shrunk or the path had vanished, and those are exactly the cases
//! this catches.

use std::path::Path;

/// The docs whose references are audited by `check_docs`.
pub const AUDITED_DOCS: [&str; 5] = [
    "README.md",
    "ARCHITECTURE.md",
    "PERFORMANCE.md",
    "BENCHMARKING.md",
    "ROADMAP.md",
];

/// One reference extracted from a doc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocRef {
    /// A markdown link target: `[text](target)`, already stripped of any
    /// `#fragment`.  External schemes are filtered out before this is built.
    Link { target: String },
    /// A backticked `path:line` anchor.
    Anchor { path: String, line: usize },
}

/// Extract checkable references from markdown `text`.
///
/// Links: every `](target)` occurrence, skipping `http://`, `https://`,
/// `mailto:` and pure-fragment (`#...`) targets.  Anchors: every backtick
/// span of the shape `path.ext:123` (optionally `path.ext:123-456`) where
/// `ext` is a source-ish extension.
pub fn extract_refs(text: &str) -> Vec<DocRef> {
    let mut refs = Vec::new();
    // Markdown link targets.
    let mut i = 0;
    while let Some(pos) = text[i..].find("](") {
        let start = i + pos + 2;
        let Some(len) = text[start..].find(')') else {
            break;
        };
        let target = &text[start..start + len];
        i = start + len;
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
            || target.starts_with('#')
            || target.is_empty()
        {
            continue;
        }
        let target = target.split('#').next().unwrap_or(target);
        if !target.is_empty() {
            refs.push(DocRef::Link {
                target: target.to_string(),
            });
        }
    }
    // Backticked path:line anchors.
    for span in text.split('`').skip(1).step_by(2) {
        if let Some((path, line)) = parse_anchor(span) {
            refs.push(DocRef::Anchor { path, line });
        }
    }
    refs
}

/// Parse one backtick span as a `path.ext:line[-line]` anchor.
fn parse_anchor(span: &str) -> Option<(String, usize)> {
    let (path, rest) = span.split_once(':')?;
    let extension = Path::new(path).extension()?.to_str()?;
    if !matches!(extension, "rs" | "md" | "toml" | "json" | "js" | "yml") {
        return None;
    }
    if !path
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '/' | '.' | '_' | '-'))
    {
        return None;
    }
    // `file.rs:12` or `file.rs:12-34`; anything else is not an anchor.
    let first = rest.split('-').next()?;
    let line: usize = first.parse().ok()?;
    (line > 0).then(|| (path.to_string(), line))
}

/// Check every reference of one doc against the repo at `root`, returning a
/// violation message per broken link or out-of-range anchor.
pub fn check_doc(root: &Path, doc: &str, text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    for reference in extract_refs(text) {
        match reference {
            DocRef::Link { target } => {
                if !root.join(&target).exists() {
                    violations.push(format!("{doc}: broken link to {target}"));
                }
            }
            DocRef::Anchor { path, line } => {
                let full = root.join(&path);
                match std::fs::read_to_string(&full) {
                    Err(_) => {
                        violations.push(format!("{doc}: anchor {path}:{line} — no such file"))
                    }
                    Ok(content) => {
                        let lines = content.lines().count();
                        if line > lines {
                            violations.push(format!(
                                "{doc}: anchor {path}:{line} points past the end ({lines} lines)"
                            ));
                        }
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_links_and_skips_external() {
        let refs = extract_refs(
            "See [the roadmap](ROADMAP.md) and [section](ARCHITECTURE.md#eval) but not \
             [the paper](https://example.invalid/p.pdf) or [here](#local).",
        );
        assert_eq!(
            refs,
            vec![
                DocRef::Link {
                    target: "ROADMAP.md".into()
                },
                DocRef::Link {
                    target: "ARCHITECTURE.md".into()
                },
            ]
        );
    }

    #[test]
    fn extracts_anchors_with_ranges_and_rejects_non_anchors() {
        let refs = extract_refs(
            "Pinning happens in `crates/server/src/server.rs:137` and \
             `crates/wire/src/json.rs:89-120`; `cargo test -q` and \
             `127.0.0.1:8080` and `Vec<u64>` are not anchors.",
        );
        assert_eq!(
            refs,
            vec![
                DocRef::Anchor {
                    path: "crates/server/src/server.rs".into(),
                    line: 137
                },
                DocRef::Anchor {
                    path: "crates/wire/src/json.rs".into(),
                    line: 89
                },
            ]
        );
    }

    #[test]
    fn check_doc_flags_missing_and_out_of_range() {
        let dir = std::env::temp_dir().join(format!("dd-docs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("short.rs"), "one\ntwo\n").unwrap();
        let text = "ok `short.rs:2`, bad `short.rs:99`, gone `missing.rs:1`, \
                    [ok](short.rs), [bad](nope.md)";
        let violations = check_doc(&dir, "DOC.md", text);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(violations.len(), 3, "{violations:?}");
        // Links are checked first, then anchors in document order.
        assert!(violations[0].contains("nope.md"));
        assert!(violations[1].contains("short.rs:99"));
        assert!(violations[2].contains("missing.rs:1"));
    }
}

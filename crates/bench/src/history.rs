//! The append-only per-commit bench history: `dev/bench/data.js`.
//!
//! Follows the github-action-benchmark convention (the same file shape
//! simpledb and friends publish to GitHub Pages): a JS file assigning one
//! object to `window.BENCHMARK_DATA`, holding `lastUpdate`, `repoUrl`, and
//! `entries` — a map from suite name to an append-only array of per-commit
//! snapshots, each carrying the commit id/message, a timestamp, and the flat
//! `benches: [{name, value, unit}]` list.  CI appends one snapshot per run
//! (`bench_history` binary), so regressions show up as a trajectory instead
//! of a point and the file stays loadable by the stock dashboard HTML.
//!
//! The file is JS, not JSON, by exactly one prefix and one suffix; parsing
//! strips `window.BENCHMARK_DATA =` and the trailing `;`, then hands the
//! rest to [`dd_wire::json`].  Writing pretty-prints (2-space indent) so
//! per-commit appends produce reviewable diffs.

use crate::sweeps::BenchEntry;
use dd_wire::json::{self, Json};

/// The suite name our CI appends under.
pub const SUITE: &str = "DeepDive repro benches";

/// Direction metadata carried per snapshot.  The workspace mixes
/// smaller-is-better (latency ms) and bigger-is-better (speedups, ops/s)
/// series in one file, so the real gating lives in `check_sweeps` /
/// `check_serving`; this tag just keeps the file loadable by stock
/// dashboards.
pub const TOOL: &str = "customSmallerIsBetter";

/// One per-commit snapshot to append.
#[derive(Debug, Clone)]
pub struct HistoryPoint {
    /// Commit id (full or short hash; "unknown" when not in a git checkout).
    pub commit_id: String,
    /// Commit subject line.
    pub message: String,
    /// Milliseconds since the Unix epoch.
    pub timestamp_ms: f64,
    /// The measured series, usually the union of every `BENCH_*.json`.
    pub benches: Vec<BenchEntry>,
}

/// Parse a `data.js` document into its JSON payload.  An empty or
/// whitespace-only file is a fresh history.
pub fn parse_history(text: &str) -> Result<Json, String> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Ok(empty_history("unknown"));
    }
    let rest = trimmed
        .strip_prefix("window.BENCHMARK_DATA")
        .ok_or("data.js must start with `window.BENCHMARK_DATA`")?
        .trim_start()
        .strip_prefix('=')
        .ok_or("missing `=` after window.BENCHMARK_DATA")?;
    let payload = rest.trim().trim_end_matches(';');
    json::parse(payload)
}

/// A fresh history document with no snapshots.
pub fn empty_history(repo_url: &str) -> Json {
    Json::Object(vec![
        ("lastUpdate".into(), Json::Number(0.0)),
        ("repoUrl".into(), Json::String(repo_url.into())),
        (
            "entries".into(),
            Json::Object(vec![(SUITE.into(), Json::Array(Vec::new()))]),
        ),
    ])
}

/// Append one snapshot to the history document, updating `lastUpdate`.
/// The document must have the `window.BENCHMARK_DATA` object shape.
pub fn append_point(history: &Json, point: &HistoryPoint) -> Result<Json, String> {
    let fields = history
        .as_object()
        .ok_or("history root must be an object")?;
    let benches = Json::Array(
        point
            .benches
            .iter()
            .map(|e| {
                Json::Object(vec![
                    ("name".into(), Json::String(e.name.clone())),
                    ("unit".into(), Json::String(e.unit.clone())),
                    ("value".into(), Json::Number(e.value)),
                ])
            })
            .collect(),
    );
    let snapshot = Json::Object(vec![
        (
            "commit".into(),
            Json::Object(vec![
                ("id".into(), Json::String(point.commit_id.clone())),
                ("message".into(), Json::String(point.message.clone())),
                (
                    "timestamp".into(),
                    Json::String(format!("{}", point.timestamp_ms)),
                ),
            ]),
        ),
        ("date".into(), Json::Number(point.timestamp_ms)),
        ("tool".into(), Json::String(TOOL.into())),
        ("benches".into(), benches),
    ]);

    let mut out = Vec::with_capacity(fields.len());
    let mut saw_entries = false;
    for (key, value) in fields {
        match key.as_str() {
            "lastUpdate" => out.push(("lastUpdate".into(), Json::Number(point.timestamp_ms))),
            "entries" => {
                saw_entries = true;
                let suites = value.as_object().ok_or("entries must be an object")?;
                let mut new_suites = Vec::with_capacity(suites.len().max(1));
                let mut saw_suite = false;
                for (suite, runs) in suites {
                    if suite == SUITE {
                        saw_suite = true;
                        let mut runs = runs
                            .as_array()
                            .ok_or("suite runs must be an array")?
                            .to_vec();
                        runs.push(snapshot.clone());
                        new_suites.push((suite.clone(), Json::Array(runs)));
                    } else {
                        new_suites.push((suite.clone(), runs.clone()));
                    }
                }
                if !saw_suite {
                    new_suites.push((SUITE.into(), Json::Array(vec![snapshot.clone()])));
                }
                out.push(("entries".into(), Json::Object(new_suites)));
            }
            _ => out.push((key.clone(), value.clone())),
        }
    }
    if !saw_entries {
        out.push((
            "entries".into(),
            Json::Object(vec![(SUITE.into(), Json::Array(vec![snapshot]))]),
        ));
    }
    Ok(Json::Object(out))
}

/// The values one named series took across every banked snapshot under
/// [`SUITE`], in append order.  Snapshots that did not publish the series
/// are skipped, so the result is the series' trajectory, not a padded grid.
pub fn series_values(history: &Json, name: &str) -> Vec<f64> {
    let Some(runs) = history
        .get("entries")
        .and_then(|e| e.get(SUITE))
        .and_then(Json::as_array)
    else {
        return Vec::new();
    };
    runs.iter()
        .filter_map(|run| {
            run.get("benches")?.as_array()?.iter().find_map(|bench| {
                if bench.get("name").and_then(Json::as_str) == Some(name) {
                    bench.get("value").and_then(Json::as_f64)
                } else {
                    None
                }
            })
        })
        .collect()
}

/// Number of snapshots currently banked under [`SUITE`].
pub fn run_count(history: &Json) -> usize {
    history
        .get("entries")
        .and_then(|e| e.get(SUITE))
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len)
}

/// Render the history document back to `data.js` text (pretty-printed so
/// appends diff line-by-line).
pub fn encode_history(history: &Json) -> String {
    let mut out = String::from("window.BENCHMARK_DATA = ");
    write_pretty(history, 0, &mut out);
    out.push_str(";\n");
    out
}

fn write_pretty(value: &Json, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth + 1);
    let close = "  ".repeat(depth);
    match value {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push(']');
        }
        Json::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&Json::String(key.clone()).encode());
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push('}');
        }
        other => out.push_str(&other.encode()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &str, value: f64) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            unit: "ms".into(),
            value,
        }
    }

    fn point(id: &str, ts: f64) -> HistoryPoint {
        HistoryPoint {
            commit_id: id.into(),
            message: format!("commit {id}"),
            timestamp_ms: ts,
            benches: vec![bench("serving_server/point_read_p50_ms", 0.4)],
        }
    }

    #[test]
    fn empty_file_is_a_fresh_history() {
        let history = parse_history("").unwrap();
        assert_eq!(run_count(&history), 0);
        assert_eq!(
            history.get("repoUrl").and_then(Json::as_str),
            Some("unknown")
        );
    }

    #[test]
    fn append_then_reparse_round_trips() {
        let history = empty_history("https://example.invalid/repo");
        let one = append_point(&history, &point("abc123", 1000.0)).unwrap();
        let two = append_point(&one, &point("def456", 2000.0)).unwrap();
        assert_eq!(run_count(&two), 2);
        assert_eq!(two.get("lastUpdate").and_then(Json::as_f64), Some(2000.0));

        let text = encode_history(&two);
        assert!(text.starts_with("window.BENCHMARK_DATA = {"));
        assert!(text.trim_end().ends_with(';'));
        let reparsed = parse_history(&text).unwrap();
        assert_eq!(reparsed, two);
        let runs = reparsed.get("entries").unwrap().get(SUITE).unwrap();
        let last = runs.as_array().unwrap().last().unwrap();
        assert_eq!(
            last.get("commit").unwrap().get("id").and_then(Json::as_str),
            Some("def456")
        );
        assert_eq!(last.get("tool").and_then(Json::as_str), Some(TOOL));
    }

    #[test]
    fn foreign_suites_and_fields_are_preserved() {
        let text = r#"window.BENCHMARK_DATA = {
  "lastUpdate": 5,
  "repoUrl": "x",
  "custom": true,
  "entries": {
    "Other Suite": [{"date": 1}]
  }
};"#;
        let history = parse_history(text).unwrap();
        let appended = append_point(&history, &point("abc", 9.0)).unwrap();
        assert_eq!(run_count(&appended), 1);
        assert_eq!(appended.get("custom").and_then(Json::as_bool), Some(true));
        let other = appended.get("entries").unwrap().get("Other Suite").unwrap();
        assert_eq!(other.as_array().unwrap().len(), 1);
    }

    #[test]
    fn series_values_walks_snapshots_in_order_and_skips_absences() {
        let mut history = empty_history("x");
        for (i, value) in [3.0, 7.0, 5.0].iter().enumerate() {
            let mut p = point(&format!("c{i}"), 1000.0 * (i + 1) as f64);
            p.benches = vec![bench("serving_server/topk_p99_ms", *value)];
            // Every other snapshot also carries an unrelated series.
            if i % 2 == 0 {
                p.benches.push(bench("other/series", 99.0));
            }
            history = append_point(&history, &p).unwrap();
        }
        assert_eq!(
            series_values(&history, "serving_server/topk_p99_ms"),
            vec![3.0, 7.0, 5.0]
        );
        assert_eq!(series_values(&history, "other/series"), vec![99.0, 99.0]);
        assert_eq!(series_values(&history, "missing/series"), Vec::<f64>::new());
        assert_eq!(
            series_values(&empty_history("x"), "serving_server/topk_p99_ms"),
            Vec::<f64>::new()
        );
    }

    #[test]
    fn malformed_prefix_is_rejected() {
        assert!(parse_history("var x = {};").is_err());
        assert!(parse_history("window.BENCHMARK_DATA {").is_err());
        assert!(parse_history("window.BENCHMARK_DATA = {truncated").is_err());
    }
}

//! Latency recording for the serving harness: an exact sample recorder and a
//! bounded-memory streaming histogram, interchangeable behind [`Recorder`].
//!
//! The exact recorder keeps every sample (a `u64`, typically nanoseconds) and
//! answers percentiles by nearest-rank over the sorted samples — the ground
//! truth, at O(n) memory.  The streaming histogram keeps geometric buckets
//! (ratio [`GAMMA`]) instead, answering any percentile from O(log range)
//! counters with a bounded relative error of `sqrt(GAMMA) - 1` (≈ 2.5%):
//! a value lands in bucket `floor(log_γ v)` and is reported back as the
//! geometric midpoint of that bucket's bounds.  Both merge across threads,
//! which is how per-client recorders combine into one per-op-class series.

/// Bucket growth ratio of [`StreamingHistogram`]: relative error ≤ √γ − 1.
pub const GAMMA: f64 = 1.05;

/// Exact latency recorder: every sample retained, percentiles by
/// nearest-rank over the sorted data.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Record one sample (nanoseconds, epochs — any non-negative quantity).
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Fold another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`); `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        Some(sorted[nearest_rank_index(p, sorted.len())] as f64)
    }

    /// Largest recorded sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }
}

/// The nearest-rank index for percentile `p` over `n` sorted samples:
/// `ceil(p·n)` clamped into `[1, n]`, minus one.
fn nearest_rank_index(p: f64, n: usize) -> usize {
    let p = p.clamp(0.0, 1.0);
    let rank = (p * n as f64).ceil() as usize;
    rank.clamp(1, n) - 1
}

/// Bounded-memory percentile sketch over geometric buckets (DDSketch-style).
///
/// Values `v ≥ 1` land in bucket `floor(ln v / ln γ)`; zero has its own
/// counter.  Memory is one `u64` per *occupied* bucket — for nanosecond
/// latencies from 1µs to 100s that is at most ~380 buckets regardless of
/// how many samples stream through.
#[derive(Debug, Default, Clone)]
pub struct StreamingHistogram {
    /// Occupied buckets, keyed by bucket index, kept sorted by key.
    buckets: Vec<(i64, u64)>,
    zeros: u64,
    count: u64,
    max: u64,
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        StreamingHistogram::default()
    }

    fn bucket_of(value: u64) -> i64 {
        ((value as f64).ln() / GAMMA.ln()).floor() as i64
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.max = self.max.max(value);
        if value == 0 {
            self.zeros += 1;
            return;
        }
        let key = Self::bucket_of(value);
        match self.buckets.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (key, 1)),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        self.count += other.count;
        self.zeros += other.zeros;
        self.max = self.max.max(other.max);
        for &(key, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(i) => self.buckets[i].1 += n,
                Err(i) => self.buckets.insert(i, (key, n)),
            }
        }
    }

    /// Nearest-rank percentile with bounded relative error; `None` when
    /// empty.  The returned value is the geometric midpoint `γ^(b + 0.5)` of
    /// the bucket holding the rank.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (nearest_rank_index(p, self.count as usize) + 1) as u64;
        if rank <= self.zeros {
            return Some(0.0);
        }
        let mut seen = self.zeros;
        for &(key, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(GAMMA.powf(key as f64 + 0.5));
            }
        }
        Some(self.max as f64)
    }

    /// Largest recorded sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Either estimator behind one API, so the loadgen can switch between exact
/// percentiles (default; memory grows with the run) and the streaming sketch
/// (bounded memory for long soaks) with a flag.
#[derive(Debug, Clone)]
pub enum Recorder {
    /// Exact nearest-rank percentiles over retained samples.
    Exact(LatencyRecorder),
    /// Bounded-memory sketch with ≤ √γ − 1 relative error.
    Streaming(StreamingHistogram),
}

impl Recorder {
    /// A fresh recorder of the requested kind.
    pub fn new(streaming: bool) -> Self {
        if streaming {
            Recorder::Streaming(StreamingHistogram::new())
        } else {
            Recorder::Exact(LatencyRecorder::new())
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        match self {
            Recorder::Exact(r) => r.record(value),
            Recorder::Streaming(h) => h.record(value),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        match self {
            Recorder::Exact(r) => r.count(),
            Recorder::Streaming(h) => h.count(),
        }
    }

    /// Fold `other` into `self`.  Panics if the two kinds differ — the
    /// harness always merges recorders it created with one flag.
    pub fn merge(&mut self, other: &Recorder) {
        match (self, other) {
            (Recorder::Exact(a), Recorder::Exact(b)) => a.merge(b),
            (Recorder::Streaming(a), Recorder::Streaming(b)) => a.merge(b),
            _ => panic!("cannot merge exact and streaming recorders"),
        }
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`); `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        match self {
            Recorder::Exact(r) => r.percentile(p),
            Recorder::Streaming(h) => h.percentile(p),
        }
    }

    /// Largest recorded sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        match self {
            Recorder::Exact(r) => r.max(),
            Recorder::Streaming(h) => h.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_percentiles_are_nearest_rank() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.percentile(0.5), None);
        for v in [10u64, 20, 30, 40, 50] {
            r.record(v);
        }
        assert_eq!(r.count(), 5);
        assert_eq!(r.percentile(0.0), Some(10.0));
        assert_eq!(r.percentile(0.5), Some(30.0));
        assert_eq!(r.percentile(0.9), Some(50.0));
        assert_eq!(r.percentile(1.0), Some(50.0));
        assert_eq!(r.max(), Some(50));
    }

    #[test]
    fn exact_merge_is_union() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(1);
        b.record(100);
        b.record(200);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.percentile(0.0), Some(1.0));
        assert_eq!(a.max(), Some(200));
    }

    #[test]
    fn streaming_tracks_exact_within_relative_error() {
        // Deterministic log-uniform-ish spread: 1ns .. ~1s.
        let mut exact = LatencyRecorder::new();
        let mut sketch = StreamingHistogram::new();
        let mut x = 0x243f6a8885a308d3u64; // splitmix-style walk, fixed seed
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let exponent = (x >> 59) as u32 % 30; // 2^0 .. 2^29
            let value = (1u64 << exponent) + (x % (1u64 << exponent).max(1));
            exact.record(value);
            sketch.record(value);
        }
        for p in [0.5, 0.9, 0.99, 0.999] {
            let e = exact.percentile(p).unwrap();
            let s = sketch.percentile(p).unwrap();
            let rel = (s - e).abs() / e;
            assert!(rel < 0.05, "p{p}: exact {e} vs streaming {s} (rel {rel})");
        }
    }

    #[test]
    fn streaming_handles_zero_and_merge() {
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        a.record(0);
        a.record(0);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.percentile(0.5), Some(0.0));
        let p99 = a.percentile(0.99).unwrap();
        assert!((p99 - 1000.0).abs() / 1000.0 < 0.05, "p99 {p99}");
        assert_eq!(a.max(), Some(1000));
    }

    #[test]
    fn recorder_enum_dispatches_both_kinds() {
        for streaming in [false, true] {
            let mut r = Recorder::new(streaming);
            for v in 1..=100u64 {
                r.record(v * 1000);
            }
            assert_eq!(r.count(), 100);
            let p50 = r.percentile(0.5).unwrap();
            assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.05, "p50 {p50}");
            let mut other = Recorder::new(streaming);
            other.record(1_000_000);
            r.merge(&other);
            assert_eq!(r.count(), 101);
        }
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn recorder_enum_refuses_mixed_merge() {
        let mut a = Recorder::new(false);
        let b = Recorder::new(true);
        a.merge(&b);
    }
}

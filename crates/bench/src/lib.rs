//! Shared helpers for the reproduction binaries and Criterion benchmarks.
//!
//! Each `reproduce_*` binary regenerates one table or figure of the paper's
//! evaluation (`ARCHITECTURE.md` §4 has the full index); the Criterion benches
//! under `benches/` measure the same code paths with statistical rigor at a
//! smaller scale, and `bench_sweeps` tracks the sweep-throughput trajectory
//! (including the pooled-vs-spawn dispatch comparison) in `BENCH_sweeps.json`.
//! This library holds the pieces they share: timing, table printing, and the
//! standard scaled-down experiment configurations.

use std::time::Instant;

pub mod docs;
pub mod history;
pub mod latency;
pub mod loadgen;
pub mod serving;
pub mod sweeps;

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Print a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Print a full markdown table with a header.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!(
        "{}",
        row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        row(&header.iter().map(|_| "---".to_string()).collect::<Vec<_>>())
    );
    for r in rows {
        println!("{}", row(r));
    }
    println!();
}

/// Format seconds with a sensible precision for experiment tables.
pub fn secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Format a speedup factor.
pub fn speedup(baseline: f64, improved: f64) -> String {
    if improved <= 0.0 {
        "∞".to_string()
    } else {
        format!("{:.1}×", baseline / improved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_and_formatting() {
        let (v, t) = timed(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(t >= 0.0);
        assert!(secs(0.0000005).ends_with("µs"));
        assert!(secs(0.5).ends_with("ms"));
        assert!(secs(2.0).ends_with('s'));
        assert_eq!(speedup(10.0, 2.0), "5.0×");
        assert_eq!(speedup(1.0, 0.0), "∞");
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}

//! The serving-path load generator behind the `dd-loadgen` binary.
//!
//! Drives two real deployments over loopback sockets — one unsharded
//! [`dd_server::Server`] and one sharded [`dd_router::Cluster`] behind its
//! scatter-gather front door — with mixed read traffic while a writer applies
//! `run_update` / retraction rounds next door, and reduces every observation
//! into the flat `BENCH_serving.json` series that [`crate::serving`] gates.
//!
//! # Dataflow
//!
//! ```text
//! closed-loop clients ──┐                       ┌─▶ per-thread Recorder
//! (back-to-back ops,    ├─▶ loopback socket ──▶ server queue ─▶ snapshot-
//!  retry on overload)   │                       pinned worker ─▶ response
//! open-loop clients ────┤                                          │
//! (fixed arrival rate,  │   writer thread: run_update / retraction │
//!  latency measured     │   rounds, publishing the epoch tracker   │
//!  from *scheduled*     │                                          ▼
//!  send time)           └──────────── merge logs ─▶ BENCH_serving.json
//! ```
//!
//! Closed-loop clients measure service latency under self-limiting load;
//! open-loop clients measure what an *arrival process* experiences — latency
//! is taken from the scheduled send time, so when the harness falls behind
//! the backlog counts against the percentiles (the standard correction for
//! coordinated omission).  Epoch staleness is the gap between the epoch a
//! batch was served at and the latest epoch the writer had already published
//! when the response arrived — zero whenever serving keeps up with writes.
//!
//! The workload is the sharded-serving example's corpus: labelled claims
//! partitionable on their document id, so marginals are exact (1.0/0.0) and
//! every shard of the routed deployment owns a clean slice.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::latency::Recorder;
use crate::sweeps::BenchEntry;
use dd_grounding::{standard_udfs, KbcUpdate};
use dd_relstore::{DataType, Database, Schema, Tuple, Value};
use dd_router::{Cluster, ClusterConfig, RouterConfig};
use dd_server::{Client, ClientConfig, FactQuerySpec, Op, Server, ServerConfig, ServerStats};
use deepdive::{DeepDive, EngineConfig, ExecutionMode};

/// The read op classes a closed-loop client cycles through.
const CLASSES: [&str; 3] = ["point_read", "topk", "scan"];

/// Give up on one op after this many overload retries (counted as an
/// unexpected error — nominal profiles never get close).
const MAX_RETRIES_PER_OP: u32 = 200;

/// Knobs of one loadgen run (one value drives both targets).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Measured read window per target.
    pub duration: Duration,
    /// Closed-loop client threads (back-to-back requests).
    pub closed_clients: usize,
    /// Open-loop client threads (fixed arrival rate each).
    pub open_clients: usize,
    /// Arrival rate per open-loop client.
    pub open_rate_hz: f64,
    /// Shards in the routed deployment.
    pub shards: usize,
    /// Documents seeded before serving starts.
    pub seed_docs: i64,
    /// Claims per document.
    pub ids_per_doc: i64,
    /// Writer pause between update rounds.
    pub write_pause: Duration,
    /// Per-client read timeout: the zero-hang bound — a wedged server turns
    /// into a counted unexpected error instead of a stuck harness.
    pub read_timeout: Duration,
    /// Use the bounded-memory streaming estimator instead of exact samples.
    pub streaming: bool,
}

impl LoadgenConfig {
    /// The nominal profile: what `BENCH_serving.json` banks per commit.
    pub fn nominal() -> Self {
        LoadgenConfig {
            duration: Duration::from_secs(8),
            closed_clients: 4,
            open_clients: 2,
            open_rate_hz: 100.0,
            shards: 4,
            seed_docs: 48,
            ids_per_doc: 6,
            write_pause: Duration::from_millis(25),
            read_timeout: Duration::from_secs(30),
            streaming: false,
        }
    }

    /// The CI smoke profile: same series, seconds not minutes.
    pub fn smoke() -> Self {
        LoadgenConfig {
            duration: Duration::from_millis(1000),
            closed_clients: 2,
            open_clients: 1,
            open_rate_hz: 50.0,
            shards: 2,
            seed_docs: 12,
            ids_per_doc: 4,
            write_pause: Duration::from_millis(20),
            read_timeout: Duration::from_secs(30),
            streaming: false,
        }
    }
}

/// Which deployment a run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// One unsharded `dd-server` over one engine (`serving_server/`).
    Server,
    /// A sharded cluster behind the routed front door (`serving_router/`).
    Router,
}

impl Target {
    /// The series prefix this target emits under.
    pub fn prefix(self) -> &'static str {
        match self {
            Target::Server => "serving_server/",
            Target::Router => "serving_router/",
        }
    }
}

/// The sharded-serving example's program: labelled claims with exact
/// supervision, partitionable on the document id column.
const PROGRAM: &str = "\
    relation Claim(doc: int, id: int) base.\n\
    relation Pos(doc: int, id: int) base.\n\
    relation Neg(doc: int, id: int) base.\n\
    relation Fact(doc: int, id: int) variable.\n\
    rule F feature: Fact(doc, id) :- Claim(doc, id) weight = 1.5.\n\
    rule SP supervision+: Fact(doc, id) :- Claim(doc, id), Pos(doc, id).\n\
    rule SN supervision-: Fact(doc, id) :- Claim(doc, id), Neg(doc, id).\n";

fn add_claim(update: &mut KbcUpdate, doc: i64, id: i64) {
    update.insert("Claim", Tuple::from_iter([Value::Int(doc), Value::Int(id)]));
    let label = if id % 2 == 0 { "Pos" } else { "Neg" };
    update.insert(label, Tuple::from_iter([Value::Int(doc), Value::Int(id)]));
}

fn remove_claim(update: &mut KbcUpdate, doc: i64, id: i64) {
    update.delete("Claim", Tuple::from_iter([Value::Int(doc), Value::Int(id)]));
    let label = if id % 2 == 0 { "Pos" } else { "Neg" };
    update.delete(label, Tuple::from_iter([Value::Int(doc), Value::Int(id)]));
}

fn corpus(config: &LoadgenConfig) -> Database {
    corpus_of(config.seed_docs, config.ids_per_doc)
}

fn corpus_of(seed_docs: i64, ids_per_doc: i64) -> Database {
    let mut db = Database::new();
    let schema = || Schema::of(&[("doc", DataType::Int), ("id", DataType::Int)]);
    for table in ["Claim", "Pos", "Neg"] {
        db.create_table(table, schema()).expect("fresh table");
    }
    let mut seed = KbcUpdate::new();
    for doc in 0..seed_docs {
        for id in 0..ids_per_doc {
            add_claim(&mut seed, doc, id);
        }
    }
    for (relation, delta) in &seed.base_deltas {
        for (tuple, _) in delta.iter() {
            db.insert(relation, tuple.clone()).expect("seed row");
        }
    }
    db
}

/// What one client thread accumulated.
struct ThreadLog {
    /// Per read class: (latency recorder, successful op count).
    classes: Vec<(Recorder, u64)>,
    staleness: Recorder,
    overloads: u64,
    retries: u64,
    unexpected: u64,
}

impl ThreadLog {
    fn new(config: &LoadgenConfig, classes: usize) -> Self {
        ThreadLog {
            classes: (0..classes)
                .map(|_| (Recorder::new(config.streaming), 0))
                .collect(),
            staleness: Recorder::new(config.streaming),
            overloads: 0,
            retries: 0,
            unexpected: 0,
        }
    }
}

/// The published-epoch tracker the writer advances and readers compare
/// against: one slot per shard (one slot total for the unsharded target).
struct EpochTracker {
    published: Vec<AtomicU64>,
}

impl EpochTracker {
    fn new(slots: usize) -> Self {
        EpochTracker {
            published: (0..slots).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn publish(&self, slot: usize, epoch: u64) {
        self.published[slot].fetch_max(epoch, Ordering::Release);
    }

    /// The max observed lag of `batch` behind the published tracker, in
    /// epochs.  Readers can observe an epoch *newer* than the tracker (the
    /// server publishes before the writer's store lands); that clamps to 0.
    fn staleness(&self, epoch: u64, epochs: Option<&[Option<u64>]>) -> u64 {
        match epochs {
            None => self.published[0]
                .load(Ordering::Acquire)
                .saturating_sub(epoch),
            Some(vector) => vector
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    e.map(|e| {
                        self.published
                            .get(i)
                            .map_or(0, |p| p.load(Ordering::Acquire).saturating_sub(e))
                    })
                })
                .max()
                .unwrap_or(0),
        }
    }
}

fn op_for(class: usize, seq: u64, config: &LoadgenConfig) -> Op {
    match CLASSES[class] {
        "point_read" => {
            let doc = (seq % config.seed_docs as u64) as i64;
            let id = ((seq / 7) % config.ids_per_doc as u64) as i64;
            Op::probability_of("Fact", Tuple::from_iter([Value::Int(doc), Value::Int(id)]))
        }
        "topk" => Op::Query {
            relation: "Fact".to_string(),
            spec: FactQuerySpec {
                min_probability: 0.5,
                top_k: Some(10),
                offset: 0,
                limit: Some(10),
            },
        },
        _ => Op::AllFacts {
            min_probability: 0.0,
            offset: (seq % 4) as usize * 10,
            limit: 50,
        },
    }
}

/// One closed-loop client: back-to-back single-op batches, cycling read
/// classes, retrying overload refusals with a small linear backoff.
fn closed_loop(
    addr: std::net::SocketAddr,
    config: &LoadgenConfig,
    tracker: &EpochTracker,
    stop: &AtomicBool,
    thread_index: usize,
) -> ThreadLog {
    let mut log = ThreadLog::new(config, CLASSES.len());
    let client_config = ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        read_timeout: Some(config.read_timeout),
    };
    let Ok(mut client) = Client::connect_with(addr, client_config) else {
        log.unexpected += 1;
        return log;
    };
    let mut seq = thread_index as u64;
    while !stop.load(Ordering::Relaxed) {
        let class = (seq % CLASSES.len() as u64) as usize;
        let op = op_for(class, seq, config);
        seq += 1;
        let started = Instant::now();
        let mut attempts = 0u32;
        loop {
            match client.batch(vec![op.clone()]) {
                Ok(batch) => {
                    let entry = &mut log.classes[class];
                    entry.0.record(started.elapsed().as_nanos() as u64);
                    entry.1 += 1;
                    log.staleness
                        .record(tracker.staleness(batch.epoch, batch.epochs.as_deref()));
                    break;
                }
                Err(err) if err.is_overloaded() => {
                    log.overloads += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    attempts += 1;
                    if attempts > MAX_RETRIES_PER_OP {
                        log.unexpected += 1;
                        break;
                    }
                    log.retries += 1;
                    std::thread::sleep(Duration::from_millis(u64::from(attempts.min(10))));
                }
                Err(err) => {
                    // Shutdown refusals during teardown are expected; any
                    // other failure (timeout, protocol surprise) is the
                    // zero-hang gate's business.
                    if !err.is_shutting_down() && !stop.load(Ordering::Relaxed) {
                        log.unexpected += 1;
                    }
                    if client.reconnect().is_err() {
                        return log;
                    }
                    break;
                }
            }
        }
    }
    log
}

/// One open-loop client: ops dispatched on a fixed schedule, latency
/// measured from the *scheduled* send time (coordinated-omission corrected).
/// Overload refusals are counted and the arrival process moves on — an
/// open-loop source does not slow down for a saturated server.
fn open_loop(
    addr: std::net::SocketAddr,
    config: &LoadgenConfig,
    tracker: &EpochTracker,
    stop: &AtomicBool,
    thread_index: usize,
) -> ThreadLog {
    // One synthetic class slot: everything lands in `open_mixed`.
    let mut log = ThreadLog::new(config, 1);
    let client_config = ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        read_timeout: Some(config.read_timeout),
    };
    let Ok(mut client) = Client::connect_with(addr, client_config) else {
        log.unexpected += 1;
        return log;
    };
    let interval = Duration::from_secs_f64(1.0 / config.open_rate_hz.max(1.0));
    let start = Instant::now();
    let mut n = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let scheduled_offset = interval * n as u32;
        let scheduled = start + scheduled_offset;
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let class = ((n + thread_index as u64) % CLASSES.len() as u64) as usize;
        let op = op_for(class, n, config);
        n += 1;
        match client.batch(vec![op]) {
            Ok(batch) => {
                let entry = &mut log.classes[0];
                entry.0.record(scheduled.elapsed().as_nanos() as u64);
                entry.1 += 1;
                log.staleness
                    .record(tracker.staleness(batch.epoch, batch.epochs.as_deref()));
            }
            Err(err) if err.is_overloaded() => log.overloads += 1,
            Err(err) => {
                if !err.is_shutting_down() && !stop.load(Ordering::Relaxed) {
                    log.unexpected += 1;
                }
                if client.reconnect().is_err() {
                    return log;
                }
            }
        }
    }
    log
}

/// What the writer applies each round and how long rounds took.
struct WriterLog {
    rounds: Recorder,
    unexpected: u64,
}

/// Reduce every thread's log plus server-side counters into the flat series.
#[allow(clippy::too_many_arguments)]
fn reduce(
    target: Target,
    read_logs: Vec<ThreadLog>,
    open_logs: Vec<ThreadLog>,
    writer: WriterLog,
    elapsed: Duration,
    server_stats: &[ServerStats],
    front_stats: Option<ServerStats>,
    config: &LoadgenConfig,
) -> Vec<BenchEntry> {
    let prefix = target.prefix();
    let ms = |nanos: f64| nanos / 1e6;
    let mut entries = Vec::new();
    let entry = |entries: &mut Vec<BenchEntry>, name: String, unit: &str, value: f64| {
        entries.push(BenchEntry {
            name,
            unit: unit.to_string(),
            value,
        });
    };

    // Closed-loop classes, merged across threads.
    let mut merged: Vec<(Recorder, u64)> = (0..CLASSES.len())
        .map(|_| (Recorder::new(config.streaming), 0))
        .collect();
    for log in &read_logs {
        for (slot, (recorder, ops)) in log.classes.iter().enumerate() {
            merged[slot].0.merge(recorder);
            merged[slot].1 += ops;
        }
    }
    // The open-loop class rides along as a fourth slot.
    let mut open = (Recorder::new(config.streaming), 0u64);
    for log in &open_logs {
        open.0.merge(&log.classes[0].0);
        open.1 += log.classes[0].1;
    }
    let classes = merged
        .iter()
        .enumerate()
        .map(|(i, slot)| (CLASSES[i], slot))
        .chain(std::iter::once(("open_mixed", &open)));
    let mut total_ops = 0u64;
    for (name, (recorder, ops)) in classes {
        for (suffix, p) in [
            ("p50_ms", 0.50),
            ("p90_ms", 0.90),
            ("p99_ms", 0.99),
            ("p999_ms", 0.999),
        ] {
            entry(
                &mut entries,
                format!("{prefix}{name}_{suffix}"),
                "ms",
                recorder.percentile(p).map_or(0.0, ms),
            );
        }
        entry(
            &mut entries,
            format!("{prefix}{name}_ops"),
            "ops",
            *ops as f64,
        );
        total_ops += ops;
    }

    // Writer rounds.
    for (suffix, p) in [("update_round_p50_ms", 0.50), ("update_round_p99_ms", 0.99)] {
        entry(
            &mut entries,
            format!("{prefix}{suffix}"),
            "ms",
            writer.rounds.percentile(p).map_or(0.0, ms),
        );
    }
    entry(
        &mut entries,
        format!("{prefix}update_rounds"),
        "rounds",
        writer.rounds.count() as f64,
    );

    // Error economy + staleness, merged across every client thread.
    let all_logs = read_logs.iter().chain(&open_logs);
    let mut staleness = Recorder::new(config.streaming);
    let (mut overloads, mut retries, mut unexpected) = (0u64, 0u64, writer.unexpected);
    for log in all_logs {
        staleness.merge(&log.staleness);
        overloads += log.overloads;
        retries += log.retries;
        unexpected += log.unexpected;
    }
    let attempts = total_ops + overloads;
    entry(
        &mut entries,
        format!("{prefix}throughput_ops_per_sec"),
        "ops/s",
        total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    entry(
        &mut entries,
        format!("{prefix}overload_rate"),
        "fraction",
        if attempts == 0 {
            0.0
        } else {
            overloads as f64 / attempts as f64
        },
    );
    entry(
        &mut entries,
        format!("{prefix}retries_per_op"),
        "retries/op",
        if total_ops == 0 {
            0.0
        } else {
            retries as f64 / total_ops as f64
        },
    );
    entry(
        &mut entries,
        format!("{prefix}epoch_staleness_p50"),
        "epochs",
        staleness.percentile(0.5).unwrap_or(0.0),
    );
    entry(
        &mut entries,
        format!("{prefix}epoch_staleness_max"),
        "epochs",
        staleness.max().unwrap_or(0) as f64,
    );
    entry(
        &mut entries,
        format!("{prefix}unexpected_errors"),
        "errors",
        unexpected as f64,
    );

    // Server-side counters: the PR's timing hooks, surfaced per target.
    let sum = |f: fn(&ServerStats) -> u64| server_stats.iter().map(f).sum::<u64>();
    let served = sum(|s| s.batches_served);
    entry(
        &mut entries,
        format!("{prefix}server_mean_queue_wait_us"),
        "us",
        if served == 0 {
            0.0
        } else {
            sum(|s| s.queue_wait_nanos_total) as f64 / served as f64 / 1e3
        },
    );
    entry(
        &mut entries,
        format!("{prefix}server_mean_service_us"),
        "us",
        if served == 0 {
            0.0
        } else {
            sum(|s| s.service_nanos_total) as f64 / served as f64 / 1e3
        },
    );
    entry(
        &mut entries,
        format!("{prefix}shard_overload_rejections"),
        "rejections",
        sum(|s| s.overload_rejections) as f64,
    );
    if let Some(front) = front_stats {
        entry(
            &mut entries,
            format!("{prefix}front_batches_served"),
            "batches",
            front.batches_served as f64,
        );
        entry(
            &mut entries,
            format!("{prefix}front_overload_rejections"),
            "rejections",
            front.overload_rejections as f64,
        );
    }
    entries
}

/// Run one target end to end and reduce it to its series.
pub fn run_target(target: Target, config: &LoadgenConfig) -> Result<Vec<BenchEntry>, String> {
    match target {
        Target::Server => run_server_target(config),
        Target::Router => run_router_target(config),
    }
}

/// Run both targets — the complete `BENCH_serving.json` document.
pub fn run(config: &LoadgenConfig) -> Result<Vec<BenchEntry>, String> {
    let mut entries = run_target(Target::Server, config)?;
    entries.extend(run_target(Target::Router, config)?);
    Ok(entries)
}

fn run_server_target(config: &LoadgenConfig) -> Result<Vec<BenchEntry>, String> {
    let mut engine = DeepDive::builder()
        .program_text(PROGRAM)
        .database(corpus(config))
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()
        .map_err(|e| format!("build engine: {e}"))?;
    engine
        .initial_run()
        .map_err(|e| format!("initial run: {e}"))?;
    let server = Server::bind("127.0.0.1:0", engine.reader(), ServerConfig::default())
        .map_err(|e| format!("bind server: {e}"))?;
    let addr = server.local_addr();
    let tracker = EpochTracker::new(1);
    tracker.publish(0, engine.epoch());

    let stop = AtomicBool::new(false);
    let writer_log = Mutex::new(None);
    let (read_logs, open_logs, elapsed) = std::thread::scope(|scope| {
        let read_handles: Vec<_> = (0..config.closed_clients)
            .map(|i| {
                let (tracker, stop) = (&tracker, &stop);
                scope.spawn(move || closed_loop(addr, config, tracker, stop, i))
            })
            .collect();
        let open_handles: Vec<_> = (0..config.open_clients)
            .map(|i| {
                let (tracker, stop) = (&tracker, &stop);
                scope.spawn(move || open_loop(addr, config, tracker, stop, i))
            })
            .collect();
        let writer = {
            let (tracker, stop, writer_log) = (&tracker, &stop, &writer_log);
            let engine = &mut engine;
            scope.spawn(move || {
                let mut log = WriterLog {
                    rounds: Recorder::new(config.streaming),
                    unexpected: 0,
                };
                let mut next_doc = config.seed_docs;
                let mut live: Vec<i64> = Vec::new();
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let started = Instant::now();
                    let result = if round % 4 == 3 && !live.is_empty() {
                        let doc = live.remove(0);
                        let mut update = KbcUpdate::new();
                        for id in 0..config.ids_per_doc {
                            remove_claim(&mut update, doc, id);
                        }
                        engine
                            .retract_supervision(
                                "Fact",
                                Tuple::from_iter([Value::Int(doc), Value::Int(0)]),
                            )
                            .and_then(|_| engine.run_update(&update, ExecutionMode::Incremental))
                            .map(|_| ())
                    } else {
                        let mut update = KbcUpdate::new();
                        for id in 0..config.ids_per_doc {
                            add_claim(&mut update, next_doc, id);
                        }
                        live.push(next_doc);
                        next_doc += 1;
                        engine
                            .run_update(&update, ExecutionMode::Incremental)
                            .map(|_| ())
                    };
                    match result {
                        Ok(()) => log.rounds.record(started.elapsed().as_nanos() as u64),
                        Err(_) => log.unexpected += 1,
                    }
                    tracker.publish(0, engine.epoch());
                    round += 1;
                    std::thread::sleep(config.write_pause);
                }
                *writer_log.lock().unwrap() = Some(log);
            })
        };
        let started = Instant::now();
        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);
        let elapsed = started.elapsed();
        let read_logs: Vec<ThreadLog> = read_handles
            .into_iter()
            .map(|h| h.join().expect("closed-loop client panicked"))
            .collect();
        let open_logs: Vec<ThreadLog> = open_handles
            .into_iter()
            .map(|h| h.join().expect("open-loop client panicked"))
            .collect();
        writer.join().expect("writer panicked");
        (read_logs, open_logs, elapsed)
    });
    let stats = server.stats();
    server.shutdown();
    let writer = writer_log
        .into_inner()
        .unwrap()
        .expect("writer log recorded");
    Ok(reduce(
        Target::Server,
        read_logs,
        open_logs,
        writer,
        elapsed,
        &[stats],
        None,
        config,
    ))
}

fn run_router_target(config: &LoadgenConfig) -> Result<Vec<BenchEntry>, String> {
    let mut cluster_config = ClusterConfig::new(config.shards);
    cluster_config.engine = EngineConfig::fast();
    let cluster = Cluster::build(PROGRAM, &corpus(config), &standard_udfs(), &cluster_config)
        .map_err(|e| format!("build cluster: {e}"))?;
    cluster
        .initial_run()
        .map_err(|e| format!("cluster initial run: {e}"))?;
    let front = cluster
        .serve_front(
            "127.0.0.1:0",
            RouterConfig::default(),
            ServerConfig::default(),
            config.closed_clients + config.open_clients,
        )
        .map_err(|e| format!("bind front door: {e}"))?;
    let addr = front.local_addr();
    let tracker = EpochTracker::new(config.shards);
    for (slot, epoch) in cluster.epochs().into_iter().enumerate() {
        tracker.publish(slot, epoch);
    }

    let stop = AtomicBool::new(false);
    let writer_log = Mutex::new(None);
    let (read_logs, open_logs, elapsed) = std::thread::scope(|scope| {
        let read_handles: Vec<_> = (0..config.closed_clients)
            .map(|i| {
                let (tracker, stop) = (&tracker, &stop);
                scope.spawn(move || closed_loop(addr, config, tracker, stop, i))
            })
            .collect();
        let open_handles: Vec<_> = (0..config.open_clients)
            .map(|i| {
                let (tracker, stop) = (&tracker, &stop);
                scope.spawn(move || open_loop(addr, config, tracker, stop, i))
            })
            .collect();
        let writer = {
            let (cluster, tracker, stop, writer_log) = (&cluster, &tracker, &stop, &writer_log);
            scope.spawn(move || {
                let mut log = WriterLog {
                    rounds: Recorder::new(config.streaming),
                    unexpected: 0,
                };
                let mut next_doc = config.seed_docs;
                let mut live: Vec<i64> = Vec::new();
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let started = Instant::now();
                    let result = if round % 4 == 3 && !live.is_empty() {
                        let doc = live.remove(0);
                        let mut update = KbcUpdate::new();
                        for id in 0..config.ids_per_doc {
                            remove_claim(&mut update, doc, id);
                        }
                        cluster
                            .retract_supervision(
                                "Fact",
                                Tuple::from_iter([Value::Int(doc), Value::Int(0)]),
                            )
                            .and_then(|_| cluster.run_update(&update, ExecutionMode::Incremental))
                            .map(|_| ())
                    } else {
                        let mut update = KbcUpdate::new();
                        for id in 0..config.ids_per_doc {
                            add_claim(&mut update, next_doc, id);
                        }
                        live.push(next_doc);
                        next_doc += 1;
                        cluster
                            .run_update(&update, ExecutionMode::Incremental)
                            .map(|_| ())
                    };
                    match result {
                        Ok(()) => log.rounds.record(started.elapsed().as_nanos() as u64),
                        Err(_) => log.unexpected += 1,
                    }
                    for (slot, epoch) in cluster.epochs().into_iter().enumerate() {
                        tracker.publish(slot, epoch);
                    }
                    round += 1;
                    std::thread::sleep(config.write_pause);
                }
                *writer_log.lock().unwrap() = Some(log);
            })
        };
        let started = Instant::now();
        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);
        let elapsed = started.elapsed();
        let read_logs: Vec<ThreadLog> = read_handles
            .into_iter()
            .map(|h| h.join().expect("closed-loop client panicked"))
            .collect();
        let open_logs: Vec<ThreadLog> = open_handles
            .into_iter()
            .map(|h| h.join().expect("open-loop client panicked"))
            .collect();
        writer.join().expect("writer panicked");
        (read_logs, open_logs, elapsed)
    });
    let shard_stats: Vec<ServerStats> = (0..config.shards)
        .filter_map(|i| cluster.server_stats(i))
        .collect();
    let front_stats = front.stats();
    front.shutdown();
    let writer = writer_log
        .into_inner()
        .unwrap()
        .expect("writer log recorded");
    Ok(reduce(
        Target::Router,
        read_logs,
        open_logs,
        writer,
        elapsed,
        &shard_stats,
        Some(front_stats),
        config,
    ))
}

// --------------------------------------------------------------- overload

/// Knobs of the deliberate-overload profile ([`run_overload`]).
///
/// The profile shrinks the server to one worker over a few-slot queue,
/// measures its capacity with a single uncontended client, then floods it at
/// `rate_factor` times that measured rate from `flood_clients` connections —
/// typed `overloaded` refusals become a sized-in property of the run instead
/// of an accident of host speed.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Capacity-measurement window (one client, no contention).
    pub calibrate: Duration,
    /// Flood window driven above measured capacity.
    pub flood: Duration,
    /// Concurrent flood connections; must exceed `workers + queue_capacity`
    /// or the offered concurrency alone can never fill the queue.
    pub flood_clients: usize,
    /// Offered rate = `rate_factor` × measured capacity.
    pub rate_factor: f64,
    /// Worker threads of the deliberately small server.
    pub workers: usize,
    /// Bounded-queue slots of the deliberately small server.
    pub queue_capacity: usize,
    /// Documents seeded before serving starts.
    pub seed_docs: i64,
    /// Claims per document.
    pub ids_per_doc: i64,
    /// Per-client read timeout (the zero-hang bound).
    pub read_timeout: Duration,
    /// Ops the post-drain probe must complete for `recovered` to read 1.
    pub recovery_probes: u32,
}

impl OverloadConfig {
    /// The nominal profile for manual `dd-loadgen --overload` runs.
    pub fn nominal() -> Self {
        OverloadConfig {
            calibrate: Duration::from_millis(1500),
            flood: Duration::from_secs(4),
            flood_clients: 16,
            rate_factor: 4.0,
            workers: 1,
            queue_capacity: 2,
            seed_docs: 16,
            ids_per_doc: 4,
            read_timeout: Duration::from_secs(30),
            recovery_probes: 50,
        }
    }

    /// The CI smoke profile: same phases, under two seconds end to end.
    pub fn smoke() -> Self {
        OverloadConfig {
            calibrate: Duration::from_millis(300),
            flood: Duration::from_millis(800),
            flood_clients: 12,
            rate_factor: 4.0,
            workers: 1,
            queue_capacity: 2,
            seed_docs: 8,
            ids_per_doc: 3,
            read_timeout: Duration::from_secs(30),
            recovery_probes: 20,
        }
    }
}

/// The overload traffic mix: alternating point reads and indexed top-k —
/// the two shapes the ranked index answers without a scan.
fn overload_op(seq: u64, config: &OverloadConfig) -> Op {
    if seq % 2 == 0 {
        let doc = (seq % config.seed_docs as u64) as i64;
        let id = ((seq / 5) % config.ids_per_doc as u64) as i64;
        Op::probability_of("Fact", Tuple::from_iter([Value::Int(doc), Value::Int(id)]))
    } else {
        Op::Query {
            relation: "Fact".to_string(),
            spec: FactQuerySpec {
                min_probability: 0.5,
                top_k: Some(10),
                offset: 0,
                limit: Some(10),
            },
        }
    }
}

/// One flood client: arrivals scheduled at its slice of the offered rate.
/// Overload refusals are counted and the arrival process moves on — no retry
/// budget exists to exhaust, so a saturated run cannot manufacture
/// unexpected errors.  Returns `(ok, overloads, unexpected)`.
fn flood_loop(
    addr: std::net::SocketAddr,
    config: &OverloadConfig,
    interval: Duration,
    stop: &AtomicBool,
    thread_index: usize,
) -> (u64, u64, u64) {
    let client_config = ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        read_timeout: Some(config.read_timeout),
    };
    let Ok(mut client) = Client::connect_with(addr, client_config) else {
        return (0, 0, 1);
    };
    let (mut ok, mut overloads, mut unexpected) = (0u64, 0u64, 0u64);
    let start = Instant::now();
    let mut n = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let scheduled = start + interval.mul_f64(n as f64);
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let op = overload_op(n + thread_index as u64, config);
        n += 1;
        match client.batch(vec![op]) {
            Ok(_) => ok += 1,
            Err(err) if err.is_overloaded() => overloads += 1,
            Err(err) => {
                if !err.is_shutting_down() && !stop.load(Ordering::Relaxed) {
                    unexpected += 1;
                }
                if client.reconnect().is_err() {
                    return (ok, overloads, unexpected);
                }
            }
        }
    }
    (ok, overloads, unexpected)
}

/// Drive the deliberate-overload profile against one small unsharded server
/// and reduce it to the `serving_overload/` series.
///
/// Three phases against one deployment:
///
/// 1. **Calibrate** — one client measures capacity with no contention.
/// 2. **Flood** — `flood_clients` connections offer `rate_factor` × that
///    measured rate at a one-worker, few-slot server, so the bounded queue
///    fills and typed `overloaded` refusals flow back.  Flooders count
///    refusals and move on, so `unexpected_errors` stays 0 by construction
///    unless something actually breaks.
/// 3. **Recover** — once the flood stops and the queue drains, a fresh
///    client must complete `recovery_probes` ops (overload retries allowed
///    while the tail drains) for `recovered` to read 1.
///
/// The emitted series live under their own `serving_overload/` prefix:
/// [`crate::serving::serving_violations`] only enforces per-target coverage
/// for `serving_server/` / `serving_router/`, so these entries ride along in
/// a bench document subject to the global finiteness gate alone.
pub fn run_overload(config: &OverloadConfig) -> Result<Vec<BenchEntry>, String> {
    let mut engine = DeepDive::builder()
        .program_text(PROGRAM)
        .database(corpus_of(config.seed_docs, config.ids_per_doc))
        .udfs(standard_udfs())
        .config(EngineConfig::fast())
        .build()
        .map_err(|e| format!("build engine: {e}"))?;
    engine
        .initial_run()
        .map_err(|e| format!("initial run: {e}"))?;
    let server_config = ServerConfig {
        workers: config.workers.max(1),
        queue_capacity: config.queue_capacity.max(1),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", engine.reader(), server_config)
        .map_err(|e| format!("bind server: {e}"))?;
    let addr = server.local_addr();
    let client_config = ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        read_timeout: Some(config.read_timeout),
    };

    // Phase 1: measure what the small server can actually do.
    let mut client = Client::connect_with(addr, client_config.clone())
        .map_err(|e| format!("connect calibration client: {e}"))?;
    let started = Instant::now();
    let (mut calibration_ops, mut calibration_unexpected) = (0u64, 0u64);
    let mut seq = 0u64;
    while started.elapsed() < config.calibrate {
        match client.batch(vec![overload_op(seq, config)]) {
            Ok(_) => calibration_ops += 1,
            // One uncontended client can only race the occasional internal
            // hiccup into the queue bound; just resend.
            Err(err) if err.is_overloaded() => {}
            Err(err) => {
                if !err.is_shutting_down() {
                    calibration_unexpected += 1;
                }
                if client.reconnect().is_err() {
                    break;
                }
            }
        }
        seq += 1;
    }
    drop(client);
    if calibration_ops == 0 {
        server.shutdown();
        return Err("overload calibration made no progress".to_string());
    }
    let capacity = calibration_ops as f64 / started.elapsed().as_secs_f64().max(1e-9);

    // Phase 2: flood above measured capacity.  Each client offers an equal
    // slice of the target rate; when the host cannot keep the schedule the
    // clients degrade to back-to-back sends, which with
    // `flood_clients > workers + queue_capacity` still overruns the queue.
    let offered_rate = (capacity * config.rate_factor).max(1.0);
    let clients = config.flood_clients.max(1);
    let interval = Duration::from_secs_f64(clients as f64 / offered_rate);
    let stop = AtomicBool::new(false);
    let (flood_ok, flood_overloads, flood_unexpected, flood_elapsed) =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    let stop = &stop;
                    scope.spawn(move || flood_loop(addr, config, interval, stop, i))
                })
                .collect();
            let started = Instant::now();
            std::thread::sleep(config.flood);
            stop.store(true, Ordering::Relaxed);
            let elapsed = started.elapsed();
            let mut totals = (0u64, 0u64, 0u64);
            for handle in handles {
                let (ok, overloads, unexpected) = handle.join().expect("flood client panicked");
                totals.0 += ok;
                totals.1 += overloads;
                totals.2 += unexpected;
            }
            (totals.0, totals.1, totals.2, elapsed)
        });

    // Phase 3: the queue drains in a few service times; a fresh client must
    // then make clean progress for the run to count as recovered.
    let mut probe = Client::connect_with(addr, client_config)
        .map_err(|e| format!("connect recovery client: {e}"))?;
    let (mut recovered_ops, mut recovery_unexpected) = (0u64, 0u64);
    'probe: for seq in 0..u64::from(config.recovery_probes) {
        let mut attempts = 0u32;
        loop {
            match probe.batch(vec![overload_op(seq, config)]) {
                Ok(_) => {
                    recovered_ops += 1;
                    break;
                }
                Err(err) if err.is_overloaded() => {
                    attempts += 1;
                    if attempts > MAX_RETRIES_PER_OP {
                        recovery_unexpected += 1;
                        break 'probe;
                    }
                    std::thread::sleep(Duration::from_millis(u64::from(attempts.min(5))));
                }
                Err(_) => {
                    recovery_unexpected += 1;
                    if probe.reconnect().is_err() {
                        break 'probe;
                    }
                    break;
                }
            }
        }
    }
    let stats = server.stats();
    server.shutdown();

    let unexpected = calibration_unexpected + flood_unexpected + recovery_unexpected;
    let recovered = recovered_ops == u64::from(config.recovery_probes) && recovery_unexpected == 0;
    let entry = |name: &str, unit: &str, value: f64| BenchEntry {
        name: format!("serving_overload/{name}"),
        unit: unit.to_string(),
        value,
    };
    Ok(vec![
        entry("capacity_ops_per_sec", "ops/s", capacity),
        entry("offered_rate_ops_per_sec", "ops/s", offered_rate),
        entry("flood_ops", "ops", flood_ok as f64),
        entry(
            "flood_throughput_ops_per_sec",
            "ops/s",
            flood_ok as f64 / flood_elapsed.as_secs_f64().max(1e-9),
        ),
        entry("overload_rejections", "rejections", flood_overloads as f64),
        entry(
            "server_overload_rejections",
            "rejections",
            stats.overload_rejections as f64,
        ),
        entry("recovered", "bool", if recovered { 1.0 } else { 0.0 }),
        entry("recovery_ops", "ops", recovered_ops as f64),
        entry("unexpected_errors", "errors", unexpected as f64),
    ])
}

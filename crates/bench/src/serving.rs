//! The `BENCH_serving.json` schema: emission and the CI serving gate.
//!
//! `dd-loadgen` writes the same flat `[{name, unit, value}]` array as
//! `BENCH_sweeps.json`, under two series prefixes — `serving_server/` (one
//! unsharded `dd-server`) and `serving_router/` (a sharded cluster behind its
//! scatter-gather front door).  `check_serving` re-reads the file in CI and
//! fails the build when required series are missing, percentiles are
//! non-monotone, the harness saw unexpected errors (a proxy for hangs — every
//! client runs under a read timeout, so a wedged server surfaces here), or
//! the overload rate under the nominal profile exceeds its bound.
//!
//! Series naming: `<target>/<class>_<metric>` with op classes
//! `point_read` (`probability_of`), `topk` (threshold + top-k `query`),
//! `scan` (paginated `all_facts`), `open_mixed` (the open-loop arrival
//! process, latency measured from the *scheduled* send time so coordinated
//! omission cannot hide queueing delay), and `update_round` (writer-side
//! `run_update` / retraction rounds).

use crate::history::series_values;
use crate::sweeps::BenchEntry;
use dd_wire::json::Json;

/// The two serving targets a complete `BENCH_serving.json` must cover.
pub const SERVING_TARGETS: [&str; 2] = ["serving_server/", "serving_router/"];

/// Read-side op classes measured per target.
pub const READ_CLASSES: [&str; 4] = ["point_read", "topk", "scan", "open_mixed"];

/// Percentile suffixes every latency class must publish.
pub const PERCENTILE_SUFFIXES: [&str; 4] = ["p50_ms", "p90_ms", "p99_ms", "p999_ms"];

/// Overload-rate ceiling the nominal profile must stay under: transient
/// queue-full refusals are expected while the writer holds the engine lock,
/// but a majority-refusal run means the profile is not measuring serving.
pub const MAX_OVERLOAD_RATE: f64 = 0.5;

/// Encode entries into the on-disk `[{name, unit, value}]` document.  The
/// inverse of [`crate::sweeps::parse_bench_entries`]; the round-trip is
/// unit-tested so the file CI gates is bit-identical in meaning to what the
/// harness measured.
pub fn encode_bench_entries(entries: &[BenchEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"name\": {}, \"unit\": {}, \"value\": {}}}{comma}\n",
            dd_wire::json::Json::String(e.name.clone()).encode(),
            dd_wire::json::Json::String(e.unit.clone()).encode(),
            format_value(e.value),
        ));
    }
    out.push_str("]\n");
    out
}

/// Format a float so it survives the round-trip exactly enough (JSON has no
/// NaN/Inf; the gate separately rejects non-finite values).
fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn find<'a>(entries: &'a [BenchEntry], name: &str) -> Option<&'a BenchEntry> {
    entries.iter().find(|e| e.name == name)
}

/// The serving gate: coverage floors plus sanity checks, returning one
/// message per violation (empty means the file passes).
///
/// Floors and checks, per target in [`SERVING_TARGETS`]:
/// - every read class publishes all four percentiles and served ≥ 1 op;
/// - percentiles are monotone (p50 ≤ p90 ≤ p99 ≤ p999);
/// - `update_round_p50_ms` exists and `update_rounds` ≥ 1;
/// - `overload_rate` ∈ [0, [`MAX_OVERLOAD_RATE`]]; `retries_per_op` ≥ 0;
/// - `epoch_staleness_p50` / `epoch_staleness_max` exist and are ≥ 0;
/// - `unexpected_errors` == 0 (the zero-hang proxy: timeouts and protocol
///   surprises land here);
/// - every value in the file is finite.
pub fn serving_violations(entries: &[BenchEntry]) -> Vec<String> {
    let mut violations = Vec::new();
    if entries.is_empty() {
        violations.push("no serving entries found".to_string());
        return violations;
    }
    for entry in entries {
        if !entry.value.is_finite() {
            violations.push(format!("{}: non-finite value {}", entry.name, entry.value));
        }
    }
    for target in SERVING_TARGETS {
        for class in READ_CLASSES {
            let mut last = f64::NEG_INFINITY;
            for suffix in PERCENTILE_SUFFIXES {
                let name = format!("{target}{class}_{suffix}");
                match find(entries, &name) {
                    None => violations.push(format!("missing series {name}")),
                    Some(e) if e.value.is_finite() => {
                        if e.value + 1e-9 < last {
                            violations.push(format!(
                                "{name}: {} breaks percentile monotonicity (previous {})",
                                e.value, last
                            ));
                        }
                        last = e.value;
                    }
                    Some(_) => {}
                }
            }
            let ops = format!("{target}{class}_ops");
            match find(entries, &ops) {
                None => violations.push(format!("missing series {ops}")),
                Some(e) if e.value < 1.0 => {
                    violations.push(format!("{ops}: {} is below the 1-op floor", e.value));
                }
                Some(_) => {}
            }
        }
        for required in ["update_round_p50_ms", "update_round_p99_ms"] {
            let name = format!("{target}{required}");
            if find(entries, &name).is_none() {
                violations.push(format!("missing series {name}"));
            }
        }
        let rounds = format!("{target}update_rounds");
        match find(entries, &rounds) {
            None => violations.push(format!("missing series {rounds}")),
            Some(e) if e.value < 1.0 => {
                violations.push(format!("{rounds}: {} is below the 1-round floor", e.value));
            }
            Some(_) => {}
        }
        let overload = format!("{target}overload_rate");
        match find(entries, &overload) {
            None => violations.push(format!("missing series {overload}")),
            Some(e) if !(0.0..=MAX_OVERLOAD_RATE).contains(&e.value) => {
                violations.push(format!(
                    "{overload}: {} outside [0, {MAX_OVERLOAD_RATE}] — the profile is refusing, not serving",
                    e.value
                ));
            }
            Some(_) => {}
        }
        let retries = format!("{target}retries_per_op");
        match find(entries, &retries) {
            None => violations.push(format!("missing series {retries}")),
            Some(e) if e.value < 0.0 => {
                violations.push(format!("{retries}: negative {}", e.value));
            }
            Some(_) => {}
        }
        for staleness in ["epoch_staleness_p50", "epoch_staleness_max"] {
            let name = format!("{target}{staleness}");
            match find(entries, &name) {
                None => violations.push(format!("missing series {name}")),
                Some(e) if e.value < 0.0 => {
                    violations.push(format!("{name}: negative staleness {}", e.value));
                }
                Some(_) => {}
            }
        }
        let errors = format!("{target}unexpected_errors");
        match find(entries, &errors) {
            None => violations.push(format!("missing series {errors}")),
            Some(e) if e.value != 0.0 => {
                violations.push(format!(
                    "{errors}: {} — timeouts or protocol surprises during the run",
                    e.value
                ));
            }
            Some(_) => {}
        }
    }
    violations
}

// -------------------------------------------------- trailing-window gate

/// The per-target series the trailing-window regression gate watches: the
/// threshold + top-k read class — exactly the shape the ranked index serves,
/// so an index regression shows up here first.
pub const REGRESSION_SUFFIX: &str = "topk_p99_ms";

/// How many trailing history points form the comparison window.
pub const REGRESSION_WINDOW: usize = 5;

/// The gate stays silent until this many usable history points exist — a
/// young history (or a series that just started being published) must not
/// fail CI.
pub const MIN_REGRESSION_HISTORY: usize = 3;

/// Ceiling on the current run relative to the trailing median.  Serving p99
/// on shared CI hosts is noisy, so the bound is a 2× step, not a drift
/// detector — the per-commit trajectory in `dev/bench/data.js` is the place
/// to read slow drift.
pub const MAX_REGRESSION_FACTOR: f64 = 2.0;

/// Median of a non-empty slice (midpoint average for even lengths).
fn median_of(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// The trailing-window regression gate: compare this run's top-k/threshold
/// p99 per target against the median of the last [`REGRESSION_WINDOW`]
/// banked runs in the parsed `dev/bench/data.js` history.
///
/// Skips cleanly — returns no violation — whenever there is nothing sound to
/// compare: the series is absent from the current run or the history, fewer
/// than [`MIN_REGRESSION_HISTORY`] usable (finite, positive) history points
/// exist, or the current value itself is non-finite (the main gate already
/// rejects that).  A violation means the current value exceeds
/// [`MAX_REGRESSION_FACTOR`] × the trailing median.
pub fn regression_violations(entries: &[BenchEntry], history: &Json) -> Vec<String> {
    let mut violations = Vec::new();
    for target in SERVING_TARGETS {
        let name = format!("{target}{REGRESSION_SUFFIX}");
        let Some(current) = find(entries, &name) else {
            continue;
        };
        if !current.value.is_finite() || current.value <= 0.0 {
            continue;
        }
        let usable: Vec<f64> = series_values(history, &name)
            .into_iter()
            .filter(|v| v.is_finite() && *v > 0.0)
            .collect();
        if usable.len() < MIN_REGRESSION_HISTORY {
            continue;
        }
        let window = &usable[usable.len().saturating_sub(REGRESSION_WINDOW)..];
        let median = median_of(window);
        if current.value > median * MAX_REGRESSION_FACTOR {
            violations.push(format!(
                "{name}: {:.4} ms exceeds {MAX_REGRESSION_FACTOR}x the trailing median \
                 {median:.4} ms (window of {} runs)",
                current.value,
                window.len()
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{append_point, empty_history, HistoryPoint};
    use crate::sweeps::parse_bench_entries;

    fn entry(name: &str, value: f64) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            unit: "ms".into(),
            value,
        }
    }

    /// A minimal complete document that passes the gate.
    pub(crate) fn complete_entries() -> Vec<BenchEntry> {
        let mut entries = Vec::new();
        for target in SERVING_TARGETS {
            for class in READ_CLASSES {
                for (i, suffix) in PERCENTILE_SUFFIXES.iter().enumerate() {
                    entries.push(entry(&format!("{target}{class}_{suffix}"), (i + 1) as f64));
                }
                entries.push(entry(&format!("{target}{class}_ops"), 100.0));
            }
            entries.push(entry(&format!("{target}update_round_p50_ms"), 12.0));
            entries.push(entry(&format!("{target}update_round_p99_ms"), 20.0));
            entries.push(entry(&format!("{target}update_rounds"), 4.0));
            entries.push(entry(&format!("{target}overload_rate"), 0.01));
            entries.push(entry(&format!("{target}retries_per_op"), 0.02));
            entries.push(entry(&format!("{target}epoch_staleness_p50"), 0.0));
            entries.push(entry(&format!("{target}epoch_staleness_max"), 1.0));
            entries.push(entry(&format!("{target}unexpected_errors"), 0.0));
        }
        entries
    }

    #[test]
    fn complete_document_passes() {
        assert_eq!(
            serving_violations(&complete_entries()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn encode_parse_round_trip_through_dd_wire() {
        let entries = complete_entries();
        let encoded = encode_bench_entries(&entries);
        let parsed = parse_bench_entries(&encoded).expect("round-trip parses");
        assert_eq!(parsed, entries);
        // Names with JSON-hostile characters survive too.
        let spicy = vec![entry("weird\"name\\with\u{1F680}", 0.125)];
        assert_eq!(
            parse_bench_entries(&encode_bench_entries(&spicy)).unwrap(),
            spicy
        );
    }

    #[test]
    fn missing_series_and_empty_are_caught() {
        assert!(!serving_violations(&[]).is_empty());
        let mut entries = complete_entries();
        entries.retain(|e| e.name != "serving_router/topk_p99_ms");
        let violations = serving_violations(&entries);
        assert!(violations.iter().any(|v| v.contains("topk_p99_ms")));
    }

    #[test]
    fn non_monotone_percentiles_are_caught() {
        let mut entries = complete_entries();
        for e in &mut entries {
            if e.name == "serving_server/scan_p999_ms" {
                e.value = 0.5; // below the class's p50 of 1.0
            }
        }
        let violations = serving_violations(&entries);
        assert!(violations.iter().any(|v| v.contains("monotonicity")));
    }

    #[test]
    fn overload_bound_errors_and_zero_ops_are_caught() {
        let mut entries = complete_entries();
        for e in &mut entries {
            match e.name.as_str() {
                "serving_server/overload_rate" => e.value = 0.9,
                "serving_router/unexpected_errors" => e.value = 3.0,
                "serving_server/point_read_ops" => e.value = 0.0,
                "serving_router/update_rounds" => e.value = 0.0,
                _ => {}
            }
        }
        let violations = serving_violations(&entries);
        assert_eq!(violations.len(), 4, "{violations:?}");
    }

    #[test]
    fn non_finite_values_are_caught() {
        let mut entries = complete_entries();
        entries[0].value = f64::NAN;
        assert!(serving_violations(&entries)
            .iter()
            .any(|v| v.contains("non-finite")));
    }

    /// A synthetic history whose snapshots publish the given per-run p99
    /// values for both targets' `topk_p99_ms` series.
    fn history_of(p99s: &[f64]) -> Json {
        let mut history = empty_history("x");
        for (i, value) in p99s.iter().enumerate() {
            let point = HistoryPoint {
                commit_id: format!("c{i}"),
                message: format!("commit {i}"),
                timestamp_ms: 1000.0 * (i + 1) as f64,
                benches: SERVING_TARGETS
                    .iter()
                    .map(|t| entry(&format!("{t}{REGRESSION_SUFFIX}"), *value))
                    .collect(),
            };
            history = append_point(&history, &point).unwrap();
        }
        history
    }

    /// Current-run entries with the given `topk_p99_ms` for both targets.
    fn current_p99(value: f64) -> Vec<BenchEntry> {
        SERVING_TARGETS
            .iter()
            .map(|t| entry(&format!("{t}{REGRESSION_SUFFIX}"), value))
            .collect()
    }

    #[test]
    fn regression_gate_skips_cleanly_on_short_or_absent_history() {
        // Fewer than MIN_REGRESSION_HISTORY usable points: silent, even when
        // the current value would be a blatant regression against them.
        let short = history_of(&[1.0, 1.0]);
        assert!(regression_violations(&current_p99(100.0), &short).is_empty());
        assert!(regression_violations(&current_p99(100.0), &empty_history("x")).is_empty());
        // Current run missing the series entirely: nothing to gate.
        let deep = history_of(&[1.0; 6]);
        assert!(regression_violations(&[entry("other/series", 9.0)], &deep).is_empty());
    }

    #[test]
    fn regression_gate_passes_values_near_the_trailing_median() {
        let history = history_of(&[1.0, 1.2, 0.9, 1.1, 1.0]);
        assert!(regression_violations(&current_p99(1.3), &history).is_empty());
        // Exactly at the bound is still a pass (the gate is strict-greater).
        assert!(regression_violations(&current_p99(2.0), &history).is_empty());
    }

    #[test]
    fn regression_gate_flags_a_step_past_the_factor() {
        let history = history_of(&[1.0, 1.2, 0.9, 1.1, 1.0]);
        let violations = regression_violations(&current_p99(2.5), &history);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("trailing median"));
    }

    #[test]
    fn regression_window_is_trailing_and_median_resists_outliers() {
        // Old slow runs fall outside the 5-run window: only the recent fast
        // regime sets the bar.
        let history = history_of(&[50.0, 50.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(regression_violations(&current_p99(2.5), &history).len(), 2);
        // One spike inside the window does not drag the median up...
        let spiky = history_of(&[1.0, 1.0, 40.0, 1.0, 1.0]);
        assert_eq!(regression_violations(&current_p99(2.5), &spiky).len(), 2);
        // ...and zero/non-finite history points are not usable evidence.
        let degenerate = history_of(&[0.0, 0.0, 0.0, 1.0, 1.0]);
        assert!(regression_violations(&current_p99(2.5), &degenerate).is_empty());
    }
}

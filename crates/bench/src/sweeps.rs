//! The `BENCH_sweeps.json` schema: emission, parsing, and the CI smoke gate.
//!
//! `bench_sweeps` writes a flat `[{name, unit, value}]` array
//! (github-action-benchmark style).  The `check_sweeps` binary re-reads that
//! file in CI and fails the build when the file is malformed or any
//! `*_speedup` metric has regressed below 1.0× — the cheapest mechanical
//! guard that the perf trajectory (compiled flat graph, persistent pool
//! dispatch, sharded O(Δ) publish) never silently goes backwards.
//!
//! The workspace is fully offline (vendored stand-in deps only), so parsing
//! uses the workspace's hand-rolled JSON reader — [`dd_wire::json`], the same
//! implementation the network protocol speaks (it originally lived in this
//! module and was promoted to `dd-wire` when the serving layer landed).  It
//! accepts arbitrary well-formed JSON and then shape-checks the result, so a
//! truncated or hand-mangled file fails loudly instead of being half-read.

use dd_wire::json::{self, Json};

/// One benchmark data point.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    pub name: String,
    pub unit: String,
    pub value: f64,
}

/// Parse a `BENCH_sweeps.json` document into its entries.  Rejects anything
/// that is not a JSON array of `{name: string, unit: string, value: number}`
/// objects.
pub fn parse_bench_entries(text: &str) -> Result<Vec<BenchEntry>, String> {
    let Json::Array(items) = json::parse(text)? else {
        return Err("top-level value must be an array".to_string());
    };
    items
        .into_iter()
        .enumerate()
        .map(|(i, item)| {
            let Json::Object(fields) = item else {
                return Err(format!("entry {i} is not an object"));
            };
            let field = |key: &str| {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("entry {i} is missing \"{key}\""))
            };
            let Json::String(name) = field("name")? else {
                return Err(format!("entry {i}: \"name\" must be a string"));
            };
            let Json::String(unit) = field("unit")? else {
                return Err(format!("entry {i}: \"unit\" must be a string"));
            };
            let Json::Number(value) = field("value")? else {
                return Err(format!("entry {i}: \"value\" must be a number"));
            };
            Ok(BenchEntry {
                name: name.clone(),
                unit: unit.clone(),
                value: *value,
            })
        })
        .collect()
}

/// The benchmark series a `BENCH_sweeps.json` must cover: each of these
/// prefixes has banked at least one `*speedup*` gate (flat-graph inference,
/// pooled dispatch, sharded publish, incremental retraction, indexed reads),
/// and a file missing a whole series means a sweep silently stopped running —
/// which the per-entry gate alone cannot see.
pub const REQUIRED_SPEEDUP_SERIES: [&str; 5] = [
    "fig9_news_end_to_end/",
    "fig5_synthetic_pairwise/",
    "publish_cost/",
    "retraction_cost/",
    "query_cost/",
];

/// The coverage floor: every series in [`REQUIRED_SPEEDUP_SERIES`] must
/// contribute at least one `speedup` entry.  Returns one violation message
/// per missing series.
pub fn coverage_violations(entries: &[BenchEntry]) -> Vec<String> {
    REQUIRED_SPEEDUP_SERIES
        .iter()
        .filter(|prefix| {
            !entries
                .iter()
                .any(|e| e.name.starts_with(*prefix) && e.name.contains("speedup"))
        })
        .map(|prefix| format!("series {prefix}* has no speedup entry — did its sweep not run?"))
        .collect()
}

/// The smoke gate: every entry must hold a finite value, and every metric
/// whose name contains `speedup` must be at least `min_speedup` (the CI gate
/// uses 1.0 — "never slower than the baseline it replaced").  Returns the
/// list of violation messages, empty when the file passes.
pub fn gate_violations(entries: &[BenchEntry], min_speedup: f64) -> Vec<String> {
    let mut violations = Vec::new();
    if entries.is_empty() {
        violations.push("no benchmark entries found".to_string());
    }
    for entry in entries {
        if !entry.value.is_finite() {
            violations.push(format!("{}: non-finite value {}", entry.name, entry.value));
        } else if entry.name.contains("speedup") && entry.value < min_speedup {
            violations.push(format!(
                "{}: {:.3}x is below the {min_speedup:.1}x floor",
                entry.name, entry.value
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitted_schema() {
        let text = r#"[
  {"name": "fig9/legacy_sequential", "unit": "sweeps/s", "value": 592750.659435},
  {"name": "fig9/flat_vs_legacy_speedup", "unit": "x", "value": 4.939105}
]
"#;
        let entries = parse_bench_entries(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "fig9/legacy_sequential");
        assert_eq!(entries[1].unit, "x");
        assert!((entries[1].value - 4.939105).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_bench_entries("").is_err());
        assert!(parse_bench_entries("[{\"name\": \"x\"").is_err()); // truncated
        assert!(parse_bench_entries("{\"name\": \"x\"}").is_err()); // not an array
        assert!(parse_bench_entries("[1, 2]").is_err()); // not objects
        assert!(parse_bench_entries("[{\"name\": \"x\", \"unit\": \"s\"}]").is_err()); // no value
        assert!(parse_bench_entries("[{}] trailing").is_err());
        assert!(parse_bench_entries("[{\"name\": 3, \"unit\": \"s\", \"value\": 1}]").is_err());
    }

    #[test]
    fn parses_escapes_and_nested_values() {
        let entries = parse_bench_entries(
            "[{\"name\": \"a\\\"b\\u0041\", \"unit\": \"x\", \"value\": -1.5e2}]",
        )
        .unwrap();
        assert_eq!(entries[0].name, "a\"bA");
        assert_eq!(entries[0].value, -150.0);
    }

    #[test]
    fn parses_surrogate_pairs_and_rejects_lone_surrogates() {
        let entries =
            parse_bench_entries("[{\"name\": \"\\ud83d\\ude80!\", \"unit\": \"x\", \"value\": 1}]")
                .unwrap();
        assert_eq!(entries[0].name, "🚀!");
        assert!(
            parse_bench_entries("[{\"name\": \"\\ud83dX\", \"unit\": \"x\", \"value\": 1}]")
                .is_err()
        );
        assert!(
            parse_bench_entries("[{\"name\": \"\\ude80\", \"unit\": \"x\", \"value\": 1}]")
                .is_err()
        );
    }

    #[test]
    fn gate_flags_regressed_speedups_only() {
        let entries = vec![
            BenchEntry {
                name: "w/flat_sequential".into(),
                unit: "sweeps/s".into(),
                value: 0.5, // raw rates below 1.0 are fine
            },
            BenchEntry {
                name: "w/flat_vs_legacy_speedup".into(),
                unit: "x".into(),
                value: 2.0,
            },
            BenchEntry {
                name: "w/pooled_vs_spawn_speedup_t2".into(),
                unit: "x".into(),
                value: 0.93,
            },
        ];
        let violations = gate_violations(&entries, 1.0);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("pooled_vs_spawn_speedup_t2"));
    }

    #[test]
    fn coverage_floor_requires_every_series() {
        let entry = |name: &str| BenchEntry {
            name: name.into(),
            unit: "x".into(),
            value: 2.0,
        };
        let full: Vec<BenchEntry> = REQUIRED_SPEEDUP_SERIES
            .iter()
            .map(|p| entry(&format!("{p}some_speedup_n1")))
            .collect();
        assert!(coverage_violations(&full).is_empty());

        // Dropping one series is caught and named.
        let partial = &full[..full.len() - 1];
        let violations = coverage_violations(partial);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("query_cost/"));

        // A raw (non-speedup) metric does not satisfy the floor.
        let mut decoy = partial.to_vec();
        decoy.push(entry("query_cost/indexed_topk_us_n1"));
        assert_eq!(coverage_violations(&decoy).len(), 1);
    }

    #[test]
    fn gate_flags_empty_and_non_finite() {
        assert_eq!(gate_violations(&[], 1.0).len(), 1);
        let nan = vec![BenchEntry {
            name: "w/anything".into(),
            unit: "s".into(),
            value: f64::NAN,
        }];
        assert_eq!(gate_violations(&nan, 1.0).len(), 1);
        // A NaN speedup cannot sneak past the comparison either.
        let nan_speedup = vec![BenchEntry {
            name: "w/x_speedup".into(),
            unit: "x".into(),
            value: f64::NAN,
        }];
        assert_eq!(gate_violations(&nan_speedup, 1.0).len(), 1);
    }
}

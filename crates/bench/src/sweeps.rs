//! The `BENCH_sweeps.json` schema: emission, parsing, and the CI smoke gate.
//!
//! `bench_sweeps` writes a flat `[{name, unit, value}]` array
//! (github-action-benchmark style).  The `check_sweeps` binary re-reads that
//! file in CI and fails the build when the file is malformed or any
//! `*_speedup` metric has regressed below 1.0× — the cheapest mechanical
//! guard that the perf trajectory (compiled flat graph, persistent pool
//! dispatch, sharded O(Δ) publish) never silently goes backwards.
//!
//! The workspace is fully offline (vendored stand-in deps only), so parsing
//! uses a small self-contained JSON reader rather than `serde_json`.  It
//! accepts arbitrary well-formed JSON and then shape-checks the result, so a
//! truncated or hand-mangled file fails loudly instead of being half-read.

/// One benchmark data point.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    pub name: String,
    pub unit: String,
    pub value: f64,
}

/// A parsed JSON value (just enough of the data model for the bench schema).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("invalid JSON at byte {}: {message}", self.pos)
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape()?;
                            // A high surrogate must be followed by an escaped
                            // low surrogate; combine them into one scalar.
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(b"\\u".as_slice())
                                {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex_escape()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("bad low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.error("bad \\u codepoint"))?,
                            );
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences arrive as
                    // raw bytes; re-decode from the remaining slice).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    /// Read the four hex digits of a `\uXXXX` escape (cursor on the `u`),
    /// leaving the cursor on the last digit.
    fn hex_escape(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.error("non-ascii \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(&format!("bad number '{text}'")))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a `BENCH_sweeps.json` document into its entries.  Rejects anything
/// that is not a JSON array of `{name: string, unit: string, value: number}`
/// objects.
pub fn parse_bench_entries(text: &str) -> Result<Vec<BenchEntry>, String> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content after the top-level value"));
    }
    let Json::Array(items) = value else {
        return Err("top-level value must be an array".to_string());
    };
    items
        .into_iter()
        .enumerate()
        .map(|(i, item)| {
            let Json::Object(fields) = item else {
                return Err(format!("entry {i} is not an object"));
            };
            let field = |key: &str| {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("entry {i} is missing \"{key}\""))
            };
            let Json::String(name) = field("name")? else {
                return Err(format!("entry {i}: \"name\" must be a string"));
            };
            let Json::String(unit) = field("unit")? else {
                return Err(format!("entry {i}: \"unit\" must be a string"));
            };
            let Json::Number(value) = field("value")? else {
                return Err(format!("entry {i}: \"value\" must be a number"));
            };
            Ok(BenchEntry {
                name: name.clone(),
                unit: unit.clone(),
                value: *value,
            })
        })
        .collect()
}

/// The smoke gate: every entry must hold a finite value, and every metric
/// whose name contains `speedup` must be at least `min_speedup` (the CI gate
/// uses 1.0 — "never slower than the baseline it replaced").  Returns the
/// list of violation messages, empty when the file passes.
pub fn gate_violations(entries: &[BenchEntry], min_speedup: f64) -> Vec<String> {
    let mut violations = Vec::new();
    if entries.is_empty() {
        violations.push("no benchmark entries found".to_string());
    }
    for entry in entries {
        if !entry.value.is_finite() {
            violations.push(format!("{}: non-finite value {}", entry.name, entry.value));
        } else if entry.name.contains("speedup") && entry.value < min_speedup {
            violations.push(format!(
                "{}: {:.3}x is below the {min_speedup:.1}x floor",
                entry.name, entry.value
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitted_schema() {
        let text = r#"[
  {"name": "fig9/legacy_sequential", "unit": "sweeps/s", "value": 592750.659435},
  {"name": "fig9/flat_vs_legacy_speedup", "unit": "x", "value": 4.939105}
]
"#;
        let entries = parse_bench_entries(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "fig9/legacy_sequential");
        assert_eq!(entries[1].unit, "x");
        assert!((entries[1].value - 4.939105).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_bench_entries("").is_err());
        assert!(parse_bench_entries("[{\"name\": \"x\"").is_err()); // truncated
        assert!(parse_bench_entries("{\"name\": \"x\"}").is_err()); // not an array
        assert!(parse_bench_entries("[1, 2]").is_err()); // not objects
        assert!(parse_bench_entries("[{\"name\": \"x\", \"unit\": \"s\"}]").is_err()); // no value
        assert!(parse_bench_entries("[{}] trailing").is_err());
        assert!(parse_bench_entries("[{\"name\": 3, \"unit\": \"s\", \"value\": 1}]").is_err());
    }

    #[test]
    fn parses_escapes_and_nested_values() {
        let entries = parse_bench_entries(
            "[{\"name\": \"a\\\"b\\u0041\", \"unit\": \"x\", \"value\": -1.5e2}]",
        )
        .unwrap();
        assert_eq!(entries[0].name, "a\"bA");
        assert_eq!(entries[0].value, -150.0);
    }

    #[test]
    fn parses_surrogate_pairs_and_rejects_lone_surrogates() {
        let entries =
            parse_bench_entries("[{\"name\": \"\\ud83d\\ude80!\", \"unit\": \"x\", \"value\": 1}]")
                .unwrap();
        assert_eq!(entries[0].name, "🚀!");
        assert!(
            parse_bench_entries("[{\"name\": \"\\ud83dX\", \"unit\": \"x\", \"value\": 1}]")
                .is_err()
        );
        assert!(
            parse_bench_entries("[{\"name\": \"\\ude80\", \"unit\": \"x\", \"value\": 1}]")
                .is_err()
        );
    }

    #[test]
    fn gate_flags_regressed_speedups_only() {
        let entries = vec![
            BenchEntry {
                name: "w/flat_sequential".into(),
                unit: "sweeps/s".into(),
                value: 0.5, // raw rates below 1.0 are fine
            },
            BenchEntry {
                name: "w/flat_vs_legacy_speedup".into(),
                unit: "x".into(),
                value: 2.0,
            },
            BenchEntry {
                name: "w/pooled_vs_spawn_speedup_t2".into(),
                unit: "x".into(),
                value: 0.93,
            },
        ];
        let violations = gate_violations(&entries, 1.0);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("pooled_vs_spawn_speedup_t2"));
    }

    #[test]
    fn gate_flags_empty_and_non_finite() {
        assert_eq!(gate_violations(&[], 1.0).len(), 1);
        let nan = vec![BenchEntry {
            name: "w/anything".into(),
            unit: "s".into(),
            value: f64::NAN,
        }];
        assert_eq!(gate_violations(&nan, 1.0).len(), 1);
        // A NaN speedup cannot sneak past the comparison either.
        let nan_speedup = vec![BenchEntry {
            name: "w/x_speedup".into(),
            unit: "x".into(),
            value: f64::NAN,
        }];
        assert_eq!(gate_violations(&nan_speedup, 1.0).len(), 1);
    }
}

//! End-to-end smoke test of the serving harness: a short loadgen run against
//! live loopback deployments must produce a well-formed `BENCH_serving.json`
//! with every series the CI gate requires.
//!
//! This is the tier-1 guard for the whole measurement path: real sockets,
//! real engines, concurrent update/retraction rounds, and the reduce step —
//! if any of it wedges or drops a series, this test fails (clients run under
//! read timeouts, so a hang surfaces as `unexpected_errors`, which the gate
//! rejects).

use dd_bench::loadgen::{run, run_overload, LoadgenConfig, OverloadConfig};
use dd_bench::serving::{encode_bench_entries, serving_violations};
use dd_bench::sweeps::parse_bench_entries;
use std::time::Duration;

#[test]
fn smoke_run_produces_a_well_formed_bench_serving() {
    let mut config = LoadgenConfig::smoke();
    // ~1s of measurement per target: long enough for every op class and
    // several writer rounds, short enough for the tier-1 suite.
    config.duration = Duration::from_millis(1000);
    let entries = run(&config).expect("loadgen completes against live servers");

    // The document must survive the encode → parse round-trip bit-exactly.
    let encoded = encode_bench_entries(&entries);
    let parsed = parse_bench_entries(&encoded).expect("emitted file parses");
    assert_eq!(parsed, entries);

    // And pass every CI gate: full coverage for both targets, monotone
    // percentiles, zero unexpected errors, bounded overload rate.
    let violations = serving_violations(&parsed);
    assert!(
        violations.is_empty(),
        "serving gates failed:\n{}",
        violations.join("\n")
    );

    // The harness's own sanity: reads actually observed both deployments.
    let ops = |name: &str| {
        parsed
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
            .unwrap_or(0.0)
    };
    assert!(ops("serving_server/point_read_ops") >= 1.0);
    assert!(ops("serving_router/point_read_ops") >= 1.0);
    assert!(ops("serving_server/update_rounds") >= 1.0);
    assert!(ops("serving_router/update_rounds") >= 1.0);
}

#[test]
fn overload_smoke_rejects_typed_and_recovers_clean() {
    let config = OverloadConfig::smoke();
    let entries = run_overload(&config).expect("overload run completes");

    // Same round-trip contract as the main document.
    let encoded = encode_bench_entries(&entries);
    let parsed = parse_bench_entries(&encoded).expect("emitted file parses");
    assert_eq!(parsed, entries);

    let value = |name: &str| {
        parsed
            .iter()
            .find(|e| e.name == format!("serving_overload/{name}"))
            .map(|e| e.value)
            .unwrap_or_else(|| panic!("missing series serving_overload/{name}"))
    };

    // The flood was sized above measured capacity, so the bounded queue must
    // actually have filled: clients saw typed `overloaded` refusals and the
    // server counted the matching rejections.
    assert!(
        value("overload_rejections") >= 1.0,
        "flood produced no typed overload refusals (capacity {} ops/s, offered {} ops/s)",
        value("capacity_ops_per_sec"),
        value("offered_rate_ops_per_sec"),
    );
    assert!(value("server_overload_rejections") >= value("overload_rejections"));
    assert!(value("offered_rate_ops_per_sec") > value("capacity_ops_per_sec"));

    // Refusals are load shedding, not failure: nothing hung, nothing broke,
    // and once the flood stopped a fresh client made clean progress.
    assert_eq!(
        value("unexpected_errors"),
        0.0,
        "unexpected errors under overload"
    );
    assert_eq!(
        value("recovered"),
        1.0,
        "server did not recover after drain"
    );
    assert_eq!(value("recovery_ops"), f64::from(config.recovery_probes));
    assert!(
        value("flood_ops") >= 1.0,
        "flood made no successful progress"
    );
}

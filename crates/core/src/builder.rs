//! Builder construction of a [`DeepDive`] engine.
//!
//! Replaces the old positional 4-argument constructor with a named-field
//! builder whose [`DeepDiveBuilder::build`] performs *all* misconfiguration
//! checks up front and reports them as typed [`EngineError`]s: the program
//! parses and validates, every pre-loaded table matches its declared schema,
//! and every `weight = udf(…)` clause resolves against the registry — so a
//! serving deployment fails at construction, not mid-pipeline.

use crate::config::EngineConfig;
use crate::durability::{self, DurabilityHandle};
use crate::engine::DeepDive;
use crate::error::EngineError;
use dd_grounding::{parse_program, standard_udfs, Program, Rule, UdfRegistry, WeightSpec};
use dd_relstore::{Database, RelError};
use dd_storage::{CheckpointStore, DurabilityConfig, StorageError, Wal};

/// Reject any rule whose tied weight references an unregistered UDF — an
/// unregistered name would silently collapse the rule to one shared weight.
/// Shared by [`DeepDiveBuilder::build`] (construction-time rules) and
/// [`crate::DeepDive::run_update`] (rules arriving via `KbcUpdate::add_rule`).
pub(crate) fn check_tied_udfs<'a>(
    rules: impl IntoIterator<Item = &'a Rule>,
    udfs: &UdfRegistry,
) -> Result<(), EngineError> {
    for rule in rules {
        if let WeightSpec::Tied { udf, .. } = &rule.weight {
            if udfs.get(udf).is_none() {
                return Err(EngineError::Udf {
                    rule: rule.name.clone(),
                    udf: udf.clone(),
                    available: udfs.names(),
                });
            }
        }
    }
    Ok(())
}

/// Builder for [`DeepDive`] — start with [`DeepDive::builder`].
///
/// Defaults: empty program, empty database, [`standard_udfs`], and
/// [`EngineConfig::default`].
#[derive(Debug)]
pub struct DeepDiveBuilder {
    program: Option<Program>,
    program_text: Option<String>,
    database: Database,
    udfs: UdfRegistry,
    config: EngineConfig,
    durability: Option<DurabilityConfig>,
}

impl Default for DeepDiveBuilder {
    fn default() -> Self {
        DeepDiveBuilder {
            program: None,
            program_text: None,
            database: Database::new(),
            udfs: standard_udfs(),
            config: EngineConfig::default(),
            durability: None,
        }
    }
}

impl DeepDiveBuilder {
    /// Use an already-constructed [`Program`].
    pub fn program(mut self, program: Program) -> Self {
        self.program = Some(program);
        self.program_text = None;
        self
    }

    /// Use a program written in the text syntax; parsed (and reported as
    /// [`EngineError::Parse`]) by [`DeepDiveBuilder::build`].
    pub fn program_text(mut self, text: impl Into<String>) -> Self {
        self.program_text = Some(text.into());
        self.program = None;
        self
    }

    /// The database of pre-loaded base relations.  Declared relations missing
    /// from it are created empty at build time.
    pub fn database(mut self, db: Database) -> Self {
        self.database = db;
        self
    }

    /// The UDF registry used for feature extraction and weight tying
    /// (defaults to [`standard_udfs`]).
    pub fn udfs(mut self, udfs: UdfRegistry) -> Self {
        self.udfs = udfs;
        self
    }

    /// The engine configuration (defaults to [`EngineConfig::default`]).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Persist the engine to `config.data_dir`: every state-changing call
    /// (`initial_run`, `run_update`, `refresh`, `materialize`) is written to a
    /// write-ahead log before executing, and [`DeepDive::checkpoint`] rolls
    /// the log into a compact checkpoint file.
    ///
    /// [`DeepDiveBuilder::build`] then *opens or recovers* the directory:
    ///
    /// * **Pristine directory** — the engine is built from the supplied
    ///   program/database and a baseline checkpoint of that initial state is
    ///   written immediately, so the directory is recoverable from its first
    ///   moment.
    /// * **Existing directory** — the newest valid checkpoint is loaded and
    ///   the WAL tail beyond it is replayed; the supplied program and
    ///   database are **ignored** in favor of the recovered state (config and
    ///   UDFs are taken from the builder — UDFs are function pointers and
    ///   cannot be persisted, so re-supply the same registry).
    ///
    /// Torn or bit-flipped WAL tails are detected via per-record CRCs and
    /// truncated away; damaged checkpoint files are skipped in favor of the
    /// previous one.
    pub fn durability(mut self, config: DurabilityConfig) -> Self {
        self.durability = Some(config);
        self
    }

    /// Validate the whole configuration and construct the engine.
    ///
    /// Checks, in order: the program text parses ([`EngineError::Parse`]);
    /// every pre-loaded table agrees with its declaration's arity and column
    /// types ([`EngineError::Schema`]); every tied weight resolves to a
    /// registered UDF ([`EngineError::Udf`]); the program is structurally
    /// valid ([`EngineError::Grounding`], from the grounder itself).
    pub fn build(self) -> Result<DeepDive, EngineError> {
        let program = match (self.program, self.program_text) {
            (Some(p), _) => p,
            (None, Some(text)) => parse_program(&text)?,
            (None, None) => Program::new(),
        };
        // Structural program validation happens once, inside `Grounder::new`
        // (reached via `from_parts` below), and surfaces here as
        // `EngineError::Grounding`.

        // Program-vs-database schema agreement: a pre-loaded table whose shape
        // contradicts the declaration would otherwise surface as a confusing
        // join failure deep inside grounding.
        for decl in &program.relations {
            let Ok(table) = self.database.table(&decl.name) else {
                continue; // created empty by the grounder
            };
            let actual = table.schema();
            let expected = &decl.schema;
            let types_match = actual.arity() == expected.arity()
                && actual
                    .columns()
                    .iter()
                    .zip(expected.columns())
                    .all(|(a, e)| a.data_type == e.data_type);
            if !types_match {
                return Err(EngineError::Schema(RelError::SchemaMismatch {
                    table: decl.name.clone(),
                    detail: format!(
                        "declared as {:?}, loaded as {:?}",
                        expected
                            .columns()
                            .iter()
                            .map(|c| c.data_type)
                            .collect::<Vec<_>>(),
                        actual
                            .columns()
                            .iter()
                            .map(|c| c.data_type)
                            .collect::<Vec<_>>()
                    ),
                }));
            }
        }

        check_tied_udfs(&program.rules, &self.udfs)?;

        let Some(cfg) = self.durability else {
            return DeepDive::from_parts(program, self.database, self.udfs, self.config);
        };

        // Open (or create) the stores.  `Wal::open` repairs any torn tail and
        // hands back every surviving `(seq, payload)` record;
        // `CheckpointStore::open` sweeps leftover `.tmp` debris from a crash
        // mid-rotation.
        let checkpoints = CheckpointStore::open(cfg.data_dir.join("checkpoints"))?;
        let (wal, tail) = Wal::open(cfg.data_dir.join("wal"), cfg.fsync)?;
        let latest = checkpoints.latest_valid()?;
        let handle = DurabilityHandle {
            wal,
            checkpoints,
            keep_checkpoints: cfg.keep_checkpoints.max(1),
            checkpoint_every_records: cfg.checkpoint_every_records.map(|n| n.max(1)),
            checkpoint_every_bytes: cfg.checkpoint_every_bytes.map(|n| n.max(1)),
            records_since_checkpoint: 0,
            bytes_since_checkpoint: 0,
        };

        match latest {
            Some((covered, bytes)) => {
                // Recovery: newest valid checkpoint + WAL tail beyond it.
                let state = durability::decode_checkpoint(&bytes)?;
                let mut engine = DeepDive::from_checkpoint(state, self.udfs, self.config)?;
                // `Wal::open` guarantees the tail is contiguous; the one gap
                // still possible is between the checkpoint and the tail's
                // first record — replaying across it would silently skip
                // operations, so refuse instead.
                let mut expected = covered + 1;
                for (seq, payload) in tail {
                    if seq <= covered {
                        continue;
                    }
                    if seq != expected {
                        return Err(EngineError::Storage(StorageError::Corrupt {
                            path: cfg.data_dir.clone(),
                            detail: format!(
                                "checkpoint covers sequence {covered} but the WAL resumes \
                                 at {seq}; records in between have been lost"
                            ),
                        }));
                    }
                    expected += 1;
                    let op = durability::decode_wal_op(&payload)?;
                    if let Err(err) = engine.apply_wal_op(op) {
                        engine.record_replay_error(seq, &err);
                    }
                }
                engine.attach_durability(handle);
                Ok(engine)
            }
            None => {
                // No usable checkpoint.  A WAL that does not reach back to
                // sequence 1 means history before it was pruned after a
                // checkpoint that is now gone — nothing to rebuild from.
                if let Some((first_seq, _)) = tail.first() {
                    if *first_seq > 1 {
                        return Err(EngineError::Storage(StorageError::Corrupt {
                            path: cfg.data_dir.clone(),
                            detail: format!(
                                "no valid checkpoint, and the WAL starts at sequence \
                                 {first_seq}; the operations a checkpoint covered have \
                                 been pruned"
                            ),
                        }));
                    }
                }
                // Pristine directory (or a complete WAL from sequence 1):
                // build from the supplied inputs, replay whatever the log
                // holds, then write the baseline checkpoint.
                let mut engine =
                    DeepDive::from_parts(program, self.database, self.udfs, self.config)?;
                for (seq, payload) in tail {
                    let op = durability::decode_wal_op(&payload)?;
                    if let Err(err) = engine.apply_wal_op(op) {
                        engine.record_replay_error(seq, &err);
                    }
                }
                engine.attach_durability(handle);
                engine.checkpoint()?;
                Ok(engine)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EngineError;
    use dd_relstore::{tuple, DataType, Schema};

    const PROGRAM: &str = r#"
        relation Claim(id: int, text: text) base.
        relation Fact(id: int) variable.
        rule F feature: Fact(id) :- Claim(id, text) weight = phrase(text, text, text).
    "#;

    #[test]
    fn build_with_defaults_succeeds() {
        let dd = DeepDive::builder().build().expect("empty engine builds");
        assert_eq!(dd.snapshot().epoch(), 0);
    }

    #[test]
    fn parse_errors_are_typed() {
        let err = DeepDive::builder()
            .program_text("relatio Claim(id: int) base.")
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::Parse(_)));
    }

    #[test]
    fn invalid_programs_are_grounding_errors() {
        let err = DeepDive::builder()
            .program_text("rule R candidate: A(x) :- B(x).")
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::Grounding(_)));
    }

    #[test]
    fn schema_conflicts_are_caught_at_build_time() {
        let mut db = Database::new();
        // Claim loaded with the wrong arity/types.
        db.create_table("Claim", Schema::of(&[("id", DataType::Text)]))
            .unwrap();
        db.insert("Claim", tuple!["oops"]).unwrap();
        let err = DeepDive::builder()
            .program_text(PROGRAM)
            .database(db)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Schema(RelError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn missing_udfs_are_caught_at_build_time() {
        let err = DeepDive::builder()
            .program_text(PROGRAM)
            .udfs(UdfRegistry::new())
            .build()
            .unwrap_err();
        match err {
            EngineError::Udf {
                rule,
                udf,
                available,
            } => {
                assert_eq!(rule, "F");
                assert_eq!(udf, "phrase");
                assert!(available.is_empty());
            }
            other => panic!("expected Udf error, got {other:?}"),
        }
    }

    #[test]
    fn well_formed_configuration_builds() {
        let mut db = Database::new();
        db.create_table(
            "Claim",
            Schema::of(&[("id", DataType::Int), ("text", DataType::Text)]),
        )
        .unwrap();
        db.insert("Claim", tuple![1i64, "alpha"]).unwrap();
        let dd = DeepDive::builder()
            .program_text(PROGRAM)
            .database(db)
            .config(EngineConfig::fast())
            .build()
            .expect("builds");
        assert_eq!(dd.config().seed, EngineConfig::fast().seed);
    }
}

//! Engine configuration.

use dd_inference::{GibbsOptions, LearnOptions, VariationalOptions};
use serde::{Deserialize, Serialize};

/// Query-variable count at which hogwild inference starts paying for its
/// dispatch overhead (measured with `bench_sweeps`: the 65-variable fig9
/// graph loses, the 4000-variable fig5 graph wins).
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 2048;

/// Configuration of a [`crate::DeepDive`] engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Gibbs options for full (Rerun) inference.
    pub gibbs: GibbsOptions,
    /// Learning options for the initial run and for Rerun (cold start).
    pub learn: LearnOptions,
    /// Number of samples stored by the sampling materialization (`S_M`).
    pub materialization_samples: usize,
    /// Number of chain steps requested at incremental-inference time (`S_I`).
    pub inference_samples: usize,
    /// Options for the variational materialization (Algorithm 1).
    pub variational: VariationalOptions,
    /// Probability threshold above which a fact is emitted into the output KB
    /// (the paper uses `p > 0.9` / `p > 0.95` in different places).
    pub fact_threshold: f64,
    /// Random seed shared by the engine's samplers.
    pub seed: u64,
    /// Size of the engine's persistent worker pool.  `None` (the default)
    /// shares the process-global pool, sized to the machine; `Some(n)` gives
    /// this engine a dedicated pool of parallelism `n` (`Some(1)` forces all
    /// inference sequential).
    pub num_threads: Option<usize>,
    /// Minimum number of *query variables* before full Gibbs inference (and
    /// learning-gradient estimation) switches from the sequential sampler to
    /// hogwild sweeps on the worker pool.  Small graphs stay sequential: a
    /// single chain mixes faster than an under-utilized parallel dispatch,
    /// and sequential runs are bit-deterministic per seed.
    pub parallel_threshold: usize,
    /// When true, an Incremental update that the stored materialization
    /// cannot serve — never materialized, samples exhausted with the
    /// variational fallback stale, or the variational strategy chosen while
    /// stale — returns [`crate::EngineError::StaleMaterialization`] exactly
    /// where the non-strict engine would silently fall back to full Gibbs
    /// sampling.  A serving deployment usually wants to re-materialize on its
    /// own schedule ([`crate::DeepDive::materialize`] +
    /// [`crate::DeepDive::refresh`]) rather than absorb an unbounded latency
    /// spike mid-update.  Defaults to false (paper behavior).
    pub strict_incremental: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            gibbs: GibbsOptions::new(300, 60, 7),
            learn: LearnOptions {
                epochs: 20,
                sweeps_per_epoch: 3,
                ..Default::default()
            },
            materialization_samples: 1500,
            inference_samples: 800,
            variational: VariationalOptions::default(),
            fact_threshold: 0.9,
            seed: 7,
            num_threads: None,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            strict_incremental: false,
        }
    }
}

impl EngineConfig {
    /// A configuration scaled for fast unit tests: smaller sample counts, fewer
    /// epochs.  Experiments use [`EngineConfig::default`] or their own settings.
    pub fn fast() -> Self {
        EngineConfig {
            gibbs: GibbsOptions::new(240, 40, 7),
            learn: LearnOptions {
                epochs: 12,
                sweeps_per_epoch: 4,
                learning_rate: 0.2,
                ..Default::default()
            },
            materialization_samples: 400,
            inference_samples: 300,
            variational: VariationalOptions {
                num_samples: 200,
                burn_in: 40,
                ..Default::default()
            },
            fact_threshold: 0.9,
            seed: 7,
            num_threads: None,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            strict_incremental: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = EngineConfig::default();
        assert!(c.materialization_samples > c.inference_samples);
        assert!(c.fact_threshold > 0.5 && c.fact_threshold < 1.0);
    }

    #[test]
    fn fast_config_is_smaller() {
        let fast = EngineConfig::fast();
        let full = EngineConfig::default();
        assert!(fast.materialization_samples < full.materialization_samples);
        assert!(fast.learn.epochs < full.learn.epochs);
    }
}

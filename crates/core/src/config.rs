//! Engine configuration.

use dd_inference::{GibbsOptions, LearnOptions, VariationalOptions};
use serde::{Deserialize, Serialize};

/// Configuration of a [`crate::DeepDive`] engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Gibbs options for full (Rerun) inference.
    pub gibbs: GibbsOptions,
    /// Learning options for the initial run and for Rerun (cold start).
    pub learn: LearnOptions,
    /// Number of samples stored by the sampling materialization (`S_M`).
    pub materialization_samples: usize,
    /// Number of chain steps requested at incremental-inference time (`S_I`).
    pub inference_samples: usize,
    /// Options for the variational materialization (Algorithm 1).
    pub variational: VariationalOptions,
    /// Probability threshold above which a fact is emitted into the output KB
    /// (the paper uses `p > 0.9` / `p > 0.95` in different places).
    pub fact_threshold: f64,
    /// Random seed shared by the engine's samplers.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            gibbs: GibbsOptions::new(300, 60, 7),
            learn: LearnOptions {
                epochs: 20,
                sweeps_per_epoch: 3,
                ..Default::default()
            },
            materialization_samples: 1500,
            inference_samples: 800,
            variational: VariationalOptions::default(),
            fact_threshold: 0.9,
            seed: 7,
        }
    }
}

impl EngineConfig {
    /// A configuration scaled for fast unit tests: smaller sample counts, fewer
    /// epochs.  Experiments use [`EngineConfig::default`] or their own settings.
    pub fn fast() -> Self {
        EngineConfig {
            gibbs: GibbsOptions::new(240, 40, 7),
            learn: LearnOptions {
                epochs: 12,
                sweeps_per_epoch: 4,
                learning_rate: 0.2,
                ..Default::default()
            },
            materialization_samples: 400,
            inference_samples: 300,
            variational: VariationalOptions {
                num_samples: 200,
                burn_in: 40,
                ..Default::default()
            },
            fact_threshold: 0.9,
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = EngineConfig::default();
        assert!(c.materialization_samples > c.inference_samples);
        assert!(c.fact_threshold > 0.5 && c.fact_threshold < 1.0);
    }

    #[test]
    fn fast_config_is_smaller() {
        let fast = EngineConfig::fast();
        let full = EngineConfig::default();
        assert!(fast.materialization_samples < full.materialization_samples);
        assert!(fast.learn.epochs < full.learn.epochs);
    }
}

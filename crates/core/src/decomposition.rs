//! Decomposition with inactive variables (paper Appendix B.1, Algorithm 2).
//!
//! The developer can declare an "interest area": the relations she will work on
//! in the next iteration.  Variables in those relations are *active*; the rest
//! are *inactive*.  Conditioned on the active variables, the inactive variables
//! split into independent groups, and each group — together with the minimal set
//! of active variables it depends on — can be materialized separately.  Greedy
//! merging (line 4–6 of Algorithm 2) avoids materializing the same active
//! variable many times: two groups are merged whenever one group's active
//! boundary contains the other's.

use dd_factorgraph::{FactorGraph, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One group of Algorithm 2's output: inactive variables plus the active
/// variables conditioning on which they are independent of the rest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecompositionGroup {
    pub inactive: Vec<VarId>,
    pub active_boundary: Vec<VarId>,
}

impl DecompositionGroup {
    /// All variables of the group (inactive ∪ boundary), the set a per-group
    /// sampler would materialize.
    pub fn all_variables(&self) -> Vec<VarId> {
        let mut v: BTreeSet<VarId> = self.inactive.iter().copied().collect();
        v.extend(self.active_boundary.iter().copied());
        v.into_iter().collect()
    }
}

/// Run Algorithm 2 on a factor graph given the set of active variables
/// (`active[v] == true` means variable `v` is active).
pub fn decompose(graph: &FactorGraph, active: &[bool]) -> Vec<DecompositionGroup> {
    assert_eq!(active.len(), graph.num_variables());

    // Line 1: connected components of the graph restricted to inactive variables.
    let components = graph.components_excluding(&|v| active[v]);

    // Line 2: for each component, the minimal set of active variables adjacent to
    // it (conditioning on them separates the component from everything else).
    let mut groups: Vec<DecompositionGroup> = components
        .into_iter()
        .map(|inactive| {
            let mut boundary: BTreeSet<VarId> = BTreeSet::new();
            for &v in &inactive {
                for &f in graph.factors_of(v) {
                    for u in graph.factor(f).variables() {
                        if active[u] {
                            boundary.insert(u);
                        }
                    }
                }
            }
            DecompositionGroup {
                inactive,
                active_boundary: boundary.into_iter().collect(),
            }
        })
        .collect();

    // Lines 4–6: greedily merge groups whose combined boundary is no larger than
    // the bigger of the two (i.e. one boundary contains the other).
    let mut merged = true;
    while merged {
        merged = false;
        'outer: for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                let a: BTreeSet<VarId> = groups[i].active_boundary.iter().copied().collect();
                let b: BTreeSet<VarId> = groups[j].active_boundary.iter().copied().collect();
                let union_size = a.union(&b).count();
                if union_size == a.len().max(b.len()) {
                    let other = groups.remove(j);
                    let target = &mut groups[i];
                    target.inactive.extend(other.inactive);
                    target.inactive.sort_unstable();
                    let boundary: BTreeSet<VarId> = a.union(&b).copied().collect();
                    target.active_boundary = boundary.into_iter().collect();
                    merged = true;
                    break 'outer;
                }
            }
        }
    }
    groups
}

/// Convenience: mark all variables of the given relations as active and
/// decompose.  This mirrors how the "interest area" is declared by relation
/// name in DeepDive.
pub fn decompose_by_relations(graph: &FactorGraph, relations: &[&str]) -> Vec<DecompositionGroup> {
    let active: Vec<bool> = graph
        .variables()
        .iter()
        .map(|v| relations.contains(&v.relation.as_str()))
        .collect();
    decompose(graph, &active)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{Factor, FactorGraphBuilder, Variable};

    /// Chain v0 - v1 - v2 - v3 - v4 with v2 active: removing v2 splits the
    /// inactive variables into {v0, v1} and {v3, v4}, both with boundary {v2}.
    fn chain_graph() -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(5);
        let w = b.tied_weight("w", 1.0, false);
        for i in 1..5 {
            b.add_factor(Factor::equal(w, vs[i - 1], vs[i]));
        }
        b.build()
    }

    #[test]
    fn chain_splits_at_active_variable_and_merges_shared_boundary() {
        let g = chain_graph();
        let active = vec![false, false, true, false, false];
        let groups = decompose(&g, &active);
        // Both sides share the boundary {2}, so the greedy merge joins them.
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].inactive, vec![0, 1, 3, 4]);
        assert_eq!(groups[0].active_boundary, vec![2]);
        assert_eq!(groups[0].all_variables(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn disjoint_boundaries_stay_separate() {
        // Two disconnected pairs: (v0 - v1) and (v2 - v3); v1 and v2 active.
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(4);
        let w = b.tied_weight("w", 1.0, false);
        b.add_factor(Factor::equal(w, vs[0], vs[1]));
        b.add_factor(Factor::equal(w, vs[2], vs[3]));
        let g = b.build();
        let groups = decompose(&g, &[false, true, true, false]);
        assert_eq!(groups.len(), 2);
        let boundaries: Vec<Vec<VarId>> =
            groups.iter().map(|g| g.active_boundary.clone()).collect();
        assert!(boundaries.contains(&vec![1]));
        assert!(boundaries.contains(&vec![2]));
    }

    #[test]
    fn all_active_yields_no_groups() {
        let g = chain_graph();
        let groups = decompose(&g, &[true; 5]);
        assert!(groups.is_empty());
    }

    #[test]
    fn all_inactive_yields_single_component_per_connected_part() {
        let g = chain_graph();
        let groups = decompose(&g, &[false; 5]);
        assert_eq!(groups.len(), 1);
        assert!(groups[0].active_boundary.is_empty());
        assert_eq!(groups[0].inactive.len(), 5);
    }

    #[test]
    fn decompose_by_relation_names() {
        let mut b = FactorGraphBuilder::new();
        let w = b.tied_weight("w", 1.0, false);
        let g = {
            let mut g = b.graph().clone();
            drop(b);
            let a = g.add_variable(Variable::query(0).with_origin("HasSpouse", 0));
            let x = g.add_variable(Variable::query(0).with_origin("MemberOf", 1));
            g.add_factor(Factor::equal(w, a, x));
            g
        };
        let groups = decompose_by_relations(&g, &["HasSpouse"]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].inactive, vec![1]);
        assert_eq!(groups[0].active_boundary, vec![0]);
    }
}

//! Durable state codec: checkpoint and WAL record payloads.
//!
//! The engine's durability story (see [`crate::DeepDiveBuilder::durability`])
//! is the classic ARIES-lite shape: an append-only WAL of logical operations
//! plus periodic full checkpoints, where recovery loads the newest valid
//! checkpoint and replays the WAL tail.  This module owns the *payload* layer:
//! a canonical, self-describing encoding of every piece of engine state into
//! the single-line JSON of [`dd_wire::json`], framed and CRC-protected by
//! [`dd_storage`]'s record layer.
//!
//! Encoding conventions, chosen so that `encode(decode(bytes)) == bytes` for
//! every valid payload (the recovery-idempotency guarantee):
//!
//! * Objects are emitted with a fixed field order (the [`dd_wire::json::Json`]
//!   object is an ordered list of pairs, so encoding is deterministic).
//! * `u64` / `i64` / `usize` quantities are encoded as decimal *strings* —
//!   JSON numbers are `f64` and silently lose precision past 2^53.
//! * `f64` quantities encode as JSON numbers when finite (the encoder prints
//!   the shortest round-tripping form) and as `"bits:<16 hex digits>"`
//!   otherwise, so NaN / infinity survive instead of degrading to `null`.
//! * [`Value::Float`] tuple fields always encode as bit strings: tuple
//!   equality is bit-level (`-0.0 != 0.0` there), and catalog lookups after
//!   recovery must see the exact same keys.
//! * Gibbs sample bundles are opaque byte strings and encode as hex.
//!
//! Every decode failure is a typed [`StorageError::Codec`] naming the field
//! that was malformed — corrupt state is reported, never panicked on and
//! never silently repaired.

use crate::engine::ExecutionMode;
use crate::materialization::Materialization;
use crate::snapshot::{CatalogShard, CatalogShards, Snapshot};
use dd_factorgraph::{
    Factor, FactorGraph, FactorKind, GraphStats, Lit, Semantics, Variable, VariableRole, Weight,
};
use dd_grounding::grounder::GroundingRecord;
use dd_grounding::{
    CatalogOp, GrounderState, KbcUpdate, Program, RelationDecl, RelationRole, Rule, RuleKind,
    WeightSpec,
};
use dd_inference::{
    DistributionChange, Marginals, SampleMaterialization, SampleSet, StrawmanMaterialization,
    VariationalMaterialization,
};
use dd_relstore::view::{Filter, QueryAtom, Term};
use dd_relstore::{Column, DataType, Database, DeltaRelation, Schema, Table, Tuple, Value};
use dd_storage::{CheckpointStore, StorageError, Wal};
use dd_wire::json::{parse, Json};

/// Format version stamped into every checkpoint payload.  Bumped whenever the
/// encoding changes incompatibly; recovery refuses versions it does not know
/// instead of misreading them.
pub const CHECKPOINT_FORMAT_VERSION: u64 = 2;

type R<T> = Result<T, StorageError>;

// ---------------------------------------------------------------------------
// The durable operation log.
// ---------------------------------------------------------------------------

/// One logical operation appended to the WAL *before* it executes.
///
/// Replay re-executes the operation against the recovered state.  All four
/// operations are deterministic given the engine state and config (Gibbs
/// sampling is seeded), so replaying the tail after the last checkpoint
/// reproduces the exact pre-crash state — with one documented exception: a
/// graph large enough to cross `EngineConfig::parallel_threshold` samples with
/// hogwild threads, whose interleaving is not replayable (the checkpoint
/// itself is always exact; see ARCHITECTURE.md).
#[derive(Debug, Clone)]
pub(crate) enum WalOp {
    /// `DeepDive::initial_run`.
    InitialRun,
    /// `DeepDive::run_update` with the given mode.
    Update {
        mode: ExecutionMode,
        update: KbcUpdate,
    },
    /// `DeepDive::retract_supervision`.
    RetractSupervision { relation: String, tuple: Tuple },
    /// `DeepDive::refresh`.
    Refresh,
    /// `DeepDive::materialize`.
    Materialize,
}

/// The open durability stores of a running engine.
pub(crate) struct DurabilityHandle {
    pub wal: Wal,
    pub checkpoints: CheckpointStore,
    /// How many checkpoint files to retain after a successful rotation.
    pub keep_checkpoints: usize,
    /// Auto-checkpoint after this many WAL records since the last
    /// checkpoint (`None`: manual-only).
    pub checkpoint_every_records: Option<u64>,
    /// Auto-checkpoint after this many encoded WAL bytes since the last
    /// checkpoint (`None`: manual-only).
    pub checkpoint_every_bytes: Option<u64>,
    /// WAL records appended since the last checkpoint.
    pub records_since_checkpoint: u64,
    /// Encoded WAL bytes appended since the last checkpoint.
    pub bytes_since_checkpoint: u64,
}

impl DurabilityHandle {
    /// True once either configured threshold has been reached.
    pub fn auto_checkpoint_due(&self) -> bool {
        self.checkpoint_every_records
            .is_some_and(|n| self.records_since_checkpoint >= n)
            || self
                .checkpoint_every_bytes
                .is_some_and(|n| self.bytes_since_checkpoint >= n)
    }
}

/// Everything needed to reconstruct a `DeepDive` engine at a point in time
/// (minus the config and UDF registry, which the builder re-supplies — UDFs
/// are function pointers and cannot be serialized).
pub(crate) struct CheckpointState {
    pub grounder: GrounderState,
    pub materialization: Option<Materialization>,
    pub materialized_epoch: Option<u64>,
    pub materialized_coverage: Option<(usize, usize)>,
    pub cumulative_change: DistributionChange,
    pub learned_weights: Vec<f64>,
    pub epoch: u64,
    pub snapshot: Snapshot,
}

// ---------------------------------------------------------------------------
// Small encode/decode helpers.
// ---------------------------------------------------------------------------

fn bad(context: &str, detail: impl Into<String>) -> StorageError {
    StorageError::codec(context, detail)
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn field<'a>(j: &'a Json, key: &str, ctx: &str) -> R<&'a Json> {
    j.get(key)
        .ok_or_else(|| bad(ctx, format!("missing field `{key}`")))
}

fn str_of<'a>(j: &'a Json, ctx: &str) -> R<&'a str> {
    j.as_str().ok_or_else(|| bad(ctx, "expected a string"))
}

fn bool_of(j: &Json, ctx: &str) -> R<bool> {
    j.as_bool().ok_or_else(|| bad(ctx, "expected a boolean"))
}

fn arr_of<'a>(j: &'a Json, ctx: &str) -> R<&'a [Json]> {
    j.as_array().ok_or_else(|| bad(ctx, "expected an array"))
}

/// Integers ride as decimal strings (JSON numbers are f64; 2^53 is too small
/// for seqs, epochs, and variable keys).
fn enc_u64(n: u64) -> Json {
    Json::String(n.to_string())
}

fn enc_i64(n: i64) -> Json {
    Json::String(n.to_string())
}

fn enc_usize(n: usize) -> Json {
    Json::String(n.to_string())
}

fn u64_of(j: &Json, ctx: &str) -> R<u64> {
    str_of(j, ctx)?
        .parse::<u64>()
        .map_err(|e| bad(ctx, format!("bad u64: {e}")))
}

fn i64_of(j: &Json, ctx: &str) -> R<i64> {
    str_of(j, ctx)?
        .parse::<i64>()
        .map_err(|e| bad(ctx, format!("bad i64: {e}")))
}

fn usize_of(j: &Json, ctx: &str) -> R<usize> {
    str_of(j, ctx)?
        .parse::<usize>()
        .map_err(|e| bad(ctx, format!("bad usize: {e}")))
}

/// Finite floats encode as JSON numbers (shortest round-trip form); NaN and
/// infinities — which JSON cannot represent — as `"bits:<hex>"`.
fn enc_f64(x: f64) -> Json {
    if x.is_finite() {
        Json::Number(x)
    } else {
        Json::String(format!("bits:{:016x}", x.to_bits()))
    }
}

fn f64_of(j: &Json, ctx: &str) -> R<f64> {
    match j {
        Json::Number(n) => Ok(*n),
        Json::String(s) => f64_bits_of(s, ctx),
        _ => Err(bad(ctx, "expected a number or bits string")),
    }
}

/// Bit-exact float form, used for all non-finite floats and for every
/// [`Value::Float`] (tuple equality is bit-level).
fn enc_f64_bits(x: f64) -> Json {
    Json::String(format!("bits:{:016x}", x.to_bits()))
}

fn f64_bits_of(s: &str, ctx: &str) -> R<f64> {
    let hex = s
        .strip_prefix("bits:")
        .ok_or_else(|| bad(ctx, format!("expected `bits:<hex>`, got `{s}`")))?;
    let bits =
        u64::from_str_radix(hex, 16).map_err(|e| bad(ctx, format!("bad float bits: {e}")))?;
    Ok(f64::from_bits(bits))
}

fn enc_hex(bytes: &[u8]) -> Json {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    Json::String(s)
}

fn hex_of(j: &Json, ctx: &str) -> R<Vec<u8>> {
    let s = str_of(j, ctx)?;
    if s.len() % 2 != 0 {
        return Err(bad(ctx, "hex string has odd length"));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for i in (0..s.len()).step_by(2) {
        let byte = u8::from_str_radix(&s[i..i + 2], 16)
            .map_err(|e| bad(ctx, format!("bad hex byte: {e}")))?;
        out.push(byte);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Relational layer: Value, Tuple, Schema, Table, Database, DeltaRelation.
// ---------------------------------------------------------------------------

fn enc_value(v: &Value) -> Json {
    match v {
        Value::Int(i) => obj(vec![("t", Json::String("int".into())), ("v", enc_i64(*i))]),
        Value::Text(s) => obj(vec![
            ("t", Json::String("text".into())),
            ("v", Json::String(s.to_string())),
        ]),
        Value::Bool(b) => obj(vec![
            ("t", Json::String("bool".into())),
            ("v", Json::Bool(*b)),
        ]),
        Value::Float(x) => obj(vec![
            ("t", Json::String("float".into())),
            ("v", enc_f64_bits(*x)),
        ]),
        Value::Null => obj(vec![("t", Json::String("null".into()))]),
    }
}

fn dec_value(j: &Json, ctx: &str) -> R<Value> {
    match str_of(field(j, "t", ctx)?, ctx)? {
        "int" => Ok(Value::Int(i64_of(field(j, "v", ctx)?, ctx)?)),
        "text" => Ok(Value::text(str_of(field(j, "v", ctx)?, ctx)?)),
        "bool" => Ok(Value::Bool(bool_of(field(j, "v", ctx)?, ctx)?)),
        "float" => Ok(Value::Float(f64_bits_of(
            str_of(field(j, "v", ctx)?, ctx)?,
            ctx,
        )?)),
        "null" => Ok(Value::Null),
        other => Err(bad(ctx, format!("unknown value tag `{other}`"))),
    }
}

fn enc_tuple(t: &Tuple) -> Json {
    Json::Array(t.values().iter().map(enc_value).collect())
}

fn dec_tuple(j: &Json, ctx: &str) -> R<Tuple> {
    let values = arr_of(j, ctx)?
        .iter()
        .map(|v| dec_value(v, ctx))
        .collect::<R<Vec<_>>>()?;
    Ok(Tuple::new(values))
}

fn enc_data_type(t: DataType) -> Json {
    Json::String(
        match t {
            DataType::Int => "int",
            DataType::Text => "text",
            DataType::Bool => "bool",
            DataType::Float => "float",
            DataType::Null => "null",
        }
        .into(),
    )
}

fn dec_data_type(j: &Json, ctx: &str) -> R<DataType> {
    match str_of(j, ctx)? {
        "int" => Ok(DataType::Int),
        "text" => Ok(DataType::Text),
        "bool" => Ok(DataType::Bool),
        "float" => Ok(DataType::Float),
        "null" => Ok(DataType::Null),
        other => Err(bad(ctx, format!("unknown data type `{other}`"))),
    }
}

fn enc_schema(s: &Schema) -> Json {
    Json::Array(
        s.columns()
            .iter()
            .map(|c| {
                obj(vec![
                    ("name", Json::String(c.name.clone())),
                    ("type", enc_data_type(c.data_type)),
                ])
            })
            .collect(),
    )
}

fn dec_schema(j: &Json, ctx: &str) -> R<Schema> {
    let columns = arr_of(j, ctx)?
        .iter()
        .map(|c| {
            Ok(Column::new(
                str_of(field(c, "name", ctx)?, ctx)?,
                dec_data_type(field(c, "type", ctx)?, ctx)?,
            ))
        })
        .collect::<R<Vec<_>>>()?;
    Ok(Schema::new(columns))
}

fn enc_table(t: &Table) -> Json {
    // `iter_net_counted` (not `iter_counted`): DRed over-deletion can leave
    // *negative* counts in a view table, and exact recovery must keep them.
    obj(vec![
        ("name", Json::String(t.name().to_string())),
        ("schema", enc_schema(t.schema())),
        (
            "rows",
            Json::Array(
                t.iter_net_counted()
                    .map(|(tuple, count)| Json::Array(vec![enc_tuple(tuple), enc_i64(count)]))
                    .collect(),
            ),
        ),
    ])
}

fn dec_table(j: &Json, ctx: &str) -> R<Table> {
    let name = str_of(field(j, "name", ctx)?, ctx)?;
    let schema = dec_schema(field(j, "schema", ctx)?, ctx)?;
    let mut table = Table::new(name, schema);
    for row in arr_of(field(j, "rows", ctx)?, ctx)? {
        let pair = arr_of(row, ctx)?;
        if pair.len() != 2 {
            return Err(bad(ctx, "table row is not a [tuple, count] pair"));
        }
        let tuple = dec_tuple(&pair[0], ctx)?;
        let count = i64_of(&pair[1], ctx)?;
        table
            .insert_with_count(tuple, count)
            .map_err(|e| bad(ctx, format!("row rejected by schema: {e}")))?;
    }
    Ok(table)
}

fn enc_database(db: &Database) -> Json {
    let mut names = db.table_names();
    names.sort();
    Json::Array(
        names
            .iter()
            .map(|n| enc_table(db.table(n).expect("listed table exists")))
            .collect(),
    )
}

fn dec_database(j: &Json, ctx: &str) -> R<Database> {
    let mut db = Database::new();
    for t in arr_of(j, ctx)? {
        let table = dec_table(t, ctx)?;
        let name = table.name().to_string();
        db.create_or_replace_table(&name, table.schema().clone());
        let dst = db.table_mut(&name).expect("just created");
        for (tuple, count) in table.iter_net_counted() {
            dst.insert_with_count(tuple.clone(), count)
                .map_err(|e| bad(ctx, format!("row rejected by schema: {e}")))?;
        }
    }
    Ok(db)
}

fn enc_delta_relation(d: &DeltaRelation) -> Json {
    obj(vec![
        ("relation", Json::String(d.relation().to_string())),
        (
            "changes",
            Json::Array(
                d.iter()
                    .map(|(t, c)| Json::Array(vec![enc_tuple(t), enc_i64(c)]))
                    .collect(),
            ),
        ),
    ])
}

fn dec_delta_relation(j: &Json, ctx: &str) -> R<DeltaRelation> {
    let mut delta = DeltaRelation::new(str_of(field(j, "relation", ctx)?, ctx)?);
    for change in arr_of(field(j, "changes", ctx)?, ctx)? {
        let pair = arr_of(change, ctx)?;
        if pair.len() != 2 {
            return Err(bad(ctx, "delta change is not a [tuple, count] pair"));
        }
        delta.change(dec_tuple(&pair[0], ctx)?, i64_of(&pair[1], ctx)?);
    }
    Ok(delta)
}

// ---------------------------------------------------------------------------
// Program layer: terms, atoms, filters, rules, declarations.
// ---------------------------------------------------------------------------

fn enc_term(t: &Term) -> Json {
    match t {
        Term::Var(v) => obj(vec![("var", Json::String(v.clone()))]),
        Term::Const(v) => obj(vec![("const", enc_value(v))]),
    }
}

fn dec_term(j: &Json, ctx: &str) -> R<Term> {
    if let Some(v) = j.get("var") {
        Ok(Term::Var(str_of(v, ctx)?.to_string()))
    } else if let Some(v) = j.get("const") {
        Ok(Term::Const(dec_value(v, ctx)?))
    } else {
        Err(bad(ctx, "term is neither `var` nor `const`"))
    }
}

fn enc_atom(a: &QueryAtom) -> Json {
    obj(vec![
        ("relation", Json::String(a.relation.clone())),
        ("terms", Json::Array(a.terms.iter().map(enc_term).collect())),
        ("negated", Json::Bool(a.negated)),
    ])
}

fn dec_atom(j: &Json, ctx: &str) -> R<QueryAtom> {
    let terms = arr_of(field(j, "terms", ctx)?, ctx)?
        .iter()
        .map(|t| dec_term(t, ctx))
        .collect::<R<Vec<_>>>()?;
    let mut atom = QueryAtom::new(str_of(field(j, "relation", ctx)?, ctx)?, terms);
    if bool_of(field(j, "negated", ctx)?, ctx)? {
        atom = atom.negated();
    }
    Ok(atom)
}

fn enc_filter(f: &Filter) -> Json {
    let (op, l, r) = match f {
        Filter::Ne(l, r) => ("ne", l, r),
        Filter::Eq(l, r) => ("eq", l, r),
        Filter::Lt(l, r) => ("lt", l, r),
    };
    obj(vec![
        ("op", Json::String(op.into())),
        ("l", Json::String(l.clone())),
        ("r", Json::String(r.clone())),
    ])
}

fn dec_filter(j: &Json, ctx: &str) -> R<Filter> {
    let l = str_of(field(j, "l", ctx)?, ctx)?.to_string();
    let r = str_of(field(j, "r", ctx)?, ctx)?.to_string();
    match str_of(field(j, "op", ctx)?, ctx)? {
        "ne" => Ok(Filter::Ne(l, r)),
        "eq" => Ok(Filter::Eq(l, r)),
        "lt" => Ok(Filter::Lt(l, r)),
        other => Err(bad(ctx, format!("unknown filter op `{other}`"))),
    }
}

fn enc_semantics(s: Semantics) -> Json {
    Json::String(s.label().into())
}

fn dec_semantics(j: &Json, ctx: &str) -> R<Semantics> {
    match str_of(j, ctx)? {
        "Linear" => Ok(Semantics::Linear),
        "Ratio" => Ok(Semantics::Ratio),
        "Logical" => Ok(Semantics::Logical),
        other => Err(bad(ctx, format!("unknown semantics `{other}`"))),
    }
}

fn enc_rule_kind(k: RuleKind) -> Json {
    Json::String(k.label().into())
}

fn dec_rule_kind(j: &Json, ctx: &str) -> R<RuleKind> {
    match str_of(j, ctx)? {
        "candidate" => Ok(RuleKind::CandidateMapping),
        "feature" => Ok(RuleKind::FeatureExtraction),
        "supervision" => Ok(RuleKind::Supervision),
        "inference" => Ok(RuleKind::Inference),
        "analysis" => Ok(RuleKind::ErrorAnalysis),
        other => Err(bad(ctx, format!("unknown rule kind `{other}`"))),
    }
}

fn enc_weight_spec(w: &WeightSpec) -> Json {
    match w {
        WeightSpec::Fixed(v) => obj(vec![
            ("t", Json::String("fixed".into())),
            ("v", enc_f64(*v)),
        ]),
        WeightSpec::Learnable { initial } => obj(vec![
            ("t", Json::String("learnable".into())),
            ("initial", enc_f64(*initial)),
        ]),
        WeightSpec::Tied { udf, args } => obj(vec![
            ("t", Json::String("tied".into())),
            ("udf", Json::String(udf.clone())),
            (
                "args",
                Json::Array(args.iter().map(|a| Json::String(a.clone())).collect()),
            ),
        ]),
        WeightSpec::Label(polarity) => obj(vec![
            ("t", Json::String("label".into())),
            ("v", Json::Bool(*polarity)),
        ]),
        WeightSpec::None => obj(vec![("t", Json::String("none".into()))]),
    }
}

fn dec_weight_spec(j: &Json, ctx: &str) -> R<WeightSpec> {
    match str_of(field(j, "t", ctx)?, ctx)? {
        "fixed" => Ok(WeightSpec::Fixed(f64_of(field(j, "v", ctx)?, ctx)?)),
        "learnable" => Ok(WeightSpec::Learnable {
            initial: f64_of(field(j, "initial", ctx)?, ctx)?,
        }),
        "tied" => Ok(WeightSpec::Tied {
            udf: str_of(field(j, "udf", ctx)?, ctx)?.to_string(),
            args: arr_of(field(j, "args", ctx)?, ctx)?
                .iter()
                .map(|a| Ok(str_of(a, ctx)?.to_string()))
                .collect::<R<Vec<_>>>()?,
        }),
        "label" => Ok(WeightSpec::Label(bool_of(field(j, "v", ctx)?, ctx)?)),
        "none" => Ok(WeightSpec::None),
        other => Err(bad(ctx, format!("unknown weight spec `{other}`"))),
    }
}

fn enc_rule(r: &Rule) -> Json {
    obj(vec![
        ("name", Json::String(r.name.clone())),
        ("kind", enc_rule_kind(r.kind)),
        ("head", enc_atom(&r.head)),
        ("body", Json::Array(r.body.iter().map(enc_atom).collect())),
        (
            "filters",
            Json::Array(r.filters.iter().map(enc_filter).collect()),
        ),
        ("weight", enc_weight_spec(&r.weight)),
        ("semantics", enc_semantics(r.semantics)),
    ])
}

fn dec_rule(j: &Json, ctx: &str) -> R<Rule> {
    let body = arr_of(field(j, "body", ctx)?, ctx)?
        .iter()
        .map(|a| dec_atom(a, ctx))
        .collect::<R<Vec<_>>>()?;
    let filters = arr_of(field(j, "filters", ctx)?, ctx)?
        .iter()
        .map(|f| dec_filter(f, ctx))
        .collect::<R<Vec<_>>>()?;
    Ok(Rule::new(
        str_of(field(j, "name", ctx)?, ctx)?,
        dec_rule_kind(field(j, "kind", ctx)?, ctx)?,
        dec_atom(field(j, "head", ctx)?, ctx)?,
        body,
        dec_weight_spec(field(j, "weight", ctx)?, ctx)?,
    )
    .with_filters(filters)
    .with_semantics(dec_semantics(field(j, "semantics", ctx)?, ctx)?))
}

fn enc_program(p: &Program) -> Json {
    obj(vec![
        (
            "relations",
            Json::Array(
                p.relations
                    .iter()
                    .map(|d| {
                        obj(vec![
                            ("name", Json::String(d.name.clone())),
                            ("schema", enc_schema(&d.schema)),
                            (
                                "role",
                                Json::String(
                                    match d.role {
                                        RelationRole::Base => "base",
                                        RelationRole::Derived => "derived",
                                        RelationRole::Variable => "variable",
                                    }
                                    .into(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("rules", Json::Array(p.rules.iter().map(enc_rule).collect())),
    ])
}

fn dec_program(j: &Json, ctx: &str) -> R<Program> {
    let mut program = Program::new();
    for d in arr_of(field(j, "relations", ctx)?, ctx)? {
        let role = match str_of(field(d, "role", ctx)?, ctx)? {
            "base" => RelationRole::Base,
            "derived" => RelationRole::Derived,
            "variable" => RelationRole::Variable,
            other => return Err(bad(ctx, format!("unknown relation role `{other}`"))),
        };
        program = program.declare(RelationDecl::new(
            str_of(field(d, "name", ctx)?, ctx)?,
            dec_schema(field(d, "schema", ctx)?, ctx)?,
            role,
        ));
    }
    for r in arr_of(field(j, "rules", ctx)?, ctx)? {
        program = program.rule(dec_rule(r, ctx)?);
    }
    Ok(program)
}

// ---------------------------------------------------------------------------
// Factor graph layer.
// ---------------------------------------------------------------------------

fn enc_variable(v: &Variable) -> Json {
    obj(vec![
        ("id", enc_usize(v.id)),
        (
            "role",
            Json::String(
                match v.role {
                    VariableRole::Query => "query",
                    VariableRole::PositiveEvidence => "pos",
                    VariableRole::NegativeEvidence => "neg",
                }
                .into(),
            ),
        ),
        ("initial_value", Json::Bool(v.initial_value)),
        ("active", Json::Bool(v.active)),
        ("relation", Json::String(v.relation.clone())),
        ("key", enc_u64(v.key)),
    ])
}

fn dec_variable(j: &Json, ctx: &str) -> R<Variable> {
    let role = match str_of(field(j, "role", ctx)?, ctx)? {
        "query" => VariableRole::Query,
        "pos" => VariableRole::PositiveEvidence,
        "neg" => VariableRole::NegativeEvidence,
        other => return Err(bad(ctx, format!("unknown variable role `{other}`"))),
    };
    let mut var = Variable::query(usize_of(field(j, "id", ctx)?, ctx)?);
    var.role = role;
    var.initial_value = bool_of(field(j, "initial_value", ctx)?, ctx)?;
    var.active = bool_of(field(j, "active", ctx)?, ctx)?;
    var.relation = str_of(field(j, "relation", ctx)?, ctx)?.to_string();
    var.key = u64_of(field(j, "key", ctx)?, ctx)?;
    Ok(var)
}

fn enc_lit(l: &Lit) -> Json {
    Json::Array(vec![enc_usize(l.var), Json::Bool(l.positive)])
}

fn dec_lit(j: &Json, ctx: &str) -> R<Lit> {
    let pair = arr_of(j, ctx)?;
    if pair.len() != 2 {
        return Err(bad(ctx, "literal is not a [var, positive] pair"));
    }
    Ok(Lit {
        var: usize_of(&pair[0], ctx)?,
        positive: bool_of(&pair[1], ctx)?,
    })
}

fn enc_lits(lits: &[Lit]) -> Json {
    Json::Array(lits.iter().map(enc_lit).collect())
}

fn dec_lits(j: &Json, ctx: &str) -> R<Vec<Lit>> {
    arr_of(j, ctx)?.iter().map(|l| dec_lit(l, ctx)).collect()
}

fn enc_factor(f: &Factor) -> Json {
    let kind = match &f.kind {
        FactorKind::Conjunction(lits) => obj(vec![
            ("t", Json::String("conj".into())),
            ("lits", enc_lits(lits)),
        ]),
        FactorKind::Imply { body, head } => obj(vec![
            ("t", Json::String("imply".into())),
            ("body", enc_lits(body)),
            ("head", enc_lit(head)),
        ]),
        FactorKind::Equal(a, b) => obj(vec![
            ("t", Json::String("equal".into())),
            ("a", enc_usize(*a)),
            ("b", enc_usize(*b)),
        ]),
        FactorKind::IsTrue(v) => obj(vec![
            ("t", Json::String("is_true".into())),
            ("v", enc_usize(*v)),
        ]),
        FactorKind::Aggregate {
            head,
            semantics,
            groundings,
        } => obj(vec![
            ("t", Json::String("agg".into())),
            ("head", enc_lit(head)),
            ("semantics", enc_semantics(*semantics)),
            (
                "groundings",
                Json::Array(groundings.iter().map(|g| enc_lits(g)).collect()),
            ),
        ]),
    };
    obj(vec![("weight", enc_usize(f.weight_id)), ("kind", kind)])
}

fn dec_factor(j: &Json, ctx: &str) -> R<Factor> {
    let weight_id = usize_of(field(j, "weight", ctx)?, ctx)?;
    let k = field(j, "kind", ctx)?;
    let kind = match str_of(field(k, "t", ctx)?, ctx)? {
        "conj" => FactorKind::Conjunction(dec_lits(field(k, "lits", ctx)?, ctx)?),
        "imply" => FactorKind::Imply {
            body: dec_lits(field(k, "body", ctx)?, ctx)?,
            head: dec_lit(field(k, "head", ctx)?, ctx)?,
        },
        "equal" => FactorKind::Equal(
            usize_of(field(k, "a", ctx)?, ctx)?,
            usize_of(field(k, "b", ctx)?, ctx)?,
        ),
        "is_true" => FactorKind::IsTrue(usize_of(field(k, "v", ctx)?, ctx)?),
        "agg" => FactorKind::Aggregate {
            head: dec_lit(field(k, "head", ctx)?, ctx)?,
            semantics: dec_semantics(field(k, "semantics", ctx)?, ctx)?,
            groundings: arr_of(field(k, "groundings", ctx)?, ctx)?
                .iter()
                .map(|g| dec_lits(g, ctx))
                .collect::<R<Vec<_>>>()?,
        },
        other => return Err(bad(ctx, format!("unknown factor kind `{other}`"))),
    };
    Ok(Factor::new(weight_id, kind))
}

fn enc_graph(g: &FactorGraph) -> Json {
    obj(vec![
        (
            "variables",
            Json::Array(g.variables().iter().map(enc_variable).collect()),
        ),
        (
            "weights",
            Json::Array(
                g.weights()
                    .iter()
                    .map(|w| {
                        obj(vec![
                            ("id", enc_usize(w.id)),
                            ("value", enc_f64(w.value)),
                            ("fixed", Json::Bool(w.fixed)),
                            ("description", Json::String(w.description.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "factors",
            Json::Array(g.factors().iter().map(enc_factor).collect()),
        ),
    ])
}

fn dec_graph(j: &Json, ctx: &str) -> R<FactorGraph> {
    let mut graph = FactorGraph::new();
    // Replay in id order: `add_*` assigns ids sequentially, so re-adding in
    // the encoded (id) order reproduces ids, the (relation, key) variable
    // index, and the factor adjacency lists exactly.
    for w in arr_of(field(j, "weights", ctx)?, ctx)? {
        let mut weight = Weight::learnable(
            usize_of(field(w, "id", ctx)?, ctx)?,
            f64_of(field(w, "value", ctx)?, ctx)?,
            str_of(field(w, "description", ctx)?, ctx)?,
        );
        weight.fixed = bool_of(field(w, "fixed", ctx)?, ctx)?;
        graph.add_weight(weight);
    }
    for v in arr_of(field(j, "variables", ctx)?, ctx)? {
        graph.add_variable(dec_variable(v, ctx)?);
    }
    for f in arr_of(field(j, "factors", ctx)?, ctx)? {
        graph.add_factor(dec_factor(f, ctx)?);
    }
    Ok(graph)
}

// ---------------------------------------------------------------------------
// Inference layer: marginals, samples, materializations, distribution change.
// ---------------------------------------------------------------------------

fn enc_f64s(xs: &[f64]) -> Json {
    Json::Array(xs.iter().map(|&x| enc_f64(x)).collect())
}

fn dec_f64s(j: &Json, ctx: &str) -> R<Vec<f64>> {
    arr_of(j, ctx)?.iter().map(|x| f64_of(x, ctx)).collect()
}

fn enc_marginals(m: &Marginals) -> Json {
    enc_f64s(m.values())
}

fn dec_marginals(j: &Json, ctx: &str) -> R<Marginals> {
    Ok(Marginals::from_values(dec_f64s(j, ctx)?))
}

fn enc_sample_set(s: &SampleSet) -> Json {
    obj(vec![
        ("num_vars", enc_usize(s.num_vars)),
        (
            "bundles",
            Json::Array(s.bundles().iter().map(|b| enc_hex(b)).collect()),
        ),
    ])
}

fn dec_sample_set(j: &Json, ctx: &str) -> R<SampleSet> {
    let num_vars = usize_of(field(j, "num_vars", ctx)?, ctx)?;
    let bundles = arr_of(field(j, "bundles", ctx)?, ctx)?
        .iter()
        .map(|b| hex_of(b, ctx))
        .collect::<R<Vec<_>>>()?;
    Ok(SampleSet::from_bundles(num_vars, bundles))
}

fn enc_materialization(m: &Materialization) -> Json {
    let strawman = match &m.strawman {
        None => Json::Null,
        Some(s) => obj(vec![
            (
                "query_vars",
                Json::Array(s.query_vars().iter().map(|&v| enc_usize(v)).collect()),
            ),
            ("num_vars", enc_usize(s.num_vars())),
            (
                "base_world",
                Json::Array(s.base_world().iter().map(|&b| Json::Bool(b)).collect()),
            ),
            ("log_weights", enc_f64s(s.log_weights())),
        ]),
    };
    obj(vec![
        (
            "sampling",
            obj(vec![
                ("samples", enc_sample_set(m.sampling.samples())),
                (
                    "num_original_vars",
                    enc_usize(m.sampling.num_original_vars()),
                ),
            ]),
        ),
        (
            "variational",
            obj(vec![
                ("approx_graph", enc_graph(m.variational.approx_graph())),
                (
                    "pairwise_factors",
                    enc_usize(m.variational.num_pairwise_factors()),
                ),
                (
                    "candidate_pairs",
                    enc_usize(m.variational.num_candidate_pairs()),
                ),
                ("lambda", enc_f64(m.variational.lambda())),
            ]),
        ),
        ("strawman", strawman),
        ("weights", enc_f64s(&m.weights)),
        ("seconds", enc_f64(m.seconds)),
        ("num_samples", enc_usize(m.num_samples)),
    ])
}

fn dec_materialization(j: &Json, ctx: &str) -> R<Materialization> {
    let s = field(j, "sampling", ctx)?;
    let sampling = SampleMaterialization::from_samples(
        dec_sample_set(field(s, "samples", ctx)?, ctx)?,
        usize_of(field(s, "num_original_vars", ctx)?, ctx)?,
    );
    let v = field(j, "variational", ctx)?;
    let variational = VariationalMaterialization::from_parts(
        dec_graph(field(v, "approx_graph", ctx)?, ctx)?,
        usize_of(field(v, "pairwise_factors", ctx)?, ctx)?,
        usize_of(field(v, "candidate_pairs", ctx)?, ctx)?,
        f64_of(field(v, "lambda", ctx)?, ctx)?,
    );
    let strawman = match field(j, "strawman", ctx)? {
        Json::Null => None,
        s => {
            let query_vars = arr_of(field(s, "query_vars", ctx)?, ctx)?
                .iter()
                .map(|v| usize_of(v, ctx))
                .collect::<R<Vec<_>>>()?;
            let base_world = arr_of(field(s, "base_world", ctx)?, ctx)?
                .iter()
                .map(|b| bool_of(b, ctx))
                .collect::<R<Vec<_>>>()?;
            Some(StrawmanMaterialization::from_parts(
                query_vars,
                usize_of(field(s, "num_vars", ctx)?, ctx)?,
                base_world,
                dec_f64s(field(s, "log_weights", ctx)?, ctx)?,
            ))
        }
    };
    Ok(Materialization {
        sampling,
        variational,
        strawman,
        weights: dec_f64s(field(j, "weights", ctx)?, ctx)?,
        seconds: f64_of(field(j, "seconds", ctx)?, ctx)?,
        num_samples: usize_of(field(j, "num_samples", ctx)?, ctx)?,
    })
}

fn enc_distribution_change(c: &DistributionChange) -> Json {
    obj(vec![
        (
            "new_factors",
            Json::Array(c.new_factors.iter().map(|&f| enc_usize(f)).collect()),
        ),
        (
            "changed_weights",
            Json::Array(
                c.changed_weights
                    .iter()
                    .map(|&(w, v)| Json::Array(vec![enc_usize(w), enc_f64(v)]))
                    .collect(),
            ),
        ),
        (
            "new_evidence",
            Json::Array(
                c.new_evidence
                    .iter()
                    .map(|&(v, b)| Json::Array(vec![enc_usize(v), Json::Bool(b)]))
                    .collect(),
            ),
        ),
        (
            "new_variables",
            Json::Array(c.new_variables.iter().map(|&v| enc_usize(v)).collect()),
        ),
    ])
}

fn dec_distribution_change(j: &Json, ctx: &str) -> R<DistributionChange> {
    let mut change = DistributionChange::default();
    for f in arr_of(field(j, "new_factors", ctx)?, ctx)? {
        change.new_factors.push(usize_of(f, ctx)?);
    }
    for pair in arr_of(field(j, "changed_weights", ctx)?, ctx)? {
        let p = arr_of(pair, ctx)?;
        if p.len() != 2 {
            return Err(bad(ctx, "changed weight is not a [id, value] pair"));
        }
        change
            .changed_weights
            .push((usize_of(&p[0], ctx)?, f64_of(&p[1], ctx)?));
    }
    for pair in arr_of(field(j, "new_evidence", ctx)?, ctx)? {
        let p = arr_of(pair, ctx)?;
        if p.len() != 2 {
            return Err(bad(ctx, "new evidence is not a [var, value] pair"));
        }
        change
            .new_evidence
            .push((usize_of(&p[0], ctx)?, bool_of(&p[1], ctx)?));
    }
    for v in arr_of(field(j, "new_variables", ctx)?, ctx)? {
        change.new_variables.push(usize_of(v, ctx)?);
    }
    Ok(change)
}

// ---------------------------------------------------------------------------
// Grounder state.
// ---------------------------------------------------------------------------

fn enc_grounder_state(s: &GrounderState) -> Json {
    obj(vec![
        ("program", enc_program(&s.program)),
        ("db", enc_database(&s.db)),
        ("graph", enc_graph(&s.graph)),
        (
            "var_catalog",
            Json::Array(
                s.var_catalog
                    .iter()
                    .map(|(rel, tuple, var)| {
                        Json::Array(vec![
                            Json::String(rel.clone()),
                            enc_tuple(tuple),
                            enc_usize(*var),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "catalog_ops",
            Json::Array(
                s.catalog_ops
                    .iter()
                    .map(|(rel, ops)| {
                        Json::Array(vec![
                            Json::String(rel.clone()),
                            Json::Array(ops.iter().map(enc_catalog_op).collect()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "grounded_bindings",
            Json::Array(
                s.grounded_bindings
                    .iter()
                    .map(|(rule, bindings)| {
                        Json::Array(vec![
                            Json::String(rule.clone()),
                            Json::Array(
                                bindings
                                    .iter()
                                    .map(|(t, rec)| {
                                        Json::Array(vec![enc_tuple(t), enc_grounding_record(rec)])
                                    })
                                    .collect(),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "view_rules",
            Json::Array(
                s.view_rules
                    .iter()
                    .map(|r| Json::String(r.clone()))
                    .collect(),
            ),
        ),
        (
            "suppressed_labels",
            Json::Array(
                s.suppressed_labels
                    .iter()
                    .map(|(rel, t)| Json::Array(vec![Json::String(rel.clone()), enc_tuple(t)]))
                    .collect(),
            ),
        ),
        ("next_var_key", enc_u64(s.next_var_key)),
    ])
}

fn enc_catalog_op(op: &CatalogOp) -> Json {
    match op {
        CatalogOp::Upsert(t, v) => Json::Array(vec![
            Json::String("upsert".into()),
            enc_tuple(t),
            enc_usize(*v),
        ]),
        CatalogOp::Remove(t) => Json::Array(vec![Json::String("remove".into()), enc_tuple(t)]),
    }
}

fn dec_catalog_op(j: &Json, ctx: &str) -> R<CatalogOp> {
    let e = arr_of(j, ctx)?;
    match e.first().map(|tag| str_of(tag, ctx)).transpose()? {
        Some("upsert") if e.len() == 3 => Ok(CatalogOp::Upsert(
            dec_tuple(&e[1], ctx)?,
            usize_of(&e[2], ctx)?,
        )),
        Some("remove") if e.len() == 2 => Ok(CatalogOp::Remove(dec_tuple(&e[1], ctx)?)),
        _ => Err(bad(
            ctx,
            "catalog op is not [\"upsert\", tuple, var] or [\"remove\", tuple]",
        )),
    }
}

fn enc_grounding_record(rec: &GroundingRecord) -> Json {
    obj(vec![
        ("support", enc_i64(rec.support)),
        (
            "factor",
            match rec.factor {
                None => Json::Null,
                Some(f) => enc_usize(f),
            },
        ),
        (
            "label",
            match rec.label {
                None => Json::Null,
                Some(b) => Json::Bool(b),
            },
        ),
    ])
}

fn dec_grounding_record(j: &Json, ctx: &str) -> R<GroundingRecord> {
    let factor = match field(j, "factor", ctx)? {
        Json::Null => None,
        other => Some(usize_of(other, ctx)?),
    };
    let label = match field(j, "label", ctx)? {
        Json::Null => None,
        other => Some(bool_of(other, ctx)?),
    };
    Ok(GroundingRecord {
        support: i64_of(field(j, "support", ctx)?, ctx)?,
        factor,
        label,
    })
}

fn dec_grounder_state(j: &Json, ctx: &str) -> R<GrounderState> {
    let mut var_catalog = Vec::new();
    for entry in arr_of(field(j, "var_catalog", ctx)?, ctx)? {
        let e = arr_of(entry, ctx)?;
        if e.len() != 3 {
            return Err(bad(ctx, "var_catalog entry is not [relation, tuple, var]"));
        }
        var_catalog.push((
            str_of(&e[0], ctx)?.to_string(),
            dec_tuple(&e[1], ctx)?,
            usize_of(&e[2], ctx)?,
        ));
    }
    let mut catalog_ops = Vec::new();
    for entry in arr_of(field(j, "catalog_ops", ctx)?, ctx)? {
        let e = arr_of(entry, ctx)?;
        if e.len() != 2 {
            return Err(bad(ctx, "catalog_ops entry is not [relation, ops]"));
        }
        let ops = arr_of(&e[1], ctx)?
            .iter()
            .map(|op| dec_catalog_op(op, ctx))
            .collect::<R<Vec<_>>>()?;
        catalog_ops.push((str_of(&e[0], ctx)?.to_string(), ops));
    }
    let mut grounded_bindings = Vec::new();
    for entry in arr_of(field(j, "grounded_bindings", ctx)?, ctx)? {
        let e = arr_of(entry, ctx)?;
        if e.len() != 2 {
            return Err(bad(ctx, "grounded_bindings entry is not [rule, bindings]"));
        }
        let mut bindings = Vec::new();
        for pair in arr_of(&e[1], ctx)? {
            let p = arr_of(pair, ctx)?;
            if p.len() != 2 {
                return Err(bad(ctx, "grounded binding is not a [tuple, record] pair"));
            }
            bindings.push((dec_tuple(&p[0], ctx)?, dec_grounding_record(&p[1], ctx)?));
        }
        grounded_bindings.push((str_of(&e[0], ctx)?.to_string(), bindings));
    }
    let view_rules = arr_of(field(j, "view_rules", ctx)?, ctx)?
        .iter()
        .map(|r| Ok(str_of(r, ctx)?.to_string()))
        .collect::<R<Vec<_>>>()?;
    let mut suppressed_labels = Vec::new();
    for entry in arr_of(field(j, "suppressed_labels", ctx)?, ctx)? {
        let e = arr_of(entry, ctx)?;
        if e.len() != 2 {
            return Err(bad(ctx, "suppressed label is not a [relation, tuple] pair"));
        }
        suppressed_labels.push((str_of(&e[0], ctx)?.to_string(), dec_tuple(&e[1], ctx)?));
    }
    Ok(GrounderState {
        program: dec_program(field(j, "program", ctx)?, ctx)?,
        db: dec_database(field(j, "db", ctx)?, ctx)?,
        graph: dec_graph(field(j, "graph", ctx)?, ctx)?,
        var_catalog,
        catalog_ops,
        grounded_bindings,
        view_rules,
        suppressed_labels,
        next_var_key: u64_of(field(j, "next_var_key", ctx)?, ctx)?,
    })
}

// ---------------------------------------------------------------------------
// Snapshot codec (public: satellite for storage tests and tooling).
// ---------------------------------------------------------------------------

fn enc_stats(s: &GraphStats) -> Json {
    obj(vec![
        ("num_variables", enc_usize(s.num_variables)),
        ("num_query_variables", enc_usize(s.num_query_variables)),
        (
            "num_evidence_variables",
            enc_usize(s.num_evidence_variables),
        ),
        ("num_factors", enc_usize(s.num_factors)),
        ("num_weights", enc_usize(s.num_weights)),
        ("weight_density", enc_f64(s.weight_density)),
        ("avg_degree", enc_f64(s.avg_degree)),
    ])
}

fn dec_stats(j: &Json, ctx: &str) -> R<GraphStats> {
    Ok(GraphStats {
        num_variables: usize_of(field(j, "num_variables", ctx)?, ctx)?,
        num_query_variables: usize_of(field(j, "num_query_variables", ctx)?, ctx)?,
        num_evidence_variables: usize_of(field(j, "num_evidence_variables", ctx)?, ctx)?,
        num_factors: usize_of(field(j, "num_factors", ctx)?, ctx)?,
        num_weights: usize_of(field(j, "num_weights", ctx)?, ctx)?,
        weight_density: f64_of(field(j, "weight_density", ctx)?, ctx)?,
        avg_degree: f64_of(field(j, "avg_degree", ctx)?, ctx)?,
    })
}

fn enc_catalog(c: &CatalogShards) -> Json {
    Json::Array(
        c.shards()
            .iter()
            .map(|shard| {
                obj(vec![
                    ("relation", Json::String(shard.relation().to_string())),
                    ("generation", enc_u64(shard.generation())),
                    (
                        "entries",
                        Json::Array(
                            shard
                                .index()
                                .entries()
                                .iter()
                                .map(|(t, v)| Json::Array(vec![enc_tuple(t), enc_usize(*v)]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

fn dec_catalog(j: &Json, ctx: &str) -> R<CatalogShards> {
    let mut shards = Vec::new();
    for s in arr_of(j, ctx)? {
        let mut entries = Vec::new();
        for pair in arr_of(field(s, "entries", ctx)?, ctx)? {
            let p = arr_of(pair, ctx)?;
            if p.len() != 2 {
                return Err(bad(ctx, "catalog entry is not a [tuple, var] pair"));
            }
            entries.push((dec_tuple(&p[0], ctx)?, usize_of(&p[1], ctx)?));
        }
        shards.push(CatalogShard::from_parts(
            str_of(field(s, "relation", ctx)?, ctx)?.to_string(),
            u64_of(field(s, "generation", ctx)?, ctx)?,
            entries,
        ));
    }
    Ok(CatalogShards::from_shards(shards))
}

fn snapshot_to_json(s: &Snapshot) -> Json {
    obj(vec![
        ("epoch", enc_u64(s.epoch())),
        ("marginals", enc_marginals(s.marginals())),
        ("weights", enc_f64s(s.weights())),
        ("catalog", enc_catalog(s.catalog())),
        ("stats", enc_stats(s.stats())),
        ("fact_threshold", enc_f64(s.fact_threshold())),
    ])
}

fn snapshot_from_json(j: &Json, ctx: &str) -> R<Snapshot> {
    Ok(Snapshot::publish(
        u64_of(field(j, "epoch", ctx)?, ctx)?,
        dec_marginals(field(j, "marginals", ctx)?, ctx)?,
        dec_f64s(field(j, "weights", ctx)?, ctx)?,
        dec_catalog(field(j, "catalog", ctx)?, ctx)?,
        dec_stats(field(j, "stats", ctx)?, ctx)?,
        f64_of(field(j, "fact_threshold", ctx)?, ctx)?,
    ))
}

/// Encode a [`Snapshot`] to its canonical checkpoint-codec bytes.
///
/// The encoding is deterministic: two snapshots with equal state produce
/// byte-identical output, which is what the recovery-idempotency tests
/// compare.  Pairs with [`decode_snapshot`].
pub fn encode_snapshot(s: &Snapshot) -> Vec<u8> {
    snapshot_to_json(s).encode().into_bytes()
}

/// Decode bytes produced by [`encode_snapshot`].
///
/// Malformed input yields a typed [`StorageError::Codec`]; this never panics.
pub fn decode_snapshot(bytes: &[u8]) -> R<Snapshot> {
    let ctx = "decoding snapshot";
    let text = std::str::from_utf8(bytes).map_err(|e| bad(ctx, format!("not UTF-8: {e}")))?;
    let json = parse(text).map_err(|e| bad(ctx, e))?;
    snapshot_from_json(&json, ctx)
}

// ---------------------------------------------------------------------------
// WAL op + checkpoint payloads.
// ---------------------------------------------------------------------------

pub(crate) fn encode_wal_op(op: &WalOp) -> Vec<u8> {
    let json = match op {
        WalOp::InitialRun => obj(vec![("op", Json::String("initial_run".into()))]),
        WalOp::Refresh => obj(vec![("op", Json::String("refresh".into()))]),
        WalOp::Materialize => obj(vec![("op", Json::String("materialize".into()))]),
        WalOp::Update { mode, update } => {
            let mut deltas: Vec<(&String, &DeltaRelation)> = update.base_deltas.iter().collect();
            deltas.sort_by(|a, b| a.0.cmp(b.0));
            obj(vec![
                ("op", Json::String("update".into())),
                (
                    "mode",
                    Json::String(
                        match mode {
                            ExecutionMode::Rerun => "rerun",
                            ExecutionMode::Incremental => "incremental",
                        }
                        .into(),
                    ),
                ),
                (
                    "base_deltas",
                    Json::Array(deltas.iter().map(|(_, d)| enc_delta_relation(d)).collect()),
                ),
                (
                    "retracted_supervision",
                    Json::Array(
                        update
                            .retracted_supervision
                            .iter()
                            .map(|(rel, t)| {
                                Json::Array(vec![Json::String(rel.clone()), enc_tuple(t)])
                            })
                            .collect(),
                    ),
                ),
                (
                    "new_rules",
                    Json::Array(update.new_rules.iter().map(enc_rule).collect()),
                ),
            ])
        }
        WalOp::RetractSupervision { relation, tuple } => obj(vec![
            ("op", Json::String("retract_supervision".into())),
            ("relation", Json::String(relation.clone())),
            ("tuple", enc_tuple(tuple)),
        ]),
    };
    json.encode().into_bytes()
}

pub(crate) fn decode_wal_op(bytes: &[u8]) -> R<WalOp> {
    let ctx = "decoding WAL operation";
    let text = std::str::from_utf8(bytes).map_err(|e| bad(ctx, format!("not UTF-8: {e}")))?;
    let json = parse(text).map_err(|e| bad(ctx, e))?;
    match str_of(field(&json, "op", ctx)?, ctx)? {
        "initial_run" => Ok(WalOp::InitialRun),
        "refresh" => Ok(WalOp::Refresh),
        "materialize" => Ok(WalOp::Materialize),
        "update" => {
            let mode = match str_of(field(&json, "mode", ctx)?, ctx)? {
                "rerun" => ExecutionMode::Rerun,
                "incremental" => ExecutionMode::Incremental,
                other => return Err(bad(ctx, format!("unknown execution mode `{other}`"))),
            };
            let mut update = KbcUpdate::new();
            for d in arr_of(field(&json, "base_deltas", ctx)?, ctx)? {
                let delta = dec_delta_relation(d, ctx)?;
                update
                    .base_deltas
                    .insert(delta.relation().to_string(), delta);
            }
            for entry in arr_of(field(&json, "retracted_supervision", ctx)?, ctx)? {
                let e = arr_of(entry, ctx)?;
                if e.len() != 2 {
                    return Err(bad(
                        ctx,
                        "retracted supervision is not a [relation, tuple] pair",
                    ));
                }
                update
                    .retracted_supervision
                    .push((str_of(&e[0], ctx)?.to_string(), dec_tuple(&e[1], ctx)?));
            }
            for r in arr_of(field(&json, "new_rules", ctx)?, ctx)? {
                update.new_rules.push(dec_rule(r, ctx)?);
            }
            Ok(WalOp::Update { mode, update })
        }
        "retract_supervision" => Ok(WalOp::RetractSupervision {
            relation: str_of(field(&json, "relation", ctx)?, ctx)?.to_string(),
            tuple: dec_tuple(field(&json, "tuple", ctx)?, ctx)?,
        }),
        other => Err(bad(ctx, format!("unknown WAL op `{other}`"))),
    }
}

pub(crate) fn encode_checkpoint(state: &CheckpointState) -> Vec<u8> {
    let coverage = match state.materialized_coverage {
        None => Json::Null,
        Some((vars, weights)) => Json::Array(vec![enc_usize(vars), enc_usize(weights)]),
    };
    obj(vec![
        ("format", enc_u64(CHECKPOINT_FORMAT_VERSION)),
        ("grounder", enc_grounder_state(&state.grounder)),
        (
            "materialization",
            match &state.materialization {
                None => Json::Null,
                Some(m) => enc_materialization(m),
            },
        ),
        (
            "materialized_epoch",
            match state.materialized_epoch {
                None => Json::Null,
                Some(e) => enc_u64(e),
            },
        ),
        ("materialized_coverage", coverage),
        (
            "cumulative_change",
            enc_distribution_change(&state.cumulative_change),
        ),
        ("learned_weights", enc_f64s(&state.learned_weights)),
        ("epoch", enc_u64(state.epoch)),
        ("snapshot", snapshot_to_json(&state.snapshot)),
    ])
    .encode()
    .into_bytes()
}

pub(crate) fn decode_checkpoint(bytes: &[u8]) -> R<CheckpointState> {
    let ctx = "decoding checkpoint";
    let text = std::str::from_utf8(bytes).map_err(|e| bad(ctx, format!("not UTF-8: {e}")))?;
    let json = parse(text).map_err(|e| bad(ctx, e))?;
    let format = u64_of(field(&json, "format", ctx)?, ctx)?;
    if format != CHECKPOINT_FORMAT_VERSION {
        return Err(bad(
            ctx,
            format!("unsupported checkpoint format {format} (this build reads {CHECKPOINT_FORMAT_VERSION})"),
        ));
    }
    let materialization = match field(&json, "materialization", ctx)? {
        Json::Null => None,
        m => Some(dec_materialization(m, ctx)?),
    };
    let materialized_epoch = match field(&json, "materialized_epoch", ctx)? {
        Json::Null => None,
        e => Some(u64_of(e, ctx)?),
    };
    let materialized_coverage = match field(&json, "materialized_coverage", ctx)? {
        Json::Null => None,
        c => {
            let pair = arr_of(c, ctx)?;
            if pair.len() != 2 {
                return Err(bad(ctx, "coverage is not a [vars, weights] pair"));
            }
            Some((usize_of(&pair[0], ctx)?, usize_of(&pair[1], ctx)?))
        }
    };
    Ok(CheckpointState {
        grounder: dec_grounder_state(field(&json, "grounder", ctx)?, ctx)?,
        materialization,
        materialized_epoch,
        materialized_coverage,
        cumulative_change: dec_distribution_change(field(&json, "cumulative_change", ctx)?, ctx)?,
        learned_weights: dec_f64s(field(&json, "learned_weights", ctx)?, ctx)?,
        epoch: u64_of(field(&json, "epoch", ctx)?, ctx)?,
        snapshot: snapshot_from_json(field(&json, "snapshot", ctx)?, ctx)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_relstore::tuple;

    #[test]
    fn values_round_trip_including_float_bits() {
        let values = vec![
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::text("héllo \"quoted\"\n"),
            Value::Bool(true),
            Value::Float(0.1 + 0.2),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Float(f64::NEG_INFINITY),
            Value::Null,
        ];
        for v in &values {
            let decoded = dec_value(&enc_value(v), "test").unwrap();
            // Value equality is bit-level for floats, so NaN == NaN here.
            assert_eq!(&decoded, v, "value {v:?} did not round-trip");
        }
        // -0.0 keeps its sign bit (tuple ordering and equality depend on it).
        let neg_zero = dec_value(&enc_value(&Value::Float(-0.0)), "test").unwrap();
        match neg_zero {
            Value::Float(f) => assert_eq!(f.to_bits(), (-0.0f64).to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn big_integers_survive_the_f64_bottleneck() {
        // 2^60 + 1 is not representable as f64; the string encoding keeps it.
        let big = (1u64 << 60) + 1;
        assert_eq!(u64_of(&enc_u64(big), "test").unwrap(), big);
        let big_i = -(1i64 << 60) - 1;
        assert_eq!(i64_of(&enc_i64(big_i), "test").unwrap(), big_i);
    }

    #[test]
    fn tables_round_trip_with_negative_counts() {
        let mut t = Table::new(
            "V",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Text)]),
        );
        t.insert_with_count(tuple![1i64, "x"], 3).unwrap();
        // DRed over-deletion: a net-negative row must survive recovery.
        t.insert_with_count(tuple![2i64, "y"], -2).unwrap();
        let decoded = dec_table(&enc_table(&t), "test").unwrap();
        assert_eq!(decoded.count(&tuple![1i64, "x"]), 3);
        assert_eq!(decoded.count(&tuple![2i64, "y"]), -2);
        assert_eq!(enc_table(&decoded).encode(), enc_table(&t).encode());
    }

    #[test]
    fn rules_round_trip_every_weight_spec() {
        use dd_relstore::view::Term;
        let specs = vec![
            WeightSpec::Fixed(2.5),
            WeightSpec::Learnable { initial: -1.0 },
            WeightSpec::Tied {
                udf: "phrase".into(),
                args: vec!["m1".into(), "sent".into()],
            },
            WeightSpec::Label(false),
            WeightSpec::None,
        ];
        for spec in specs {
            let rule = Rule::new(
                "R",
                RuleKind::FeatureExtraction,
                QueryAtom::new("Head", vec![Term::var("x"), Term::val(Value::Int(7))]),
                vec![QueryAtom::new("Body", vec![Term::var("x")]).negated()],
                spec.clone(),
            )
            .with_filters(vec![Filter::Lt("x".into(), "y".into())])
            .with_semantics(Semantics::Logical);
            let decoded = dec_rule(&enc_rule(&rule), "test").unwrap();
            assert_eq!(decoded, rule, "weight spec {spec:?} did not round-trip");
        }
    }

    #[test]
    fn factor_graphs_round_trip_with_identical_ids_and_index() {
        let mut g = FactorGraph::new();
        let w0 = g.add_weight(Weight::learnable(0, 0.5, "w::feat"));
        let w1 = g.add_weight(Weight::fixed(0, 3.0, "w::prior"));
        let mut v0 = Variable::query(0);
        v0.relation = "R".into();
        v0.key = u64::MAX - 1;
        let v0 = g.add_variable(v0);
        let v1 = g.add_variable(Variable::evidence(0, true));
        g.add_factor(Factor::imply(w0, &[v0], v1));
        g.add_factor(Factor::equal(w1, v0, v1));
        g.add_factor(Factor::new(
            w0,
            FactorKind::Aggregate {
                head: Lit::pos(v1),
                semantics: Semantics::Ratio,
                groundings: vec![vec![Lit::neg(v0)], vec![Lit::pos(v0), Lit::pos(v1)]],
            },
        ));

        let decoded = dec_graph(&enc_graph(&g), "test").unwrap();
        assert_eq!(decoded.num_variables(), g.num_variables());
        assert_eq!(decoded.num_weights(), g.num_weights());
        assert_eq!(decoded.factors(), g.factors());
        assert_eq!(decoded.variables(), g.variables());
        assert_eq!(decoded.weights(), g.weights());
        // The (relation, key) index is rebuilt by replaying add_variable.
        assert_eq!(decoded.find_variable("R", u64::MAX - 1), Some(v0));
        // Adjacency is rebuilt too.
        assert_eq!(decoded.factors_of(v0), g.factors_of(v0));
        // Determinism: re-encoding the decoded graph is byte-identical.
        assert_eq!(enc_graph(&decoded).encode(), enc_graph(&g).encode());
    }

    #[test]
    fn sample_sets_round_trip_through_hex() {
        let set = SampleSet::from_bundles(12, vec![vec![0x00, 0xff, 0x7a], vec![], vec![0x01]]);
        let decoded = dec_sample_set(&enc_sample_set(&set), "test").unwrap();
        assert_eq!(decoded.num_vars, 12);
        assert_eq!(decoded.bundles(), set.bundles());
        assert!(hex_of(&Json::String("0g".into()), "test").is_err());
        assert!(hex_of(&Json::String("abc".into()), "test").is_err());
    }

    #[test]
    fn wal_ops_round_trip() {
        let mut update = KbcUpdate::new();
        update.insert("Sentence", tuple![9i64, "text"]);
        update.delete("Sentence", tuple![1i64, "old"]);
        update.insert("Anchor", tuple![5i64, 6i64]);
        for op in [
            WalOp::InitialRun,
            WalOp::Refresh,
            WalOp::Materialize,
            WalOp::Update {
                mode: ExecutionMode::Incremental,
                update: update.clone(),
            },
            WalOp::Update {
                mode: ExecutionMode::Rerun,
                update,
            },
        ] {
            let bytes = encode_wal_op(&op);
            let decoded = decode_wal_op(&bytes).unwrap();
            // Re-encode: the codec is canonical, so this must be byte-identical.
            assert_eq!(encode_wal_op(&decoded), bytes);
            match (&op, &decoded) {
                (WalOp::InitialRun, WalOp::InitialRun)
                | (WalOp::Refresh, WalOp::Refresh)
                | (WalOp::Materialize, WalOp::Materialize) => {}
                (
                    WalOp::Update {
                        mode: m1,
                        update: u1,
                    },
                    WalOp::Update {
                        mode: m2,
                        update: u2,
                    },
                ) => {
                    assert_eq!(m1, m2);
                    assert_eq!(u1.base_deltas.len(), u2.base_deltas.len());
                    assert_eq!(u2.base_deltas["Sentence"].count(&tuple![9i64, "text"]), 1);
                    assert_eq!(u2.base_deltas["Sentence"].count(&tuple![1i64, "old"]), -1);
                }
                (a, b) => panic!("op {a:?} decoded as {b:?}"),
            }
        }
    }

    #[test]
    fn snapshot_codec_round_trips_synthetic_snapshots() {
        let mut shards = CatalogShards::new();
        shards.merge_delta(
            "HasSpouse",
            vec![(tuple![1i64, 2i64], 0), (tuple![3i64, 4i64], 1)],
            7,
            &Marginals::from_values(vec![0.25, 0.75]),
        );
        let snapshot = Snapshot::synthetic(42, vec![0.25, 0.75], shards)
            .with_weights(vec![1.5, -0.5])
            .with_fact_threshold(0.8);
        let bytes = encode_snapshot(&snapshot);
        let decoded = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded.epoch(), 42);
        assert_eq!(decoded.marginals().values(), snapshot.marginals().values());
        assert_eq!(decoded.weights(), snapshot.weights());
        assert_eq!(decoded.fact_threshold(), 0.8);
        assert_eq!(
            decoded.probability_of("HasSpouse", &tuple![3i64, 4i64]),
            Some(0.75)
        );
        assert_eq!(
            decoded.catalog().shard("HasSpouse").unwrap().generation(),
            7
        );
        // Byte-identical re-encode: the idempotency guarantee.
        assert_eq!(encode_snapshot(&decoded), bytes);
    }

    #[test]
    fn malformed_payloads_yield_typed_errors_not_panics() {
        let cases: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"not json".to_vec(),
            b"{}".to_vec(),
            b"{\"op\":\"warp\"}".to_vec(),
            b"{\"epoch\":12}".to_vec(), // epoch must be a string
            vec![0xff, 0xfe, 0x80],     // invalid UTF-8
            encode_wal_op(&WalOp::InitialRun)[..5].to_vec(), // truncated JSON
        ];
        for bytes in cases {
            assert!(matches!(
                decode_snapshot(&bytes),
                Err(StorageError::Codec { .. })
            ));
            assert!(matches!(
                decode_wal_op(&bytes),
                Err(StorageError::Codec { .. })
            ));
            assert!(matches!(
                decode_checkpoint(&bytes),
                Err(StorageError::Codec { .. })
            ));
        }
    }

    #[test]
    fn checkpoint_rejects_unknown_format_versions() {
        let doc = format!("{{\"format\":\"{}\"}}", CHECKPOINT_FORMAT_VERSION + 1);
        let err = match decode_checkpoint(doc.as_bytes()) {
            Err(e) => e,
            Ok(_) => panic!("future-format checkpoint was accepted"),
        };
        assert!(err.to_string().contains("unsupported checkpoint format"));
    }
}

//! The DeepDive engine: end-to-end KBC execution, Rerun vs Incremental.
//!
//! The engine owns a [`Grounder`] (program + database + factor graph), an
//! [`EngineConfig`], the current marginals, the learned model, and — after
//! [`DeepDive::materialize`] has been called — the combined materialization of
//! §3.3.  A KBC iteration ([`KbcUpdate`]: new data and/or new rules) can then be
//! executed in either mode:
//!
//! * [`ExecutionMode::Rerun`] — the baseline of §4.2: learning restarts from a
//!   cold model and inference runs full Gibbs sampling over the whole updated
//!   factor graph;
//! * [`ExecutionMode::Incremental`] — the paper's system: learning warmstarts
//!   from the previous model (Appendix B.3), the rule-based optimizer (§3.3)
//!   picks the sampling or variational strategy for the observed change, and
//!   inference touches only the changed part of the graph (falling back from
//!   sampling to variational when the stored samples run out).
//!
//! Grounding is incremental in both modes; the relational (DRed) speedup is
//! measured separately by the `grounding_dred` benchmark, matching how the paper
//! reports it separately from Figure 9.

use crate::builder::DeepDiveBuilder;
use crate::config::EngineConfig;
use crate::durability::{self, CheckpointState, DurabilityHandle, WalOp};
use crate::error::{EngineError, StaleKind};
use crate::materialization::Materialization;
use crate::optimizer::{choose_strategy, StrategyChoice};
use crate::quality::QualityReport;
use crate::snapshot::{self, Snapshot, SnapshotReader};
use dd_factorgraph::FactorGraph;
use dd_grounding::{Grounder, KbcUpdate, Program, UdfRegistry};
use dd_inference::{
    DistributionChange, GibbsOptions, GibbsSampler, LearnOptions, Learner, Marginals, ParallelGibbs,
};
use dd_relstore::{Database, Tuple};
use rayon::ThreadPool;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Whether an update is executed from scratch or incrementally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    Rerun,
    Incremental,
}

impl ExecutionMode {
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::Rerun => "Rerun",
            ExecutionMode::Incremental => "Incremental",
        }
    }
}

/// Timing and bookkeeping for one executed iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationReport {
    pub mode: ExecutionMode,
    /// Strategy chosen by the optimizer (None for Rerun / the initial run).
    pub strategy: Option<StrategyChoice>,
    pub grounding_secs: f64,
    pub learning_secs: f64,
    pub inference_secs: f64,
    /// Acceptance rate of the MH chain, when the sampling strategy ran.
    pub acceptance_rate: Option<f64>,
    pub new_variables: usize,
    pub new_factors: usize,
    /// True if the sampling strategy exhausted its samples and fell back.
    pub fell_back_to_variational: bool,
    /// Variable relations whose catalog shard was re-indexed by this run's
    /// snapshot publish (sorted).  Every relation *not* listed here kept its
    /// serving index `Arc`-shared with the previous epoch — the observable
    /// face of the O(Δ) sharded publish.
    pub resharded_relations: Vec<String>,
}

impl IterationReport {
    /// Learning + inference time — the quantity Figure 9 tabulates.
    pub fn inference_and_learning_secs(&self) -> f64 {
        self.learning_secs + self.inference_secs
    }

    /// Total time including grounding.
    pub fn total_secs(&self) -> f64 {
        self.grounding_secs + self.learning_secs + self.inference_secs
    }
}

/// The end-to-end engine.
///
/// Constructed with [`DeepDive::builder`]; queried through lock-free
/// [`Snapshot`]s (see [`DeepDive::snapshot`] / [`DeepDive::reader`]) while
/// updates run.
///
/// ```
/// use dd_relstore::{tuple, Database, DataType, Schema};
/// use deepdive::{DeepDive, EngineConfig};
///
/// let mut db = Database::new();
/// db.create_table("Claim", Schema::of(&[("id", DataType::Int), ("text", DataType::Text)])).unwrap();
/// db.create_table("Label", Schema::of(&[("id", DataType::Int)])).unwrap();
/// db.insert_all("Claim", vec![tuple![1i64, "alpha"], tuple![2i64, "beta"]]).unwrap();
/// db.insert_all("Label", vec![tuple![1i64]]).unwrap();
///
/// // A one-rule program: every claim with a supervision label becomes
/// // evidence; the others get their probability from the shared weight.
/// let mut dd = DeepDive::builder()
///     .program_text(r#"
///         relation Claim(id: int, text: text) base.
///         relation Label(id: int) base.
///         relation Fact(id: int) variable.
///
///         rule F feature:
///           Fact(id) :- Claim(id, text) weight = 1.5.
///
///         rule S supervision+:
///           Fact(id) :- Claim(id, text), Label(id).
///     "#)
///     .database(db)
///     .config(EngineConfig::fast())
///     .build()
///     .unwrap();
/// dd.initial_run().unwrap();
///
/// // Reads are served from an immutable snapshot of the run's epoch.
/// let snap = dd.snapshot();
/// assert_eq!(snap.epoch(), 1);
/// // The supervised claim is pinned to probability 1...
/// assert_eq!(snap.probability_of("Fact", &tuple![1i64]), Some(1.0));
/// // ...and the unsupervised one gets a high (but uncertain) probability.
/// let p = snap.probability_of("Fact", &tuple![2i64]).unwrap();
/// assert!(p > 0.5 && p < 1.0);
/// ```
pub struct DeepDive {
    grounder: Grounder,
    config: EngineConfig,
    /// The persistent worker pool serving this engine end to end: full-Gibbs
    /// hogwild inference and learning-gradient estimation all dispatch here
    /// (above [`EngineConfig::parallel_threshold`]), so workers are spawned
    /// once per engine — or once per process, when the config shares the
    /// global pool — rather than per sweep.  Filled eagerly for a dedicated
    /// `num_threads` pool, lazily (first above-threshold use) for the shared
    /// global pool, so small-graph engines never spawn workers at all.
    pool: OnceLock<Arc<ThreadPool>>,
    materialization: Option<Materialization>,
    /// Epoch at which [`DeepDive::materialize`] was last called.
    materialized_epoch: Option<u64>,
    /// `(num_variables, num_weights)` of the *full* graph when the
    /// materialization was taken — the coverage the variational strategy can
    /// serve.  (The approximate graph carries its own unary/pairwise weight
    /// space, so its counts say nothing about the model's.)
    materialized_coverage: Option<(usize, usize)>,
    /// The distribution change accumulated since the materialization was taken:
    /// successive incremental updates all reuse the same stored samples, so the
    /// MH acceptance test must compare against the *materialized* distribution,
    /// not just the previous iteration's.
    cumulative_change: DistributionChange,
    learned_weights: Vec<f64>,
    /// Number of completed runs; every publish bumps it by one.
    epoch: u64,
    /// The sharded per-relation variable catalog shared into every published
    /// snapshot.  Publish cost is O(Δ): only shards whose relations gained
    /// variables since the last publish (the grounder's dirty-set) are
    /// re-indexed — a sorted merge of the Δ entries — while every other shard
    /// is handed to the new snapshot as the same `Arc` the previous epoch
    /// holds.
    catalog_cache: snapshot::CatalogShards,
    /// The currently served snapshot.  Readers clone the inner `Arc` under a
    /// briefly-held read lock; the publish step swaps the pointer under the
    /// write lock — held only for the swap, never across inference.
    current: Arc<RwLock<Arc<Snapshot>>>,
    /// Open WAL + checkpoint stores when the engine was built with
    /// [`DeepDiveBuilder::durability`]; `None` for in-memory engines.  Every
    /// state-changing public method appends its logical operation *before*
    /// executing it, so recovery can roll the tail forward.
    durability: Option<DurabilityHandle>,
    /// Failures recorded while replaying the WAL tail during recovery; see
    /// [`DeepDive::recovery_replay_errors`].
    replay_errors: Vec<String>,
}

impl std::fmt::Debug for DeepDive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeepDive")
            .field("epoch", &self.epoch)
            .field("config", &self.config)
            .field("materialized_epoch", &self.materialized_epoch)
            .field("graph", &self.grounder.graph().stats())
            .field("durable", &self.durability.is_some())
            .finish_non_exhaustive()
    }
}

/// Merge `next` into `acc`.  New evidence overwrites older values for the same
/// variable; for changed weights the *oldest* recorded pre-change value wins
/// (the acceptance test compares against the materialized distribution).
fn merge_change(acc: &mut DistributionChange, next: &DistributionChange) {
    acc.new_factors.extend(next.new_factors.iter().copied());
    acc.new_variables.extend(next.new_variables.iter().copied());
    let mut evidence_index: HashMap<usize, usize> = acc
        .new_evidence
        .iter()
        .enumerate()
        .map(|(i, &(v, _))| (v, i))
        .collect();
    for &(v, val) in &next.new_evidence {
        match evidence_index.get(&v) {
            Some(&i) => acc.new_evidence[i].1 = val,
            None => {
                evidence_index.insert(v, acc.new_evidence.len());
                acc.new_evidence.push((v, val));
            }
        }
    }
    let mut seen_weights: HashSet<usize> = acc.changed_weights.iter().map(|&(w, _)| w).collect();
    for &(w, old) in &next.changed_weights {
        if seen_weights.insert(w) {
            acc.changed_weights.push((w, old));
        }
    }
}

impl DeepDive {
    /// Start building an engine: program, database, UDFs, and config are all
    /// named fields, and every misconfiguration is a typed [`EngineError`]
    /// reported by [`DeepDiveBuilder::build`].
    pub fn builder() -> DeepDiveBuilder {
        DeepDiveBuilder::default()
    }

    /// Assemble the engine from already-validated parts ([`DeepDiveBuilder`]
    /// is the public entrance).
    pub(crate) fn from_parts(
        program: Program,
        db: Database,
        udfs: UdfRegistry,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let pool = OnceLock::new();
        if let Some(n) = config.num_threads {
            let _ = pool.set(Arc::new(ThreadPool::new(n)));
        }
        let empty = Arc::new(Snapshot::empty(config.fact_threshold));
        Ok(DeepDive {
            grounder: Grounder::new(program, db, udfs)?,
            config,
            pool,
            materialization: None,
            materialized_epoch: None,
            materialized_coverage: None,
            cumulative_change: DistributionChange::default(),
            learned_weights: Vec::new(),
            epoch: 0,
            catalog_cache: snapshot::CatalogShards::new(),
            current: Arc::new(RwLock::new(empty)),
            durability: None,
            replay_errors: Vec::new(),
        })
    }

    /// Reconstruct an engine from a decoded checkpoint (recovery path of
    /// [`DeepDiveBuilder::build`]).  The config and UDF registry are
    /// re-supplied by the builder — UDFs are function pointers and cannot be
    /// persisted.  The caller replays the WAL tail and then attaches the
    /// durability handle, so replayed operations are not re-appended.
    pub(crate) fn from_checkpoint(
        state: CheckpointState,
        udfs: UdfRegistry,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let pool = OnceLock::new();
        if let Some(n) = config.num_threads {
            let _ = pool.set(Arc::new(ThreadPool::new(n)));
        }
        let grounder = Grounder::from_state(state.grounder, udfs)?;
        // The sharded publish cache is exactly the catalog the last published
        // snapshot carries; entries grounded after that publish are still
        // pending in the grounder's dirty-set and merge on the next commit.
        let catalog_cache = state.snapshot.catalog().clone();
        Ok(DeepDive {
            grounder,
            config,
            pool,
            materialization: state.materialization,
            materialized_epoch: state.materialized_epoch,
            materialized_coverage: state.materialized_coverage,
            cumulative_change: state.cumulative_change,
            learned_weights: state.learned_weights,
            epoch: state.epoch,
            catalog_cache,
            current: Arc::new(RwLock::new(Arc::new(state.snapshot))),
            durability: None,
            replay_errors: Vec::new(),
        })
    }

    // ------------------------------------------------------------------ access

    pub fn graph(&self) -> &FactorGraph {
        self.grounder.graph()
    }

    pub fn grounder(&self) -> &Grounder {
        &self.grounder
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn materialization(&self) -> Option<&Materialization> {
        self.materialization.as_ref()
    }

    pub fn learned_weights(&self) -> &[f64] {
        &self.learned_weights
    }

    // -------------------------------------------------------------- snapshots

    /// The currently served snapshot (cheap: one `Arc` clone).  Epoch 0 — an
    /// empty catalog — until the first completed run.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.reader().snapshot()
    }

    /// A cloneable handle serving threads can poll for the latest snapshot
    /// while this engine keeps running updates.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader::new(Arc::clone(&self.current))
    }

    /// The engine's current epoch (number of completed runs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Commit one run's inference output: validate it, write it back into the
    /// `<relation>_marginal` tables, and atomically publish it as the next
    /// epoch's snapshot.  Validation happens first so a rejected result
    /// touches neither the database nor the served snapshot; the write lock is
    /// held only for the pointer swap.
    ///
    /// The publish is O(Δ) in catalog work: the grounder's drained dirty-set
    /// names exactly the relations that gained variables since the last
    /// publish, and only those shards are re-indexed (sorted Δ-merge); all
    /// other shards go into the new snapshot as `Arc` clones shared with the
    /// previous epoch.  Returns the re-indexed relation names (sorted).
    fn commit_marginals(&mut self, marginals: Marginals) -> Result<Vec<String>, EngineError> {
        let num_variables = self.grounder.graph().num_variables();
        if marginals.len() != num_variables {
            return Err(EngineError::Inference {
                stage: "snapshot publish",
                detail: format!(
                    "marginal vector covers {} of {num_variables} variables",
                    marginals.len()
                ),
            });
        }
        if let Some(bad) = marginals.values().iter().find(|p| !p.is_finite()) {
            return Err(EngineError::Inference {
                stage: "snapshot publish",
                detail: format!("non-finite marginal probability {bad}"),
            });
        }
        self.grounder.write_back_marginals(marginals.values());

        // Drain the grounder's catalog op-log and re-index only the relations
        // that appear in it.  Ops are recorded chronologically; netting them
        // per tuple (last op wins) collapses remove-then-re-add churn within
        // one publish into a single signed change per tuple.  Ops from a
        // rejected earlier commit stay pending until the next successful
        // publish, so the cache never misses growth or shrinkage.
        self.epoch += 1;
        let fresh = self.grounder.take_catalog_delta();
        let mut resharded = Vec::with_capacity(fresh.len());
        for (relation, ops) in fresh {
            let mut net: HashMap<Tuple, Option<usize>> = HashMap::new();
            for op in ops {
                match op {
                    dd_grounding::CatalogOp::Upsert(tuple, var) => {
                        net.insert(tuple, Some(var));
                    }
                    dd_grounding::CatalogOp::Remove(tuple) => {
                        net.insert(tuple, None);
                    }
                }
            }
            self.catalog_cache.apply_delta(
                &relation,
                net.into_iter().collect(),
                self.epoch,
                &marginals,
            );
            resharded.push(relation);
        }
        // Self-healing backstop: every grounder-side catalog change is
        // op-logged, so an entry-count mismatch means some code path bypassed
        // the dirty-set.  Fall back to the O(n) full rebuild rather than serve
        // a snapshot that silently lacks (or over-reports) variables.  The
        // count itself is O(#relations).
        if self.catalog_cache.num_entries() != self.grounder.num_catalogued_variables() {
            debug_assert!(false, "catalog dirty-set missed entries; full rebuild");
            self.catalog_cache =
                snapshot::CatalogShards::build(self.grounder.variable_catalog(), self.epoch);
            resharded = self
                .catalog_cache
                .relation_names()
                .map(String::from)
                .collect();
        }
        // Re-rank the engine-owned cache against this epoch's marginals so
        // the cache's Arcs — not per-publish rebuilds inside the snapshot —
        // are what consecutive epochs share.  Shards the loop above already
        // Δ-merged, and shards whose marginals are bit-stable, validate and
        // keep their Arcs; the clone handed to `Snapshot::publish` then
        // revalidates without rebuilding anything.
        self.catalog_cache.refresh_ranked(&marginals, self.epoch);
        let snapshot = Snapshot::publish(
            self.epoch,
            marginals,
            self.learned_weights.clone(),
            self.catalog_cache.clone(),
            self.grounder.graph().stats(),
            self.config.fact_threshold,
        );
        let next = Arc::new(snapshot);
        match self.current.write() {
            Ok(mut guard) => *guard = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
        Ok(resharded)
    }

    // ------------------------------------------------------------ initial run

    /// Run the full pipeline once: grounding, learning, inference; publishes
    /// epoch 1's snapshot.
    ///
    /// Durable engines append the operation to the WAL *before* executing it
    /// (redo logging): once the append returns, recovery will roll the
    /// operation forward even if the process dies mid-inference.
    pub fn initial_run(&mut self) -> Result<IterationReport, EngineError> {
        self.log_op(&WalOp::InitialRun)?;
        let report = self.initial_run_inner()?;
        self.maybe_auto_checkpoint()?;
        Ok(report)
    }

    fn initial_run_inner(&mut self) -> Result<IterationReport, EngineError> {
        let t0 = Instant::now();
        self.grounder.ground()?;
        let grounding_secs = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let learn = LearnOptions {
            seed: self.config.seed,
            ..self.config.learn.clone()
        };
        self.learned_weights = self.run_learner(&learn).final_weights;
        let learning_secs = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let marginals = self.full_gibbs();
        let inference_secs = t2.elapsed().as_secs_f64();
        let resharded_relations = self.commit_marginals(marginals)?;

        let stats = self.grounder.graph().stats();
        Ok(IterationReport {
            mode: ExecutionMode::Rerun,
            strategy: None,
            grounding_secs,
            learning_secs,
            inference_secs,
            acceptance_rate: None,
            new_variables: stats.num_variables,
            new_factors: stats.num_factors,
            fell_back_to_variational: false,
            resharded_relations,
        })
    }

    /// Build the combined materialization (sampling + variational + strawman).
    ///
    /// Only fallible on durable engines (the WAL append); in-memory engines
    /// cannot fail here.
    pub fn materialize(&mut self) -> Result<(), EngineError> {
        self.log_op(&WalOp::Materialize)?;
        self.materialize_inner();
        self.maybe_auto_checkpoint()?;
        Ok(())
    }

    fn materialize_inner(&mut self) {
        self.materialization = Some(Materialization::build(self.grounder.graph(), &self.config));
        self.materialized_epoch = Some(self.epoch);
        self.materialized_coverage = Some((
            self.grounder.graph().num_variables(),
            self.grounder.graph().num_weights(),
        ));
        self.cumulative_change = DistributionChange::default();
    }

    /// Re-run full inference over the current graph and publish a fresh epoch
    /// without applying any update.
    ///
    /// This is the recovery path after [`EngineError::StaleMaterialization`]:
    /// the rejected update's grounding (and model refresh) are already
    /// applied, so `refresh()` — typically after [`DeepDive::materialize`] —
    /// brings the served snapshot back in sync with the graph.  Do *not*
    /// re-send the rejected update: its base-relation deltas have already
    /// been applied, and applying them again inflates derivation counts.
    pub fn refresh(&mut self) -> Result<IterationReport, EngineError> {
        self.log_op(&WalOp::Refresh)?;
        let report = self.refresh_inner()?;
        self.maybe_auto_checkpoint()?;
        Ok(report)
    }

    fn refresh_inner(&mut self) -> Result<IterationReport, EngineError> {
        let t = Instant::now();
        let marginals = self.full_gibbs();
        let inference_secs = t.elapsed().as_secs_f64();
        let resharded_relations = self.commit_marginals(marginals)?;
        Ok(IterationReport {
            mode: ExecutionMode::Rerun,
            strategy: None,
            grounding_secs: 0.0,
            learning_secs: 0.0,
            inference_secs,
            acceptance_rate: None,
            new_variables: 0,
            new_factors: 0,
            fell_back_to_variational: false,
            resharded_relations,
        })
    }

    // --------------------------------------------------------------- updates

    /// Execute one KBC update in the given mode; on success the next epoch's
    /// snapshot is published and previously handed-out snapshots keep serving
    /// their own epoch untouched.
    pub fn run_update(
        &mut self,
        update: &KbcUpdate,
        mode: ExecutionMode,
    ) -> Result<IterationReport, EngineError> {
        if self.durability.is_some() {
            let op = WalOp::Update {
                mode,
                update: update.clone(),
            };
            self.log_op(&op)?;
        }
        let report = self.run_update_inner(update, mode)?;
        self.maybe_auto_checkpoint()?;
        Ok(report)
    }

    /// Un-pin a supervision label: the variable for `tuple` in `relation`
    /// reverts to an open query variable and future re-derivations of the same
    /// supervision rule no longer re-pin it.  Runs as an incremental update
    /// (WAL-logged as its own operation), so the next published snapshot
    /// reflects the freed variable without re-grounding.
    pub fn retract_supervision(
        &mut self,
        relation: &str,
        tuple: Tuple,
    ) -> Result<IterationReport, EngineError> {
        if self.durability.is_some() {
            let op = WalOp::RetractSupervision {
                relation: relation.to_string(),
                tuple: tuple.clone(),
            };
            self.log_op(&op)?;
        }
        let mut update = KbcUpdate::new();
        update.retract_supervision(relation, tuple);
        let report = self.run_update_inner(&update, ExecutionMode::Incremental)?;
        self.maybe_auto_checkpoint()?;
        Ok(report)
    }

    fn run_update_inner(
        &mut self,
        update: &KbcUpdate,
        mode: ExecutionMode,
    ) -> Result<IterationReport, EngineError> {
        // Rules arriving mid-stream get the same UDF-resolution guarantee the
        // builder gives construction-time rules.  Checked before grounding,
        // so a rejected update leaves the engine untouched.
        crate::builder::check_tied_udfs(&update.new_rules, self.grounder.udfs())?;

        // Grounding is incremental in both modes.
        let pre_update_graph = self.grounder.graph().clone();
        let (pre_update_vars, pre_update_weights) = (
            pre_update_graph.num_variables(),
            pre_update_graph.num_weights(),
        );
        let t0 = Instant::now();
        let incremental = self.grounder.ground_incremental(update)?;
        let grounding_secs = t0.elapsed().as_secs_f64();

        // Retraction compacts the factor graph in place (swap-remove), so any
        // stored materialization — samples and approximate factorization alike
        // — is keyed by variable/weight ids that no longer mean the same thing.
        // Strict incremental surfaces that as a typed error; otherwise the
        // materialization is dropped and the update (plus all later ones,
        // until re-materialization) is served by full Gibbs.  This never
        // re-grounds: the grounder's own state is already O(Δ)-updated.
        let has_retraction =
            incremental.delta.has_removals() || !update.retracted_supervision.is_empty();
        if has_retraction && self.materialization.is_some() {
            if self.config.strict_incremental && mode == ExecutionMode::Incremental {
                return Err(EngineError::StaleMaterialization {
                    kind: StaleKind::Retraction {
                        removed_variables: incremental.delta.removed_variables.len(),
                        removed_factors: incremental.delta.removed_factors.len(),
                    },
                    materialized_epoch: self.materialized_epoch,
                    current_epoch: self.epoch,
                });
            }
            self.materialization = None;
            self.materialized_epoch = None;
            self.materialized_coverage = None;
            self.cumulative_change = DistributionChange::default();
        }

        // Describe the distribution change against a clone of the pre-update
        // graph (applying the same delta reproduces the grounder's ids).
        let mut change_graph = pre_update_graph;
        let mut change =
            DistributionChange::apply_and_describe(&mut change_graph, &incremental.delta);

        let new_variables = incremental.delta.new_variables.len();
        let new_factors = incremental.delta.new_factors.len();

        match mode {
            ExecutionMode::Rerun => {
                // Learning from scratch over the whole updated graph.
                let t1 = Instant::now();
                let learn = LearnOptions {
                    seed: self.config.seed,
                    warmstart: None,
                    ..self.config.learn.clone()
                };
                self.learned_weights = self.run_learner(&learn).final_weights;
                let learning_secs = t1.elapsed().as_secs_f64();

                // Full Gibbs over the whole updated graph.
                let t2 = Instant::now();
                let marginals = self.full_gibbs();
                let inference_secs = t2.elapsed().as_secs_f64();
                let resharded_relations = self.commit_marginals(marginals)?;

                Ok(IterationReport {
                    mode,
                    strategy: None,
                    grounding_secs,
                    learning_secs,
                    inference_secs,
                    acceptance_rate: None,
                    new_variables,
                    new_factors,
                    fell_back_to_variational: false,
                    resharded_relations,
                })
            }
            ExecutionMode::Incremental => {
                // The variational strategy infers over (a clone of) the
                // *materialized* approximate graph plus this update's delta,
                // so it is only usable when that graph still covers every
                // pre-update variable and weight — if an earlier update grew
                // the graph past the materialization (e.g. it was served by
                // sampling), a variational result would span the wrong id
                // space and silently drop the newer facts from the snapshot.
                // In that case fall back to full Gibbs (the sampling strategy
                // is unaffected: it extends its stored proposals over new
                // entities against the current full graph).
                // Two conditions: the materialization must still cover the
                // full pre-update graph (else the variational result spans
                // the wrong id space and the newer facts vanish from the
                // snapshot), and the delta's entity references must be
                // in-bounds for the *approximate* graph it is applied to
                // (whose unary/pairwise weight space is its own).
                let variational_ok = match (&self.materialization, self.materialized_coverage) {
                    (Some(mat), Some((vars, weights))) => {
                        let approx = mat.variational.approx_graph();
                        vars == pre_update_vars
                            && weights == pre_update_weights
                            && delta_compatible_with(
                                &incremental.delta,
                                approx.num_variables(),
                                approx.num_weights(),
                            )
                    }
                    _ => false,
                };

                // Incremental learning: only needed when the model itself must
                // change (new features or new evidence); warmstarted from the
                // previous weights.
                let t1 = Instant::now();
                let needs_learning = !change.new_factors.is_empty()
                    || !change.new_evidence.is_empty()
                    || has_retraction;
                if needs_learning {
                    let mut warm = self.learned_weights.clone();
                    warm.resize(self.grounder.graph().num_weights(), 0.0);
                    let learn = LearnOptions {
                        epochs: (self.config.learn.epochs / 2).max(1),
                        warmstart: Some(warm),
                        seed: self.config.seed,
                        ..self.config.learn.clone()
                    };
                    let pre_learn_weights = self.grounder.graph().weight_values();
                    self.learned_weights = self.run_learner(&learn).final_weights;
                    // Weight updates are part of the distribution change the
                    // sampling strategy must account for.
                    for (w, (&old, &new)) in pre_learn_weights
                        .iter()
                        .zip(self.grounder.graph().weight_values().iter())
                        .enumerate()
                    {
                        if (old - new).abs() > 1e-12
                            && !change.changed_weights.iter().any(|(id, _)| *id == w)
                        {
                            change.changed_weights.push((w, old));
                        }
                    }
                }
                let learning_secs = t1.elapsed().as_secs_f64();

                // Strategy selection follows §3.3's rules on *this* update's
                // change; the MH acceptance test, however, must account for the
                // change accumulated since materialization, because the stored
                // samples are reused across iterations.
                let samples_remaining = self
                    .materialization
                    .as_ref()
                    .map(|m| m.sampling.num_samples())
                    .unwrap_or(0);
                let strategy = choose_strategy(&change, samples_remaining);
                merge_change(&mut self.cumulative_change, &change);
                let change = self.cumulative_change.clone();

                // `strict_incremental` turns every would-be full-Gibbs
                // fallback below into `StaleMaterialization` — exactly the
                // spots the non-strict engine silently absorbs an unbounded
                // latency spike.  Updates the materialization *can* serve
                // (including sampling over entities it predates) pass through
                // untouched.
                let strict = self.config.strict_incremental;
                let stale = |kind: StaleKind, s: &Self| EngineError::StaleMaterialization {
                    kind,
                    materialized_epoch: s.materialized_epoch,
                    current_epoch: s.epoch,
                };
                let unknown_entities = |s: &Self| StaleKind::UnknownEntities {
                    num_variables: s.grounder.graph().num_variables(),
                    num_weights: s.grounder.graph().num_weights(),
                };

                let t2 = Instant::now();
                let (marginals, acceptance_rate, fell_back) =
                    match (&self.materialization, strategy) {
                        (Some(mat), StrategyChoice::Sampling) => {
                            let outcome = mat.sampling.infer(
                                self.grounder.graph(),
                                &change,
                                self.config.inference_samples,
                                self.config.seed,
                            );
                            if outcome.exhausted {
                                // Rule 4: out of samples → variational.
                                let m = if variational_ok {
                                    mat.variational.infer(
                                        &incremental.delta,
                                        &self.incremental_gibbs_options(),
                                    )
                                } else if strict {
                                    return Err(stale(unknown_entities(self), self));
                                } else {
                                    self.full_gibbs()
                                };
                                (m, Some(outcome.acceptance_rate), true)
                            } else {
                                (outcome.marginals, Some(outcome.acceptance_rate), false)
                            }
                        }
                        (Some(mat), StrategyChoice::Variational) if variational_ok => {
                            let m = mat
                                .variational
                                .infer(&incremental.delta, &self.incremental_gibbs_options());
                            (m, None, false)
                        }
                        (Some(_), _) if strict => {
                            return Err(stale(unknown_entities(self), self));
                        }
                        (None, _) if strict => {
                            return Err(stale(StaleKind::NotMaterialized, self));
                        }
                        _ => {
                            // Not materialized (or stale): fall back to full Gibbs.
                            (self.full_gibbs(), None, false)
                        }
                    };
                let inference_secs = t2.elapsed().as_secs_f64();
                let resharded_relations = self.commit_marginals(marginals)?;

                Ok(IterationReport {
                    mode,
                    strategy: Some(strategy),
                    grounding_secs,
                    learning_secs,
                    inference_secs,
                    acceptance_rate,
                    new_variables,
                    new_factors,
                    fell_back_to_variational: fell_back,
                    resharded_relations,
                })
            }
        }
    }

    // ------------------------------------------------------------- durability

    /// Whether this engine persists to a data directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Sequence number of the last WAL record (0 before the first append);
    /// `None` on in-memory engines.
    pub fn last_wal_seq(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.wal.last_seq())
    }

    /// Write a checkpoint covering everything logged so far, then prune the
    /// WAL and older checkpoints it supersedes.  Returns the covered sequence
    /// number.
    ///
    /// Ordering is what makes this crash-safe at every byte boundary:
    ///
    /// 1. fsync the WAL — nothing the checkpoint covers may be volatile;
    /// 2. write the checkpoint file atomically (temp file, fsync, rename,
    ///    fsync the directory);
    /// 3. rotate the WAL onto a fresh segment;
    /// 4. prune older checkpoints and fully-covered WAL segments.
    ///
    /// A crash between any two steps leaves either the old checkpoint or the
    /// new one fully intact, and the WAL always reaches from the newest valid
    /// checkpoint to the last logged operation.
    ///
    /// Errors with [`dd_storage::StorageError::NotConfigured`] when the engine
    /// was built without [`DeepDiveBuilder::durability`].
    pub fn checkpoint(&mut self) -> Result<u64, EngineError> {
        if self.durability.is_none() {
            return Err(dd_storage::StorageError::NotConfigured.into());
        }
        let state = self.export_checkpoint_state();
        let bytes = durability::encode_checkpoint(&state);
        let d = self.durability.as_mut().expect("checked above");
        d.wal.sync()?;
        let covered = d.wal.last_seq();
        d.checkpoints.write(covered, &bytes)?;
        d.wal.rotate()?;
        d.checkpoints.prune(d.keep_checkpoints)?;
        // Prune below the *oldest retained* checkpoint, not the one just
        // written: if the newest file is later damaged, recovery falls back
        // to an older checkpoint and must still find every WAL record from
        // that point forward.
        let oldest = d
            .checkpoints
            .covered_seqs()?
            .first()
            .copied()
            .unwrap_or(covered);
        d.wal.prune_below(oldest + 1)?;
        // The auto-checkpoint window restarts here for both policy counters
        // (manual checkpoints count too: they bound replay just the same).
        d.records_since_checkpoint = 0;
        d.bytes_since_checkpoint = 0;
        Ok(covered)
    }

    /// Trigger [`DeepDive::checkpoint`] when the configured auto-checkpoint
    /// policy ([`dd_storage::DurabilityConfig::checkpoint_every_records`] /
    /// `checkpoint_every_bytes`) has accumulated enough WAL since the last
    /// checkpoint.  Called after every successful state-changing operation;
    /// a no-op for in-memory engines and manual-only policies.
    fn maybe_auto_checkpoint(&mut self) -> Result<(), EngineError> {
        let due = self
            .durability
            .as_ref()
            .is_some_and(DurabilityHandle::auto_checkpoint_due);
        if due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Append one logical operation to the WAL (no-op on in-memory engines).
    /// Called *before* the operation executes: recovery rolls every logged
    /// operation forward, and re-executing an operation that failed with an
    /// [`EngineError`] fails identically (the engine's side effects are
    /// deterministic), so replayed state matches original state either way.
    fn log_op(&mut self, op: &WalOp) -> Result<(), EngineError> {
        if let Some(d) = self.durability.as_mut() {
            let payload = durability::encode_wal_op(op);
            d.wal.append(&payload)?;
            d.records_since_checkpoint += 1;
            d.bytes_since_checkpoint += payload.len() as u64;
        }
        Ok(())
    }

    /// Snapshot the complete engine state for a checkpoint.  Everything a
    /// restored engine needs except the config and the UDF registry (function
    /// pointers — re-supplied by the builder at recovery).
    pub(crate) fn export_checkpoint_state(&self) -> CheckpointState {
        CheckpointState {
            grounder: self.grounder.export_state(),
            materialization: self.materialization.clone(),
            materialized_epoch: self.materialized_epoch,
            materialized_coverage: self.materialized_coverage,
            cumulative_change: self.cumulative_change.clone(),
            learned_weights: self.learned_weights.clone(),
            epoch: self.epoch,
            snapshot: (*self.snapshot()).clone(),
        }
    }

    /// Re-execute one logged operation during recovery.  Must run *before*
    /// the durability handle is attached so replay does not re-append.
    ///
    /// An error here is usually not new information: an operation that failed
    /// when first executed (e.g. a strict-mode [`EngineError::StaleMaterialization`])
    /// fails the same way on replay and leaves the same partial state.  But if
    /// the engine was rebuilt with a *different* UDF registry or config than
    /// the run that wrote the log, a failure marks genuine replay divergence —
    /// so the builder records every error into
    /// [`DeepDive::recovery_replay_errors`] instead of discarding them.
    pub(crate) fn apply_wal_op(&mut self, op: WalOp) -> Result<(), EngineError> {
        debug_assert!(
            self.durability.is_none(),
            "WAL replay must happen before the durability handle is attached"
        );
        match op {
            WalOp::InitialRun => self.initial_run_inner().map(drop),
            WalOp::Update { mode, update } => self.run_update_inner(&update, mode).map(drop),
            WalOp::RetractSupervision { relation, tuple } => {
                let mut update = KbcUpdate::new();
                update.retract_supervision(&relation, tuple);
                self.run_update_inner(&update, ExecutionMode::Incremental)
                    .map(drop)
            }
            WalOp::Refresh => self.refresh_inner().map(drop),
            WalOp::Materialize => {
                self.materialize_inner();
                Ok(())
            }
        }
    }

    /// Note a failed replay during recovery (builder-only).
    pub(crate) fn record_replay_error(&mut self, seq: u64, err: &EngineError) {
        self.replay_errors
            .push(format!("replaying WAL record {seq}: {err}"));
    }

    /// Operations that failed while replaying the WAL tail during this
    /// engine's recovery, as `"replaying WAL record <seq>: <error>"` lines.
    /// Empty for in-memory engines and clean recoveries.
    ///
    /// A non-empty list with the *same* config and UDF registry as the
    /// original run merely repeats errors that run already reported (replay
    /// is deterministic, so the op failed identically then).  With a
    /// different registry or config it signals replay divergence: operations
    /// that originally succeeded were dropped, and the recovered state does
    /// not match the pre-crash state.
    pub fn recovery_replay_errors(&self) -> &[String] {
        &self.replay_errors
    }

    /// Hand the engine its open WAL + checkpoint stores.  Called by the
    /// builder once construction (and any replay) is complete.
    pub(crate) fn attach_durability(&mut self, handle: DurabilityHandle) {
        self.durability = Some(handle);
    }

    // ---------------------------------------------------------------- outputs
    //
    // Thin wrappers over the current snapshot, kept for single-threaded
    // callers; serving threads should hold a [`Snapshot`] (or a
    // [`SnapshotReader`]) instead and query it directly.

    /// Facts of `relation` whose marginal probability is at least `threshold`.
    pub fn extract_facts(&self, relation: &str, threshold: f64) -> Vec<(Tuple, f64)> {
        self.snapshot().extract_facts(relation, threshold)
    }

    /// Probability currently assigned to one tuple of a variable relation.
    pub fn probability_of(&self, relation: &str, tuple: &Tuple) -> Option<f64> {
        self.snapshot().probability_of(relation, tuple)
    }

    /// Quality of the facts currently extracted from `relation` (using the
    /// configured threshold) against a ground-truth set.
    pub fn quality(&self, relation: &str, truth: &HashSet<Tuple>) -> QualityReport {
        self.snapshot().quality(relation, truth)
    }

    // ---------------------------------------------------------------- helpers

    /// The engine's dispatch pool, resolving to the process-global one on
    /// first use when no dedicated size was configured.
    fn pool(&self) -> &Arc<ThreadPool> {
        self.pool.get_or_init(|| Arc::clone(rayon::global_pool()))
    }

    /// Run weight learning over the current graph on the engine's pool (the
    /// learner goes hogwild above the configured query-variable threshold),
    /// returning the trace.  The pool is only resolved when the threshold is
    /// actually met, so small-graph engines stay pool-free.
    fn run_learner(&mut self, learn: &LearnOptions) -> dd_inference::LearningTrace {
        let threshold = self.config.parallel_threshold;
        let pool = (self.grounder.graph().query_variables().len() >= threshold)
            .then(|| Arc::clone(self.pool()));
        let mut learner = Learner::new(self.grounder.graph_mut());
        if let Some(pool) = pool {
            learner = learner.with_pool(pool, threshold);
        }
        learner.learn(learn)
    }

    /// Full Gibbs over the current graph.  The sampler compiles the graph into
    /// its [`dd_factorgraph::FlatGraph`] hot representation internally; every
    /// engine execution (grounding or learning) changes the graph before the
    /// next inference, so there is nothing to cache across calls.
    ///
    /// Graphs with at least [`EngineConfig::parallel_threshold`] query
    /// variables run hogwild sweeps on the engine's persistent pool; smaller
    /// graphs run the sequential sampler (faster mixing per wall-second and
    /// bit-deterministic per seed).
    fn full_gibbs(&self) -> Marginals {
        let options = GibbsOptions {
            seed: self.config.seed,
            ..self.config.gibbs.clone()
        };
        let graph = self.grounder.graph();
        if graph.query_variables().len() >= self.config.parallel_threshold {
            let pool = self.pool();
            if pool.num_threads() > 1 {
                return ParallelGibbs::new(graph, options.seed)
                    .with_pool(Arc::clone(pool))
                    .run(options.sweeps, options.burn_in);
            }
        }
        GibbsSampler::new(graph, self.config.seed).run(&options)
    }

    fn incremental_gibbs_options(&self) -> GibbsOptions {
        GibbsOptions {
            seed: self.config.seed,
            ..self.config.gibbs.clone()
        }
    }
}

/// True if every existing-entity reference of `delta` resolves inside a graph
/// with `nv` variables and `nw` weights (i.e. the materialization the delta
/// will be applied to is not stale).
fn delta_compatible_with(delta: &dd_factorgraph::GraphDelta, nv: usize, nw: usize) -> bool {
    let var_ok = |r: &dd_factorgraph::NewVarRef| match r {
        dd_factorgraph::NewVarRef::Existing(v) => *v < nv,
        dd_factorgraph::NewVarRef::New(_) => true,
    };
    delta.evidence_changes.iter().all(|e| e.var < nv)
        && delta.weight_changes.iter().all(|w| w.weight_id < nw)
        && delta.new_factors.iter().all(|f| {
            f.var_refs.iter().all(var_ok)
                && match f.weight {
                    dd_factorgraph::NewWeightRef::Existing(w) => w < nw,
                    dd_factorgraph::NewWeightRef::New(_) => true,
                }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_grounding::{parse_program, standard_udfs};
    use dd_relstore::{tuple, DataType, Schema};

    const PROGRAM: &str = r#"
        relation Sentence(s: int, content: text) base.
        relation PersonCandidate(s: int, m: int, t: text) base.
        relation EL(m: int, e: text) base.
        relation Married(e1: text, e2: text) base.
        relation MarriedCandidate(m1: int, m2: int) derived.
        relation MarriedMentions(m1: int, m2: int) variable.

        rule R1 candidate:
          MarriedCandidate(m1, m2) :-
            PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), m1 < m2.

        rule FE1 feature:
          MarriedMentions(m1, m2) :-
            MarriedCandidate(m1, m2),
            PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2),
            Sentence(s, content)
          weight = phrase(t1, t2, content).

        rule S1 supervision+:
          MarriedMentions(m1, m2) :-
            MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
    "#;

    fn database() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Sentence",
            Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
        )
        .unwrap();
        db.create_table(
            "PersonCandidate",
            Schema::of(&[
                ("s", DataType::Int),
                ("m", DataType::Int),
                ("t", DataType::Text),
            ]),
        )
        .unwrap();
        db.create_table(
            "EL",
            Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
        )
        .unwrap();
        db.create_table(
            "Married",
            Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
        )
        .unwrap();
        // Three "documents": two with the spouse phrase, one with a neutral one.
        db.insert_all(
            "Sentence",
            vec![
                tuple![1i64, "Barack and his wife Michelle attended the dinner"],
                tuple![2i64, "George and his wife Laura were married"],
                tuple![3i64, "Malia and Sasha attended the state dinner"],
            ],
        )
        .unwrap();
        db.insert_all(
            "PersonCandidate",
            vec![
                tuple![1i64, 10i64, "Barack"],
                tuple![1i64, 11i64, "Michelle"],
                tuple![2i64, 20i64, "George"],
                tuple![2i64, 21i64, "Laura"],
                tuple![3i64, 30i64, "Malia"],
                tuple![3i64, 31i64, "Sasha"],
            ],
        )
        .unwrap();
        db.insert_all(
            "EL",
            vec![
                tuple![10i64, "Barack_Obama_1"],
                tuple![11i64, "Michelle_Obama_1"],
            ],
        )
        .unwrap();
        db.insert_all(
            "Married",
            vec![tuple!["Barack_Obama_1", "Michelle_Obama_1"]],
        )
        .unwrap();
        db
    }

    fn engine() -> DeepDive {
        DeepDive::builder()
            .program(parse_program(PROGRAM).unwrap())
            .database(database())
            .udfs(standard_udfs())
            .config(EngineConfig::fast())
            .build()
            .unwrap()
    }

    #[test]
    fn initial_run_learns_the_spouse_phrase() {
        let mut dd = engine();
        let report = dd.initial_run().unwrap();
        assert!(report.new_variables >= 3);
        assert!(report.total_secs() >= 0.0);

        // The supervised pair has probability 1; the George/Laura pair shares the
        // "and his wife" feature and should get a high probability; the
        // Malia/Sasha pair should not.
        let supervised = dd
            .probability_of("MarriedMentions", &tuple![10i64, 11i64])
            .unwrap();
        assert_eq!(supervised, 1.0);
        let same_phrase = dd
            .probability_of("MarriedMentions", &tuple![20i64, 21i64])
            .unwrap();
        let other = dd
            .probability_of("MarriedMentions", &tuple![30i64, 31i64])
            .unwrap();
        assert!(
            same_phrase > other,
            "same-phrase pair {same_phrase} should beat {other}"
        );
    }

    #[test]
    fn incremental_update_with_new_document() {
        let mut dd = engine();
        dd.initial_run().unwrap();
        dd.materialize().unwrap();

        let mut update = KbcUpdate::new();
        update
            .insert(
                "Sentence",
                tuple![4i64, "Franklin and his wife Eleanor hosted the gala"],
            )
            .insert("PersonCandidate", tuple![4i64, 40i64, "Franklin"])
            .insert("PersonCandidate", tuple![4i64, 41i64, "Eleanor"]);

        let report = dd.run_update(&update, ExecutionMode::Incremental).unwrap();
        assert_eq!(report.mode, ExecutionMode::Incremental);
        assert_eq!(report.new_variables, 1);
        // New factors → the optimizer picks the sampling strategy.
        assert_eq!(report.strategy, Some(StrategyChoice::Sampling));
        let p = dd
            .probability_of("MarriedMentions", &tuple![40i64, 41i64])
            .unwrap();
        assert!(
            p > 0.5,
            "new pair sharing the learned spouse phrase should be likely, got {p}"
        );
    }

    #[test]
    fn supervision_update_routes_to_variational() {
        let mut dd = engine();
        dd.initial_run().unwrap();
        dd.materialize().unwrap();

        // New distant-supervision fact labels the George/Laura pair.
        let mut update = KbcUpdate::new();
        update
            .insert("EL", tuple![20i64, "George_Bush_1"])
            .insert("EL", tuple![21i64, "Laura_Bush_1"])
            .insert("Married", tuple!["George_Bush_1", "Laura_Bush_1"]);

        let report = dd.run_update(&update, ExecutionMode::Incremental).unwrap();
        assert_eq!(report.strategy, Some(StrategyChoice::Variational));
        let p = dd
            .probability_of("MarriedMentions", &tuple![20i64, 21i64])
            .unwrap();
        assert_eq!(p, 1.0);
    }

    #[test]
    fn rerun_and_incremental_agree_on_high_confidence_facts() {
        let mut update = KbcUpdate::new();
        update
            .insert(
                "Sentence",
                tuple![4i64, "Franklin and his wife Eleanor hosted the gala"],
            )
            .insert("PersonCandidate", tuple![4i64, 40i64, "Franklin"])
            .insert("PersonCandidate", tuple![4i64, 41i64, "Eleanor"]);

        let mut incremental = engine();
        incremental.initial_run().unwrap();
        incremental.materialize().unwrap();
        incremental
            .run_update(&update, ExecutionMode::Incremental)
            .unwrap();

        let mut rerun = engine();
        rerun.initial_run().unwrap();
        rerun.run_update(&update, ExecutionMode::Rerun).unwrap();

        // §4.2: high-confidence facts of the two executions overlap heavily.
        let inc_facts: HashSet<Tuple> = incremental
            .extract_facts("MarriedMentions", 0.9)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let rerun_facts: HashSet<Tuple> = rerun
            .extract_facts("MarriedMentions", 0.9)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        // The supervised fact must be in both.
        assert!(inc_facts.contains(&tuple![10i64, 11i64]));
        assert!(rerun_facts.contains(&tuple![10i64, 11i64]));
    }

    #[test]
    fn quality_against_planted_truth() {
        let mut dd = engine();
        dd.initial_run().unwrap();
        let truth: HashSet<Tuple> = [tuple![10i64, 11i64], tuple![20i64, 21i64]]
            .into_iter()
            .collect();
        let q = dd.quality("MarriedMentions", &truth);
        assert!(q.precision > 0.0);
        assert!(q.recall > 0.0);
        assert!(q.extracted >= 1);
    }

    #[test]
    fn extract_facts_respects_threshold() {
        let mut dd = engine();
        dd.initial_run().unwrap();
        let all = dd.extract_facts("MarriedMentions", 0.0);
        let high = dd.extract_facts("MarriedMentions", 0.99);
        assert!(all.len() >= high.len());
        assert!(high.iter().all(|(_, p)| *p >= 0.99));
        // unknown relation -> empty
        assert!(dd.extract_facts("Nothing", 0.0).is_empty());
    }

    #[test]
    fn hogwild_engine_agrees_on_pinned_facts() {
        // Force every sampler onto the pooled hogwild path (threshold 1,
        // dedicated 2-thread pool) and check the pipeline still lands the
        // supervised fact at probability 1 and separates the phrase pairs.
        let mut config = EngineConfig::fast();
        config.num_threads = Some(2);
        config.parallel_threshold = 1;
        let mut dd = DeepDive::builder()
            .program(parse_program(PROGRAM).unwrap())
            .database(database())
            .config(config)
            .build()
            .unwrap();
        dd.initial_run().unwrap();
        let supervised = dd
            .probability_of("MarriedMentions", &tuple![10i64, 11i64])
            .unwrap();
        assert_eq!(supervised, 1.0);
        let same_phrase = dd
            .probability_of("MarriedMentions", &tuple![20i64, 21i64])
            .unwrap();
        let other = dd
            .probability_of("MarriedMentions", &tuple![30i64, 31i64])
            .unwrap();
        assert!(
            same_phrase > other,
            "same-phrase pair {same_phrase} should beat {other}"
        );
    }

    #[test]
    fn update_without_materialization_falls_back_to_full_gibbs() {
        let mut dd = engine();
        dd.initial_run().unwrap();
        let mut update = KbcUpdate::new();
        update.insert("PersonCandidate", tuple![3i64, 32i64, "Joe"]);
        let report = dd.run_update(&update, ExecutionMode::Incremental).unwrap();
        assert!(report.strategy.is_some());
        assert!(report.inference_secs >= 0.0);
    }

    #[test]
    fn strict_incremental_reports_missing_materialization() {
        let mut config = EngineConfig::fast();
        config.strict_incremental = true;
        let mut dd = DeepDive::builder()
            .program(parse_program(PROGRAM).unwrap())
            .database(database())
            .config(config)
            .build()
            .unwrap();
        dd.initial_run().unwrap();
        let mut update = KbcUpdate::new();
        update.insert("PersonCandidate", tuple![3i64, 32i64, "Joe"]);
        let err = dd
            .run_update(&update, ExecutionMode::Incremental)
            .unwrap_err();
        match err {
            crate::error::EngineError::StaleMaterialization {
                kind: StaleKind::NotMaterialized,
                materialized_epoch: None,
                current_epoch: 1,
            } => {}
            other => panic!("expected NotMaterialized at epoch 1, got {other:?}"),
        }
        // Recovery: materialize + refresh publishes a fresh epoch from the
        // already-applied grounding, and the next update is served.
        dd.materialize().unwrap();
        dd.refresh().unwrap();
        assert_eq!(dd.epoch(), 2);
        let mut update = KbcUpdate::new();
        update.insert("PersonCandidate", tuple![3i64, 33i64, "Jill"]);
        dd.run_update(&update, ExecutionMode::Incremental).unwrap();
        assert_eq!(dd.epoch(), 3);
    }

    #[test]
    fn strict_incremental_serves_sampling_compatible_updates() {
        // Growth the sampling strategy can serve does not trip strict mode:
        // a new document adds variables the materialization predates, but the
        // stored proposals extend over them (§3.2.2).
        let mut config = EngineConfig::fast();
        config.strict_incremental = true;
        let mut dd = DeepDive::builder()
            .program(parse_program(PROGRAM).unwrap())
            .database(database())
            .config(config)
            .build()
            .unwrap();
        dd.initial_run().unwrap();
        dd.materialize().unwrap();
        let mut update = KbcUpdate::new();
        update
            .insert(
                "Sentence",
                tuple![4i64, "Franklin and his wife Eleanor hosted the gala"],
            )
            .insert("PersonCandidate", tuple![4i64, 40i64, "Franklin"])
            .insert("PersonCandidate", tuple![4i64, 41i64, "Eleanor"]);
        let report = dd.run_update(&update, ExecutionMode::Incremental).unwrap();
        assert_eq!(report.strategy, Some(StrategyChoice::Sampling));
        assert!(!report.fell_back_to_variational);
    }

    #[test]
    fn update_rule_with_unknown_udf_is_rejected_before_grounding() {
        use dd_grounding::{Rule, RuleAtom, RuleKind, WeightSpec};
        use dd_relstore::view::Term;

        let mut dd = engine();
        dd.initial_run().unwrap();
        let vars_before = dd.graph().num_variables();
        let epoch_before = dd.epoch();

        let mut update = KbcUpdate::new();
        update.insert("PersonCandidate", tuple![3i64, 32i64, "Joe"]);
        update.add_rule(Rule::new(
            "FE_typo",
            RuleKind::FeatureExtraction,
            RuleAtom::new("MarriedMentions", vec![Term::var("m1"), Term::var("m2")]),
            vec![RuleAtom::new(
                "MarriedCandidate",
                vec![Term::var("m1"), Term::var("m2")],
            )],
            WeightSpec::Tied {
                udf: "phrse".into(), // typo: not registered
                args: vec![],
            },
        ));
        let err = dd
            .run_update(&update, ExecutionMode::Incremental)
            .unwrap_err();
        match err {
            EngineError::Udf { rule, udf, .. } => {
                assert_eq!(rule, "FE_typo");
                assert_eq!(udf, "phrse");
            }
            other => panic!("expected Udf error, got {other:?}"),
        }
        // Rejected before grounding: no data applied, no epoch published.
        assert_eq!(dd.graph().num_variables(), vars_before);
        assert_eq!(dd.epoch(), epoch_before);
    }

    #[test]
    fn snapshots_are_epoch_consistent_across_updates() {
        let mut dd = engine();
        assert_eq!(dd.snapshot().epoch(), 0);
        dd.initial_run().unwrap();
        dd.materialize().unwrap();
        let epoch1 = dd.snapshot();
        assert_eq!(epoch1.epoch(), 1);
        let facts_before = epoch1.extract_facts("MarriedMentions", 0.0).len();

        let mut update = KbcUpdate::new();
        update
            .insert(
                "Sentence",
                tuple![4i64, "Franklin and his wife Eleanor hosted the gala"],
            )
            .insert("PersonCandidate", tuple![4i64, 40i64, "Franklin"])
            .insert("PersonCandidate", tuple![4i64, 41i64, "Eleanor"]);
        dd.run_update(&update, ExecutionMode::Incremental).unwrap();

        // The old handle still serves its own epoch: the new pair is invisible.
        assert_eq!(epoch1.epoch(), 1);
        assert_eq!(
            epoch1.probability_of("MarriedMentions", &tuple![40i64, 41i64]),
            None
        );
        assert_eq!(
            epoch1.extract_facts("MarriedMentions", 0.0).len(),
            facts_before
        );
        // The fresh snapshot sees it.
        let epoch2 = dd.snapshot();
        assert_eq!(epoch2.epoch(), 2);
        assert!(epoch2
            .probability_of("MarriedMentions", &tuple![40i64, 41i64])
            .is_some());
    }

    #[test]
    fn strict_mode_serves_variational_updates_on_a_fresh_materialization() {
        // A supervision-only update right after materialize() routes to the
        // variational strategy and must be *served*, not rejected: strict
        // mode distinguishes a usable materialization (full-graph coverage
        // recorded at materialize time) from the approximate graph's own
        // unary/pairwise weight space, whose counts never match the model's.
        let mut config = EngineConfig::fast();
        config.strict_incremental = true;
        let mut dd = DeepDive::builder()
            .program(parse_program(PROGRAM).unwrap())
            .database(database())
            .config(config)
            .build()
            .unwrap();
        dd.initial_run().unwrap();
        dd.materialize().unwrap();

        let mut update = KbcUpdate::new();
        update
            .insert("EL", tuple![20i64, "George_Bush_1"])
            .insert("EL", tuple![21i64, "Laura_Bush_1"])
            .insert("Married", tuple!["George_Bush_1", "Laura_Bush_1"]);
        let report = dd
            .run_update(&update, ExecutionMode::Incremental)
            .expect("fresh materialization must serve the variational update");
        assert_eq!(report.strategy, Some(StrategyChoice::Variational));
        assert_eq!(
            dd.probability_of("MarriedMentions", &tuple![20i64, 21i64]),
            Some(1.0)
        );
    }

    #[test]
    fn variational_update_after_sampling_served_growth_keeps_full_coverage() {
        // materialize() at N variables; a document update grows the graph
        // (served by sampling); a later supervision-only update routes to the
        // variational strategy, whose materialized approx graph predates the
        // growth.  The engine must notice the stale coverage and fall back,
        // publishing marginals over the *full* graph — the grown fact stays
        // visible in every later epoch.
        let mut dd = engine();
        dd.initial_run().unwrap();
        dd.materialize().unwrap();

        let mut grow = KbcUpdate::new();
        grow.insert(
            "Sentence",
            tuple![4i64, "Franklin and his wife Eleanor hosted the gala"],
        )
        .insert("PersonCandidate", tuple![4i64, 40i64, "Franklin"])
        .insert("PersonCandidate", tuple![4i64, 41i64, "Eleanor"]);
        let report = dd.run_update(&grow, ExecutionMode::Incremental).unwrap();
        assert_eq!(report.strategy, Some(StrategyChoice::Sampling));
        assert_eq!(report.new_variables, 1);

        let mut label = KbcUpdate::new();
        label
            .insert("EL", tuple![20i64, "George_Bush_1"])
            .insert("EL", tuple![21i64, "Laura_Bush_1"])
            .insert("Married", tuple!["George_Bush_1", "Laura_Bush_1"]);
        dd.run_update(&label, ExecutionMode::Incremental).unwrap();

        let snap = dd.snapshot();
        assert_eq!(snap.stats().num_variables, snap.marginals().len());
        assert!(
            snap.probability_of("MarriedMentions", &tuple![40i64, 41i64])
                .is_some(),
            "fact from the sampling-served growth update must survive the later epoch"
        );
        assert_eq!(
            snap.probability_of("MarriedMentions", &tuple![20i64, 21i64]),
            Some(1.0)
        );
    }

    #[test]
    fn fact_query_on_engine_snapshot_paginates() {
        let mut dd = engine();
        dd.initial_run().unwrap();
        let snap = dd.snapshot();
        let all = snap.facts("MarriedMentions").run();
        assert_eq!(all.len(), 3);
        let top = snap.facts("MarriedMentions").top_k(1).run();
        assert_eq!(top[0].0, tuple![10i64, 11i64]); // the supervised pair at 1.0
        let page = snap.facts("MarriedMentions").offset(2).limit(5).run();
        assert_eq!(page.len(), 1);
    }

    // ------------------------------------------------------------ durability

    fn temp_data_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "deepdive-engine-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_engine(dir: &std::path::Path) -> DeepDive {
        DeepDive::builder()
            .program(parse_program(PROGRAM).unwrap())
            .database(database())
            .udfs(standard_udfs())
            .config(EngineConfig::fast())
            .durability(dd_storage::DurabilityConfig::new(dir))
            .build()
            .unwrap()
    }

    #[test]
    fn checkpoint_without_durability_is_a_typed_error() {
        let mut dd = engine();
        assert!(!dd.is_durable());
        assert!(dd.last_wal_seq().is_none());
        match dd.checkpoint() {
            Err(EngineError::Storage(dd_storage::StorageError::NotConfigured)) => {}
            other => panic!("expected NotConfigured, got {other:?}"),
        }
    }

    #[test]
    fn durable_engine_recovers_exact_state_from_wal_replay() {
        let dir = temp_data_dir("replay");
        let reference = {
            let mut dd = durable_engine(&dir);
            assert!(dd.is_durable());
            dd.initial_run().unwrap();
            dd.materialize().unwrap();
            let mut update = KbcUpdate::new();
            update
                .insert("EL", tuple![20i64, "George_Bush_1"])
                .insert("EL", tuple![21i64, "Laura_Bush_1"])
                .insert("Married", tuple!["George_Bush_1", "Laura_Bush_1"]);
            dd.run_update(&update, ExecutionMode::Incremental).unwrap();
            // 3 logged ops on top of the baseline checkpoint; no checkpoint
            // since, so recovery is pure WAL replay.
            assert_eq!(dd.last_wal_seq(), Some(3));
            (dd.epoch(), durability::encode_snapshot(&dd.snapshot()))
        };

        let recovered = durable_engine(&dir);
        assert_eq!(recovered.epoch(), reference.0);
        assert_eq!(
            durability::encode_snapshot(&recovered.snapshot()),
            reference.1,
            "replayed snapshot must be byte-identical to the pre-shutdown one"
        );
        assert_eq!(
            recovered.probability_of("MarriedMentions", &tuple![10i64, 11i64]),
            Some(1.0)
        );
        assert_eq!(
            recovered.probability_of("MarriedMentions", &tuple![20i64, 21i64]),
            Some(1.0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_supersedes_the_wal_and_recovery_matches() {
        let dir = temp_data_dir("checkpoint");
        let reference = {
            let mut dd = durable_engine(&dir);
            dd.initial_run().unwrap();
            dd.materialize().unwrap();
            let covered = dd.checkpoint().unwrap();
            assert_eq!(covered, 2);
            // Post-checkpoint update lives only in the WAL tail.
            let mut update = KbcUpdate::new();
            update
                .insert("EL", tuple![20i64, "George_Bush_1"])
                .insert("EL", tuple![21i64, "Laura_Bush_1"])
                .insert("Married", tuple!["George_Bush_1", "Laura_Bush_1"]);
            dd.run_update(&update, ExecutionMode::Incremental).unwrap();
            (dd.epoch(), durability::encode_snapshot(&dd.snapshot()))
        };

        let recovered = durable_engine(&dir);
        assert_eq!(recovered.epoch(), reference.0);
        assert_eq!(
            durability::encode_snapshot(&recovered.snapshot()),
            reference.1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_engine_keeps_serving_and_logging() {
        // Recovery is not read-only: the recovered engine must accept further
        // updates, checkpoint them, and recover *again*.
        let dir = temp_data_dir("continue");
        {
            let mut dd = durable_engine(&dir);
            dd.initial_run().unwrap();
            dd.materialize().unwrap();
        }
        let reference = {
            let mut dd = durable_engine(&dir);
            let mut update = KbcUpdate::new();
            update
                .insert("EL", tuple![20i64, "George_Bush_1"])
                .insert("EL", tuple![21i64, "Laura_Bush_1"])
                .insert("Married", tuple!["George_Bush_1", "Laura_Bush_1"]);
            dd.run_update(&update, ExecutionMode::Incremental).unwrap();
            dd.checkpoint().unwrap();
            (dd.epoch(), durability::encode_snapshot(&dd.snapshot()))
        };
        let recovered = durable_engine(&dir);
        assert_eq!(recovered.epoch(), reference.0);
        assert_eq!(
            durability::encode_snapshot(&recovered.snapshot()),
            reference.1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

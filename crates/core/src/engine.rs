//! The DeepDive engine: end-to-end KBC execution, Rerun vs Incremental.
//!
//! The engine owns a [`Grounder`] (program + database + factor graph), an
//! [`EngineConfig`], the current marginals, the learned model, and — after
//! [`DeepDive::materialize`] has been called — the combined materialization of
//! §3.3.  A KBC iteration ([`KbcUpdate`]: new data and/or new rules) can then be
//! executed in either mode:
//!
//! * [`ExecutionMode::Rerun`] — the baseline of §4.2: learning restarts from a
//!   cold model and inference runs full Gibbs sampling over the whole updated
//!   factor graph;
//! * [`ExecutionMode::Incremental`] — the paper's system: learning warmstarts
//!   from the previous model (Appendix B.3), the rule-based optimizer (§3.3)
//!   picks the sampling or variational strategy for the observed change, and
//!   inference touches only the changed part of the graph (falling back from
//!   sampling to variational when the stored samples run out).
//!
//! Grounding is incremental in both modes; the relational (DRed) speedup is
//! measured separately by the `grounding_dred` benchmark, matching how the paper
//! reports it separately from Figure 9.

use crate::config::EngineConfig;
use crate::materialization::Materialization;
use crate::optimizer::{choose_strategy, StrategyChoice};
use crate::quality::{evaluate_quality, QualityReport};
use dd_factorgraph::FactorGraph;
use dd_grounding::{Grounder, KbcUpdate, Program, UdfRegistry};
use dd_inference::{
    DistributionChange, GibbsOptions, GibbsSampler, LearnOptions, Learner, Marginals,
    ParallelGibbs,
};
use dd_relstore::{Database, Tuple};
use rayon::ThreadPool;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Whether an update is executed from scratch or incrementally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    Rerun,
    Incremental,
}

impl ExecutionMode {
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::Rerun => "Rerun",
            ExecutionMode::Incremental => "Incremental",
        }
    }
}

/// Timing and bookkeeping for one executed iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationReport {
    pub mode: ExecutionMode,
    /// Strategy chosen by the optimizer (None for Rerun / the initial run).
    pub strategy: Option<StrategyChoice>,
    pub grounding_secs: f64,
    pub learning_secs: f64,
    pub inference_secs: f64,
    /// Acceptance rate of the MH chain, when the sampling strategy ran.
    pub acceptance_rate: Option<f64>,
    pub new_variables: usize,
    pub new_factors: usize,
    /// True if the sampling strategy exhausted its samples and fell back.
    pub fell_back_to_variational: bool,
}

impl IterationReport {
    /// Learning + inference time — the quantity Figure 9 tabulates.
    pub fn inference_and_learning_secs(&self) -> f64 {
        self.learning_secs + self.inference_secs
    }

    /// Total time including grounding.
    pub fn total_secs(&self) -> f64 {
        self.grounding_secs + self.learning_secs + self.inference_secs
    }
}

/// The end-to-end engine.
///
/// ```
/// use dd_grounding::{parse_program, standard_udfs};
/// use dd_relstore::{tuple, Database, DataType, Schema};
/// use deepdive::{DeepDive, EngineConfig};
///
/// // A one-rule program: every claim with a supervision label becomes
/// // evidence; the others get their probability from the shared weight.
/// let program = parse_program(r#"
///     relation Claim(id: int, text: text) base.
///     relation Label(id: int) base.
///     relation Fact(id: int) variable.
///
///     rule F feature:
///       Fact(id) :- Claim(id, text) weight = 1.5.
///
///     rule S supervision+:
///       Fact(id) :- Claim(id, text), Label(id).
/// "#).unwrap();
///
/// let mut db = Database::new();
/// db.create_table("Claim", Schema::of(&[("id", DataType::Int), ("text", DataType::Text)])).unwrap();
/// db.create_table("Label", Schema::of(&[("id", DataType::Int)])).unwrap();
/// db.insert_all("Claim", vec![tuple![1i64, "alpha"], tuple![2i64, "beta"]]).unwrap();
/// db.insert_all("Label", vec![tuple![1i64]]).unwrap();
///
/// let mut dd = DeepDive::new(program, db, standard_udfs(), EngineConfig::fast()).unwrap();
/// dd.initial_run().unwrap();
/// // The supervised claim is pinned to probability 1...
/// assert_eq!(dd.probability_of("Fact", &tuple![1i64]), Some(1.0));
/// // ...and the unsupervised one gets a high (but uncertain) probability.
/// let p = dd.probability_of("Fact", &tuple![2i64]).unwrap();
/// assert!(p > 0.5 && p < 1.0);
/// ```
pub struct DeepDive {
    grounder: Grounder,
    config: EngineConfig,
    /// The persistent worker pool serving this engine end to end: full-Gibbs
    /// hogwild inference and learning-gradient estimation all dispatch here
    /// (above [`EngineConfig::parallel_threshold`]), so workers are spawned
    /// once per engine — or once per process, when the config shares the
    /// global pool — rather than per sweep.  Filled eagerly for a dedicated
    /// `num_threads` pool, lazily (first above-threshold use) for the shared
    /// global pool, so small-graph engines never spawn workers at all.
    pool: OnceLock<Arc<ThreadPool>>,
    materialization: Option<Materialization>,
    /// The distribution change accumulated since the materialization was taken:
    /// successive incremental updates all reuse the same stored samples, so the
    /// MH acceptance test must compare against the *materialized* distribution,
    /// not just the previous iteration's.
    cumulative_change: DistributionChange,
    marginals: Option<Marginals>,
    learned_weights: Vec<f64>,
}

/// Merge `next` into `acc` (older entries win for weight old-values).
fn merge_change(acc: &mut DistributionChange, next: &DistributionChange) {
    acc.new_factors.extend(next.new_factors.iter().copied());
    acc.new_variables.extend(next.new_variables.iter().copied());
    for &(v, val) in &next.new_evidence {
        if let Some(entry) = acc.new_evidence.iter_mut().find(|(ev, _)| *ev == v) {
            entry.1 = val;
        } else {
            acc.new_evidence.push((v, val));
        }
    }
    for &(w, old) in &next.changed_weights {
        if !acc.changed_weights.iter().any(|(aw, _)| *aw == w) {
            acc.changed_weights.push((w, old));
        }
    }
}

impl DeepDive {
    /// Create an engine from a program, loaded base data, and UDFs.
    pub fn new(
        program: Program,
        db: Database,
        udfs: UdfRegistry,
        config: EngineConfig,
    ) -> Result<Self, String> {
        let pool = OnceLock::new();
        if let Some(n) = config.num_threads {
            let _ = pool.set(Arc::new(ThreadPool::new(n)));
        }
        Ok(DeepDive {
            grounder: Grounder::new(program, db, udfs)?,
            config,
            pool,
            materialization: None,
            cumulative_change: DistributionChange::default(),
            marginals: None,
            learned_weights: Vec::new(),
        })
    }

    // ------------------------------------------------------------------ access

    pub fn graph(&self) -> &FactorGraph {
        self.grounder.graph()
    }

    pub fn grounder(&self) -> &Grounder {
        &self.grounder
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn marginals(&self) -> Option<&Marginals> {
        self.marginals.as_ref()
    }

    pub fn materialization(&self) -> Option<&Materialization> {
        self.materialization.as_ref()
    }

    pub fn learned_weights(&self) -> &[f64] {
        &self.learned_weights
    }

    // ------------------------------------------------------------ initial run

    /// Run the full pipeline once: grounding, learning, inference.
    pub fn initial_run(&mut self) -> Result<IterationReport, String> {
        let t0 = Instant::now();
        self.grounder.ground()?;
        let grounding_secs = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let learn = LearnOptions {
            seed: self.config.seed,
            ..self.config.learn.clone()
        };
        self.learned_weights = self.run_learner(&learn).final_weights;
        let learning_secs = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let marginals = self.full_gibbs();
        let inference_secs = t2.elapsed().as_secs_f64();
        self.write_back(&marginals);
        self.marginals = Some(marginals);

        let stats = self.grounder.graph().stats();
        Ok(IterationReport {
            mode: ExecutionMode::Rerun,
            strategy: None,
            grounding_secs,
            learning_secs,
            inference_secs,
            acceptance_rate: None,
            new_variables: stats.num_variables,
            new_factors: stats.num_factors,
            fell_back_to_variational: false,
        })
    }

    /// Build the combined materialization (sampling + variational + strawman).
    pub fn materialize(&mut self) {
        self.materialization = Some(Materialization::build(self.grounder.graph(), &self.config));
        self.cumulative_change = DistributionChange::default();
    }

    // --------------------------------------------------------------- updates

    /// Execute one KBC update in the given mode.
    pub fn run_update(
        &mut self,
        update: &KbcUpdate,
        mode: ExecutionMode,
    ) -> Result<IterationReport, String> {
        // Grounding is incremental in both modes.
        let pre_update_graph = self.grounder.graph().clone();
        let t0 = Instant::now();
        let incremental = self.grounder.ground_incremental(update)?;
        let grounding_secs = t0.elapsed().as_secs_f64();

        // Describe the distribution change against a clone of the pre-update
        // graph (applying the same delta reproduces the grounder's ids).
        let mut change_graph = pre_update_graph;
        let mut change = DistributionChange::apply_and_describe(&mut change_graph, &incremental.delta);

        let new_variables = incremental.delta.new_variables.len();
        let new_factors = incremental.delta.new_factors.len();

        match mode {
            ExecutionMode::Rerun => {
                // Learning from scratch over the whole updated graph.
                let t1 = Instant::now();
                let learn = LearnOptions {
                    seed: self.config.seed,
                    warmstart: None,
                    ..self.config.learn.clone()
                };
                self.learned_weights = self.run_learner(&learn).final_weights;
                let learning_secs = t1.elapsed().as_secs_f64();

                // Full Gibbs over the whole updated graph.
                let t2 = Instant::now();
                let marginals = self.full_gibbs();
                let inference_secs = t2.elapsed().as_secs_f64();
                self.write_back(&marginals);
                self.marginals = Some(marginals);

                Ok(IterationReport {
                    mode,
                    strategy: None,
                    grounding_secs,
                    learning_secs,
                    inference_secs,
                    acceptance_rate: None,
                    new_variables,
                    new_factors,
                    fell_back_to_variational: false,
                })
            }
            ExecutionMode::Incremental => {
                // Incremental learning: only needed when the model itself must
                // change (new features or new evidence); warmstarted from the
                // previous weights.
                let t1 = Instant::now();
                let needs_learning =
                    change.new_factors.iter().any(|_| true) || !change.new_evidence.is_empty();
                if needs_learning {
                    let mut warm = self.learned_weights.clone();
                    warm.resize(self.grounder.graph().num_weights(), 0.0);
                    let learn = LearnOptions {
                        epochs: (self.config.learn.epochs / 2).max(1),
                        warmstart: Some(warm),
                        seed: self.config.seed,
                        ..self.config.learn.clone()
                    };
                    let pre_learn_weights = self.grounder.graph().weight_values();
                    self.learned_weights = self.run_learner(&learn).final_weights;
                    // Weight updates are part of the distribution change the
                    // sampling strategy must account for.
                    for (w, (&old, &new)) in pre_learn_weights
                        .iter()
                        .zip(self.grounder.graph().weight_values().iter())
                        .enumerate()
                    {
                        if (old - new).abs() > 1e-12 && !change.changed_weights.iter().any(|(id, _)| *id == w)
                        {
                            change.changed_weights.push((w, old));
                        }
                    }
                }
                let learning_secs = t1.elapsed().as_secs_f64();

                // Strategy selection follows §3.3's rules on *this* update's
                // change; the MH acceptance test, however, must account for the
                // change accumulated since materialization, because the stored
                // samples are reused across iterations.
                let samples_remaining = self
                    .materialization
                    .as_ref()
                    .map(|m| m.sampling.num_samples())
                    .unwrap_or(0);
                let strategy = choose_strategy(&change, samples_remaining);
                merge_change(&mut self.cumulative_change, &change);
                let change = self.cumulative_change.clone();

                // A materialization taken before the graph grew cannot interpret a
                // delta that references variables/weights it has never seen; in
                // that (stale) case fall back to full Gibbs, as a user would
                // re-materialize.
                let variational_ok = self
                    .materialization
                    .as_ref()
                    .map(|mat| {
                        delta_compatible_with(&incremental.delta, mat.variational.approx_graph())
                    })
                    .unwrap_or(false);

                let t2 = Instant::now();
                let (marginals, acceptance_rate, fell_back) = match (&self.materialization, strategy)
                {
                    (Some(mat), StrategyChoice::Sampling) => {
                        let outcome = mat.sampling.infer(
                            self.grounder.graph(),
                            &change,
                            self.config.inference_samples,
                            self.config.seed,
                        );
                        if outcome.exhausted {
                            // Rule 4: out of samples → variational.
                            let m = if variational_ok {
                                mat.variational.infer(
                                    &incremental.delta,
                                    &self.incremental_gibbs_options(),
                                )
                            } else {
                                self.full_gibbs()
                            };
                            (m, Some(outcome.acceptance_rate), true)
                        } else {
                            (outcome.marginals, Some(outcome.acceptance_rate), false)
                        }
                    }
                    (Some(mat), StrategyChoice::Variational) if variational_ok => {
                        let m = mat
                            .variational
                            .infer(&incremental.delta, &self.incremental_gibbs_options());
                        (m, None, false)
                    }
                    _ => {
                        // Not materialized (or stale): fall back to full Gibbs.
                        (self.full_gibbs(), None, false)
                    }
                };
                let inference_secs = t2.elapsed().as_secs_f64();
                self.write_back(&marginals);
                self.marginals = Some(marginals);

                Ok(IterationReport {
                    mode,
                    strategy: Some(strategy),
                    grounding_secs,
                    learning_secs,
                    inference_secs,
                    acceptance_rate,
                    new_variables,
                    new_factors,
                    fell_back_to_variational: fell_back,
                })
            }
        }
    }

    // ---------------------------------------------------------------- outputs

    /// Facts of `relation` whose marginal probability is at least `threshold`.
    pub fn extract_facts(&self, relation: &str, threshold: f64) -> Vec<(Tuple, f64)> {
        let Some(marginals) = &self.marginals else {
            return Vec::new();
        };
        let mut facts: Vec<(Tuple, f64)> = self
            .grounder
            .variable_catalog()
            .filter(|((rel, _), _)| rel == relation)
            .filter_map(|((_, tuple), &var)| {
                if var < marginals.len() {
                    let p = marginals.get(var);
                    if p >= threshold {
                        return Some((tuple.clone(), p));
                    }
                }
                None
            })
            .collect();
        facts.sort_by(|a, b| a.0.cmp(&b.0));
        facts
    }

    /// Probability currently assigned to one tuple of a variable relation.
    pub fn probability_of(&self, relation: &str, tuple: &Tuple) -> Option<f64> {
        let var = self.grounder.variable_for(relation, tuple)?;
        let m = self.marginals.as_ref()?;
        if var < m.len() {
            Some(m.get(var))
        } else {
            None
        }
    }

    /// Quality of the facts currently extracted from `relation` (using the
    /// configured threshold) against a ground-truth set.
    pub fn quality(&self, relation: &str, truth: &HashSet<Tuple>) -> QualityReport {
        let extracted: Vec<Tuple> = self
            .extract_facts(relation, self.config.fact_threshold)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        evaluate_quality(&extracted, truth)
    }

    // ---------------------------------------------------------------- helpers

    /// The engine's dispatch pool, resolving to the process-global one on
    /// first use when no dedicated size was configured.
    fn pool(&self) -> &Arc<ThreadPool> {
        self.pool.get_or_init(|| Arc::clone(rayon::global_pool()))
    }

    /// Run weight learning over the current graph on the engine's pool (the
    /// learner goes hogwild above the configured query-variable threshold),
    /// returning the trace.  The pool is only resolved when the threshold is
    /// actually met, so small-graph engines stay pool-free.
    fn run_learner(&mut self, learn: &LearnOptions) -> dd_inference::LearningTrace {
        let threshold = self.config.parallel_threshold;
        let pool = (self.grounder.graph().query_variables().len() >= threshold)
            .then(|| Arc::clone(self.pool()));
        let mut learner = Learner::new(self.grounder.graph_mut());
        if let Some(pool) = pool {
            learner = learner.with_pool(pool, threshold);
        }
        learner.learn(learn)
    }

    /// Full Gibbs over the current graph.  The sampler compiles the graph into
    /// its [`dd_factorgraph::FlatGraph`] hot representation internally; every
    /// engine execution (grounding or learning) changes the graph before the
    /// next inference, so there is nothing to cache across calls.
    ///
    /// Graphs with at least [`EngineConfig::parallel_threshold`] query
    /// variables run hogwild sweeps on the engine's persistent pool; smaller
    /// graphs run the sequential sampler (faster mixing per wall-second and
    /// bit-deterministic per seed).
    fn full_gibbs(&self) -> Marginals {
        let options = GibbsOptions {
            seed: self.config.seed,
            ..self.config.gibbs.clone()
        };
        let graph = self.grounder.graph();
        if graph.query_variables().len() >= self.config.parallel_threshold {
            let pool = self.pool();
            if pool.num_threads() > 1 {
                return ParallelGibbs::new(graph, options.seed)
                    .with_pool(Arc::clone(pool))
                    .run(options.sweeps, options.burn_in);
            }
        }
        GibbsSampler::new(graph, self.config.seed).run(&options)
    }

    fn incremental_gibbs_options(&self) -> GibbsOptions {
        GibbsOptions {
            seed: self.config.seed,
            ..self.config.gibbs.clone()
        }
    }

    fn write_back(&mut self, marginals: &Marginals) {
        self.grounder.write_back_marginals(&marginals.values().to_vec());
    }
}

/// True if every existing-entity reference of `delta` resolves inside `graph`
/// (i.e. the materialization the delta will be applied to is not stale).
fn delta_compatible_with(delta: &dd_factorgraph::GraphDelta, graph: &FactorGraph) -> bool {
    let nv = graph.num_variables();
    let nw = graph.num_weights();
    let var_ok = |r: &dd_factorgraph::NewVarRef| match r {
        dd_factorgraph::NewVarRef::Existing(v) => *v < nv,
        dd_factorgraph::NewVarRef::New(_) => true,
    };
    delta.evidence_changes.iter().all(|e| e.var < nv)
        && delta.weight_changes.iter().all(|w| w.weight_id < nw)
        && delta.new_factors.iter().all(|f| {
            f.var_refs.iter().all(var_ok)
                && match f.weight {
                    dd_factorgraph::NewWeightRef::Existing(w) => w < nw,
                    dd_factorgraph::NewWeightRef::New(_) => true,
                }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_grounding::{parse_program, standard_udfs};
    use dd_relstore::{tuple, DataType, Schema};

    const PROGRAM: &str = r#"
        relation Sentence(s: int, content: text) base.
        relation PersonCandidate(s: int, m: int, t: text) base.
        relation EL(m: int, e: text) base.
        relation Married(e1: text, e2: text) base.
        relation MarriedCandidate(m1: int, m2: int) derived.
        relation MarriedMentions(m1: int, m2: int) variable.

        rule R1 candidate:
          MarriedCandidate(m1, m2) :-
            PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), m1 < m2.

        rule FE1 feature:
          MarriedMentions(m1, m2) :-
            MarriedCandidate(m1, m2),
            PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2),
            Sentence(s, content)
          weight = phrase(t1, t2, content).

        rule S1 supervision+:
          MarriedMentions(m1, m2) :-
            MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
    "#;

    fn database() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Sentence",
            Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
        )
        .unwrap();
        db.create_table(
            "PersonCandidate",
            Schema::of(&[
                ("s", DataType::Int),
                ("m", DataType::Int),
                ("t", DataType::Text),
            ]),
        )
        .unwrap();
        db.create_table(
            "EL",
            Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
        )
        .unwrap();
        db.create_table(
            "Married",
            Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
        )
        .unwrap();
        // Three "documents": two with the spouse phrase, one with a neutral one.
        db.insert_all(
            "Sentence",
            vec![
                tuple![1i64, "Barack and his wife Michelle attended the dinner"],
                tuple![2i64, "George and his wife Laura were married"],
                tuple![3i64, "Malia and Sasha attended the state dinner"],
            ],
        )
        .unwrap();
        db.insert_all(
            "PersonCandidate",
            vec![
                tuple![1i64, 10i64, "Barack"],
                tuple![1i64, 11i64, "Michelle"],
                tuple![2i64, 20i64, "George"],
                tuple![2i64, 21i64, "Laura"],
                tuple![3i64, 30i64, "Malia"],
                tuple![3i64, 31i64, "Sasha"],
            ],
        )
        .unwrap();
        db.insert_all(
            "EL",
            vec![
                tuple![10i64, "Barack_Obama_1"],
                tuple![11i64, "Michelle_Obama_1"],
            ],
        )
        .unwrap();
        db.insert_all("Married", vec![tuple!["Barack_Obama_1", "Michelle_Obama_1"]])
            .unwrap();
        db
    }

    fn engine() -> DeepDive {
        DeepDive::new(
            parse_program(PROGRAM).unwrap(),
            database(),
            standard_udfs(),
            EngineConfig::fast(),
        )
        .unwrap()
    }

    #[test]
    fn initial_run_learns_the_spouse_phrase() {
        let mut dd = engine();
        let report = dd.initial_run().unwrap();
        assert!(report.new_variables >= 3);
        assert!(report.total_secs() >= 0.0);

        // The supervised pair has probability 1; the George/Laura pair shares the
        // "and his wife" feature and should get a high probability; the
        // Malia/Sasha pair should not.
        let supervised = dd
            .probability_of("MarriedMentions", &tuple![10i64, 11i64])
            .unwrap();
        assert_eq!(supervised, 1.0);
        let same_phrase = dd
            .probability_of("MarriedMentions", &tuple![20i64, 21i64])
            .unwrap();
        let other = dd
            .probability_of("MarriedMentions", &tuple![30i64, 31i64])
            .unwrap();
        assert!(
            same_phrase > other,
            "same-phrase pair {same_phrase} should beat {other}"
        );
    }

    #[test]
    fn incremental_update_with_new_document() {
        let mut dd = engine();
        dd.initial_run().unwrap();
        dd.materialize();

        let mut update = KbcUpdate::new();
        update
            .insert(
                "Sentence",
                tuple![4i64, "Franklin and his wife Eleanor hosted the gala"],
            )
            .insert("PersonCandidate", tuple![4i64, 40i64, "Franklin"])
            .insert("PersonCandidate", tuple![4i64, 41i64, "Eleanor"]);

        let report = dd.run_update(&update, ExecutionMode::Incremental).unwrap();
        assert_eq!(report.mode, ExecutionMode::Incremental);
        assert_eq!(report.new_variables, 1);
        // New factors → the optimizer picks the sampling strategy.
        assert_eq!(report.strategy, Some(StrategyChoice::Sampling));
        let p = dd
            .probability_of("MarriedMentions", &tuple![40i64, 41i64])
            .unwrap();
        assert!(
            p > 0.5,
            "new pair sharing the learned spouse phrase should be likely, got {p}"
        );
    }

    #[test]
    fn supervision_update_routes_to_variational() {
        let mut dd = engine();
        dd.initial_run().unwrap();
        dd.materialize();

        // New distant-supervision fact labels the George/Laura pair.
        let mut update = KbcUpdate::new();
        update
            .insert("EL", tuple![20i64, "George_Bush_1"])
            .insert("EL", tuple![21i64, "Laura_Bush_1"])
            .insert("Married", tuple!["George_Bush_1", "Laura_Bush_1"]);

        let report = dd.run_update(&update, ExecutionMode::Incremental).unwrap();
        assert_eq!(report.strategy, Some(StrategyChoice::Variational));
        let p = dd
            .probability_of("MarriedMentions", &tuple![20i64, 21i64])
            .unwrap();
        assert_eq!(p, 1.0);
    }

    #[test]
    fn rerun_and_incremental_agree_on_high_confidence_facts() {
        let mut update = KbcUpdate::new();
        update
            .insert(
                "Sentence",
                tuple![4i64, "Franklin and his wife Eleanor hosted the gala"],
            )
            .insert("PersonCandidate", tuple![4i64, 40i64, "Franklin"])
            .insert("PersonCandidate", tuple![4i64, 41i64, "Eleanor"]);

        let mut incremental = engine();
        incremental.initial_run().unwrap();
        incremental.materialize();
        incremental
            .run_update(&update, ExecutionMode::Incremental)
            .unwrap();

        let mut rerun = engine();
        rerun.initial_run().unwrap();
        rerun.run_update(&update, ExecutionMode::Rerun).unwrap();

        // §4.2: high-confidence facts of the two executions overlap heavily.
        let inc_facts: HashSet<Tuple> = incremental
            .extract_facts("MarriedMentions", 0.9)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let rerun_facts: HashSet<Tuple> = rerun
            .extract_facts("MarriedMentions", 0.9)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        // The supervised fact must be in both.
        assert!(inc_facts.contains(&tuple![10i64, 11i64]));
        assert!(rerun_facts.contains(&tuple![10i64, 11i64]));
    }

    #[test]
    fn quality_against_planted_truth() {
        let mut dd = engine();
        dd.initial_run().unwrap();
        let truth: HashSet<Tuple> = [tuple![10i64, 11i64], tuple![20i64, 21i64]]
            .into_iter()
            .collect();
        let q = dd.quality("MarriedMentions", &truth);
        assert!(q.precision > 0.0);
        assert!(q.recall > 0.0);
        assert!(q.extracted >= 1);
    }

    #[test]
    fn extract_facts_respects_threshold() {
        let mut dd = engine();
        dd.initial_run().unwrap();
        let all = dd.extract_facts("MarriedMentions", 0.0);
        let high = dd.extract_facts("MarriedMentions", 0.99);
        assert!(all.len() >= high.len());
        assert!(high.iter().all(|(_, p)| *p >= 0.99));
        // unknown relation -> empty
        assert!(dd.extract_facts("Nothing", 0.0).is_empty());
    }

    #[test]
    fn hogwild_engine_agrees_on_pinned_facts() {
        // Force every sampler onto the pooled hogwild path (threshold 1,
        // dedicated 2-thread pool) and check the pipeline still lands the
        // supervised fact at probability 1 and separates the phrase pairs.
        let mut config = EngineConfig::fast();
        config.num_threads = Some(2);
        config.parallel_threshold = 1;
        let mut dd = DeepDive::new(
            parse_program(PROGRAM).unwrap(),
            database(),
            standard_udfs(),
            config,
        )
        .unwrap();
        dd.initial_run().unwrap();
        let supervised = dd
            .probability_of("MarriedMentions", &tuple![10i64, 11i64])
            .unwrap();
        assert_eq!(supervised, 1.0);
        let same_phrase = dd
            .probability_of("MarriedMentions", &tuple![20i64, 21i64])
            .unwrap();
        let other = dd
            .probability_of("MarriedMentions", &tuple![30i64, 31i64])
            .unwrap();
        assert!(
            same_phrase > other,
            "same-phrase pair {same_phrase} should beat {other}"
        );
    }

    #[test]
    fn update_without_materialization_falls_back_to_full_gibbs() {
        let mut dd = engine();
        dd.initial_run().unwrap();
        let mut update = KbcUpdate::new();
        update.insert("PersonCandidate", tuple![3i64, 32i64, "Joe"]);
        let report = dd.run_update(&update, ExecutionMode::Incremental).unwrap();
        assert!(report.strategy.is_some());
        assert!(report.inference_secs >= 0.0);
    }
}

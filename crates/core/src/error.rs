//! The engine's typed error surface.
//!
//! Every fallible public API of the `deepdive` crate returns [`EngineError`].
//! Each variant carries the source payload of the layer that failed, so a
//! serving deployment can branch on the failure class — reject a bad program at
//! build time, surface a schema conflict to the data loader, or trigger
//! re-materialization on [`EngineError::StaleMaterialization`] — without ever
//! parsing an error string.

use dd_grounding::{GroundingError, ParseError};
use dd_relstore::RelError;
use dd_storage::StorageError;
use std::fmt;

/// Why an incremental update could not be served from the stored
/// materialization (only raised when
/// [`crate::EngineConfig::strict_incremental`] is set; the default behavior is
/// to fall back to full Gibbs sampling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaleKind {
    /// [`crate::DeepDive::materialize`] was never called.
    NotMaterialized,
    /// The update references variables or weights created after the
    /// materialization was taken, so the stored samples and approximate
    /// factorization cannot interpret the delta.
    UnknownEntities {
        /// Variables in the graph now.
        num_variables: usize,
        /// Weights in the graph now.
        num_weights: usize,
    },
    /// The update retracted facts, compacting the factor graph in place.
    /// Stored samples and the approximate factorization are keyed by
    /// pre-compaction variable ids, so the materialization cannot interpret
    /// the shrunken graph.
    Retraction {
        /// Variables removed (and compacted over) by the update.
        removed_variables: usize,
        /// Factors removed by the update.
        removed_factors: usize,
    },
}

/// Any failure raised by the DeepDive engine.
#[derive(Debug)]
pub enum EngineError {
    /// The program text handed to the builder did not parse.
    Parse(ParseError),
    /// A pre-loaded table's schema conflicts with the program's declaration of
    /// the same relation, or a relational operation failed.
    Schema(RelError),
    /// Program validation or rule evaluation failed in the grounding layer.
    Grounding(GroundingError),
    /// A rule ties its weight through a UDF that is not registered.
    Udf {
        /// The rule whose `weight = udf(…)` clause references the UDF.
        rule: String,
        /// The missing UDF name.
        udf: String,
        /// The names that *are* registered, for the error message.
        available: Vec<String>,
    },
    /// An internal invariant of the inference pipeline was violated (e.g. the
    /// sampler returned a marginal vector that does not cover the graph).
    Inference {
        /// The pipeline stage that failed.
        stage: &'static str,
        detail: String,
    },
    /// A strict-mode incremental update could not be served from the stored
    /// materialization — raised exactly where the non-strict engine would
    /// silently fall back to full Gibbs sampling.  The update's grounding and
    /// model refresh are already applied (and, on the samples-exhausted path,
    /// a sampling pass has already run and been discarded), but no result was
    /// published: readers keep serving the previous epoch.  Recover with
    /// [`crate::DeepDive::materialize`] followed by
    /// [`crate::DeepDive::refresh`]; do *not* re-send the same update (its
    /// base-relation deltas are already applied).
    StaleMaterialization {
        kind: StaleKind,
        /// Engine epoch at which the materialization was taken, if any.
        materialized_epoch: Option<u64>,
        /// Engine epoch when the update was attempted.
        current_epoch: u64,
    },
    /// The durability layer failed: WAL append, checkpoint write, recovery
    /// scan, or state (de)serialization.  Carries the typed
    /// [`dd_storage::StorageError`] source chain.  Raised also when a
    /// durability-only operation ([`crate::DeepDive::checkpoint`]) is called
    /// on an engine built without
    /// [`crate::DeepDiveBuilder::durability`].
    Storage(StorageError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "program parse failed: {e}"),
            EngineError::Schema(e) => write!(f, "schema conflict: {e}"),
            EngineError::Grounding(e) => write!(f, "grounding failed: {e}"),
            EngineError::Udf {
                rule,
                udf,
                available,
            } => write!(
                f,
                "rule `{rule}` ties its weight through unregistered UDF `{udf}` (registered: {})",
                if available.is_empty() {
                    "none".to_string()
                } else {
                    available.join(", ")
                }
            ),
            EngineError::Inference { stage, detail } => {
                write!(f, "inference invariant violated during {stage}: {detail}")
            }
            EngineError::StaleMaterialization {
                kind,
                materialized_epoch,
                current_epoch,
            } => {
                match kind {
                    StaleKind::NotMaterialized => write!(
                        f,
                        "strict incremental update at epoch {current_epoch} but the engine was never materialized"
                    )?,
                    StaleKind::UnknownEntities {
                        num_variables,
                        num_weights,
                    } => write!(
                        f,
                        "materialization taken at epoch {} is stale at epoch {current_epoch}: the graph has grown to {num_variables} variables / {num_weights} weights",
                        materialized_epoch.unwrap_or(0)
                    )?,
                    StaleKind::Retraction {
                        removed_variables,
                        removed_factors,
                    } => write!(
                        f,
                        "materialization taken at epoch {} is invalidated at epoch {current_epoch}: the update retracted {removed_variables} variables / {removed_factors} factors, compacting the id space the stored samples are keyed by",
                        materialized_epoch.unwrap_or(0)
                    )?,
                }
                write!(f, "; call materialize() then refresh()")
            }
            EngineError::Storage(e) => write!(f, "durability failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Schema(e) => Some(e),
            EngineError::Grounding(e) => Some(e),
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<RelError> for EngineError {
    fn from(e: RelError) -> Self {
        EngineError::Schema(e)
    }
}

impl From<GroundingError> for EngineError {
    fn from(e: GroundingError) -> Self {
        EngineError::Grounding(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_grounding::ProgramError;

    #[test]
    fn conversion_chain_preserves_the_source() {
        use std::error::Error;
        let inner = GroundingError::Program(ProgramError::CyclicCandidateRules);
        let e: EngineError = inner.into();
        let source = e.source().expect("grounding source");
        assert!(source.to_string().contains("cyclic"));
        // ...and the grounding error itself chains down to the program error.
        assert!(source.source().is_some());
    }

    #[test]
    fn display_is_actionable() {
        let e = EngineError::Udf {
            rule: "FE1".into(),
            udf: "phrse".into(),
            available: vec!["phrase".into(), "identity".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("FE1") && msg.contains("phrse") && msg.contains("phrase"));

        let e = EngineError::StaleMaterialization {
            kind: StaleKind::UnknownEntities {
                num_variables: 12,
                num_weights: 4,
            },
            materialized_epoch: Some(3),
            current_epoch: 5,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("epoch 3") && msg.contains("epoch 5") && msg.contains("materialize()")
        );
    }
}

//! Incremental learning strategies (paper Appendix B.3, Figure 16).
//!
//! When an update brings new training data or new features, the weights must be
//! re-learned.  DeepDive adapts standard online learning: stochastic gradient
//! descent *warmstarted* from the previous model.  This module runs the three
//! strategies the paper compares — SGD+warmstart, SGD from a cold start, and
//! full gradient descent with warmstart — over the same graph and reports their
//! loss trajectories, which is exactly what Figure 16 plots.

use dd_factorgraph::FactorGraph;
use dd_inference::{LearnOptions, LearnStrategy, Learner, LearningTrace};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The loss trajectory of one learning strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearningComparison {
    pub strategy: String,
    pub trace: LearningTrace,
    pub seconds: f64,
}

/// Run the three strategies of Figure 16 on (clones of) `graph`.
///
/// * `warm_weights` — the model learned before the update (the warmstart point).
/// * `epochs` — epochs per strategy.
pub fn compare_learning_strategies(
    graph: &FactorGraph,
    warm_weights: &[f64],
    epochs: usize,
    seed: u64,
) -> Vec<LearningComparison> {
    let configs: Vec<(&str, LearnOptions)> = vec![
        (
            "SGD+Warmstart",
            LearnOptions {
                strategy: LearnStrategy::Sgd,
                epochs,
                warmstart: Some(warm_weights.to_vec()),
                seed,
                ..Default::default()
            },
        ),
        (
            "SGD-Warmstart",
            LearnOptions {
                strategy: LearnStrategy::Sgd,
                epochs,
                warmstart: None,
                seed,
                ..Default::default()
            },
        ),
        (
            "GradientDescent+Warmstart",
            LearnOptions {
                strategy: LearnStrategy::GradientDescent,
                epochs,
                warmstart: Some(warm_weights.to_vec()),
                seed,
                ..Default::default()
            },
        ),
    ];

    configs
        .into_iter()
        .map(|(name, options)| {
            let mut g = graph.clone();
            let start = Instant::now();
            let trace = Learner::new(&mut g).learn(&options);
            LearningComparison {
                strategy: name.to_string(),
                trace,
                seconds: start.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{Factor, FactorGraphBuilder};
    use dd_inference::LearnOptions;

    /// Labeled classifier graph (as in the learning tests) used to obtain a warm
    /// model and then compare restart strategies.
    fn classifier(n: usize) -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let wa = b.tied_weight("feat:A", 0.0, false);
        let wb = b.tied_weight("feat:B", 0.0, false);
        for i in 0..n {
            let label = i % 2 == 0;
            let v = b.add_evidence_variable(label);
            b.add_factor(Factor::is_true(if label { wa } else { wb }, v));
        }
        b.build()
    }

    #[test]
    fn warmstart_starts_with_lower_loss() {
        let mut g = classifier(40);
        // learn a decent model first
        let warm = Learner::new(&mut g)
            .learn(&LearnOptions {
                epochs: 30,
                learning_rate: 0.3,
                ..Default::default()
            })
            .final_weights;

        let fresh = classifier(40);
        let comparisons = compare_learning_strategies(&fresh, &warm, 3, 11);
        assert_eq!(comparisons.len(), 3);
        let loss_of = |name: &str| {
            comparisons
                .iter()
                .find(|c| c.strategy == name)
                .unwrap()
                .trace
                .losses[0]
        };
        assert!(loss_of("SGD+Warmstart") < loss_of("SGD-Warmstart"));
        assert!(loss_of("GradientDescent+Warmstart") <= loss_of("SGD-Warmstart"));
        for c in &comparisons {
            assert!(c.seconds >= 0.0);
            assert_eq!(c.trace.losses.len(), 3);
        }
    }
}

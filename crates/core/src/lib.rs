//! # deepdive — the end-to-end incremental KBC engine
//!
//! This crate ties the substrates together into the system the paper describes:
//! a DeepDive program plus input data goes through *candidate generation &
//! feature extraction*, *supervision*, *grounding*, *learning & inference*, and
//! *error analysis* (Figure 1), and — after an initial run has been
//! *materialized* — every subsequent KBC iteration can be executed either from
//! scratch (`Rerun`) or incrementally (`Incremental`), which is the comparison
//! of the paper's evaluation (§4).
//!
//! The public API is organized around three pillars:
//!
//! * **Builder construction** — [`DeepDive::builder`] names every input
//!   (program, database, UDFs, config) and validates the whole configuration
//!   at [`builder::DeepDiveBuilder::build`] time.
//! * **Typed errors** — every fallible path returns [`error::EngineError`],
//!   with source payloads chaining down to the grounding and relational
//!   layers; no `Result<_, String>` anywhere.
//! * **Lock-free read snapshots** — [`DeepDive::initial_run`] /
//!   [`DeepDive::run_update`] atomically publish an immutable
//!   [`snapshot::Snapshot`] per epoch; any number of serving threads query
//!   `Arc<Snapshot>` handles (see [`DeepDive::reader`]) while the next update
//!   grounds, learns, and infers.  The variable catalog inside each snapshot
//!   is sharded per relation ([`snapshot::CatalogShards`]): publishing after
//!   an update re-indexes only the relations that grew (O(Δ)), and every
//!   untouched shard is `Arc`-shared with the previous epoch's snapshot.
//!
//! Modules:
//!
//! * [`config`]   — engine configuration (sampler, learner, materialization).
//! * [`builder`]  — [`builder::DeepDiveBuilder`], the validated constructor.
//! * [`error`]    — [`error::EngineError`] and its payload types.
//! * [`engine`]   — the [`DeepDive`] engine: initial run, materialization,
//!   Rerun vs Incremental update execution, snapshot publication.
//! * [`snapshot`] — [`snapshot::Snapshot`], [`snapshot::FactQuery`], and the
//!   [`snapshot::SnapshotReader`] serving handle.
//! * [`materialization`] — the combined sampling + variational materialization
//!   (§3.3: both are materialized, the choice is deferred to inference time).
//! * [`optimizer`] — the rule-based strategy optimizer of §3.3.
//! * [`decomposition`] — Algorithm 2: grouping inactive variables (Appendix B.1).
//! * [`incremental_learning`] — SGD/GD with and without warmstart (Appendix B.3).
//! * [`quality`]  — precision / recall / F1 against a ground-truth fact set.
//! * [`sharding`] — shard-assignment helpers (hash / range partition keys)
//!   used by the `dd-router` cluster layer to split a KB across engines.
//!
//! Every engine owns a persistent worker pool (shared process-global by
//! default, dedicated via [`config::EngineConfig::num_threads`]); full-Gibbs
//! inference and learning-gradient estimation switch from the sequential
//! sampler to pooled hogwild sweeps once a graph reaches
//! [`config::EngineConfig::parallel_threshold`] query variables.  See
//! `PERFORMANCE.md` at the repo root for the runtime design and measured
//! numbers, and `ARCHITECTURE.md` for the paper-to-module map.

pub mod builder;
pub mod config;
pub mod decomposition;
pub mod durability;
pub mod engine;
pub mod error;
pub mod incremental_learning;
pub mod materialization;
pub mod optimizer;
pub mod quality;
pub mod sharding;
pub mod snapshot;

pub use builder::DeepDiveBuilder;
pub use config::EngineConfig;
pub use decomposition::{decompose, DecompositionGroup};
pub use durability::{decode_snapshot, encode_snapshot, CHECKPOINT_FORMAT_VERSION};
pub use engine::{DeepDive, ExecutionMode, IterationReport};
pub use error::{EngineError, StaleKind};
pub use incremental_learning::{compare_learning_strategies, LearningComparison};
pub use materialization::Materialization;
pub use optimizer::{choose_strategy, StrategyChoice};
pub use quality::{evaluate_quality, QualityReport};
pub use sharding::{ShardAssignment, ShardingError};
pub use snapshot::{
    CatalogShard, CatalogShards, FactQuery, RankedIndex, RelationIndex, Snapshot, SnapshotReader,
};

// Durability configuration lives in `dd-storage`; re-exported so callers can
// write `deepdive::DurabilityConfig` without a second dependency.
pub use dd_storage::{DurabilityConfig, FsyncPolicy, StorageError};

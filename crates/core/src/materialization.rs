//! The combined materialization of §3.3.
//!
//! "We propose to materialize the factor graph using both the sampling approach
//! and the variational approach, and defer the decision to the inference phase."
//! Both strategies need Gibbs samples from the original distribution — "this is
//! the dominant cost during materialization" — so the engine draws one sample set
//! and feeds it to both.  The strawman (complete enumeration) is also retained
//! for graphs small enough to afford it, mirroring its role as the exactness
//! anchor of the tradeoff study.

use crate::config::EngineConfig;
use dd_factorgraph::FactorGraph;
use dd_inference::{
    GibbsSampler, SampleMaterialization, StrawmanMaterialization, VariationalMaterialization,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Everything stored by the materialization phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Materialization {
    pub sampling: SampleMaterialization,
    pub variational: VariationalMaterialization,
    /// Present only when the graph has few enough query variables to enumerate.
    pub strawman: Option<StrawmanMaterialization>,
    /// Weight values at materialization time (the warmstart model).
    pub weights: Vec<f64>,
    /// Wall-clock seconds spent materializing.
    pub seconds: f64,
    /// Number of samples drawn.
    pub num_samples: usize,
}

impl Materialization {
    /// Materialize both strategies from one Gibbs run over `graph`.
    pub fn build(graph: &FactorGraph, config: &EngineConfig) -> Self {
        let start = Instant::now();
        let mut sampler = GibbsSampler::new(graph, config.seed);
        let samples = sampler.draw_samples(
            config.materialization_samples,
            config.gibbs.burn_in.max(config.variational.burn_in),
        );
        let sampling = SampleMaterialization::from_samples(samples.clone(), graph.num_variables());
        let variational =
            VariationalMaterialization::from_samples(graph, &samples, &config.variational);
        let strawman = StrawmanMaterialization::materialize(graph);
        Materialization {
            sampling,
            variational,
            strawman,
            weights: graph.weight_values(),
            seconds: start.elapsed().as_secs_f64(),
            num_samples: config.materialization_samples,
        }
    }

    /// Materialize as many samples as possible within a wall-clock budget — the
    /// "best-effort approach: it generates as many samples as possible when idle
    /// or within a user-specified time interval" (§3.3), measured by Figure 15.
    pub fn build_with_budget(
        graph: &FactorGraph,
        config: &EngineConfig,
        budget_seconds: f64,
    ) -> Self {
        let start = Instant::now();
        let mut sampler = GibbsSampler::new(graph, config.seed);
        let mut samples = dd_inference::SampleSet::new(graph.num_variables());
        for _ in 0..config.gibbs.burn_in {
            sampler.sweep();
        }
        while start.elapsed().as_secs_f64() < budget_seconds {
            sampler.sweep();
            samples.push(sampler.world());
        }
        let num_samples = samples.len();
        let sampling = SampleMaterialization::from_samples(samples.clone(), graph.num_variables());
        let variational =
            VariationalMaterialization::from_samples(graph, &samples, &config.variational);
        let strawman = StrawmanMaterialization::materialize(graph);
        Materialization {
            sampling,
            variational,
            strawman,
            weights: graph.weight_values(),
            seconds: start.elapsed().as_secs_f64(),
            num_samples,
        }
    }

    /// Total storage used by the stored samples, in bytes.
    pub fn sample_storage_bytes(&self) -> usize {
        self.sampling.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{Factor, FactorGraphBuilder};

    fn graph(n: usize) -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(n);
        let w = b.tied_weight("w", 0.5, false);
        for i in 1..n {
            b.add_factor(Factor::equal(w, vs[i - 1], vs[i]));
        }
        b.build()
    }

    #[test]
    fn builds_both_strategies_from_one_sample_run() {
        let g = graph(6);
        let config = EngineConfig::fast();
        let m = Materialization::build(&g, &config);
        assert_eq!(m.sampling.num_samples(), config.materialization_samples);
        assert_eq!(m.variational.approx_graph().num_variables(), 6);
        assert!(m.strawman.is_some());
        assert_eq!(m.weights.len(), 1);
        assert!(m.seconds >= 0.0);
    }

    #[test]
    fn strawman_absent_for_large_graphs() {
        let g = graph(40);
        let m = Materialization::build(&g, &EngineConfig::fast());
        assert!(m.strawman.is_none());
    }

    #[test]
    fn budgeted_materialization_scales_with_budget() {
        let g = graph(10);
        let config = EngineConfig::fast();
        let small = Materialization::build_with_budget(&g, &config, 0.02);
        let large = Materialization::build_with_budget(&g, &config, 0.1);
        assert!(small.num_samples >= 1);
        assert!(large.num_samples >= small.num_samples);
        assert!(large.sample_storage_bytes() >= small.sample_storage_bytes());
    }
}

//! The rule-based strategy optimizer of paper §3.3.
//!
//! "We propose to materialize the factor graph using both the sampling approach
//! and the variational approach, and defer the decision to the inference phase
//! when we can observe the workload."  The rules:
//!
//! 1. if an update does not change the structure of the graph → sampling;
//! 2. if an update modifies the evidence → variational;
//! 3. if an update introduces new features → sampling;
//! 4. if we run out of samples → variational.

use dd_inference::DistributionChange;
use serde::{Deserialize, Serialize};

/// The materialization strategy selected for one update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyChoice {
    /// Reuse stored samples with the Metropolis–Hastings acceptance test.
    Sampling,
    /// Run Gibbs on the (updated) sparse approximate factor graph.
    Variational,
}

impl StrategyChoice {
    /// Label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            StrategyChoice::Sampling => "sampling",
            StrategyChoice::Variational => "variational",
        }
    }
}

/// Apply the §3.3 rules to a described distribution change.
///
/// `samples_remaining` is the number of unused stored samples; when it is zero
/// rule 4 fires regardless of the change.
pub fn choose_strategy(change: &DistributionChange, samples_remaining: usize) -> StrategyChoice {
    if samples_remaining == 0 {
        return StrategyChoice::Variational;
    }
    let changes_structure = !change.new_factors.is_empty() || !change.new_variables.is_empty();
    let changes_evidence = !change.new_evidence.is_empty();
    let new_features = !change.new_factors.is_empty();

    // Rule 1: no structural change → sampling (highest acceptance rate).
    if !changes_structure && !changes_evidence {
        return StrategyChoice::Sampling;
    }
    // Rule 2: evidence modified → variational (acceptance collapses otherwise).
    if changes_evidence {
        return StrategyChoice::Variational;
    }
    // Rule 3: new features (new factors/weights) → sampling.
    if new_features {
        return StrategyChoice::Sampling;
    }
    // Default: sampling, falling back to variational on exhaustion at run time.
    StrategyChoice::Sampling
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_inference::DistributionChange;

    fn empty() -> DistributionChange {
        DistributionChange::default()
    }

    #[test]
    fn no_structure_change_prefers_sampling() {
        // e.g. the error-analysis rule A1 or a pure weight re-estimate
        let mut c = empty();
        c.changed_weights = vec![(0, 0.5)];
        assert_eq!(choose_strategy(&c, 100), StrategyChoice::Sampling);
        assert_eq!(choose_strategy(&empty(), 100), StrategyChoice::Sampling);
    }

    #[test]
    fn evidence_change_prefers_variational() {
        let mut c = empty();
        c.new_evidence = vec![(3, true)];
        assert_eq!(choose_strategy(&c, 100), StrategyChoice::Variational);
    }

    #[test]
    fn new_features_prefer_sampling() {
        let mut c = empty();
        c.new_factors = vec![10, 11];
        c.new_variables = vec![5];
        assert_eq!(choose_strategy(&c, 100), StrategyChoice::Sampling);
    }

    #[test]
    fn exhausted_samples_force_variational() {
        let mut c = empty();
        c.new_factors = vec![10];
        assert_eq!(choose_strategy(&c, 0), StrategyChoice::Variational);
        assert_eq!(choose_strategy(&empty(), 0), StrategyChoice::Variational);
    }

    #[test]
    fn evidence_beats_new_features() {
        // An update that both adds features and modifies evidence (e.g. a new
        // distant-supervision rule) is routed to the variational approach.
        let mut c = empty();
        c.new_factors = vec![1];
        c.new_evidence = vec![(0, false)];
        assert_eq!(choose_strategy(&c, 100), StrategyChoice::Variational);
        assert_eq!(StrategyChoice::Sampling.label(), "sampling");
        assert_eq!(StrategyChoice::Variational.label(), "variational");
    }
}

//! Precision / recall / F1 evaluation of extracted facts.
//!
//! "Typically, quality is assessed using two complementary measures: precision
//! (how often a claimed tuple is correct) and recall (of the possible tuples to
//! extract, how many are actually extracted)" (paper §1).  The synthetic
//! workloads know their planted ground truth, so quality can be computed exactly.

use dd_relstore::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Precision / recall / F1 of one extraction run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub extracted: usize,
    pub correct: usize,
    pub expected: usize,
}

/// Evaluate extracted facts (tuples claimed true with probability above the
/// engine's threshold) against a ground-truth set.
pub fn evaluate_quality(extracted: &[Tuple], truth: &HashSet<Tuple>) -> QualityReport {
    let extracted_set: HashSet<&Tuple> = extracted.iter().collect();
    let correct = extracted_set.iter().filter(|t| truth.contains(**t)).count();
    let precision = if extracted_set.is_empty() {
        0.0
    } else {
        correct as f64 / extracted_set.len() as f64
    };
    let recall = if truth.is_empty() {
        0.0
    } else {
        correct as f64 / truth.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    QualityReport {
        precision,
        recall,
        f1,
        extracted: extracted_set.len(),
        correct,
        expected: truth.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_relstore::tuple;

    fn truth() -> HashSet<Tuple> {
        [tuple![1i64, 2i64], tuple![3i64, 4i64], tuple![5i64, 6i64]]
            .into_iter()
            .collect()
    }

    #[test]
    fn perfect_extraction() {
        let extracted: Vec<Tuple> = truth().into_iter().collect();
        let q = evaluate_quality(&extracted, &truth());
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1, 1.0);
        assert_eq!(q.correct, 3);
    }

    #[test]
    fn partial_extraction() {
        let extracted = vec![tuple![1i64, 2i64], tuple![9i64, 9i64]];
        let q = evaluate_quality(&extracted, &truth());
        assert!((q.precision - 0.5).abs() < 1e-12);
        assert!((q.recall - 1.0 / 3.0).abs() < 1e-12);
        assert!(q.f1 > 0.0 && q.f1 < 1.0);
    }

    #[test]
    fn empty_cases() {
        let q = evaluate_quality(&[], &truth());
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1, 0.0);
        let q2 = evaluate_quality(&[tuple![1i64]], &HashSet::new());
        assert_eq!(q2.recall, 0.0);
        assert_eq!(q2.f1, 0.0);
    }

    #[test]
    fn duplicate_extractions_count_once() {
        let extracted = vec![tuple![1i64, 2i64], tuple![1i64, 2i64]];
        let q = evaluate_quality(&extracted, &truth());
        assert_eq!(q.extracted, 1);
        assert_eq!(q.precision, 1.0);
    }
}

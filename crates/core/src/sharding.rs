//! Shard-assignment helpers for partitioning a knowledge base across
//! independent engines.
//!
//! A [`ShardAssignment`] maps every tuple of every relation to one of `N`
//! shards by looking at a single **partition-key column** (the same column
//! index in every relation, conventionally column 0 — a document id).  As
//! long as every rule in the program joins its body atoms on that key, every
//! grounding is local to one shard and the union of the shard catalogs is
//! exactly the catalog an unsharded engine would build.  That invariant is
//! what lets a scatter-gather router (the `dd-router` crate) answer queries
//! byte-identically to a single engine.
//!
//! Two assignment strategies are provided:
//!
//! * [`ShardAssignment::HashKey`] — FNV-1a over the canonical bytes of the
//!   key value, modulo the shard count.  Works for any value type and gives
//!   an even spread with no tuning.
//! * [`ShardAssignment::RangeKey`] — ordered split points over an integer
//!   key, so contiguous key ranges stay co-located (useful when updates
//!   arrive in key order and should hit one shard at a time).
//!
//! The helpers here are pure: [`ShardAssignment::partition_database`] splits
//! an input [`Database`] into per-shard databases (every shard keeps every
//! table's schema, rows are routed by key), and
//! [`ShardAssignment::partition_update`] splits a [`KbcUpdate`] the same way
//! (new rules are broadcast to every shard, since programs are replicated).

use std::collections::HashMap;
use std::fmt;

use dd_grounding::KbcUpdate;
use dd_relstore::{Database, DeltaRelation, Tuple, Value};

/// How tuples are assigned to shards.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardAssignment {
    /// FNV-1a hash of the value in `column`, modulo the shard count.
    HashKey {
        /// Partition-key column index (same in every relation).
        column: usize,
    },
    /// Range partitioning over an integer key in `column`.
    ///
    /// `bounds` must be sorted ascending and hold exactly `num_shards - 1`
    /// split points: shard `i` owns keys `k` with
    /// `bounds[i-1] <= k < bounds[i]` (shard 0 owns everything below
    /// `bounds[0]`, the last shard everything at or above the last bound).
    RangeKey {
        /// Partition-key column index (same in every relation).
        column: usize,
        /// Ascending split points; `len() == num_shards - 1`.
        bounds: Vec<i64>,
    },
}

/// Typed errors from shard routing.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardingError {
    /// The assignment needs column `column` but the tuple only has `arity`
    /// values.
    ColumnOutOfBounds { column: usize, arity: usize },
    /// Range partitioning requires an integer key; the tuple held something
    /// else at the key column.
    NonIntegerRangeKey { column: usize, found: String },
    /// `num_shards` was zero.
    NoShards,
    /// A `RangeKey` assignment was asked to route across `num_shards` shards
    /// but holds `bounds` split points (needs `num_shards - 1`).
    WrongBoundCount { bounds: usize, num_shards: usize },
    /// `RangeKey` bounds are not strictly ascending.
    UnsortedBounds,
}

impl fmt::Display for ShardingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardingError::ColumnOutOfBounds { column, arity } => write!(
                f,
                "partition-key column {column} out of bounds for tuple of arity {arity}"
            ),
            ShardingError::NonIntegerRangeKey { column, found } => write!(
                f,
                "range partitioning needs an integer key at column {column}, found {found}"
            ),
            ShardingError::NoShards => write!(f, "cannot route across zero shards"),
            ShardingError::WrongBoundCount { bounds, num_shards } => write!(
                f,
                "range assignment has {bounds} split points but {num_shards} shards \
                 (needs num_shards - 1)"
            ),
            ShardingError::UnsortedBounds => {
                write!(f, "range split points must be strictly ascending")
            }
        }
    }
}

impl std::error::Error for ShardingError {}

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Canonical bytes for hashing a single value: a one-byte type tag followed
/// by the value's natural encoding.  Stable across processes (no pointer or
/// HashMap dependence), so hash routing is deterministic fleet-wide.
fn value_bytes(value: &Value) -> Vec<u8> {
    match value {
        Value::Int(i) => {
            let mut v = vec![0x01];
            v.extend_from_slice(&i.to_le_bytes());
            v
        }
        Value::Text(s) => {
            let mut v = vec![0x02];
            v.extend_from_slice(s.as_bytes());
            v
        }
        Value::Bool(b) => vec![0x03, *b as u8],
        Value::Float(x) => {
            let mut v = vec![0x04];
            v.extend_from_slice(&x.to_bits().to_le_bytes());
            v
        }
        Value::Null => vec![0x05],
    }
}

impl ShardAssignment {
    /// Partition-key column this assignment reads.
    pub fn column(&self) -> usize {
        match self {
            ShardAssignment::HashKey { column } => *column,
            ShardAssignment::RangeKey { column, .. } => *column,
        }
    }

    /// Validate this assignment against a shard count (bound count and
    /// ordering for range assignments).
    pub fn validate(&self, num_shards: usize) -> Result<(), ShardingError> {
        if num_shards == 0 {
            return Err(ShardingError::NoShards);
        }
        if let ShardAssignment::RangeKey { bounds, .. } = self {
            if bounds.len() + 1 != num_shards {
                return Err(ShardingError::WrongBoundCount {
                    bounds: bounds.len(),
                    num_shards,
                });
            }
            if bounds.windows(2).any(|w| w[0] >= w[1]) {
                return Err(ShardingError::UnsortedBounds);
            }
        }
        Ok(())
    }

    /// Shard index (`0..num_shards`) owning `tuple`.
    pub fn shard_of(&self, tuple: &Tuple, num_shards: usize) -> Result<usize, ShardingError> {
        self.validate(num_shards)?;
        let column = self.column();
        let key = tuple.get(column).ok_or(ShardingError::ColumnOutOfBounds {
            column,
            arity: tuple.arity(),
        })?;
        match self {
            ShardAssignment::HashKey { .. } => {
                Ok((fnv1a(value_bytes(key)) % num_shards as u64) as usize)
            }
            ShardAssignment::RangeKey { bounds, .. } => {
                let k = match key {
                    Value::Int(i) => *i,
                    other => {
                        return Err(ShardingError::NonIntegerRangeKey {
                            column,
                            found: format!("{other:?}"),
                        })
                    }
                };
                Ok(bounds.partition_point(|b| *b <= k))
            }
        }
    }

    /// Split `db` into `num_shards` databases.  Every shard gets every
    /// table (with its schema); each row lands on its owning shard with its
    /// multiplicity preserved.
    pub fn partition_database(
        &self,
        db: &Database,
        num_shards: usize,
    ) -> Result<Vec<Database>, ShardingError> {
        self.validate(num_shards)?;
        let mut parts: Vec<Database> = (0..num_shards).map(|_| Database::new()).collect();
        for table in db.tables() {
            for part in &mut parts {
                part.create_table(table.name(), table.schema().clone())
                    .expect("fresh database cannot already hold this table");
            }
            for (tuple, count) in table.iter_net_counted() {
                let shard = self.shard_of(tuple, num_shards)?;
                parts[shard]
                    .table_mut(table.name())
                    .expect("table created above")
                    .insert_with_count(tuple.clone(), count)
                    .expect("row schema-checked by the source table");
            }
        }
        Ok(parts)
    }

    /// Split `update` into one sub-update per shard.  Base-relation deltas
    /// and supervision retractions route to the owning shard; new rules are
    /// broadcast (every shard runs the full program).  Sub-updates may be
    /// empty — callers should skip those shards entirely
    /// ([`KbcUpdate::is_empty`]) so untouched shards keep their epoch.
    pub fn partition_update(
        &self,
        update: &KbcUpdate,
        num_shards: usize,
    ) -> Result<Vec<KbcUpdate>, ShardingError> {
        self.validate(num_shards)?;
        let mut parts: Vec<KbcUpdate> = (0..num_shards).map(|_| KbcUpdate::new()).collect();
        for (relation, delta) in &update.base_deltas {
            for (tuple, count) in delta.iter() {
                let shard = self.shard_of(tuple, num_shards)?;
                parts[shard]
                    .base_deltas
                    .entry(relation.clone())
                    .or_insert_with(|| DeltaRelation::new(relation.clone()))
                    .change(tuple.clone(), count);
            }
        }
        for (relation, tuple) in &update.retracted_supervision {
            let shard = self.shard_of(tuple, num_shards)?;
            parts[shard]
                .retracted_supervision
                .push((relation.clone(), tuple.clone()));
        }
        for rule in &update.new_rules {
            for part in &mut parts {
                part.new_rules.push(rule.clone());
            }
        }
        Ok(parts)
    }

    /// Histogram of shard ownership over a database: `result[s]` is the
    /// number of distinct rows owned by shard `s`.  Handy for eyeballing
    /// balance before committing to an assignment.
    pub fn balance(&self, db: &Database, num_shards: usize) -> Result<Vec<usize>, ShardingError> {
        self.validate(num_shards)?;
        let mut hist = vec![0usize; num_shards];
        for table in db.tables() {
            for (tuple, _) in table.iter_net_counted() {
                hist[self.shard_of(tuple, num_shards)?] += 1;
            }
        }
        Ok(hist)
    }
}

/// Group `(relation, tuple)` pairs by owning shard, preserving input order
/// within each shard.  Used by the router to fan point-lookups out.
pub fn group_by_shard<'a, I>(
    assignment: &ShardAssignment,
    num_shards: usize,
    items: I,
) -> Result<HashMap<usize, Vec<(&'a str, &'a Tuple)>>, ShardingError>
where
    I: IntoIterator<Item = (&'a str, &'a Tuple)>,
{
    let mut by_shard: HashMap<usize, Vec<(&'a str, &'a Tuple)>> = HashMap::new();
    for (relation, tuple) in items {
        let shard = assignment.shard_of(tuple, num_shards)?;
        by_shard.entry(shard).or_default().push((relation, tuple));
    }
    Ok(by_shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_relstore::{DataType, Schema};

    fn hash0() -> ShardAssignment {
        ShardAssignment::HashKey { column: 0 }
    }

    #[test]
    fn hash_routing_is_deterministic_and_in_range() {
        let a = hash0();
        for doc in 0..200i64 {
            let t = Tuple::from_iter([doc, doc * 7]);
            let s = a.shard_of(&t, 4).unwrap();
            assert!(s < 4);
            assert_eq!(s, a.shard_of(&t, 4).unwrap());
        }
    }

    #[test]
    fn hash_routing_ignores_non_key_columns() {
        let a = hash0();
        let s1 = a.shard_of(&Tuple::from_iter([5i64, 1]), 4).unwrap();
        let s2 = a.shard_of(&Tuple::from_iter([5i64, 99]), 4).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn hash_spreads_across_shards() {
        let a = hash0();
        let mut seen = vec![false; 4];
        for doc in 0..64i64 {
            seen[a.shard_of(&Tuple::from_iter([doc]), 4).unwrap()] = true;
        }
        assert!(seen.iter().all(|s| *s), "64 keys should hit all 4 shards");
    }

    #[test]
    fn range_routing_respects_bounds() {
        let a = ShardAssignment::RangeKey {
            column: 0,
            bounds: vec![10, 20, 30],
        };
        assert_eq!(a.shard_of(&Tuple::from_iter([-5i64]), 4).unwrap(), 0);
        assert_eq!(a.shard_of(&Tuple::from_iter([9i64]), 4).unwrap(), 0);
        assert_eq!(a.shard_of(&Tuple::from_iter([10i64]), 4).unwrap(), 1);
        assert_eq!(a.shard_of(&Tuple::from_iter([19i64]), 4).unwrap(), 1);
        assert_eq!(a.shard_of(&Tuple::from_iter([20i64]), 4).unwrap(), 2);
        assert_eq!(a.shard_of(&Tuple::from_iter([30i64]), 4).unwrap(), 3);
        assert_eq!(a.shard_of(&Tuple::from_iter([1000i64]), 4).unwrap(), 3);
    }

    #[test]
    fn range_key_type_and_bound_errors_are_typed() {
        let a = ShardAssignment::RangeKey {
            column: 0,
            bounds: vec![10],
        };
        assert!(matches!(
            a.shard_of(&Tuple::from_iter(["abc"]), 2),
            Err(ShardingError::NonIntegerRangeKey { column: 0, .. })
        ));
        assert!(matches!(
            a.shard_of(&Tuple::from_iter([1i64]), 4),
            Err(ShardingError::WrongBoundCount {
                bounds: 1,
                num_shards: 4
            })
        ));
        let unsorted = ShardAssignment::RangeKey {
            column: 0,
            bounds: vec![20, 10],
        };
        assert!(matches!(
            unsorted.shard_of(&Tuple::from_iter([1i64]), 3),
            Err(ShardingError::UnsortedBounds)
        ));
    }

    #[test]
    fn missing_column_and_zero_shards_are_typed() {
        let a = ShardAssignment::HashKey { column: 2 };
        assert_eq!(
            a.shard_of(&Tuple::from_iter([1i64]), 4),
            Err(ShardingError::ColumnOutOfBounds {
                column: 2,
                arity: 1
            })
        );
        assert_eq!(
            hash0().shard_of(&Tuple::from_iter([1i64]), 0),
            Err(ShardingError::NoShards)
        );
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Claim",
            Schema::of(&[("doc", DataType::Int), ("id", DataType::Int)]),
        )
        .unwrap();
        for doc in 0..10i64 {
            for id in 0..3i64 {
                db.insert("Claim", Tuple::from_iter([doc, id])).unwrap();
            }
        }
        // A duplicate row: multiplicity must survive partitioning.
        db.insert("Claim", Tuple::from_iter([0i64, 0])).unwrap();
        db
    }

    #[test]
    fn partition_database_preserves_rows_and_schemas() {
        let db = sample_db();
        let parts = hash0().partition_database(&db, 4).unwrap();
        assert_eq!(parts.len(), 4);
        let mut total = 0i64;
        for part in &parts {
            let table = part.table("Claim").unwrap();
            assert_eq!(table.schema(), db.table("Claim").unwrap().schema());
            for (tuple, count) in table.iter_net_counted() {
                assert_eq!(hash0().shard_of(tuple, 4).unwrap(), {
                    let mut owner = 5;
                    for (i, p) in parts.iter().enumerate() {
                        if p.table("Claim").unwrap().count(tuple) > 0 {
                            owner = i;
                        }
                    }
                    owner
                });
                total += count;
            }
        }
        assert_eq!(total, 31, "10*3 rows + 1 duplicate");
        // The duplicated tuple keeps count 2 on exactly one shard.
        let dup = Tuple::from_iter([0i64, 0]);
        let counts: Vec<i64> = parts
            .iter()
            .map(|p| p.table("Claim").unwrap().count(&dup))
            .collect();
        assert_eq!(counts.iter().sum::<i64>(), 2);
        assert_eq!(counts.iter().filter(|c| **c > 0).count(), 1);
    }

    #[test]
    fn partition_update_routes_deltas_and_broadcasts_rules() {
        let mut update = KbcUpdate::new();
        for doc in 0..8i64 {
            update.insert("Claim", Tuple::from_iter([doc, 0]));
        }
        update.delete("Claim", Tuple::from_iter([3i64, 0]));
        update.retract_supervision("Fact", Tuple::from_iter([5i64, 0]));
        let rule = dd_grounding::parse_rule("rule F feature: F(x) :- C(x) weight = 1.0.").unwrap();
        update.add_rule(rule);

        let parts = hash0().partition_update(&update, 4).unwrap();
        assert_eq!(parts.len(), 4);
        // Every part carries the broadcast rule.
        assert!(parts.iter().all(|p| p.new_rules.len() == 1));
        // Net counts per tuple are preserved across the union.
        for doc in 0..8i64 {
            let t = Tuple::from_iter([doc, 0]);
            let expected = if doc == 3 { 0 } else { 1 };
            let total: i64 = parts
                .iter()
                .filter_map(|p| p.base_deltas.get("Claim"))
                .map(|d| d.count(&t))
                .sum();
            assert_eq!(total, expected, "doc {doc}");
        }
        // The retraction landed on exactly the owning shard.
        let owner = hash0().shard_of(&Tuple::from_iter([5i64, 0]), 4).unwrap();
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.retracted_supervision.len(), usize::from(i == owner));
        }
    }

    #[test]
    fn balance_histogram_sums_to_row_count() {
        let db = sample_db();
        let hist = hash0().balance(&db, 4).unwrap();
        assert_eq!(hist.iter().sum::<usize>(), 30, "distinct rows");
    }

    #[test]
    fn group_by_shard_preserves_order_within_shard() {
        let tuples: Vec<Tuple> = (0..12i64).map(|d| Tuple::from_iter([d])).collect();
        let items: Vec<(&str, &Tuple)> = tuples.iter().map(|t| ("Fact", t)).collect();
        let grouped = group_by_shard(&hash0(), 4, items).unwrap();
        for (shard, group) in grouped {
            let mut last = None;
            for (_, tuple) in group {
                assert_eq!(hash0().shard_of(tuple, 4).unwrap(), shard);
                let doc = match tuple.get(0).unwrap() {
                    Value::Int(i) => *i,
                    _ => unreachable!(),
                };
                if let Some(prev) = last {
                    assert!(doc > prev, "input order preserved within shard");
                }
                last = Some(doc);
            }
        }
    }
}

//! Lock-free read snapshots for online serving, with a sharded variable
//! catalog so publishing an epoch costs O(Δ), not O(catalog).
//!
//! The paper's system is an *online* KBC service: analysts and applications
//! query the current knowledge base continuously while incremental updates land
//! (§1, §3.3).  A [`Snapshot`] is the read half of that split — an immutable,
//! `Send + Sync` view bundling the marginals, the learned weights, the
//! `(relation, tuple) → variable` catalog, the graph statistics, and an epoch
//! number.  [`crate::DeepDive::initial_run`] and [`crate::DeepDive::run_update`]
//! publish a fresh snapshot atomically (a pointer swap under a briefly-held
//! write lock); readers hold `Arc<Snapshot>` handles, so every query they run
//! touches no lock at all and always observes one consistent epoch — the same
//! snapshot-isolation structure HTAP designs use to let analytical readers run
//! against a stable version while the update path proceeds.
//!
//! # Catalog sharding
//!
//! The catalog is a [`CatalogShards`]: one [`CatalogShard`] per variable
//! relation, each holding an `Arc<RelationIndex>` (a tuple-sorted vector,
//! binary-searched for point lookups) plus the epoch that last re-indexed it.
//! Publishing after an update re-indexes *only the shards whose relations
//! gained variables* — a sorted merge of the Δ entries into the old index —
//! while every untouched shard is shared by `Arc` clone with the previous
//! epoch's snapshot.  A ten-tuple update against a million-tuple catalog
//! therefore pays a ten-entry merge, not a million-entry rebuild; that
//! incremental-maintenance asymmetry is exactly what the paper's Δ-grounding
//! is designed to preserve end to end.
//!
//! # Probability-ordered read indexes
//!
//! Next to its tuple-sorted index every shard carries a [`RankedIndex`]: the
//! same entries with the publish-time marginal baked in, sorted by
//! `(probability desc, tuple asc)` — the exact comparator [`FactQuery`] uses
//! for `top_k`.  Threshold (`min_probability`) and `top_k` queries answer
//! from an ordered *prefix* of this view (a `partition_point` cut) instead of
//! scanning the relation's full marginal set per request; pure-pagination
//! queries keep using the tuple-sorted index.  The ranked view is
//! Δ-maintained during the publish ([`CatalogShards::merge_delta`] /
//! [`CatalogShards::apply_delta`] merge the delta into both views without a
//! full re-sort) and then revalidated bitwise against the new marginal
//! vector ([`CatalogShards::refresh_ranked`]): a shard whose catalog *and*
//! marginals are unchanged keeps both views `Arc`-shared with the previous
//! epoch, while a shard whose marginals moved is re-ranked with one sort.
//! The revalidation is an O(catalog) bitwise compare piggybacking on the
//! publish's existing O(#variables) marginal passes; the structural catalog
//! work stays O(Δ).  The indexed path is byte-identical to the scan path
//! ([`FactQuery::run_scan`]) — proven per-op by the `tests/indexes.rs`
//! differential oracle.
//!
//! Shards are kept sorted by relation name, which makes every catalog
//! enumeration ([`Snapshot::relation_names`], [`Snapshot::all_facts`])
//! deterministic across processes — no `HashMap` iteration order leaks into
//! served results.
//!
//! ```
//! use deepdive::{DeepDive, EngineConfig};
//! use dd_grounding::standard_udfs;
//! use dd_relstore::{tuple, Database, DataType, Schema};
//!
//! let mut db = Database::new();
//! db.create_table("Claim", Schema::of(&[("id", DataType::Int)])).unwrap();
//! db.create_table("Label", Schema::of(&[("id", DataType::Int)])).unwrap();
//! db.insert_all("Claim", vec![tuple![1i64], tuple![2i64]]).unwrap();
//! db.insert_all("Label", vec![tuple![1i64]]).unwrap();
//!
//! let mut dd = DeepDive::builder()
//!     .program_text(r#"
//!         relation Claim(id: int) base.
//!         relation Label(id: int) base.
//!         relation Fact(id: int) variable.
//!         rule F feature: Fact(id) :- Claim(id) weight = 1.5.
//!         rule S supervision+: Fact(id) :- Claim(id), Label(id).
//!     "#)
//!     .database(db)
//!     .config(EngineConfig::fast())
//!     .build()
//!     .unwrap();
//! dd.initial_run().unwrap();
//!
//! // A snapshot is a cheap Arc clone; hand it to any number of threads.
//! let snap = dd.snapshot();
//! assert_eq!(snap.epoch(), 1);
//! assert_eq!(snap.probability_of("Fact", &tuple![1i64]), Some(1.0));
//! let top = snap.facts("Fact").min_probability(0.5).top_k(1).run();
//! assert_eq!(top[0].0, tuple![1i64]);
//! // Relation enumeration is sorted, hence deterministic across processes.
//! assert_eq!(snap.relation_names(), vec!["Fact"]);
//! ```

use crate::quality::{evaluate_quality, QualityReport};
use dd_factorgraph::GraphStats;
use dd_inference::Marginals;
use dd_relstore::Tuple;
use std::collections::HashSet;
use std::sync::{Arc, RwLock};

/// One relation's slice of the variable catalog, pre-indexed for serving: a
/// single tuple-sorted vector, so scans are pre-ordered (un-ranked queries
/// never sort) and point lookups are allocation-free binary searches.
///
/// Instances are immutable and shared by `Arc` across epochs (see
/// [`CatalogShards`]); growth produces a *new* index by sorted Δ-merge
/// instead of mutating the published one.
#[derive(Debug, Default)]
pub struct RelationIndex {
    sorted: Vec<(Tuple, usize)>,
}

impl RelationIndex {
    /// Build an index from unordered `(tuple, variable)` entries.
    pub(crate) fn from_entries(mut entries: Vec<(Tuple, usize)>) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        RelationIndex { sorted: entries }
    }

    /// A new index with `delta` merged in: a single O(existing + Δ log Δ)
    /// sorted merge, the incremental re-index path of a sharded publish.
    /// Entries in `delta` for a tuple already present replace the old mapping.
    pub(crate) fn merged_with(&self, mut delta: Vec<(Tuple, usize)>) -> Self {
        delta.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged = Vec::with_capacity(self.sorted.len() + delta.len());
        let mut old = self.sorted.iter().peekable();
        let mut new = delta.into_iter().peekable();
        loop {
            match (old.peek(), new.peek()) {
                (Some((ot, _)), Some((nt, _))) => match ot.cmp(nt) {
                    std::cmp::Ordering::Less => merged.push(old.next().unwrap().clone()),
                    std::cmp::Ordering::Greater => merged.push(new.next().unwrap()),
                    std::cmp::Ordering::Equal => {
                        old.next();
                        merged.push(new.next().unwrap());
                    }
                },
                (Some(_), None) => merged.push(old.next().unwrap().clone()),
                (None, Some(_)) => merged.push(new.next().unwrap()),
                (None, None) => break,
            }
        }
        RelationIndex { sorted: merged }
    }

    /// A new index with a signed delta merged in: `Some(var)` upserts the
    /// tuple's mapping, `None` removes it (retraction).  Same single sorted
    /// merge as [`RelationIndex::merged_with`], so a retraction-bearing
    /// publish still costs O(existing + Δ log Δ) for the touched shard only.
    pub(crate) fn merged_with_changes(&self, mut delta: Vec<(Tuple, Option<usize>)>) -> Self {
        delta.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged = Vec::with_capacity(self.sorted.len() + delta.len());
        let mut old = self.sorted.iter().peekable();
        let mut new = delta.into_iter().peekable();
        loop {
            match (old.peek(), new.peek()) {
                (Some((ot, _)), Some((nt, _))) => match ot.cmp(nt) {
                    std::cmp::Ordering::Less => merged.push(old.next().unwrap().clone()),
                    std::cmp::Ordering::Greater => {
                        let (t, change) = new.next().unwrap();
                        if let Some(var) = change {
                            merged.push((t, var));
                        }
                    }
                    std::cmp::Ordering::Equal => {
                        old.next();
                        let (t, change) = new.next().unwrap();
                        if let Some(var) = change {
                            merged.push((t, var));
                        }
                    }
                },
                (Some(_), None) => merged.push(old.next().unwrap().clone()),
                (None, Some(_)) => {
                    let (t, change) = new.next().unwrap();
                    if let Some(var) = change {
                        merged.push((t, var));
                    }
                }
                (None, None) => break,
            }
        }
        RelationIndex { sorted: merged }
    }

    /// Number of catalogued tuples in this relation.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the relation has no catalogued tuples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Variable id of `tuple`, if catalogued.
    pub fn get(&self, tuple: &Tuple) -> Option<usize> {
        self.sorted
            .binary_search_by(|(t, _)| t.cmp(tuple))
            .ok()
            .map(|i| self.sorted[i].1)
    }

    /// The tuple-sorted `(tuple, variable)` entries.
    pub(crate) fn entries(&self) -> &[(Tuple, usize)] {
        &self.sorted
    }
}

/// The `(probability desc, tuple asc)` comparator — byte-for-byte the order
/// `FactQuery::top_k` has always served, so a prefix of a [`RankedIndex`] is
/// exactly what the scan path would have sorted out.
fn rank_order(a: &(f64, Tuple, usize), b: &(f64, Tuple, usize)) -> std::cmp::Ordering {
    b.0.partial_cmp(&a.0)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.1.cmp(&b.1))
}

/// One relation's probability-ordered serving view: the shard's `(tuple,
/// variable)` entries with the publish-time marginal baked in, sorted by
/// `(probability desc, tuple asc)`.  Threshold and top-k queries answer from
/// a prefix of this vector (`partition_point` on the probability) instead of
/// scanning and re-sorting the relation per request.
///
/// Entries whose variable id is out of range for the marginal vector are
/// excluded — the scan path skips them too, so the two paths agree on every
/// query shape.  Like [`RelationIndex`], instances are immutable and shared
/// by `Arc` across epochs; a publish Δ-merges a *new* ranked view
/// (`RankedIndex::apply_changes`) or, when the relation's marginals moved,
/// rebuilds it with one sort ([`CatalogShards::refresh_ranked`]).
#[derive(Debug, Default)]
pub struct RankedIndex {
    /// `(probability, tuple, variable)` sorted by [`rank_order`].
    sorted: Vec<(f64, Tuple, usize)>,
}

impl RankedIndex {
    /// Rank a relation's entries against a marginal vector: one O(m log m)
    /// sort.  The full-rebuild leg; publishes prefer
    /// [`RankedIndex::apply_changes`].
    pub(crate) fn build(entries: &[(Tuple, usize)], marginals: &Marginals) -> Self {
        let mut sorted: Vec<(f64, Tuple, usize)> = entries
            .iter()
            .filter(|(_, var)| *var < marginals.len())
            .map(|(tuple, var)| (marginals.get(*var), tuple.clone(), *var))
            .collect();
        sorted.sort_by(rank_order);
        RankedIndex { sorted }
    }

    /// Δ-maintain the ranked view through one publish: drop entries for
    /// tuples the delta touched, rank the delta's upserts, and merge the two
    /// ordered runs — O(m + Δ log Δ), no full re-sort.
    ///
    /// Every *retained* entry's baked probability is revalidated bitwise
    /// against the new marginal vector in the same pass.  A mismatch means
    /// this publish moved the relation's marginals (inference re-ran over
    /// it), so the retained order itself is stale: returns `None` and the
    /// caller falls back to a full [`RankedIndex::build`].
    pub(crate) fn apply_changes(
        &self,
        changes: &[(Tuple, Option<usize>)],
        marginals: &Marginals,
    ) -> Option<RankedIndex> {
        let mut touched: Vec<&Tuple> = changes.iter().map(|(tuple, _)| tuple).collect();
        touched.sort_unstable();
        let mut delta: Vec<(f64, Tuple, usize)> = changes
            .iter()
            .filter_map(|(tuple, change)| {
                let var = (*change)?;
                (var < marginals.len()).then(|| (marginals.get(var), tuple.clone(), var))
            })
            .collect();
        delta.sort_by(rank_order);
        let mut merged = Vec::with_capacity(self.sorted.len() + delta.len());
        let mut delta = delta.into_iter().peekable();
        for entry in &self.sorted {
            let (p, tuple, var) = entry;
            if touched.binary_search(&tuple).is_ok() {
                continue; // upserted (re-ranked via the delta run) or retracted
            }
            if *var >= marginals.len() || marginals.get(*var).to_bits() != p.to_bits() {
                return None; // marginal drift: the retained order is stale
            }
            while delta
                .peek()
                .is_some_and(|d| rank_order(d, entry) == std::cmp::Ordering::Less)
            {
                merged.push(delta.next().unwrap());
            }
            merged.push(entry.clone());
        }
        merged.extend(delta);
        Some(RankedIndex { sorted: merged })
    }

    /// True when this ranked view is exactly the ranking of `index` under
    /// `marginals`: same in-range entry count and every baked probability
    /// bitwise equal to the variable's current marginal.  O(m), no sort —
    /// the validation [`CatalogShards::refresh_ranked`] runs per publish.
    fn is_consistent(&self, index: &RelationIndex, marginals: &Marginals) -> bool {
        let in_range = index
            .entries()
            .iter()
            .filter(|(_, var)| *var < marginals.len())
            .count();
        self.sorted.len() == in_range
            && self.sorted.iter().all(|(p, _, var)| {
                *var < marginals.len() && marginals.get(*var).to_bits() == p.to_bits()
            })
    }

    /// Number of ranked entries (equals the relation's in-range catalog size).
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the relation has no ranked entries.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The ranked `(probability, tuple, variable)` entries, probability
    /// descending with ties broken by tuple ascending.
    pub fn entries(&self) -> &[(f64, Tuple, usize)] {
        &self.sorted
    }

    /// Index of the first entry below `min_probability` — the prefix
    /// `[0, cut)` is exactly the facts a threshold scan would keep.
    /// O(log m).
    pub fn threshold_cut(&self, min_probability: f64) -> usize {
        self.sorted
            .partition_point(|(p, _, _)| *p >= min_probability)
    }
}

/// One relation's shard of the catalog: its tuple-sorted serving index, its
/// probability-ordered [`RankedIndex`], and the epochs that last rebuilt
/// each.  Both views are behind `Arc`s, so consecutive epochs whose updates
/// touched neither this relation's catalog nor its marginals share them
/// pointer-identically.
#[derive(Debug, Clone)]
pub struct CatalogShard {
    relation: String,
    generation: u64,
    index: Arc<RelationIndex>,
    ranked: Arc<RankedIndex>,
    ranked_generation: u64,
}

impl CatalogShard {
    /// The relation this shard indexes.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Epoch whose publish last re-indexed this shard.  Comparing generations
    /// across snapshots shows which relations an epoch actually re-indexed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The shared serving index.  Callers may `Arc::ptr_eq` indexes from two
    /// epochs to verify (or rely on) structural sharing.
    pub fn index(&self) -> &Arc<RelationIndex> {
        &self.index
    }

    /// The shared probability-ordered view.  `Arc::ptr_eq`-comparable across
    /// epochs exactly like [`CatalogShard::index`].
    pub fn ranked(&self) -> &Arc<RankedIndex> {
        &self.ranked
    }

    /// Epoch whose publish last re-ranked this shard (Δ-merge or rebuild).
    /// Stays put across epochs whose marginals left this relation bit-stable.
    pub fn ranked_generation(&self) -> u64 {
        self.ranked_generation
    }

    /// Rebuild a shard from its persisted parts (checkpoint codec access).
    /// Only the tuple-sorted entries are persisted; the ranked view is
    /// derived, so it starts empty here and [`CatalogShards::refresh_ranked`]
    /// rebuilds it when the decoded snapshot is published.
    pub(crate) fn from_parts(
        relation: String,
        generation: u64,
        entries: Vec<(Tuple, usize)>,
    ) -> Self {
        CatalogShard {
            relation,
            generation,
            index: Arc::new(RelationIndex::from_entries(entries)),
            ranked: Arc::new(RankedIndex::default()),
            ranked_generation: 0,
        }
    }
}

/// The ranked view a publish leaves on a Δ-touched shard: the O(m + Δ log Δ)
/// merge when the old ranked view was complete, a full O(m log m) rebuild
/// when it was stale (marginal drift mid-delta) or was never built (the
/// entry-count check — [`RankedIndex::apply_changes`] validates retained
/// entries but cannot see *missing* ones, e.g. on a catalog fresh from
/// [`CatalogShards::build`] that skipped `refresh_ranked`).
fn ranked_after_delta(
    old: &RankedIndex,
    changes: &[(Tuple, Option<usize>)],
    merged: &RelationIndex,
    marginals: &Marginals,
) -> RankedIndex {
    let in_range = merged
        .entries()
        .iter()
        .filter(|(_, var)| *var < marginals.len())
        .count();
    old.apply_changes(changes, marginals)
        .filter(|ranked| ranked.len() == in_range)
        .unwrap_or_else(|| RankedIndex::build(merged.entries(), marginals))
}

/// The epoch-versioned, per-relation sharded variable catalog.
///
/// Shards are kept sorted by relation name, so enumeration order is
/// deterministic.  Cloning is O(#relations) `Arc` clones — this is what the
/// engine pays per publish for the untouched part of the catalog, regardless
/// of how many tuples those shards hold.
#[derive(Debug, Clone, Default)]
pub struct CatalogShards {
    /// Sorted by relation name.
    shards: Vec<CatalogShard>,
}

impl CatalogShards {
    /// An empty catalog (the epoch-0 state).
    pub fn new() -> Self {
        CatalogShards::default()
    }

    /// Build every shard from a full `(relation, tuple) → variable` catalog
    /// scan.  This is the O(n) full-rebuild path the sharded publish replaces;
    /// it remains the baseline leg of the `publish_cost` benchmark series and
    /// the constructor of choice when no previous epoch exists.
    pub fn build<'a>(
        entries: impl Iterator<Item = (&'a (String, Tuple), &'a usize)>,
        generation: u64,
    ) -> Self {
        let mut per_relation: std::collections::BTreeMap<&'a str, Vec<(Tuple, usize)>> =
            std::collections::BTreeMap::new();
        for ((relation, tuple), &var) in entries {
            per_relation
                .entry(relation.as_str())
                .or_default()
                .push((tuple.clone(), var));
        }
        CatalogShards {
            shards: per_relation
                .into_iter()
                .map(|(relation, entries)| {
                    let index = RelationIndex::from_entries(entries);
                    CatalogShard {
                        relation: relation.to_string(),
                        generation,
                        index: Arc::new(index),
                        ranked: Arc::new(RankedIndex::default()),
                        ranked_generation: 0,
                    }
                })
                .collect(),
        }
    }

    /// Merge Δ catalog entries for one relation, replacing that shard's
    /// tuple-sorted and ranked views with freshly merged ones stamped
    /// `generation` (`marginals` ranks the upserts; see
    /// `RankedIndex::apply_changes`).  Every other shard is untouched (and
    /// stays `Arc`-shared with previously published epochs).  Cost:
    /// O(|shard| + |Δ| log |Δ|) for the touched shard only.
    pub fn merge_delta(
        &mut self,
        relation: &str,
        entries: Vec<(Tuple, usize)>,
        generation: u64,
        marginals: &Marginals,
    ) {
        if entries.is_empty() {
            return;
        }
        let changes = entries
            .iter()
            .map(|(tuple, var)| (tuple.clone(), Some(*var)))
            .collect::<Vec<_>>();
        match self
            .shards
            .binary_search_by(|s| s.relation.as_str().cmp(relation))
        {
            Ok(i) => {
                let shard = &mut self.shards[i];
                let index = shard.index.merged_with(entries);
                shard.ranked = Arc::new(ranked_after_delta(
                    &shard.ranked,
                    &changes,
                    &index,
                    marginals,
                ));
                shard.index = Arc::new(index);
                shard.generation = generation;
                shard.ranked_generation = generation;
            }
            Err(i) => {
                let index = RelationIndex::from_entries(entries);
                let ranked = RankedIndex::build(index.entries(), marginals);
                self.shards.insert(
                    i,
                    CatalogShard {
                        relation: relation.to_string(),
                        generation,
                        index: Arc::new(index),
                        ranked: Arc::new(ranked),
                        ranked_generation: generation,
                    },
                );
            }
        }
    }

    /// Apply a signed catalog delta for one relation: `Some(var)` upserts a
    /// tuple's mapping, `None` removes it.  Like
    /// [`CatalogShards::merge_delta`], both of the touched shard's views are
    /// Δ-merged and stamped `generation` — retractions shrink the ranked view
    /// in the same pass — while every other shard stays `Arc`-shared with
    /// previously published epochs, so a retraction-bearing publish is still
    /// O(Δ) in the number of touched relations.
    pub fn apply_delta(
        &mut self,
        relation: &str,
        changes: Vec<(Tuple, Option<usize>)>,
        generation: u64,
        marginals: &Marginals,
    ) {
        if changes.is_empty() {
            return;
        }
        match self
            .shards
            .binary_search_by(|s| s.relation.as_str().cmp(relation))
        {
            Ok(i) => {
                let shard = &mut self.shards[i];
                let index = shard.index.merged_with_changes(changes.clone());
                shard.ranked = Arc::new(ranked_after_delta(
                    &shard.ranked,
                    &changes,
                    &index,
                    marginals,
                ));
                shard.index = Arc::new(index);
                shard.generation = generation;
                shard.ranked_generation = generation;
            }
            Err(i) => {
                let entries: Vec<(Tuple, usize)> = changes
                    .into_iter()
                    .filter_map(|(t, change)| change.map(|var| (t, var)))
                    .collect();
                if entries.is_empty() {
                    return;
                }
                let index = RelationIndex::from_entries(entries);
                let ranked = RankedIndex::build(index.entries(), marginals);
                self.shards.insert(
                    i,
                    CatalogShard {
                        relation: relation.to_string(),
                        generation,
                        index: Arc::new(index),
                        ranked: Arc::new(ranked),
                        ranked_generation: generation,
                    },
                );
            }
        }
    }

    /// Bring every shard's ranked view in line with `marginals`, stamping
    /// rebuilt shards `generation`; returns the relations that had to be
    /// re-ranked.
    ///
    /// Each shard gets an O(m) bitwise validation (no sort): a shard this
    /// publish already Δ-merged passes by construction, as does any shard
    /// whose marginals are bit-stable since its last ranking — those keep
    /// their `Arc`s, preserving cross-epoch sharing.  Only genuine drift
    /// (inference re-ran over the relation, or a decoded checkpoint whose
    /// ranked views start empty) pays the O(m log m) rebuild.  Called from
    /// every [`Snapshot`] constructor that takes a catalog, so a published
    /// snapshot's ranked views are consistent by construction.
    pub fn refresh_ranked(&mut self, marginals: &Marginals, generation: u64) -> Vec<String> {
        let mut reranked = Vec::new();
        for shard in &mut self.shards {
            if shard.ranked.is_consistent(&shard.index, marginals) {
                continue;
            }
            shard.ranked = Arc::new(RankedIndex::build(shard.index.entries(), marginals));
            shard.ranked_generation = generation;
            reranked.push(shard.relation.clone());
        }
        reranked
    }

    /// The shard of `relation`, if any (binary search by name).
    pub fn shard(&self, relation: &str) -> Option<&CatalogShard> {
        self.shards
            .binary_search_by(|s| s.relation.as_str().cmp(relation))
            .ok()
            .map(|i| &self.shards[i])
    }

    /// All shards, sorted by relation name.
    pub fn shards(&self) -> &[CatalogShard] {
        &self.shards
    }

    /// Relation names in sorted (deterministic) order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.shards.iter().map(|s| s.relation.as_str())
    }

    /// Total number of `(relation, tuple)` entries across all shards.
    pub fn num_entries(&self) -> usize {
        self.shards.iter().map(|s| s.index.len()).sum()
    }

    /// Rebuild a catalog from persisted shards (checkpoint codec access).
    /// Shards are re-sorted by relation name to restore the lookup invariant.
    pub(crate) fn from_shards(mut shards: Vec<CatalogShard>) -> Self {
        shards.sort_by(|a, b| a.relation.cmp(&b.relation));
        CatalogShards { shards }
    }
}

/// An immutable, shareable view of the knowledge base at one epoch.
///
/// All read APIs of the engine live here; [`crate::DeepDive`]'s read methods
/// are thin wrappers over its current snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    marginals: Marginals,
    weights: Vec<f64>,
    /// Per-relation sharded variable catalog, frozen at publish time.  Shards
    /// whose relations did not grow in this epoch are `Arc`-shared with the
    /// previous epoch's snapshot (see [`CatalogShards`]).
    catalog: CatalogShards,
    stats: GraphStats,
    /// The engine's fact-extraction threshold at publish time (used by
    /// [`Snapshot::quality`]).
    fact_threshold: f64,
}

impl Snapshot {
    /// The empty epoch-0 snapshot an engine holds before any run.
    pub(crate) fn empty(fact_threshold: f64) -> Self {
        Snapshot {
            epoch: 0,
            marginals: Marginals::zeros(0),
            weights: Vec::new(),
            catalog: CatalogShards::new(),
            stats: GraphStats {
                num_variables: 0,
                num_query_variables: 0,
                num_evidence_variables: 0,
                num_factors: 0,
                num_weights: 0,
                weight_density: 0.0,
                avg_degree: 0.0,
            },
            fact_threshold,
        }
    }

    /// A free-standing snapshot from raw marginals and a pre-built catalog —
    /// for serving-layer tests and tooling that need a `Snapshot` without
    /// running an engine.  Graph stats are synthesized to agree with the
    /// marginal vector (`num_variables == marginals.len()`), the epoch and
    /// catalog are taken as given, and the fact threshold defaults to 0.9
    /// (override with [`Snapshot::with_fact_threshold`]).  Weights default to
    /// empty ([`Snapshot::with_weights`]); with both set, a synthetic snapshot
    /// round-trips bit-exactly through the checkpoint codec
    /// ([`crate::durability::encode_snapshot`] /
    /// [`crate::durability::decode_snapshot`]), so storage tests can run
    /// without a full engine.
    pub fn synthetic(epoch: u64, marginals: Vec<f64>, mut catalog: CatalogShards) -> Self {
        let num_variables = marginals.len();
        let mut stats = Snapshot::empty(0.9).stats;
        stats.num_variables = num_variables;
        let marginals = Marginals::from_values(marginals);
        catalog.refresh_ranked(&marginals, epoch);
        Snapshot {
            epoch,
            marginals,
            weights: Vec::new(),
            catalog,
            stats,
            fact_threshold: 0.9,
        }
    }

    /// Replace the learned-weight vector (builder-style, for synthetic
    /// snapshots that must round-trip through the checkpoint codec).
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = weights;
        self
    }

    /// Replace the fact-extraction threshold (builder-style, for synthetic
    /// snapshots that must round-trip through the checkpoint codec).
    pub fn with_fact_threshold(mut self, fact_threshold: f64) -> Self {
        self.fact_threshold = fact_threshold;
        self
    }

    /// The fact-extraction threshold this snapshot was published with.
    pub fn fact_threshold(&self) -> f64 {
        self.fact_threshold
    }

    pub(crate) fn publish(
        epoch: u64,
        marginals: Marginals,
        weights: Vec<f64>,
        mut catalog: CatalogShards,
        stats: GraphStats,
        fact_threshold: f64,
    ) -> Self {
        // Ranked views the publish already Δ-merged validate and keep their
        // Arcs; anything stale (marginal drift, decoded checkpoints) is
        // re-ranked here, so consistency is an invariant of every snapshot.
        catalog.refresh_ranked(&marginals, epoch);
        Snapshot {
            epoch,
            marginals,
            weights,
            catalog,
            stats,
            fact_threshold,
        }
    }

    /// The epoch this snapshot was published at (0 = never ran, then +1 per
    /// completed `initial_run` / `run_update`).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Marginal probabilities, one per variable.
    pub fn marginals(&self) -> &Marginals {
        &self.marginals
    }

    /// The learned weight vector of this epoch's model.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Graph statistics at publish time.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// The sharded variable catalog of this epoch.  Exposed so serving
    /// infrastructure (and tests) can observe per-shard generations and the
    /// `Arc` sharing of untouched shards across epochs.
    pub fn catalog(&self) -> &CatalogShards {
        &self.catalog
    }

    /// Catalogued variable-relation names, in sorted order — deterministic
    /// across processes (no hash-map iteration order leaks out).
    pub fn relation_names(&self) -> Vec<&str> {
        self.catalog.relation_names().collect()
    }

    /// Number of `(relation, tuple)` entries in the variable catalog.
    pub fn num_catalogued_variables(&self) -> usize {
        self.catalog.num_entries()
    }

    /// Probability currently assigned to one tuple of a variable relation
    /// (allocation-free: a binary search in the per-relation index).
    pub fn probability_of(&self, relation: &str, tuple: &Tuple) -> Option<f64> {
        let var = self.catalog.shard(relation)?.index().get(tuple)?;
        (var < self.marginals.len()).then(|| self.marginals.get(var))
    }

    /// Facts of `relation` whose marginal probability is at least `threshold`,
    /// sorted by tuple.  Convenience wrapper over [`Snapshot::facts`].
    pub fn extract_facts(&self, relation: &str, threshold: f64) -> Vec<(Tuple, f64)> {
        self.facts(relation).min_probability(threshold).run()
    }

    /// Facts across *all* relations with probability at least
    /// `min_probability`, paginated with `offset`/`limit`.
    ///
    /// Results are ordered by relation name, then tuple — a total order that
    /// is stable across epochs that share shards and identical across
    /// processes, so pages never skip or repeat facts while the snapshot is
    /// held.
    pub fn all_facts(
        &self,
        min_probability: f64,
        offset: usize,
        limit: usize,
    ) -> Vec<(&str, Tuple, f64)> {
        let mut out = Vec::new();
        let mut skip = offset;
        for shard in self.catalog.shards() {
            if out.len() == limit {
                break;
            }
            for (tuple, var) in shard.index().entries() {
                let Some(p) = (*var < self.marginals.len()).then(|| self.marginals.get(*var))
                else {
                    continue;
                };
                if p < min_probability {
                    continue;
                }
                if skip > 0 {
                    skip -= 1;
                    continue;
                }
                out.push((shard.relation(), tuple.clone(), p));
                if out.len() == limit {
                    break;
                }
            }
        }
        out
    }

    /// Start building a paginated fact query against this snapshot.
    pub fn facts<'a>(&'a self, relation: &'a str) -> FactQuery<'a> {
        FactQuery {
            snapshot: self,
            relation,
            min_probability: 0.0,
            top_k: None,
            offset: 0,
            limit: None,
        }
    }

    /// Quality of the facts extracted from `relation` at the engine's
    /// configured threshold, against a ground-truth set.
    pub fn quality(&self, relation: &str, truth: &HashSet<Tuple>) -> QualityReport {
        let extracted: Vec<Tuple> = self
            .extract_facts(relation, self.fact_threshold)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        evaluate_quality(&extracted, truth)
    }
}

/// A cloneable, thread-safe handle onto an engine's *current* snapshot.
///
/// Obtained from [`crate::DeepDive::reader`] and handed to serving threads:
/// each call to [`SnapshotReader::snapshot`] returns the most recently
/// published epoch as a cheap `Arc` clone.  The engine's publish step swaps the
/// pointer under a write lock held only for the swap itself, so readers never
/// wait on grounding, learning, or inference — once a reader holds an
/// `Arc<Snapshot>`, every query on it is lock-free and epoch-consistent.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    current: Arc<RwLock<Arc<Snapshot>>>,
}

impl SnapshotReader {
    pub(crate) fn new(current: Arc<RwLock<Arc<Snapshot>>>) -> Self {
        SnapshotReader { current }
    }

    /// A reader pinned to one free-standing snapshot, never advancing — for
    /// serving infrastructure tests and tooling that need a reader without
    /// an engine publishing behind it (pairs with [`Snapshot::synthetic`]).
    pub fn fixed(snapshot: Snapshot) -> SnapshotReader {
        SnapshotReader {
            current: Arc::new(RwLock::new(Arc::new(snapshot))),
        }
    }

    /// The most recently published snapshot (cheap: one `Arc` clone under a
    /// briefly-held read lock).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        // A poisoned lock can only mean a panic during the pointer swap
        // itself; the Arc inside is still valid, so recover it.
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// The epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }
}

/// A builder-style query over one relation's facts in a [`Snapshot`].
///
/// Filters by probability threshold, optionally keeps only the `top_k` most
/// probable facts, and paginates with `offset`/`limit`.  Results are ordered by
/// descending probability when `top_k` is set and by tuple otherwise, so pages
/// are stable for a given snapshot.  For a deterministic enumeration spanning
/// every relation, see [`Snapshot::all_facts`].
#[derive(Debug, Clone)]
pub struct FactQuery<'a> {
    snapshot: &'a Snapshot,
    relation: &'a str,
    min_probability: f64,
    top_k: Option<usize>,
    offset: usize,
    limit: Option<usize>,
}

impl<'a> FactQuery<'a> {
    /// Keep only facts with probability at least `p`.
    pub fn min_probability(mut self, p: f64) -> Self {
        self.min_probability = p;
        self
    }

    /// Keep only the `k` most probable facts (switches the result order to
    /// descending probability, ties broken by tuple).
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Skip the first `n` facts of the ordered result (pagination).
    pub fn offset(mut self, n: usize) -> Self {
        self.offset = n;
        self
    }

    /// Return at most `n` facts after the offset (pagination).
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Execute the query over the snapshot's indexes.
    ///
    /// Routing, by query shape:
    /// - `top_k` → a prefix read of the shard's [`RankedIndex`]: O(log m)
    ///   `partition_point` threshold cut, then at most `k` entries cloned.
    ///   No per-request sort.
    /// - `min_probability` without `top_k` → the same O(log m) cut selects
    ///   the surviving set; only those entries are re-ordered by tuple to
    ///   keep the documented result order, so cost scales with the *answer*,
    ///   not the relation.
    /// - pure pagination (no threshold, no `top_k`) → the tuple-sorted index
    ///   as before: O(offset + limit) clones.  A threshold the whole
    ///   relation passes degenerates to this path too.
    ///
    /// Results are byte-identical to [`FactQuery::run_scan`] for every query
    /// shape — pinned per-op by the `tests/indexes.rs` differential oracle.
    pub fn run(self) -> Vec<(Tuple, f64)> {
        let Some(shard) = self.snapshot.catalog.shard(self.relation) else {
            return Vec::new();
        };
        let ranked = shard.ranked();
        let limit = self.limit.unwrap_or(usize::MAX);
        match self.top_k {
            Some(k) => {
                let cut = ranked.threshold_cut(self.min_probability).min(k);
                ranked.entries()[..cut]
                    .iter()
                    .skip(self.offset)
                    .take(limit)
                    .map(|(p, tuple, _)| (tuple.clone(), *p))
                    .collect()
            }
            None if self.min_probability > 0.0 => {
                let cut = ranked.threshold_cut(self.min_probability);
                if cut == ranked.len() {
                    // Nothing filtered: the tuple-sorted index already holds
                    // the answer in result order.
                    return self.run_scan();
                }
                let mut facts: Vec<(&Tuple, f64)> = ranked.entries()[..cut]
                    .iter()
                    .map(|(p, tuple, _)| (tuple, *p))
                    .collect();
                facts.sort_by(|a, b| a.0.cmp(b.0));
                facts
                    .into_iter()
                    .skip(self.offset)
                    .take(limit)
                    .map(|(tuple, p)| (tuple.clone(), p))
                    .collect()
            }
            None => self.run_scan(),
        }
    }

    /// Execute the query by scanning the tuple-sorted index — the reference
    /// implementation [`FactQuery::run`] must stay byte-identical to.  Kept
    /// public for the differential oracle and the `query_cost` benchmarks;
    /// un-ranked pages also route here (it *is* the fast path for them).
    pub fn run_scan(self) -> Vec<(Tuple, f64)> {
        let Some(shard) = self.snapshot.catalog.shard(self.relation) else {
            return Vec::new();
        };
        let marginals = &self.snapshot.marginals;
        // Filter before cloning: only facts that reach the page allocate.
        let surviving = shard.index().entries().iter().filter_map(|(tuple, var)| {
            let p = (*var < marginals.len()).then(|| marginals.get(*var))?;
            (p >= self.min_probability).then_some((tuple, p))
        });
        let limit = self.limit.unwrap_or(usize::MAX);
        match self.top_k {
            Some(k) => {
                let mut facts: Vec<(Tuple, f64)> =
                    surviving.map(|(tuple, p)| (tuple.clone(), p)).collect();
                facts.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
                facts.truncate(k);
                facts.into_iter().skip(self.offset).take(limit).collect()
            }
            None => surviving
                .skip(self.offset)
                .take(limit)
                .map(|(tuple, p)| (tuple.clone(), p))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_relstore::tuple;
    use std::collections::HashMap;

    fn catalog_entries() -> HashMap<(String, Tuple), usize> {
        let mut catalog = HashMap::new();
        catalog.insert(("Fact".to_string(), tuple![1i64]), 0usize);
        catalog.insert(("Fact".to_string(), tuple![2i64]), 1usize);
        catalog.insert(("Fact".to_string(), tuple![3i64]), 2usize);
        catalog.insert(("Other".to_string(), tuple![9i64]), 3usize);
        catalog
    }

    fn snapshot() -> Snapshot {
        Snapshot::publish(
            4,
            Marginals::from_values(vec![1.0, 0.7, 0.2, 0.5]),
            vec![1.5, -0.5],
            CatalogShards::build(catalog_entries().iter(), 4),
            Snapshot::empty(0.9).stats,
            0.9,
        )
    }

    #[test]
    fn probability_lookup_and_epoch() {
        let s = snapshot();
        assert_eq!(s.epoch(), 4);
        assert_eq!(s.probability_of("Fact", &tuple![1i64]), Some(1.0));
        assert_eq!(s.probability_of("Fact", &tuple![42i64]), None);
        assert_eq!(s.probability_of("Nothing", &tuple![1i64]), None);
        assert_eq!(s.weights(), &[1.5, -0.5]);
    }

    #[test]
    fn relation_names_are_sorted() {
        let s = snapshot();
        assert_eq!(s.relation_names(), vec!["Fact", "Other"]);
        assert_eq!(s.num_catalogued_variables(), 4);
    }

    #[test]
    fn fact_query_threshold_and_order() {
        let s = snapshot();
        let all = s.facts("Fact").run();
        assert_eq!(all.len(), 3);
        // default order: by tuple
        assert_eq!(all[0].0, tuple![1i64]);
        let high = s.facts("Fact").min_probability(0.5).run();
        assert_eq!(high.len(), 2);
        assert!(s.facts("Nothing").run().is_empty());
    }

    #[test]
    fn fact_query_top_k_orders_by_probability() {
        let s = snapshot();
        let top = s.facts("Fact").top_k(2).run();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (tuple![1i64], 1.0));
        assert_eq!(top[1], (tuple![2i64], 0.7));
    }

    #[test]
    fn fact_query_pagination() {
        let s = snapshot();
        let page1 = s.facts("Fact").limit(2).run();
        let page2 = s.facts("Fact").offset(2).limit(2).run();
        assert_eq!(page1.len(), 2);
        assert_eq!(page2.len(), 1);
        assert_eq!(page1[0].0, tuple![1i64]);
        assert_eq!(page2[0].0, tuple![3i64]);
        // offset past the end is empty, not a panic
        assert!(s.facts("Fact").offset(10).run().is_empty());
    }

    #[test]
    fn all_facts_paginates_across_relations_in_sorted_order() {
        let s = snapshot();
        let all = s.all_facts(0.0, 0, usize::MAX);
        // relation-name order first ("Fact" < "Other"), tuple order within.
        let names: Vec<&str> = all.iter().map(|(r, _, _)| *r).collect();
        assert_eq!(names, vec!["Fact", "Fact", "Fact", "Other"]);
        assert_eq!(all[0].1, tuple![1i64]);
        assert_eq!(all[3].1, tuple![9i64]);
        // Page boundaries never skip or repeat facts.
        let page1 = s.all_facts(0.0, 0, 3);
        let page2 = s.all_facts(0.0, 3, 3);
        assert_eq!(page1.len(), 3);
        assert_eq!(page2.len(), 1);
        assert_eq!(page2[0].0, "Other");
        // Threshold filters before pagination.
        let high = s.all_facts(0.5, 0, usize::MAX);
        assert_eq!(high.len(), 3);
    }

    #[test]
    fn merge_delta_reindexes_only_the_touched_shard() {
        let marginals = Marginals::from_values(vec![1.0, 0.7, 0.2, 0.5, 0.6]);
        let mut base = CatalogShards::build(catalog_entries().iter(), 1);
        base.refresh_ranked(&marginals, 1);
        let mut next = base.clone();
        next.merge_delta("Fact", vec![(tuple![4i64], 4)], 2, &marginals);

        // The touched shard was re-indexed (new Arcs, new generations)...
        assert!(!Arc::ptr_eq(
            base.shard("Fact").unwrap().index(),
            next.shard("Fact").unwrap().index()
        ));
        assert!(!Arc::ptr_eq(
            base.shard("Fact").unwrap().ranked(),
            next.shard("Fact").unwrap().ranked()
        ));
        assert_eq!(next.shard("Fact").unwrap().generation(), 2);
        assert_eq!(next.shard("Fact").unwrap().ranked_generation(), 2);
        assert_eq!(next.shard("Fact").unwrap().index().len(), 4);
        assert_eq!(next.shard("Fact").unwrap().ranked().len(), 4);
        assert_eq!(
            next.shard("Fact").unwrap().index().get(&tuple![4i64]),
            Some(4)
        );
        // ...while the untouched shard shares both views pointer-identically.
        assert!(Arc::ptr_eq(
            base.shard("Other").unwrap().index(),
            next.shard("Other").unwrap().index()
        ));
        assert!(Arc::ptr_eq(
            base.shard("Other").unwrap().ranked(),
            next.shard("Other").unwrap().ranked()
        ));
        assert_eq!(next.shard("Other").unwrap().generation(), 1);
        // The base catalog is unchanged.
        assert_eq!(base.shard("Fact").unwrap().index().len(), 3);
        assert_eq!(base.shard("Fact").unwrap().ranked().len(), 3);
    }

    #[test]
    fn merge_delta_creates_missing_shards_in_sorted_position() {
        let marginals = Marginals::from_values(vec![1.0; 10]);
        let mut shards = CatalogShards::build(catalog_entries().iter(), 1);
        shards.merge_delta("Alpha", vec![(tuple![7i64], 9)], 2, &marginals);
        let names: Vec<&str> = shards.relation_names().collect();
        assert_eq!(names, vec!["Alpha", "Fact", "Other"]);
        assert_eq!(
            shards.shard("Alpha").unwrap().index().get(&tuple![7i64]),
            Some(9)
        );
        assert_eq!(shards.shard("Alpha").unwrap().ranked().len(), 1);
        // An empty delta is a no-op (no shard created, no generation bump).
        shards.merge_delta("Beta", Vec::new(), 3, &marginals);
        assert!(shards.shard("Beta").is_none());
    }

    #[test]
    fn ranked_index_orders_by_probability_desc_then_tuple() {
        let s = snapshot();
        let ranked = s.catalog().shard("Fact").unwrap().ranked();
        let probs: Vec<f64> = ranked.entries().iter().map(|(p, _, _)| *p).collect();
        assert_eq!(probs, vec![1.0, 0.7, 0.2]);
        assert_eq!(ranked.threshold_cut(0.5), 2);
        assert_eq!(ranked.threshold_cut(0.7), 2); // inclusive: p >= 0.7 survives
        assert_eq!(ranked.threshold_cut(1.5), 0);
        assert_eq!(ranked.threshold_cut(0.0), 3);
    }

    #[test]
    fn ranked_apply_changes_merges_upserts_and_retractions() {
        let marginals = Marginals::from_values(vec![1.0, 0.7, 0.2, 0.5, 0.9]);
        let index = RelationIndex::from_entries(vec![
            (tuple![1i64], 0),
            (tuple![2i64], 1),
            (tuple![3i64], 2),
        ]);
        let ranked = RankedIndex::build(index.entries(), &marginals);
        // Retract tuple 2, upsert tuple 4 at p=0.9, remap tuple 3 to var 3.
        let next = ranked
            .apply_changes(
                &[
                    (tuple![2i64], None),
                    (tuple![4i64], Some(4)),
                    (tuple![3i64], Some(3)),
                ],
                &marginals,
            )
            .expect("bit-stable marginals merge cleanly");
        let got: Vec<(f64, Tuple)> = next
            .entries()
            .iter()
            .map(|(p, t, _)| (*p, t.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                (1.0, tuple![1i64]),
                (0.9, tuple![4i64]),
                (0.5, tuple![3i64]),
            ]
        );
        // Marginal drift on a retained entry signals a full re-rank.
        let drifted = Marginals::from_values(vec![0.4, 0.7, 0.2, 0.5, 0.9]);
        assert!(ranked
            .apply_changes(&[(tuple![2i64], None)], &drifted)
            .is_none());
    }

    #[test]
    fn refresh_ranked_rebuilds_only_on_marginal_drift() {
        let marginals = Marginals::from_values(vec![1.0, 0.7, 0.2, 0.5]);
        let mut shards = CatalogShards::build(catalog_entries().iter(), 1);
        assert_eq!(
            shards.refresh_ranked(&marginals, 1),
            vec!["Fact".to_string(), "Other".to_string()]
        );
        let before = Arc::clone(shards.shard("Fact").unwrap().ranked());
        // Bit-stable marginals: validation keeps the Arc.
        assert!(shards.refresh_ranked(&marginals, 2).is_empty());
        assert!(Arc::ptr_eq(&before, shards.shard("Fact").unwrap().ranked()));
        assert_eq!(shards.shard("Fact").unwrap().ranked_generation(), 1);
        // Drift in one relation's marginal re-ranks only that shard.
        let drifted = Marginals::from_values(vec![1.0, 0.7, 0.2, 0.8]);
        assert_eq!(
            shards.refresh_ranked(&drifted, 3),
            vec!["Other".to_string()]
        );
        assert!(Arc::ptr_eq(&before, shards.shard("Fact").unwrap().ranked()));
        assert_eq!(shards.shard("Other").unwrap().ranked_generation(), 3);
    }

    #[test]
    fn indexed_run_matches_scan_on_every_query_shape() {
        let s = snapshot();
        for min_p in [0.0, 0.2, 0.5, 0.7, 0.9, 1.0, 1.1] {
            for top_k in [None, Some(0), Some(1), Some(2), Some(10)] {
                for offset in [0usize, 1, 3] {
                    for limit in [None, Some(0), Some(1), Some(2)] {
                        let build = |relation: &'static str| {
                            let mut q = s.facts(relation).min_probability(min_p).offset(offset);
                            if let Some(k) = top_k {
                                q = q.top_k(k);
                            }
                            if let Some(l) = limit {
                                q = q.limit(l);
                            }
                            q
                        };
                        for relation in ["Fact", "Other", "Nothing"] {
                            assert_eq!(
                                build(relation).run(),
                                build(relation).run_scan(),
                                "relation={relation} min_p={min_p} top_k={top_k:?} \
                                 offset={offset} limit={limit:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn merged_index_interleaves_and_replaces() {
        let base = RelationIndex::from_entries(vec![(tuple![1i64], 0), (tuple![3i64], 1)]);
        let merged = base.merged_with(vec![(tuple![2i64], 2), (tuple![3i64], 9)]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.get(&tuple![1i64]), Some(0));
        assert_eq!(merged.get(&tuple![2i64]), Some(2));
        // Same-tuple delta entries replace the old mapping.
        assert_eq!(merged.get(&tuple![3i64]), Some(9));
        // Result stays tuple-sorted.
        let tuples: Vec<&Tuple> = merged.entries().iter().map(|(t, _)| t).collect();
        assert!(tuples.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quality_uses_the_published_threshold() {
        let s = snapshot();
        let truth: HashSet<Tuple> = [tuple![1i64]].into_iter().collect();
        let q = s.quality("Fact", &truth);
        // threshold 0.9 extracts only tuple 1 -> perfect precision and recall
        assert_eq!(q.extracted, 1);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();
        assert_send_sync::<std::sync::Arc<Snapshot>>();
    }
}

//! Lock-free read snapshots for online serving.
//!
//! The paper's system is an *online* KBC service: analysts and applications
//! query the current knowledge base continuously while incremental updates land
//! (§1, §3.3).  A [`Snapshot`] is the read half of that split — an immutable,
//! `Send + Sync` view bundling the marginals, the learned weights, the
//! `(relation, tuple) → variable` catalog, the graph statistics, and an epoch
//! number.  [`crate::DeepDive::initial_run`] and [`crate::DeepDive::run_update`]
//! publish a fresh snapshot atomically (a pointer swap under a briefly-held
//! write lock); readers hold `Arc<Snapshot>` handles, so every query they run
//! touches no lock at all and always observes one consistent epoch — the same
//! snapshot-isolation structure HTAP designs use to let analytical readers run
//! against a stable version while the update path proceeds.
//!
//! ```
//! use deepdive::{DeepDive, EngineConfig};
//! use dd_grounding::standard_udfs;
//! use dd_relstore::{tuple, Database, DataType, Schema};
//!
//! let mut db = Database::new();
//! db.create_table("Claim", Schema::of(&[("id", DataType::Int)])).unwrap();
//! db.create_table("Label", Schema::of(&[("id", DataType::Int)])).unwrap();
//! db.insert_all("Claim", vec![tuple![1i64], tuple![2i64]]).unwrap();
//! db.insert_all("Label", vec![tuple![1i64]]).unwrap();
//!
//! let mut dd = DeepDive::builder()
//!     .program_text(r#"
//!         relation Claim(id: int) base.
//!         relation Label(id: int) base.
//!         relation Fact(id: int) variable.
//!         rule F feature: Fact(id) :- Claim(id) weight = 1.5.
//!         rule S supervision+: Fact(id) :- Claim(id), Label(id).
//!     "#)
//!     .database(db)
//!     .config(EngineConfig::fast())
//!     .build()
//!     .unwrap();
//! dd.initial_run().unwrap();
//!
//! // A snapshot is a cheap Arc clone; hand it to any number of threads.
//! let snap = dd.snapshot();
//! assert_eq!(snap.epoch(), 1);
//! assert_eq!(snap.probability_of("Fact", &tuple![1i64]), Some(1.0));
//! let top = snap.facts("Fact").min_probability(0.5).top_k(1).run();
//! assert_eq!(top[0].0, tuple![1i64]);
//! ```

use crate::quality::{evaluate_quality, QualityReport};
use dd_factorgraph::GraphStats;
use dd_inference::Marginals;
use dd_relstore::Tuple;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, RwLock};

/// One relation's slice of the variable catalog, pre-indexed for serving: a
/// single tuple-sorted vector, so scans are pre-ordered (un-ranked queries
/// never sort) and point lookups are allocation-free binary searches.
#[derive(Debug, Default)]
pub(crate) struct RelationIndex {
    sorted: Vec<(Tuple, usize)>,
}

impl RelationIndex {
    /// Number of catalogued tuples in this relation.
    pub(crate) fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Variable id of `tuple`, if catalogued.
    fn get(&self, tuple: &Tuple) -> Option<usize> {
        self.sorted
            .binary_search_by(|(t, _)| t.cmp(tuple))
            .ok()
            .map(|i| self.sorted[i].1)
    }
}

/// Build the per-relation serving index from `(relation, tuple) → variable`
/// catalog entries (one tuple clone per entry).
pub(crate) fn build_catalog<'a>(
    entries: impl Iterator<Item = (&'a (String, Tuple), &'a usize)>,
) -> HashMap<String, RelationIndex> {
    let mut catalog: HashMap<String, RelationIndex> = HashMap::new();
    for ((relation, tuple), &var) in entries {
        catalog
            .entry(relation.clone())
            .or_default()
            .sorted
            .push((tuple.clone(), var));
    }
    for index in catalog.values_mut() {
        index.sorted.sort_by(|a, b| a.0.cmp(&b.0));
    }
    catalog
}

/// An immutable, shareable view of the knowledge base at one epoch.
///
/// All read APIs of the engine live here; [`crate::DeepDive`]'s read methods
/// are thin wrappers over its current snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    marginals: Marginals,
    weights: Vec<f64>,
    /// Per-relation variable catalog, frozen at publish time.  Shared with the
    /// engine (and with other epochs' snapshots): republishing without graph
    /// growth is one `Arc` clone; growth re-indexes the catalog once.
    catalog: Arc<HashMap<String, RelationIndex>>,
    stats: GraphStats,
    /// The engine's fact-extraction threshold at publish time (used by
    /// [`Snapshot::quality`]).
    fact_threshold: f64,
}

impl Snapshot {
    /// The empty epoch-0 snapshot an engine holds before any run.
    pub(crate) fn empty(fact_threshold: f64) -> Self {
        Snapshot {
            epoch: 0,
            marginals: Marginals::zeros(0),
            weights: Vec::new(),
            catalog: Arc::new(HashMap::new()),
            stats: GraphStats {
                num_variables: 0,
                num_query_variables: 0,
                num_evidence_variables: 0,
                num_factors: 0,
                num_weights: 0,
                weight_density: 0.0,
                avg_degree: 0.0,
            },
            fact_threshold,
        }
    }

    pub(crate) fn publish(
        epoch: u64,
        marginals: Marginals,
        weights: Vec<f64>,
        catalog: Arc<HashMap<String, RelationIndex>>,
        stats: GraphStats,
        fact_threshold: f64,
    ) -> Self {
        Snapshot {
            epoch,
            marginals,
            weights,
            catalog,
            stats,
            fact_threshold,
        }
    }

    /// The epoch this snapshot was published at (0 = never ran, then +1 per
    /// completed `initial_run` / `run_update`).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Marginal probabilities, one per variable.
    pub fn marginals(&self) -> &Marginals {
        &self.marginals
    }

    /// The learned weight vector of this epoch's model.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Graph statistics at publish time.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Number of `(relation, tuple)` entries in the variable catalog.
    pub fn num_catalogued_variables(&self) -> usize {
        self.catalog.values().map(|index| index.sorted.len()).sum()
    }

    /// Probability currently assigned to one tuple of a variable relation
    /// (allocation-free: a binary search in the per-relation index).
    pub fn probability_of(&self, relation: &str, tuple: &Tuple) -> Option<f64> {
        let var = self.catalog.get(relation)?.get(tuple)?;
        (var < self.marginals.len()).then(|| self.marginals.get(var))
    }

    /// Facts of `relation` whose marginal probability is at least `threshold`,
    /// sorted by tuple.  Convenience wrapper over [`Snapshot::facts`].
    pub fn extract_facts(&self, relation: &str, threshold: f64) -> Vec<(Tuple, f64)> {
        self.facts(relation).min_probability(threshold).run()
    }

    /// Start building a paginated fact query against this snapshot.
    pub fn facts<'a>(&'a self, relation: &'a str) -> FactQuery<'a> {
        FactQuery {
            snapshot: self,
            relation,
            min_probability: 0.0,
            top_k: None,
            offset: 0,
            limit: None,
        }
    }

    /// Quality of the facts extracted from `relation` at the engine's
    /// configured threshold, against a ground-truth set.
    pub fn quality(&self, relation: &str, truth: &HashSet<Tuple>) -> QualityReport {
        let extracted: Vec<Tuple> = self
            .extract_facts(relation, self.fact_threshold)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        evaluate_quality(&extracted, truth)
    }
}

/// A cloneable, thread-safe handle onto an engine's *current* snapshot.
///
/// Obtained from [`crate::DeepDive::reader`] and handed to serving threads:
/// each call to [`SnapshotReader::snapshot`] returns the most recently
/// published epoch as a cheap `Arc` clone.  The engine's publish step swaps the
/// pointer under a write lock held only for the swap itself, so readers never
/// wait on grounding, learning, or inference — once a reader holds an
/// `Arc<Snapshot>`, every query on it is lock-free and epoch-consistent.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    current: Arc<RwLock<Arc<Snapshot>>>,
}

impl SnapshotReader {
    pub(crate) fn new(current: Arc<RwLock<Arc<Snapshot>>>) -> Self {
        SnapshotReader { current }
    }

    /// The most recently published snapshot (cheap: one `Arc` clone under a
    /// briefly-held read lock).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        // A poisoned lock can only mean a panic during the pointer swap
        // itself; the Arc inside is still valid, so recover it.
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// The epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }
}

/// A builder-style query over one relation's facts in a [`Snapshot`].
///
/// Filters by probability threshold, optionally keeps only the `top_k` most
/// probable facts, and paginates with `offset`/`limit`.  Results are ordered by
/// descending probability when `top_k` is set and by tuple otherwise, so pages
/// are stable for a given snapshot.
#[derive(Debug, Clone)]
pub struct FactQuery<'a> {
    snapshot: &'a Snapshot,
    relation: &'a str,
    min_probability: f64,
    top_k: Option<usize>,
    offset: usize,
    limit: Option<usize>,
}

impl<'a> FactQuery<'a> {
    /// Keep only facts with probability at least `p`.
    pub fn min_probability(mut self, p: f64) -> Self {
        self.min_probability = p;
        self
    }

    /// Keep only the `k` most probable facts (switches the result order to
    /// descending probability, ties broken by tuple).
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Skip the first `n` facts of the ordered result (pagination).
    pub fn offset(mut self, n: usize) -> Self {
        self.offset = n;
        self
    }

    /// Return at most `n` facts after the offset (pagination).
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Execute the query.  The per-relation index is pre-sorted by tuple, so
    /// an un-ranked page costs O(offset + limit) clones; only ranked
    /// (`top_k`) queries materialize (and sort) the whole surviving set.
    pub fn run(self) -> Vec<(Tuple, f64)> {
        let Some(index) = self.snapshot.catalog.get(self.relation) else {
            return Vec::new();
        };
        let marginals = &self.snapshot.marginals;
        // Filter before cloning: only facts that reach the page allocate.
        let surviving = index.sorted.iter().filter_map(|(tuple, var)| {
            let p = (*var < marginals.len()).then(|| marginals.get(*var))?;
            (p >= self.min_probability).then_some((tuple, p))
        });
        let limit = self.limit.unwrap_or(usize::MAX);
        match self.top_k {
            Some(k) => {
                let mut facts: Vec<(Tuple, f64)> =
                    surviving.map(|(tuple, p)| (tuple.clone(), p)).collect();
                facts.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
                facts.truncate(k);
                facts.into_iter().skip(self.offset).take(limit).collect()
            }
            None => surviving
                .skip(self.offset)
                .take(limit)
                .map(|(tuple, p)| (tuple.clone(), p))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_relstore::tuple;

    fn snapshot() -> Snapshot {
        let mut catalog = HashMap::new();
        catalog.insert(("Fact".to_string(), tuple![1i64]), 0usize);
        catalog.insert(("Fact".to_string(), tuple![2i64]), 1usize);
        catalog.insert(("Fact".to_string(), tuple![3i64]), 2usize);
        catalog.insert(("Other".to_string(), tuple![9i64]), 3usize);
        Snapshot::publish(
            4,
            Marginals::from_values(vec![1.0, 0.7, 0.2, 0.5]),
            vec![1.5, -0.5],
            Arc::new(build_catalog(catalog.iter())),
            Snapshot::empty(0.9).stats,
            0.9,
        )
    }

    #[test]
    fn probability_lookup_and_epoch() {
        let s = snapshot();
        assert_eq!(s.epoch(), 4);
        assert_eq!(s.probability_of("Fact", &tuple![1i64]), Some(1.0));
        assert_eq!(s.probability_of("Fact", &tuple![42i64]), None);
        assert_eq!(s.probability_of("Nothing", &tuple![1i64]), None);
        assert_eq!(s.weights(), &[1.5, -0.5]);
    }

    #[test]
    fn fact_query_threshold_and_order() {
        let s = snapshot();
        let all = s.facts("Fact").run();
        assert_eq!(all.len(), 3);
        // default order: by tuple
        assert_eq!(all[0].0, tuple![1i64]);
        let high = s.facts("Fact").min_probability(0.5).run();
        assert_eq!(high.len(), 2);
        assert!(s.facts("Nothing").run().is_empty());
    }

    #[test]
    fn fact_query_top_k_orders_by_probability() {
        let s = snapshot();
        let top = s.facts("Fact").top_k(2).run();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (tuple![1i64], 1.0));
        assert_eq!(top[1], (tuple![2i64], 0.7));
    }

    #[test]
    fn fact_query_pagination() {
        let s = snapshot();
        let page1 = s.facts("Fact").limit(2).run();
        let page2 = s.facts("Fact").offset(2).limit(2).run();
        assert_eq!(page1.len(), 2);
        assert_eq!(page2.len(), 1);
        assert_eq!(page1[0].0, tuple![1i64]);
        assert_eq!(page2[0].0, tuple![3i64]);
        // offset past the end is empty, not a panic
        assert!(s.facts("Fact").offset(10).run().is_empty());
    }

    #[test]
    fn quality_uses_the_published_threshold() {
        let s = snapshot();
        let truth: HashSet<Tuple> = [tuple![1i64]].into_iter().collect();
        let q = s.quality("Fact", &truth);
        // threshold 0.9 extracts only tuple 1 -> perfect precision and recall
        assert_eq!(q.extracted, 1);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();
        assert_send_sync::<std::sync::Arc<Snapshot>>();
    }
}

//! Factor-graph deltas: the (ΔV, ΔF) object of incremental inference.
//!
//! Incremental grounding (paper §3.1) produces "the 'delta' of the modified
//! factor graph, i.e. the modified variables ΔV and factors ΔF"; incremental
//! inference (§3.2) consumes it.  A [`GraphDelta`] captures every kind of change
//! a KBC iteration can make:
//!
//! * new variables (new candidate tuples from new documents or new rules),
//! * new factors (new features, new inference rules),
//! * weight changes (re-learned or manually adjusted weights),
//! * evidence changes (new supervision labels turning query variables into
//!   evidence, or retracted labels turning evidence back into queries),
//! * factor/variable *removals* (retracted facts whose derivations vanished —
//!   the negative half of the Z-set delta the DRed pass produces).
//!
//! Removals are recorded as **ordered op lists**: each id is valid at its
//! position in the sequence, accounting for the `swap_remove` compaction moves
//! of [`FactorGraph::remove_factor`]/[`FactorGraph::remove_variable`].
//! Replaying a delta on a clone of the pre-update graph therefore reproduces
//! the exact ids of the in-place update.

use crate::factor::{Factor, FactorId};
use crate::graph::FactorGraph;
use crate::variable::{VarId, Variable, VariableRole};
use crate::weight::{Weight, WeightId};
use serde::{Deserialize, Serialize};

/// A change to one weight value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightChange {
    pub weight_id: WeightId,
    pub new_value: f64,
}

/// A change to one variable's evidence status.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvidenceChange {
    pub var: VarId,
    pub new_role: VariableRole,
}

/// The set of modifications to a factor graph produced by one KBC update.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Variables to add.  Their `id` fields are reassigned on application; the
    /// positions in this vector are referred to by [`GraphDelta::new_factors`]
    /// through [`NewVarRef::New`].
    pub new_variables: Vec<Variable>,
    /// Weights to add (ids reassigned on application).
    pub new_weights: Vec<Weight>,
    /// Factors to add.  Variable references use [`NewVarRef`] resolved at
    /// application time; weight references use [`NewWeightRef`].
    pub new_factors: Vec<DeltaFactor>,
    /// Weight-value changes to existing weights.
    pub weight_changes: Vec<WeightChange>,
    /// Evidence-status changes to existing variables.
    pub evidence_changes: Vec<EvidenceChange>,
    /// Factors to remove, **before** any addition, in recorded order.  Each id
    /// is valid at its point in the sequence (`swap_remove` semantics).
    pub removed_factors: Vec<FactorId>,
    /// Variables to remove after factor removals, in recorded order; every
    /// removed variable must be factor-free by then.
    pub removed_variables: Vec<VarId>,
}

/// Reference to a variable that either already exists or is introduced by the
/// same delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NewVarRef {
    Existing(VarId),
    /// Index into [`GraphDelta::new_variables`].
    New(usize),
}

/// Reference to a weight that either already exists or is introduced by the
/// same delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NewWeightRef {
    Existing(WeightId),
    /// Index into [`GraphDelta::new_weights`].
    New(usize),
}

/// A factor whose variable/weight references may point at delta-local entities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaFactor {
    pub weight: NewWeightRef,
    /// A template factor whose variable ids index into `var_refs`.
    pub template: Factor,
    /// The actual references, in the order the template's variable slots use
    /// them: template variable id `i` resolves to `var_refs[i]`.
    pub var_refs: Vec<NewVarRef>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// True if the delta makes no change at all.
    pub fn is_empty(&self) -> bool {
        self.new_variables.is_empty()
            && self.new_weights.is_empty()
            && self.new_factors.is_empty()
            && self.weight_changes.is_empty()
            && self.evidence_changes.is_empty()
            && self.removed_factors.is_empty()
            && self.removed_variables.is_empty()
    }

    /// True if the delta retracts structure (removed factors or variables) —
    /// the negative half of the Z-set.
    pub fn has_removals(&self) -> bool {
        !self.removed_factors.is_empty() || !self.removed_variables.is_empty()
    }

    /// True if the delta changes the *structure* of the graph (new or removed
    /// variables/factors) as opposed to only weights/evidence — the distinction
    /// the rule-based optimizer of §3.3 keys on.
    pub fn changes_structure(&self) -> bool {
        !self.new_variables.is_empty() || !self.new_factors.is_empty() || self.has_removals()
    }

    /// True if the delta modifies evidence (new supervision labels).
    pub fn changes_evidence(&self) -> bool {
        !self.evidence_changes.is_empty()
    }

    /// True if the delta introduces new weights (new features).
    pub fn introduces_new_features(&self) -> bool {
        !self.new_weights.is_empty()
    }

    /// Number of modified variables |ΔV| (new + removed + evidence-changed).
    pub fn num_modified_variables(&self) -> usize {
        self.new_variables.len() + self.removed_variables.len() + self.evidence_changes.len()
    }

    /// Number of modified factors |ΔF| (new + removed + weight-changed).
    pub fn num_modified_factors(&self) -> usize {
        self.new_factors.len() + self.removed_factors.len() + self.weight_changes.len()
    }

    /// Apply the delta to a graph, returning the ids assigned to the new
    /// variables and factors.
    ///
    /// Order matters and mirrors how the grounder mutates its own graph:
    /// removals first (factors, then variables, each list in recorded order),
    /// then additions, then weight and evidence changes.  This makes replaying
    /// a delta on a clone of the pre-update graph id-exact.
    pub fn apply(&self, graph: &mut FactorGraph) -> (Vec<VarId>, Vec<FactorId>) {
        // 0. removals (ordered op lists; ids valid at each step)
        for &f in &self.removed_factors {
            graph.remove_factor(f);
        }
        for &v in &self.removed_variables {
            graph.remove_variable(v);
        }
        // 1. new variables
        let new_var_ids: Vec<VarId> = self
            .new_variables
            .iter()
            .map(|v| graph.add_variable(v.clone()))
            .collect();
        // 2. new weights
        let new_weight_ids: Vec<WeightId> = self
            .new_weights
            .iter()
            .map(|w| graph.add_weight(w.clone()))
            .collect();
        // 3. new factors with references resolved
        let mut new_factor_ids = Vec::with_capacity(self.new_factors.len());
        for df in &self.new_factors {
            let resolve_var = |r: NewVarRef| -> VarId {
                match r {
                    NewVarRef::Existing(v) => v,
                    NewVarRef::New(i) => new_var_ids[i],
                }
            };
            let weight_id = match df.weight {
                NewWeightRef::Existing(w) => w,
                NewWeightRef::New(i) => new_weight_ids[i],
            };
            let mut factor = df.template.clone();
            factor.weight_id = weight_id;
            remap_factor_vars(&mut factor, &|slot| resolve_var(df.var_refs[slot]));
            new_factor_ids.push(graph.add_factor(factor));
        }
        // 4. weight changes
        for wc in &self.weight_changes {
            graph.set_weight_value(wc.weight_id, wc.new_value);
        }
        // 5. evidence changes.  Un-pinning (back to `Query`) resets the initial
        // value to the query default so the variable is indistinguishable from
        // one that was never evidence — required for retraction equivalence.
        for ec in &self.evidence_changes {
            let var = graph.variable_mut(ec.var);
            var.role = ec.new_role;
            var.initial_value = ec.new_role.fixed_value().unwrap_or(false);
        }
        (new_var_ids, new_factor_ids)
    }
}

/// Rewrite every variable reference inside a factor through `map`.
pub(crate) fn remap_factor_vars(factor: &mut Factor, map: &dyn Fn(usize) -> VarId) {
    use crate::factor::FactorKind::*;
    match &mut factor.kind {
        Conjunction(lits) => {
            for l in lits {
                l.var = map(l.var);
            }
        }
        Imply { body, head } => {
            for l in body {
                l.var = map(l.var);
            }
            head.var = map(head.var);
        }
        Equal(a, b) => {
            *a = map(*a);
            *b = map(*b);
        }
        IsTrue(v) => {
            *v = map(*v);
        }
        Aggregate {
            head, groundings, ..
        } => {
            head.var = map(head.var);
            for g in groundings {
                for l in g {
                    l.var = map(l.var);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{Factor, FactorKind, Lit};
    use crate::graph::FactorGraphBuilder;
    use crate::semantics::Semantics;

    fn base_graph() -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(2);
        let w = b.tied_weight("w0", 1.0, false);
        b.add_factor(Factor::equal(w, vs[0], vs[1]));
        b.build()
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let mut g = base_graph();
        let before = g.stats();
        let d = GraphDelta::new();
        assert!(d.is_empty());
        assert!(!d.changes_structure());
        let (vs, fs) = g.apply_delta(&d);
        assert!(vs.is_empty() && fs.is_empty());
        assert_eq!(g.stats(), before);
    }

    #[test]
    fn delta_adds_variables_factors_and_weights() {
        let mut g = base_graph();
        let d = GraphDelta {
            new_variables: vec![Variable::query(0).with_origin("MarriedMentions", 99)],
            new_weights: vec![Weight::learnable(0, 0.7, "FE2:dep_path")],
            new_factors: vec![DeltaFactor {
                weight: NewWeightRef::New(0),
                // template: conjunction over slots 0 (existing var 1) and 1 (new var 0)
                template: Factor::conjunction(0, &[0, 1]),
                var_refs: vec![NewVarRef::Existing(1), NewVarRef::New(0)],
            }],
            weight_changes: vec![WeightChange {
                weight_id: 0,
                new_value: -0.5,
            }],
            evidence_changes: vec![EvidenceChange {
                var: 0,
                new_role: VariableRole::PositiveEvidence,
            }],
            ..Default::default()
        };
        assert!(d.changes_structure());
        assert!(d.changes_evidence());
        assert!(d.introduces_new_features());
        assert_eq!(d.num_modified_variables(), 2);
        assert_eq!(d.num_modified_factors(), 2);

        let (new_vars, new_factors) = g.apply_delta(&d);
        assert_eq!(new_vars.len(), 1);
        assert_eq!(new_factors.len(), 1);
        assert_eq!(g.num_variables(), 3);
        assert_eq!(g.num_factors(), 2);
        assert_eq!(g.num_weights(), 2);

        // weight change applied
        assert_eq!(g.weight(0).value, -0.5);
        // evidence change applied
        assert!(g.variable(0).is_evidence());
        assert_eq!(g.variable(0).fixed_value(), Some(true));
        // the new factor touches the existing variable 1 and the new variable
        let f = g.factor(new_factors[0]);
        let vars = f.variables();
        assert!(vars.contains(&1));
        assert!(vars.contains(&new_vars[0]));
        assert_eq!(f.weight_id, 1);
        // adjacency updated
        assert!(g.factors_of(new_vars[0]).contains(&new_factors[0]));
    }

    #[test]
    fn delta_remaps_aggregate_factors() {
        let mut g = base_graph();
        let d = GraphDelta {
            new_variables: vec![Variable::query(0), Variable::evidence(0, true)],
            new_weights: vec![Weight::learnable(0, 1.0, "vote")],
            new_factors: vec![DeltaFactor {
                weight: NewWeightRef::New(0),
                template: Factor::new(
                    0,
                    FactorKind::Aggregate {
                        head: Lit::pos(0),
                        semantics: Semantics::Logical,
                        groundings: vec![vec![Lit::pos(1)]],
                    },
                ),
                var_refs: vec![NewVarRef::New(0), NewVarRef::New(1)],
            }],
            ..Default::default()
        };
        let (new_vars, new_factors) = g.apply_delta(&d);
        let f = g.factor(new_factors[0]);
        match &f.kind {
            FactorKind::Aggregate {
                head, groundings, ..
            } => {
                assert_eq!(head.var, new_vars[0]);
                assert_eq!(groundings[0][0].var, new_vars[1]);
            }
            other => panic!("unexpected factor kind {other:?}"),
        }
    }

    #[test]
    fn removal_delta_replays_id_exact_on_a_clone() {
        // Build v0..v2 with f0: is_true(v0), f1: equal(v1, v2); retract f0+v0
        // in place while recording the ops, then replay on a clone.
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(3);
        let w = b.tied_weight("w", 1.0, false);
        b.add_factor(Factor::is_true(w, vs[0]));
        b.add_factor(Factor::equal(w, vs[1], vs[2]));
        let g0 = b.build();

        let mut live = g0.clone();
        let mut delta = GraphDelta::new();
        live.remove_factor(0);
        delta.removed_factors.push(0);
        live.remove_variable(0);
        delta.removed_variables.push(0);
        assert!(delta.has_removals());
        assert!(delta.changes_structure());
        assert_eq!(delta.num_modified_variables(), 1);
        assert_eq!(delta.num_modified_factors(), 1);

        let mut replayed = g0.clone();
        replayed.apply_delta(&delta);
        assert_eq!(replayed.num_variables(), live.num_variables());
        assert_eq!(replayed.num_factors(), live.num_factors());
        for v in 0..live.num_variables() {
            assert_eq!(replayed.variable(v).relation, live.variable(v).relation);
            assert_eq!(replayed.variable(v).key, live.variable(v).key);
            assert_eq!(replayed.factors_of(v), live.factors_of(v));
        }
        for f in 0..live.num_factors() {
            assert_eq!(replayed.factor(f).variables(), live.factor(f).variables());
        }
    }

    #[test]
    fn unpinning_resets_initial_value() {
        let mut g = base_graph();
        g.apply_delta(&GraphDelta {
            evidence_changes: vec![EvidenceChange {
                var: 1,
                new_role: VariableRole::PositiveEvidence,
            }],
            ..Default::default()
        });
        assert!(g.variable(1).initial_value);
        g.apply_delta(&GraphDelta {
            evidence_changes: vec![EvidenceChange {
                var: 1,
                new_role: VariableRole::Query,
            }],
            ..Default::default()
        });
        assert!(!g.variable(1).initial_value);
        assert_eq!(g.variable(1).role, VariableRole::Query);
    }

    #[test]
    fn evidence_retraction_round_trip() {
        let mut g = base_graph();
        let to_evidence = GraphDelta {
            evidence_changes: vec![EvidenceChange {
                var: 1,
                new_role: VariableRole::NegativeEvidence,
            }],
            ..Default::default()
        };
        g.apply_delta(&to_evidence);
        assert_eq!(g.query_variables(), vec![0]);

        let back_to_query = GraphDelta {
            evidence_changes: vec![EvidenceChange {
                var: 1,
                new_role: VariableRole::Query,
            }],
            ..Default::default()
        };
        g.apply_delta(&back_to_query);
        assert_eq!(g.query_variables(), vec![0, 1]);
    }
}

//! Factors: weighted functions of small sets of variables.

use crate::semantics::Semantics;
use crate::variable::VarId;
use crate::weight::WeightId;
use crate::world::WorldView;
use serde::{Deserialize, Serialize};

/// Index of a factor in its [`crate::FactorGraph`].
pub type FactorId = usize;

/// A literal: a variable together with the polarity it is required to have.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lit {
    pub var: VarId,
    /// `true` means the literal is satisfied when the variable is true.
    pub positive: bool,
}

impl Lit {
    /// A positive literal.
    pub fn pos(var: VarId) -> Self {
        Lit {
            var,
            positive: true,
        }
    }

    /// A negative literal.
    pub fn neg(var: VarId) -> Self {
        Lit {
            var,
            positive: false,
        }
    }

    /// Whether the literal holds in `world`.
    pub fn holds<W: WorldView + ?Sized>(&self, world: &W) -> bool {
        world.value(self.var) == self.positive
    }
}

/// The functional form of a factor.
///
/// * `Conjunction` and `Imply` are the classic MLN factor functions produced by
///   grounding individual rule instances (and are the Linear special case of
///   Equation 1 with one grounding).
/// * `Equal` encodes symmetry rules such as `HasSpouse(x,y) => HasSpouse(y,x)`.
/// * `IsTrue` is a per-variable prior.
/// * `Aggregate` implements Equation 1 exactly: a head literal, a set of body
///   groundings, and a [`Semantics`] `g`; its energy contribution is
///   `w · sign(head, I) · g(#satisfied groundings)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FactorKind {
    /// Satisfied (energy `w`) iff every literal holds.
    Conjunction(Vec<Lit>),
    /// Satisfied (energy `w`) iff the body implies the head, i.e. body unsat or
    /// head sat — the standard MLN grounding of `head :- body`.
    Imply { body: Vec<Lit>, head: Lit },
    /// Satisfied (energy `w`) iff both variables have the same value.
    Equal(VarId, VarId),
    /// Satisfied (energy `w`) iff the variable is true.
    IsTrue(VarId),
    /// Equation 1: energy `w · sign(head) · g(#satisfied groundings)`.
    Aggregate {
        head: Lit,
        semantics: Semantics,
        groundings: Vec<Vec<Lit>>,
    },
}

/// A factor: a [`FactorKind`] plus a (possibly shared) weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Factor {
    pub weight_id: WeightId,
    pub kind: FactorKind,
}

impl Factor {
    pub fn new(weight_id: WeightId, kind: FactorKind) -> Self {
        Factor { weight_id, kind }
    }

    /// Convenience: a conjunction factor over positive literals.
    pub fn conjunction(weight_id: WeightId, vars: &[VarId]) -> Self {
        Factor::new(
            weight_id,
            FactorKind::Conjunction(vars.iter().map(|&v| Lit::pos(v)).collect()),
        )
    }

    /// Convenience: an implication factor with positive body and head.
    pub fn imply(weight_id: WeightId, body: &[VarId], head: VarId) -> Self {
        Factor::new(
            weight_id,
            FactorKind::Imply {
                body: body.iter().map(|&v| Lit::pos(v)).collect(),
                head: Lit::pos(head),
            },
        )
    }

    /// Convenience: a pairwise equality factor.
    pub fn equal(weight_id: WeightId, a: VarId, b: VarId) -> Self {
        Factor::new(weight_id, FactorKind::Equal(a, b))
    }

    /// Convenience: a prior factor on a single variable.
    pub fn is_true(weight_id: WeightId, v: VarId) -> Self {
        Factor::new(weight_id, FactorKind::IsTrue(v))
    }

    /// All variables mentioned by this factor (may contain duplicates for
    /// aggregates whose groundings share variables).
    pub fn variables(&self) -> Vec<VarId> {
        match &self.kind {
            FactorKind::Conjunction(lits) => lits.iter().map(|l| l.var).collect(),
            FactorKind::Imply { body, head } => body
                .iter()
                .map(|l| l.var)
                .chain(std::iter::once(head.var))
                .collect(),
            FactorKind::Equal(a, b) => vec![*a, *b],
            FactorKind::IsTrue(v) => vec![*v],
            FactorKind::Aggregate {
                head, groundings, ..
            } => {
                let mut vars: Vec<VarId> = vec![head.var];
                for g in groundings {
                    vars.extend(g.iter().map(|l| l.var));
                }
                vars
            }
        }
    }

    /// Number of variable slots (arity) of the factor.
    pub fn arity(&self) -> usize {
        self.variables().len()
    }

    /// The *feature value* φ(I) of this factor in `world`, such that the energy
    /// contribution is `weight · φ(I)`.
    pub fn feature_value<W: WorldView + ?Sized>(&self, world: &W) -> f64 {
        match &self.kind {
            FactorKind::Conjunction(lits) => {
                if lits.iter().all(|l| l.holds(world)) {
                    1.0
                } else {
                    0.0
                }
            }
            FactorKind::Imply { body, head } => {
                if !body.iter().all(|l| l.holds(world)) || head.holds(world) {
                    1.0
                } else {
                    0.0
                }
            }
            FactorKind::Equal(a, b) => {
                if world.value(*a) == world.value(*b) {
                    1.0
                } else {
                    0.0
                }
            }
            FactorKind::IsTrue(v) => {
                if world.value(*v) {
                    1.0
                } else {
                    0.0
                }
            }
            FactorKind::Aggregate {
                head,
                semantics,
                groundings,
            } => {
                let n = groundings
                    .iter()
                    .filter(|g| g.iter().all(|l| l.holds(world)))
                    .count();
                let sign = if head.holds(world) { 1.0 } else { -1.0 };
                sign * semantics.g(n)
            }
        }
    }

    /// Energy contribution `weight · φ(I)`.
    pub fn energy<W: WorldView + ?Sized>(&self, world: &W, weight: f64) -> f64 {
        weight * self.feature_value(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    fn world(values: &[bool]) -> World {
        World::from_values(values.to_vec())
    }

    #[test]
    fn literal_polarity() {
        let w = world(&[true, false]);
        assert!(Lit::pos(0).holds(&w));
        assert!(!Lit::pos(1).holds(&w));
        assert!(Lit::neg(1).holds(&w));
        assert!(!Lit::neg(0).holds(&w));
    }

    #[test]
    fn conjunction_energy() {
        let f = Factor::conjunction(0, &[0, 1]);
        assert_eq!(f.feature_value(&world(&[true, true])), 1.0);
        assert_eq!(f.feature_value(&world(&[true, false])), 0.0);
        assert_eq!(f.energy(&world(&[true, true]), 2.5), 2.5);
        assert_eq!(f.arity(), 2);
    }

    #[test]
    fn imply_energy() {
        // body -> head : satisfied unless body true and head false
        let f = Factor::imply(0, &[0], 1);
        assert_eq!(f.feature_value(&world(&[false, false])), 1.0);
        assert_eq!(f.feature_value(&world(&[true, false])), 0.0);
        assert_eq!(f.feature_value(&world(&[true, true])), 1.0);
        assert_eq!(f.variables(), vec![0, 1]);
    }

    #[test]
    fn equal_and_prior() {
        let eq = Factor::equal(0, 0, 1);
        assert_eq!(eq.feature_value(&world(&[true, true])), 1.0);
        assert_eq!(eq.feature_value(&world(&[false, false])), 1.0);
        assert_eq!(eq.feature_value(&world(&[true, false])), 0.0);

        let prior = Factor::is_true(0, 1);
        assert_eq!(prior.feature_value(&world(&[false, true])), 1.0);
        assert_eq!(prior.feature_value(&world(&[false, false])), 0.0);
    }

    #[test]
    fn aggregate_counts_groundings_and_applies_sign() {
        // Voting program: q() :- Up(x).  head = var 0, up votes = vars 1, 2, 3.
        let f = Factor::new(
            0,
            FactorKind::Aggregate {
                head: Lit::pos(0),
                semantics: Semantics::Linear,
                groundings: vec![vec![Lit::pos(1)], vec![Lit::pos(2)], vec![Lit::pos(3)]],
            },
        );
        // head true, two up-votes true -> +2
        assert_eq!(f.feature_value(&world(&[true, true, true, false])), 2.0);
        // head false, two up-votes true -> -2
        assert_eq!(f.feature_value(&world(&[false, true, true, false])), -2.0);
        // Logical semantics: indicator
        let f_log = Factor::new(
            0,
            FactorKind::Aggregate {
                head: Lit::pos(0),
                semantics: Semantics::Logical,
                groundings: vec![vec![Lit::pos(1)], vec![Lit::pos(2)]],
            },
        );
        assert_eq!(f_log.feature_value(&world(&[true, true, true, false])), 1.0);
        assert_eq!(
            f_log.feature_value(&world(&[true, false, false, false])),
            0.0
        );
    }

    #[test]
    fn aggregate_variables_include_head_and_groundings() {
        let f = Factor::new(
            0,
            FactorKind::Aggregate {
                head: Lit::pos(5),
                semantics: Semantics::Ratio,
                groundings: vec![vec![Lit::pos(1), Lit::neg(2)], vec![Lit::pos(3)]],
            },
        );
        let vars = f.variables();
        assert!(vars.contains(&5));
        assert!(vars.contains(&1));
        assert!(vars.contains(&2));
        assert!(vars.contains(&3));
    }
}

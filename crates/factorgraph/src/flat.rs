//! The compiled, flat inference representation of a factor graph.
//!
//! [`crate::FactorGraph`] is the *mutable build/delta* representation: grounding
//! appends to it, [`crate::GraphDelta`] mutates it, learning rewrites its
//! weights.  Its layout is pointer-rich (jagged adjacency, per-factor
//! `Vec<Lit>`, `factor → weight_id → weights[w].value` double indirection),
//! which is exactly what a Gibbs sweep — the hot loop behind every figure of
//! the paper — should not be chasing.
//!
//! [`FlatGraph`] is the read-only representation samplers run on, built once
//! per graph version by [`FactorGraph::compile`]:
//!
//! * **CSR adjacency** — `var_offsets`/`var_factors` flatten the
//!   variable→factor index into two contiguous arrays;
//! * **flat factor arena** — every factor's literals live in one shared
//!   `lits` array (aggregate groundings add a shared offsets array), so
//!   evaluating a factor walks contiguous memory;
//! * **pre-resolved weights** — each compiled factor carries its weight
//!   *value*; the sweep never touches the weight table;
//! * **single-pass energy deltas** — [`FlatGraph::energy_delta`] computes each
//!   incident factor's contribution for `v = true` and `v = false` in one
//!   traversal of its literals, instead of two full `local_energy` passes, and
//!   needs only a `&World` (no temporary mutation), which is what the lock-free
//!   parallel sweep requires.
//!
//! After applying a [`crate::GraphDelta`] recompile; after a learning step that
//! only moved weight values, [`FlatGraph::refresh_weights`] updates the cached
//! values in place without rebuilding the topology.

use crate::factor::{FactorId, FactorKind, Lit};
use crate::graph::FactorGraph;
use crate::variable::VarId;
use crate::weight::WeightId;
use crate::world::{World, WorldView};

/// Sentinel "no variable is being flipped" marker for single-world evaluation.
const NO_VAR: usize = usize::MAX;

/// A literal packed into 32 bits: variable id in the high bits, polarity in
/// bit 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedLit(u32);

impl PackedLit {
    #[inline]
    fn new(lit: Lit) -> Self {
        debug_assert!(lit.var < (u32::MAX >> 1) as usize);
        PackedLit(((lit.var as u32) << 1) | lit.positive as u32)
    }

    #[inline]
    pub fn var(self) -> VarId {
        (self.0 >> 1) as VarId
    }

    #[inline]
    pub fn positive(self) -> bool {
        self.0 & 1 == 1
    }

    /// `(holds if flip_var = true, holds if flip_var = false)` in `world`,
    /// where the value of `flip_var` is overridden rather than read.
    #[inline]
    fn holds_pair<W: WorldView + ?Sized>(self, world: &W, flip_var: VarId) -> (bool, bool) {
        let positive = self.positive();
        if self.var() == flip_var {
            (positive, !positive)
        } else {
            let holds = world.value(self.var()) == positive;
            (holds, holds)
        }
    }
}

/// Range into the shared literal arena.
#[derive(Debug, Clone, Copy)]
struct LitRange {
    start: u32,
    end: u32,
}

/// Compiled factor function, with all literal storage externalized to the
/// arenas of the owning [`FlatGraph`].
#[derive(Debug, Clone, Copy)]
enum FlatKind {
    /// Satisfied iff every literal in the range holds.
    Conjunction(LitRange),
    /// Satisfied iff some body literal fails or the head holds.
    Imply { body: LitRange, head: PackedLit },
    /// Satisfied iff both variables have the same value.
    Equal(u32, u32),
    /// Satisfied iff the variable is true.
    IsTrue(u32),
    /// Equation 1: `sign(head) · g(#satisfied groundings)`.  Grounding `j`
    /// (for `j < num_groundings`) has literals
    /// `grounding_offsets[offsets_start + j] .. grounding_offsets[offsets_start + j + 1]`;
    /// `g` is pre-tabulated as `g_table[g_start + n]` for `n ≤ num_groundings`
    /// (the satisfied-grounding count is bounded by the grounding count, so the
    /// sweep never evaluates the semantics function — for Ratio semantics that
    /// removes an `ln` call per factor evaluation).
    Aggregate {
        head: PackedLit,
        g_start: u32,
        offsets_start: u32,
        num_groundings: u32,
    },
}

/// A compiled factor: its function plus the pre-resolved weight value.
#[derive(Debug, Clone)]
struct FlatFactor {
    /// Cached `weights[weight_id].value` — refreshed by
    /// [`FlatGraph::refresh_weights`].
    weight: f64,
    weight_id: u32,
    kind: FlatKind,
}

/// The compiled flat factor graph.  See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct FlatGraph {
    num_vars: usize,
    /// CSR: factors incident to `v` are
    /// `var_factors[var_offsets[v] .. var_offsets[v + 1]]`.
    var_offsets: Vec<u32>,
    var_factors: Vec<u32>,
    factors: Vec<FlatFactor>,
    /// Shared literal arena for conjunction/implication bodies and aggregate
    /// groundings.
    lits: Vec<PackedLit>,
    /// Shared grounding-boundary arena for aggregate factors.
    grounding_offsets: Vec<u32>,
    /// Pre-tabulated semantics values `g(n)` for aggregate factors.
    g_table: Vec<f64>,
    /// Weight values by id (the learning gradient is indexed by weight id).
    weights: Vec<f64>,
    /// Query (non-evidence) variables in id order.
    query_vars: Vec<VarId>,
    /// Evidence flags by variable id.
    evidence: Vec<bool>,
    /// Evidence/initial assignment.
    initial: World,
    /// Constant-folded Gibbs conditionals: `static_p_true[v]` is
    /// `σ(energy_delta(v, ·))` when every factor incident to `v` mentions no
    /// other variable (so the conditional is world-independent), `NaN`
    /// otherwise.  KBC feature graphs are dominated by such
    /// logistic-regression-shaped variables (paper Example 2.6), and for them
    /// the sweep reduces to one cached-probability coin flip.
    static_p_true: Vec<f64>,
}

impl FactorGraph {
    /// Compile this graph into the flat representation the samplers run on.
    ///
    /// Compilation is cheap (microseconds for typical KBC graphs) and the
    /// result is immutable except for [`FlatGraph::refresh_weights`], so one
    /// compilation can be shared by many samplers:
    ///
    /// ```
    /// use dd_factorgraph::{Factor, FactorGraphBuilder};
    ///
    /// let mut b = FactorGraphBuilder::new();
    /// let vs = b.add_query_variables(2);
    /// let w = b.tied_weight("couple", 0.7, false);
    /// b.add_factor(Factor::equal(w, vs[0], vs[1]));
    /// let graph = b.build();
    ///
    /// let flat = graph.compile();
    /// assert_eq!(flat.num_variables(), 2);
    /// assert_eq!(flat.query_variables(), &[vs[0], vs[1]]);
    /// // The flat energy delta agrees with the build-side reference
    /// // implementation (which needs scratch mutation) for every variable.
    /// let mut world = flat.initial_world();
    /// for v in 0..2 {
    ///     assert_eq!(flat.energy_delta(v, &world), graph.energy_delta(v, &mut world));
    /// }
    /// ```
    pub fn compile(&self) -> FlatGraph {
        FlatGraph::compile(self)
    }
}

impl FlatGraph {
    /// Build the flat representation from a [`FactorGraph`].
    pub fn compile(graph: &FactorGraph) -> Self {
        let num_vars = graph.num_variables();

        // CSR adjacency straight from the build-side index.
        let mut var_offsets = Vec::with_capacity(num_vars + 1);
        let mut var_factors = Vec::new();
        var_offsets.push(0u32);
        for v in 0..num_vars {
            let incident = graph.factors_of(v);
            var_factors.extend(incident.iter().map(|&f| f as u32));
            var_offsets.push(var_factors.len() as u32);
        }

        // Flatten factors into the arenas, resolving weight values.
        let mut factors = Vec::with_capacity(graph.num_factors());
        let mut lits: Vec<PackedLit> = Vec::new();
        let mut grounding_offsets: Vec<u32> = Vec::new();
        let mut g_table: Vec<f64> = Vec::new();
        for factor in graph.factors() {
            let kind = match &factor.kind {
                FactorKind::Conjunction(body) => FlatKind::Conjunction(push_lits(&mut lits, body)),
                FactorKind::Imply { body, head } => FlatKind::Imply {
                    body: push_lits(&mut lits, body),
                    head: PackedLit::new(*head),
                },
                FactorKind::Equal(a, b) => FlatKind::Equal(*a as u32, *b as u32),
                FactorKind::IsTrue(v) => FlatKind::IsTrue(*v as u32),
                FactorKind::Aggregate {
                    head,
                    semantics,
                    groundings,
                } => {
                    let offsets_start = grounding_offsets.len() as u32;
                    grounding_offsets.push(lits.len() as u32);
                    for grounding in groundings {
                        lits.extend(grounding.iter().copied().map(PackedLit::new));
                        grounding_offsets.push(lits.len() as u32);
                    }
                    let g_start = g_table.len() as u32;
                    g_table.extend((0..=groundings.len()).map(|n| semantics.g(n)));
                    FlatKind::Aggregate {
                        head: PackedLit::new(*head),
                        g_start,
                        offsets_start,
                        num_groundings: groundings.len() as u32,
                    }
                }
            };
            factors.push(FlatFactor {
                weight: graph.weight(factor.weight_id).value,
                weight_id: factor.weight_id as u32,
                kind,
            });
        }

        let mut flat = FlatGraph {
            num_vars,
            var_offsets,
            var_factors,
            factors,
            lits,
            grounding_offsets,
            g_table,
            weights: graph.weight_values(),
            query_vars: graph.query_variables(),
            evidence: graph.variables().iter().map(|v| v.is_evidence()).collect(),
            initial: graph.initial_world(),
            static_p_true: Vec::new(),
        };
        flat.static_p_true = (0..num_vars)
            .map(|v| {
                if flat
                    .factors_of(v)
                    .iter()
                    .all(|&f| flat.factor_touches_only(f as usize, v))
                {
                    sigmoid(flat.energy_delta(v, &flat.initial))
                } else {
                    f64::NAN
                }
            })
            .collect();
        flat
    }

    /// Re-resolve cached weight values from `graph` without rebuilding the
    /// topology.  Valid only when `graph` has the same factors/weights as the
    /// one this was compiled from (the learning loop's situation).
    pub fn refresh_weights(&mut self, graph: &FactorGraph) {
        assert_eq!(graph.num_weights(), self.weights.len(), "topology changed");
        assert_eq!(graph.num_factors(), self.factors.len(), "topology changed");
        for (slot, w) in self.weights.iter_mut().zip(graph.weights()) {
            *slot = w.value;
        }
        for factor in &mut self.factors {
            factor.weight = self.weights[factor.weight_id as usize];
        }
        // Re-fold the constant conditionals under the new weights.  Which
        // variables are static depends only on topology, which is unchanged.
        for v in 0..self.num_vars {
            if !self.static_p_true[v].is_nan() {
                self.static_p_true[v] = sigmoid(self.energy_delta(v, &self.initial));
            }
        }
    }

    // ------------------------------------------------------------------ sizes

    pub fn num_variables(&self) -> usize {
        self.num_vars
    }

    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    pub fn num_weights(&self) -> usize {
        self.weights.len()
    }

    // ------------------------------------------------------------- variables

    /// Query (non-evidence) variables in id order.
    pub fn query_variables(&self) -> &[VarId] {
        &self.query_vars
    }

    /// True if `v` is an evidence variable.
    pub fn is_evidence(&self, v: VarId) -> bool {
        self.evidence[v]
    }

    /// The evidence/initial assignment the samplers start from.
    pub fn initial_world(&self) -> World {
        self.initial.clone()
    }

    /// Factor ids incident to `v` (CSR row).
    pub fn factors_of(&self, v: VarId) -> &[u32] {
        let start = self.var_offsets[v] as usize;
        let end = self.var_offsets[v + 1] as usize;
        &self.var_factors[start..end]
    }

    // -------------------------------------------------------------- energies

    /// The energy difference `W(I[v←true]) − W(I[v←false])` over the factors
    /// adjacent to `v`, each evaluated in a single pass.  The Gibbs conditional
    /// is `P(v = true | rest) = σ(energy_delta)`.
    ///
    /// Unlike [`FactorGraph::energy_delta`] this never mutates the world, so
    /// it works directly against shared/atomic world views.
    pub fn energy_delta<W: WorldView + ?Sized>(&self, v: VarId, world: &W) -> f64 {
        let mut delta = 0.0;
        for &f in self.factors_of(v) {
            let factor = &self.factors[f as usize];
            let (phi_true, phi_false) = self.feature_pair(factor, v, world);
            if phi_true != phi_false {
                delta += factor.weight * (phi_true - phi_false);
            }
        }
        delta
    }

    /// The Gibbs conditional `P(v = true | rest of world) = σ(energy_delta)`.
    ///
    /// For variables whose conditional was constant-folded at compile time
    /// this is a single table read — no factor traversal, no `exp`.
    #[inline]
    pub fn conditional_p_true<W: WorldView + ?Sized>(&self, v: VarId, world: &W) -> f64 {
        let cached = self.static_p_true[v];
        if !cached.is_nan() {
            cached
        } else {
            sigmoid(self.energy_delta(v, world))
        }
    }

    /// True if factor `f` mentions no variable other than `v`.
    fn factor_touches_only(&self, f: FactorId, v: VarId) -> bool {
        let only = |range: LitRange| {
            self.lits[range.start as usize..range.end as usize]
                .iter()
                .all(|lit| lit.var() == v)
        };
        match self.factors[f].kind {
            FlatKind::Conjunction(range) => only(range),
            FlatKind::Imply { body, head } => only(body) && head.var() == v,
            FlatKind::Equal(a, b) => a as usize == v && b as usize == v,
            FlatKind::IsTrue(u) => u as usize == v,
            FlatKind::Aggregate {
                head,
                offsets_start,
                num_groundings,
                ..
            } => {
                let offsets = &self.grounding_offsets[offsets_start as usize..]
                    [..num_groundings as usize + 1];
                head.var() == v
                    && only(LitRange {
                        start: offsets[0],
                        end: offsets[num_groundings as usize],
                    })
            }
        }
    }

    /// Total log-weight `W(F, I)` of a world.
    pub fn log_weight<W: WorldView + ?Sized>(&self, world: &W) -> f64 {
        self.factors
            .iter()
            .map(|factor| factor.weight * self.feature_pair(factor, NO_VAR, world).0)
            .sum()
    }

    /// Feature value φ(I) of factor `f` in `world`.
    pub fn feature_value<W: WorldView + ?Sized>(&self, f: FactorId, world: &W) -> f64 {
        self.feature_pair(&self.factors[f], NO_VAR, world).0
    }

    /// Weight id of factor `f` (needed by the learning gradient).
    pub fn weight_id_of(&self, f: FactorId) -> WeightId {
        self.factors[f].weight_id as WeightId
    }

    /// Add every factor's feature value to `totals[weight_id]` — one flat pass
    /// producing the sufficient statistic of the learning gradient.
    pub fn accumulate_feature_counts<W: WorldView + ?Sized>(&self, world: &W, totals: &mut [f64]) {
        for factor in &self.factors {
            let phi = self.feature_pair(factor, NO_VAR, world).0;
            if phi != 0.0 {
                totals[factor.weight_id as usize] += phi;
            }
        }
    }

    /// `(φ(I[flip_var←true]), φ(I[flip_var←false]))` for one factor, computed
    /// in a single traversal of its literals.  With `flip_var == NO_VAR` both
    /// components equal φ(I).
    #[inline]
    fn feature_pair<W: WorldView + ?Sized>(
        &self,
        factor: &FlatFactor,
        flip_var: VarId,
        world: &W,
    ) -> (f64, f64) {
        match factor.kind {
            FlatKind::Conjunction(range) => {
                let (t, f) = self.conjunction_pair(range, flip_var, world);
                (t as u8 as f64, f as u8 as f64)
            }
            FlatKind::Imply { body, head } => {
                let (body_t, body_f) = self.conjunction_pair(body, flip_var, world);
                let (head_t, head_f) = head.holds_pair(world, flip_var);
                (
                    (!body_t || head_t) as u8 as f64,
                    (!body_f || head_f) as u8 as f64,
                )
            }
            FlatKind::Equal(a, b) => {
                let (a_t, a_f) = value_pair(world, a as usize, flip_var);
                let (b_t, b_f) = value_pair(world, b as usize, flip_var);
                ((a_t == b_t) as u8 as f64, (a_f == b_f) as u8 as f64)
            }
            FlatKind::IsTrue(v) => {
                let (t, f) = value_pair(world, v as usize, flip_var);
                (t as u8 as f64, f as u8 as f64)
            }
            FlatKind::Aggregate {
                head,
                g_start,
                offsets_start,
                num_groundings,
            } => {
                let mut n_true = 0usize;
                let mut n_false = 0usize;
                let offsets = &self.grounding_offsets[offsets_start as usize..]
                    [..num_groundings as usize + 1];
                for j in 0..num_groundings as usize {
                    let range = LitRange {
                        start: offsets[j],
                        end: offsets[j + 1],
                    };
                    let (sat_t, sat_f) = self.conjunction_pair(range, flip_var, world);
                    n_true += sat_t as usize;
                    n_false += sat_f as usize;
                }
                let (head_t, head_f) = head.holds_pair(world, flip_var);
                let sign = |holds: bool| if holds { 1.0 } else { -1.0 };
                let g = &self.g_table[g_start as usize..][..num_groundings as usize + 1];
                (sign(head_t) * g[n_true], sign(head_f) * g[n_false])
            }
        }
    }

    /// Whether all literals in `range` hold, under both values of `flip_var`.
    #[inline]
    fn conjunction_pair<W: WorldView + ?Sized>(
        &self,
        range: LitRange,
        flip_var: VarId,
        world: &W,
    ) -> (bool, bool) {
        let mut sat_true = true;
        let mut sat_false = true;
        for &lit in &self.lits[range.start as usize..range.end as usize] {
            let (t, f) = lit.holds_pair(world, flip_var);
            sat_true &= t;
            sat_false &= f;
            if !sat_true && !sat_false {
                break;
            }
        }
        (sat_true, sat_false)
    }
}

/// Numerically stable logistic function (kept private here; `dd-inference`
/// exposes its own copy for the non-compiled code paths).
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `(value if flip_var = true, value if flip_var = false)` of variable `x`.
#[inline]
fn value_pair<W: WorldView + ?Sized>(world: &W, x: VarId, flip_var: VarId) -> (bool, bool) {
    if x == flip_var {
        (true, false)
    } else {
        let b = world.value(x);
        (b, b)
    }
}

fn push_lits(arena: &mut Vec<PackedLit>, body: &[Lit]) -> LitRange {
    let start = arena.len() as u32;
    arena.extend(body.iter().copied().map(PackedLit::new));
    LitRange {
        start,
        end: arena.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{Factor, FactorKind, Lit};
    use crate::graph::FactorGraphBuilder;
    use crate::semantics::Semantics;

    /// A graph exercising every factor kind.
    fn zoo() -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(5);
        let e = b.add_evidence_variable(true);
        let w1 = b.tied_weight("w1", 0.7, false);
        let w2 = b.tied_weight("w2", -1.3, false);
        let w3 = b.tied_weight("w3", 2.0, false);
        b.add_factor(Factor::is_true(w1, vs[0]));
        b.add_factor(Factor::equal(w2, vs[0], vs[1]));
        b.add_factor(Factor::conjunction(w3, &[vs[1], vs[2], e]));
        b.add_factor(Factor::imply(w1, &[vs[2], vs[3]], vs[4]));
        b.add_factor(Factor::new(
            w2,
            FactorKind::Aggregate {
                head: Lit::pos(vs[4]),
                semantics: Semantics::Ratio,
                groundings: vec![
                    vec![Lit::pos(vs[0]), Lit::neg(vs[3])],
                    vec![Lit::pos(vs[2])],
                    vec![Lit::neg(vs[1]), Lit::pos(e)],
                ],
            },
        ));
        b.build()
    }

    fn worlds_to_try(n: usize) -> Vec<World> {
        // A spread of assignments, not exhaustive for big n.
        (0..1usize << n)
            .step_by(1)
            .map(|mask| World::from_words(vec![mask as u64], n))
            .collect()
    }

    #[test]
    fn log_weight_matches_factor_graph_on_all_worlds() {
        let g = zoo();
        let flat = g.compile();
        for world in worlds_to_try(g.num_variables()) {
            let dense = g.log_weight(&world);
            let packed = flat.log_weight(&world);
            assert!(
                (dense - packed).abs() < 1e-12,
                "world {:?}: {dense} vs {packed}",
                world.to_vec()
            );
        }
    }

    #[test]
    fn energy_delta_matches_factor_graph_for_every_variable_and_world() {
        let g = zoo();
        let flat = g.compile();
        for world in worlds_to_try(g.num_variables()) {
            for v in 0..g.num_variables() {
                let mut scratch = world.clone();
                let legacy = g.energy_delta(v, &mut scratch);
                let fast = flat.energy_delta(v, &world);
                assert!(
                    (legacy - fast).abs() < 1e-9,
                    "var {v} world {:?}: legacy {legacy} vs flat {fast}",
                    world.to_vec()
                );
            }
        }
    }

    #[test]
    fn energy_delta_does_not_mutate_the_world() {
        let g = zoo();
        let flat = g.compile();
        let world = g.initial_world();
        let before = world.clone();
        let _ = flat.energy_delta(0, &world);
        assert_eq!(world, before);
    }

    #[test]
    fn feature_values_and_weight_ids_match() {
        let g = zoo();
        let flat = g.compile();
        let world = World::from_values(vec![true, false, true, true, false, true]);
        for (f, factor) in g.factors().iter().enumerate() {
            assert_eq!(flat.weight_id_of(f), factor.weight_id);
            assert!((flat.feature_value(f, &world) - factor.feature_value(&world)).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulate_feature_counts_matches_per_factor_sum() {
        let g = zoo();
        let flat = g.compile();
        let world = World::from_values(vec![true, true, false, true, true, true]);
        let mut totals = vec![0.0; g.num_weights()];
        flat.accumulate_feature_counts(&world, &mut totals);
        let mut expected = vec![0.0; g.num_weights()];
        for factor in g.factors() {
            expected[factor.weight_id] += factor.feature_value(&world);
        }
        for (a, b) in totals.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn csr_adjacency_matches_jagged_adjacency() {
        let g = zoo();
        let flat = g.compile();
        for v in 0..g.num_variables() {
            let csr: Vec<usize> = flat.factors_of(v).iter().map(|&f| f as usize).collect();
            assert_eq!(csr, g.factors_of(v).to_vec(), "adjacency of {v}");
        }
    }

    #[test]
    fn refresh_weights_tracks_learning_updates() {
        let g = zoo();
        let mut g2 = g.clone();
        let mut flat = g.compile();
        g2.set_weight_value(0, 5.5);
        g2.set_weight_value(2, -0.25);
        flat.refresh_weights(&g2);
        let world = g.initial_world();
        assert!((flat.log_weight(&world) - g2.log_weight(&world)).abs() < 1e-12);
        for v in 0..g.num_variables() {
            let mut scratch = world.clone();
            assert!((flat.energy_delta(v, &world) - g2.energy_delta(v, &mut scratch)).abs() < 1e-9);
        }
    }

    #[test]
    fn conditional_p_true_matches_sigmoid_of_energy_delta() {
        let g = zoo();
        let flat = g.compile();
        for world in worlds_to_try(g.num_variables()) {
            for v in 0..g.num_variables() {
                let expected = sigmoid(flat.energy_delta(v, &world));
                let got = flat.conditional_p_true(v, &world);
                assert!(
                    (expected - got).abs() < 1e-15,
                    "var {v}: {expected} vs {got}"
                );
            }
        }
    }

    #[test]
    fn prior_only_variables_get_constant_folded_conditionals() {
        // A logistic-regression-shaped graph: every conditional is static.
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(3);
        let w = b.tied_weight("w", 1.5, false);
        for &v in &vs {
            b.add_factor(Factor::is_true(w, v));
        }
        let mut g = b.build();
        let mut flat = g.compile();
        let expected = sigmoid(1.5);
        let world = flat.initial_world();
        for &v in &vs {
            assert!((flat.conditional_p_true(v, &world) - expected).abs() < 1e-15);
        }
        // Folding must track weight updates through refresh_weights.
        g.set_weight_value(0, -2.0);
        flat.refresh_weights(&g);
        let expected = sigmoid(-2.0);
        for &v in &vs {
            assert!((flat.conditional_p_true(v, &world) - expected).abs() < 1e-15);
        }
    }

    #[test]
    fn coupled_variables_are_not_constant_folded() {
        // v0 -- v1 equality: both conditionals depend on the other's value.
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(2);
        let w = b.tied_weight("eq", 2.0, false);
        b.add_factor(Factor::equal(w, vs[0], vs[1]));
        let g = b.build();
        let flat = g.compile();
        let mut world = flat.initial_world();
        let p_with_false = flat.conditional_p_true(0, &world);
        world.set(1, true);
        let p_with_true = flat.conditional_p_true(0, &world);
        assert!((p_with_false - sigmoid(-2.0)).abs() < 1e-15);
        assert!((p_with_true - sigmoid(2.0)).abs() < 1e-15);
    }

    #[test]
    fn query_and_evidence_metadata_survive_compilation() {
        let g = zoo();
        let flat = g.compile();
        assert_eq!(flat.query_variables(), g.query_variables().as_slice());
        assert_eq!(flat.num_variables(), g.num_variables());
        assert_eq!(flat.num_factors(), g.num_factors());
        assert_eq!(flat.num_weights(), g.num_weights());
        assert!(flat.is_evidence(5));
        assert!(!flat.is_evidence(0));
        assert_eq!(flat.initial_world(), g.initial_world());
    }
}

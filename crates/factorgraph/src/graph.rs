//! The factor graph: variables, weights, factors, and adjacency.

use crate::delta::GraphDelta;
use crate::factor::{Factor, FactorId};
use crate::variable::{VarId, Variable, VariableRole};
use crate::weight::{Weight, WeightId};
use crate::world::{World, WorldView};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary statistics of a factor graph (used by Figure 7 and the optimizer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    pub num_variables: usize,
    pub num_query_variables: usize,
    pub num_evidence_variables: usize,
    pub num_factors: usize,
    pub num_weights: usize,
    /// Fraction of weights with non-zero value — the "sparsity of correlations"
    /// axis of the tradeoff study (§3.2.4).
    pub weight_density: f64,
    /// Average number of factors incident to a variable.
    pub avg_degree: f64,
}

/// A factor graph `(V, F, w)` (paper §2.5).
///
/// This is the *mutable build/delta* representation: grounding appends to it
/// and learning rewrites its weights.  Samplers run on the compiled
/// [`crate::FlatGraph`] produced by [`FactorGraph::compile`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FactorGraph {
    variables: Vec<Variable>,
    factors: Vec<Factor>,
    weights: Vec<Weight>,
    /// Jagged adjacency: `adjacency[v]` lists the factors touching variable v.
    /// (The samplers use the true-CSR copy inside [`crate::FlatGraph`].)
    adjacency: Vec<Vec<FactorId>>,
    /// `(relation, key) → variable` index maintained by
    /// [`FactorGraph::add_variable`]; on duplicate origins the first variable
    /// wins, matching the scan order [`FactorGraph::find_variable`] used to
    /// have.
    var_index: HashMap<(String, u64), VarId>,
}

impl FactorGraph {
    /// An empty graph.
    pub fn new() -> Self {
        FactorGraph::default()
    }

    // ------------------------------------------------------------------ sizes

    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    pub fn num_weights(&self) -> usize {
        self.weights.len()
    }

    // --------------------------------------------------------------- building

    /// Add a variable, returning its id.
    pub fn add_variable(&mut self, mut var: Variable) -> VarId {
        let id = self.variables.len();
        var.id = id;
        self.var_index
            .entry((var.relation.clone(), var.key))
            .or_insert(id);
        self.variables.push(var);
        self.adjacency.push(Vec::new());
        id
    }

    /// Add a weight, returning its id.
    pub fn add_weight(&mut self, mut weight: Weight) -> WeightId {
        let id = self.weights.len();
        weight.id = id;
        self.weights.push(weight);
        id
    }

    /// Add a factor, updating adjacency.  Panics if the factor references an
    /// unknown variable or weight (grounding bugs should fail loudly).
    pub fn add_factor(&mut self, factor: Factor) -> FactorId {
        assert!(
            factor.weight_id < self.weights.len(),
            "factor references unknown weight {}",
            factor.weight_id
        );
        let id = self.factors.len();
        let mut vars = factor.variables();
        for &v in &vars {
            assert!(
                v < self.variables.len(),
                "factor references unknown variable {v}"
            );
        }
        // Sort + dedup instead of a quadratic `seen.contains` scan; aggregate
        // factors can mention hundreds of variables.
        vars.sort_unstable();
        vars.dedup();
        for v in vars {
            self.adjacency[v].push(id);
        }
        self.factors.push(factor);
        id
    }

    // --------------------------------------------------------------- accessors

    pub fn variable(&self, v: VarId) -> &Variable {
        &self.variables[v]
    }

    pub fn variable_mut(&mut self, v: VarId) -> &mut Variable {
        &mut self.variables[v]
    }

    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    pub fn factor(&self, f: FactorId) -> &Factor {
        &self.factors[f]
    }

    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    pub fn weight(&self, w: WeightId) -> &Weight {
        &self.weights[w]
    }

    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Current value of the weight attached to a factor.
    pub fn factor_weight_value(&self, f: FactorId) -> f64 {
        self.weights[self.factors[f].weight_id].value
    }

    /// Set a weight's value (used by learning).
    pub fn set_weight_value(&mut self, w: WeightId, value: f64) {
        self.weights[w].value = value;
    }

    /// All weight values as a vector (used by warmstart snapshots).
    pub fn weight_values(&self) -> Vec<f64> {
        self.weights.iter().map(|w| w.value).collect()
    }

    /// Bulk-set weight values from a vector (shorter vectors set a prefix, which
    /// is what warmstart over a grown weight set needs).
    pub fn set_weight_values(&mut self, values: &[f64]) {
        for (w, &v) in self.weights.iter_mut().zip(values.iter()) {
            w.value = v;
        }
    }

    /// Factors adjacent to a variable.
    pub fn factors_of(&self, v: VarId) -> &[FactorId] {
        &self.adjacency[v]
    }

    /// Ids of all query (non-evidence) variables.
    pub fn query_variables(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .filter(|v| !v.is_evidence())
            .map(|v| v.id)
            .collect()
    }

    /// Ids of all evidence variables.
    pub fn evidence_variables(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .filter(|v| v.is_evidence())
            .map(|v| v.id)
            .collect()
    }

    /// Look up a variable id by its `(relation, key)` origin.
    pub fn find_variable(&self, relation: &str, key: u64) -> Option<VarId> {
        self.var_index.get(&(relation.to_string(), key)).copied()
    }

    // ---------------------------------------------------------------- energies

    /// A world respecting evidence and using each variable's initial value for
    /// query variables.
    pub fn initial_world(&self) -> World {
        World::from_values(
            self.variables
                .iter()
                .map(|v| v.fixed_value().unwrap_or(v.initial_value))
                .collect(),
        )
    }

    /// Total log-weight `W(F, I)` of a world (paper Equation before §2.5's `Pr[I]`).
    pub fn log_weight<W: WorldView + ?Sized>(&self, world: &W) -> f64 {
        self.factors
            .iter()
            .map(|f| f.energy(world, self.weights[f.weight_id].value))
            .sum()
    }

    /// Energy of only the factors adjacent to `v`.
    pub fn local_energy<W: WorldView + ?Sized>(&self, v: VarId, world: &W) -> f64 {
        self.adjacency[v]
            .iter()
            .map(|&f| self.factors[f].energy(world, self.weights[self.factors[f].weight_id].value))
            .sum()
    }

    /// The energy difference `W(I[v←true]) − W(I[v←false])`, computed over only
    /// the factors adjacent to `v`.  The Gibbs conditional is
    /// `P(v = true | rest) = σ(energy_delta)`.
    pub fn energy_delta(&self, v: VarId, world: &mut World) -> f64 {
        let old = world.value(v);
        world.set(v, true);
        let e_true = self.local_energy(v, world);
        world.set(v, false);
        let e_false = self.local_energy(v, world);
        world.set(v, old);
        e_true - e_false
    }

    // ------------------------------------------------------------------- stats

    /// Summary statistics.
    pub fn stats(&self) -> GraphStats {
        let num_evidence = self.variables.iter().filter(|v| v.is_evidence()).count();
        let nonzero_weights = self
            .weights
            .iter()
            .filter(|w| w.value.abs() > 1e-12)
            .count();
        let degree_sum: usize = self.adjacency.iter().map(|a| a.len()).sum();
        GraphStats {
            num_variables: self.variables.len(),
            num_query_variables: self.variables.len() - num_evidence,
            num_evidence_variables: num_evidence,
            num_factors: self.factors.len(),
            num_weights: self.weights.len(),
            weight_density: if self.weights.is_empty() {
                0.0
            } else {
                nonzero_weights as f64 / self.weights.len() as f64
            },
            avg_degree: if self.variables.is_empty() {
                0.0
            } else {
                degree_sum as f64 / self.variables.len() as f64
            },
        }
    }

    /// Connected components over *query* variables, where two variables are
    /// connected if they share a factor.  Evidence variables do not connect
    /// components (conditioning on evidence separates them), which is exactly the
    /// decomposition property Appendix B.1 exploits.
    pub fn query_components(&self) -> Vec<Vec<VarId>> {
        self.components_excluding(&|v| self.variables[v].is_evidence())
    }

    /// Connected components of the variables for which `excluded(v)` is false,
    /// treating excluded variables as removed from the graph.
    pub fn components_excluding(&self, excluded: &dyn Fn(VarId) -> bool) -> Vec<Vec<VarId>> {
        let n = self.variables.len();
        let mut comp = vec![usize::MAX; n];
        let mut components = Vec::new();
        for start in 0..n {
            if excluded(start) || comp[start] != usize::MAX {
                continue;
            }
            let cid = components.len();
            let mut stack = vec![start];
            let mut members = Vec::new();
            comp[start] = cid;
            while let Some(v) = stack.pop() {
                members.push(v);
                for &f in &self.adjacency[v] {
                    for u in self.factors[f].variables() {
                        if u < n && !excluded(u) && comp[u] == usize::MAX {
                            comp[u] = cid;
                            stack.push(u);
                        }
                    }
                }
            }
            members.sort_unstable();
            components.push(members);
        }
        components
    }

    // -------------------------------------------------------------- retraction

    /// Remove a factor, keeping the factor store dense via `swap_remove`.
    ///
    /// The factor is detached from its variables' adjacency lists.  If another
    /// factor occupied the last slot, it is moved into the freed id and every
    /// adjacency entry pointing at its old id is patched (lists stay sorted).
    /// Returns the *previous* id of the moved factor (`Some(old_last)`), or
    /// `None` if the removed factor was itself last — callers that track
    /// factors by id (the grounder, delta replay) use this to follow the move.
    pub fn remove_factor(&mut self, f: FactorId) -> Option<FactorId> {
        assert!(f < self.factors.len(), "remove_factor: unknown factor {f}");
        let mut vars = self.factors[f].variables();
        vars.sort_unstable();
        vars.dedup();
        for v in vars {
            self.adjacency[v].retain(|&g| g != f);
        }
        let last = self.factors.len() - 1;
        self.factors.swap_remove(f);
        if f == last {
            return None;
        }
        // The factor formerly at `last` now lives at `f`: patch adjacency.
        let mut moved_vars = self.factors[f].variables();
        moved_vars.sort_unstable();
        moved_vars.dedup();
        for v in moved_vars {
            for g in self.adjacency[v].iter_mut() {
                if *g == last {
                    *g = f;
                }
            }
            self.adjacency[v].sort_unstable();
        }
        Some(last)
    }

    /// Remove a variable with no incident factors, keeping the variable store
    /// dense via `swap_remove`.  Panics if factors still touch it — detach them
    /// with [`FactorGraph::remove_factor`] first (retraction bugs fail loudly).
    ///
    /// If another variable occupied the last slot it is moved into the freed
    /// id; its `id` field, its factors' literal references, and the
    /// `(relation, key)` index are all patched.  Returns the moved variable's
    /// previous id (`Some(old_last)`), or `None` if the removed variable was
    /// last.
    pub fn remove_variable(&mut self, v: VarId) -> Option<VarId> {
        assert!(
            v < self.variables.len(),
            "remove_variable: unknown variable {v}"
        );
        assert!(
            self.adjacency[v].is_empty(),
            "remove_variable: variable {v} still has incident factors"
        );
        let origin = (self.variables[v].relation.clone(), self.variables[v].key);
        if self.var_index.get(&origin) == Some(&v) {
            self.var_index.remove(&origin);
        }
        let last = self.variables.len() - 1;
        self.variables.swap_remove(v);
        self.adjacency.swap_remove(v);
        if v == last {
            return None;
        }
        // The variable formerly at `last` now lives at `v`.
        self.variables[v].id = v;
        let moved_origin = (self.variables[v].relation.clone(), self.variables[v].key);
        if let Some(e) = self.var_index.get_mut(&moved_origin) {
            if *e == last {
                *e = v;
            }
        }
        let adj: Vec<FactorId> = self.adjacency[v].clone();
        for f in adj {
            crate::delta::remap_factor_vars(&mut self.factors[f], &|slot| {
                if slot == last {
                    v
                } else {
                    slot
                }
            });
        }
        Some(last)
    }

    /// Apply a [`GraphDelta`], returning the ids of the newly created variables
    /// and factors.  See [`GraphDelta::apply`] for the semantics of each change.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> (Vec<VarId>, Vec<FactorId>) {
        delta.apply(self)
    }

    /// Marginal-style helper: exact probability that variable `v` is true,
    /// computed by brute-force enumeration over query variables.  Only usable on
    /// tiny graphs; primarily for tests and the strawman strategy.
    pub fn exact_marginal(&self, v: VarId) -> f64 {
        let query: Vec<VarId> = self.query_variables();
        assert!(
            query.len() <= 24,
            "exact_marginal is exponential; {} query variables is too many",
            query.len()
        );
        let mut world = self.initial_world();
        let mut z = 0.0;
        let mut p_true = 0.0;
        for mask in 0u64..(1u64 << query.len()) {
            for (i, &q) in query.iter().enumerate() {
                world.set(q, (mask >> i) & 1 == 1);
            }
            let w = self.log_weight(&world).exp();
            z += w;
            if world.value(v) {
                p_true += w;
            }
        }
        p_true / z
    }
}

/// Builder for synthetic factor graphs (used heavily by the tradeoff-study
/// workloads and by tests).
#[derive(Debug, Default)]
pub struct FactorGraphBuilder {
    graph: FactorGraph,
    weight_index: HashMap<String, WeightId>,
}

impl FactorGraphBuilder {
    pub fn new() -> Self {
        FactorGraphBuilder::default()
    }

    /// Add `n` fresh query variables, returning their ids.
    pub fn add_query_variables(&mut self, n: usize) -> Vec<VarId> {
        (0..n)
            .map(|_| self.graph.add_variable(Variable::query(0)))
            .collect()
    }

    /// Add an evidence variable fixed to `value`.
    pub fn add_evidence_variable(&mut self, value: bool) -> VarId {
        self.graph.add_variable(Variable::evidence(0, value))
    }

    /// Intern a weight by description, creating it on first use — this is weight
    /// tying: all factors created with the same description share the weight.
    pub fn tied_weight(&mut self, description: &str, initial: f64, fixed: bool) -> WeightId {
        if let Some(&w) = self.weight_index.get(description) {
            return w;
        }
        let weight = if fixed {
            Weight::fixed(0, initial, description)
        } else {
            Weight::learnable(0, initial, description)
        };
        let id = self.graph.add_weight(weight);
        self.weight_index.insert(description.to_string(), id);
        id
    }

    /// Add a factor.
    pub fn add_factor(&mut self, factor: Factor) -> FactorId {
        self.graph.add_factor(factor)
    }

    /// Change a variable's role (e.g. turn a query variable into evidence).
    pub fn set_role(&mut self, v: VarId, role: VariableRole) {
        let var = self.graph.variable_mut(v);
        var.role = role;
        if let Some(val) = role.fixed_value() {
            var.initial_value = val;
        }
    }

    /// Finish building.
    pub fn build(self) -> FactorGraph {
        self.graph
    }

    /// Access the graph under construction.
    pub fn graph(&self) -> &FactorGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{FactorKind, Lit};
    use crate::semantics::Semantics;

    /// Two-variable chain: prior on v0, equality between v0 and v1.
    fn chain() -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(2);
        let w_prior = b.tied_weight("prior", 1.0, false);
        let w_eq = b.tied_weight("eq", 2.0, false);
        b.add_factor(Factor::is_true(w_prior, vs[0]));
        b.add_factor(Factor::equal(w_eq, vs[0], vs[1]));
        b.build()
    }

    #[test]
    fn building_and_adjacency() {
        let g = chain();
        assert_eq!(g.num_variables(), 2);
        assert_eq!(g.num_factors(), 2);
        assert_eq!(g.num_weights(), 2);
        assert_eq!(g.factors_of(0).len(), 2);
        assert_eq!(g.factors_of(1).len(), 1);
    }

    #[test]
    fn weight_tying_interns_by_description() {
        let mut b = FactorGraphBuilder::new();
        let w1 = b.tied_weight("FE1:and his wife", 0.0, false);
        let w2 = b.tied_weight("FE1:and his wife", 0.0, false);
        let w3 = b.tied_weight("FE1:his sister", 0.0, false);
        assert_eq!(w1, w2);
        assert_ne!(w1, w3);
        assert_eq!(b.graph().num_weights(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn adding_factor_with_unknown_variable_panics() {
        let mut g = FactorGraph::new();
        g.add_weight(Weight::learnable(0, 1.0, "w"));
        g.add_factor(Factor::is_true(0, 7));
    }

    #[test]
    fn log_weight_and_energy_delta_agree() {
        let g = chain();
        let mut w = g.initial_world();
        // brute force check of energy_delta for both variables in both worlds
        for v in 0..2 {
            for &val in &[false, true] {
                w.set(1 - v, val);
                let delta = g.energy_delta(v, &mut w);
                w.set(v, true);
                let e1 = g.log_weight(&w);
                w.set(v, false);
                let e0 = g.log_weight(&w);
                assert!((delta - (e1 - e0)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn exact_marginal_of_symmetric_equal_factor() {
        // Only an equality factor: marginal of each variable must be exactly 0.5.
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(2);
        let w = b.tied_weight("eq", 3.0, false);
        b.add_factor(Factor::equal(w, vs[0], vs[1]));
        let g = b.build();
        assert!((g.exact_marginal(0) - 0.5).abs() < 1e-12);
        assert!((g.exact_marginal(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_marginal_with_prior() {
        // Single variable with prior weight w: P(true) = e^w / (e^w + 1).
        let mut b = FactorGraphBuilder::new();
        let v = b.add_query_variables(1)[0];
        let w = b.tied_weight("prior", 1.5, false);
        b.add_factor(Factor::is_true(w, v));
        let g = b.build();
        let expected = (1.5f64).exp() / ((1.5f64).exp() + 1.0);
        assert!((g.exact_marginal(v) - expected).abs() < 1e-12);
    }

    #[test]
    fn evidence_respected_by_initial_world_and_queries() {
        let mut b = FactorGraphBuilder::new();
        let q = b.add_query_variables(1)[0];
        let e_pos = b.add_evidence_variable(true);
        let e_neg = b.add_evidence_variable(false);
        let g = b.build();
        let w = g.initial_world();
        assert!(!w.value(q));
        assert!(w.value(e_pos));
        assert!(!w.value(e_neg));
        assert_eq!(g.query_variables(), vec![q]);
        assert_eq!(g.evidence_variables(), vec![e_pos, e_neg]);
    }

    #[test]
    fn stats_and_density() {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(3);
        let w1 = b.tied_weight("a", 1.0, false);
        let w2 = b.tied_weight("b", 0.0, false);
        b.add_factor(Factor::equal(w1, vs[0], vs[1]));
        b.add_factor(Factor::equal(w2, vs[1], vs[2]));
        let g = b.build();
        let s = g.stats();
        assert_eq!(s.num_variables, 3);
        assert_eq!(s.num_factors, 2);
        assert_eq!(s.num_weights, 2);
        assert!((s.weight_density - 0.5).abs() < 1e-12);
        assert!((s.avg_degree - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn query_components_split_by_evidence() {
        // v0 - e - v1 : conditioning on evidence e separates v0 and v1.
        let mut b = FactorGraphBuilder::new();
        let v0 = b.add_query_variables(1)[0];
        let e = b.add_evidence_variable(true);
        let v1 = b.add_query_variables(1)[0];
        let w = b.tied_weight("w", 1.0, false);
        b.add_factor(Factor::equal(w, v0, e));
        b.add_factor(Factor::equal(w, e, v1));
        let g = b.build();
        let comps = g.query_components();
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&vec![v0]));
        assert!(comps.contains(&vec![v1]));
    }

    #[test]
    fn find_variable_by_origin() {
        let mut g = FactorGraph::new();
        g.add_variable(Variable::query(0).with_origin("MarriedMentions", 7));
        g.add_variable(Variable::query(0).with_origin("MarriedMentions", 8));
        assert_eq!(g.find_variable("MarriedMentions", 8), Some(1));
        assert_eq!(g.find_variable("MarriedMentions", 9), None);
        assert_eq!(g.find_variable("Other", 7), None);
    }

    #[test]
    fn aggregate_factor_in_graph_energy() {
        // Voting: q with 2 up votes (evidence true) under Ratio semantics.
        let mut b = FactorGraphBuilder::new();
        let q = b.add_query_variables(1)[0];
        let u1 = b.add_evidence_variable(true);
        let u2 = b.add_evidence_variable(true);
        let w = b.tied_weight("vote", 1.0, false);
        b.add_factor(Factor::new(
            w,
            FactorKind::Aggregate {
                head: Lit::pos(q),
                semantics: Semantics::Ratio,
                groundings: vec![vec![Lit::pos(u1)], vec![Lit::pos(u2)]],
            },
        ));
        let g = b.build();
        let expected_w = (3.0f64).ln();
        let p = g.exact_marginal(q);
        let expected = (expected_w).exp() / ((expected_w).exp() + (-expected_w).exp());
        assert!((p - expected).abs() < 1e-9);
    }

    #[test]
    fn remove_factor_compacts_and_patches_adjacency() {
        // f0: is_true(v0), f1: equal(v0, v1), f2: is_true(v1)
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(2);
        let w = b.tied_weight("w", 1.0, false);
        b.add_factor(Factor::is_true(w, vs[0]));
        b.add_factor(Factor::equal(w, vs[0], vs[1]));
        b.add_factor(Factor::is_true(w, vs[1]));
        let mut g = b.build();

        // Removing f0 moves f2 into slot 0.
        assert_eq!(g.remove_factor(0), Some(2));
        assert_eq!(g.num_factors(), 2);
        assert!(matches!(g.factor(0).kind, FactorKind::IsTrue(1)));
        assert_eq!(g.factors_of(0), &[1]);
        assert_eq!(g.factors_of(1), &[0, 1]);

        // Removing the last factor moves nothing.
        assert_eq!(g.remove_factor(1), None);
        assert_eq!(g.num_factors(), 1);
        assert_eq!(g.factors_of(0), &[] as &[FactorId]);
        assert_eq!(g.factors_of(1), &[0]);
    }

    #[test]
    fn remove_variable_compacts_and_remaps_moved_factors() {
        let mut g = FactorGraph::new();
        let v0 = g.add_variable(Variable::query(0).with_origin("R", 0));
        let v1 = g.add_variable(Variable::query(0).with_origin("R", 1));
        let v2 = g.add_variable(Variable::query(0).with_origin("S", 0));
        let w = g.add_weight(Weight::learnable(0, 1.0, "w"));
        let f = g.add_factor(Factor::equal(w, v1, v2));

        // v0 is isolated; removing it moves v2 into slot 0.
        assert_eq!(g.remove_variable(v0), Some(2));
        assert_eq!(g.num_variables(), 2);
        assert_eq!(g.variable(0).relation, "S");
        assert_eq!(g.variable(0).id, 0);
        assert_eq!(g.find_variable("S", 0), Some(0));
        assert_eq!(g.find_variable("R", 0), None);
        assert_eq!(g.find_variable("R", 1), Some(1));
        // The factor's reference to old id 2 was remapped to 0.
        let mut vars = g.factor(f).variables();
        vars.sort_unstable();
        assert_eq!(vars, vec![0, 1]);
        assert_eq!(g.factors_of(0), &[f]);
        assert_eq!(g.factors_of(1), &[f]);
    }

    #[test]
    #[should_panic(expected = "still has incident factors")]
    fn remove_variable_with_factors_panics() {
        let mut g = chain();
        g.remove_variable(0);
    }

    #[test]
    fn remove_then_rebuild_matches_fresh_graph_energy() {
        // Retract a factor+variable, then check energies equal a graph never
        // containing them (same remaining structure, possibly different ids).
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(3);
        let w = b.tied_weight("w", 0.8, false);
        b.add_factor(Factor::is_true(w, vs[0]));
        b.add_factor(Factor::equal(w, vs[1], vs[2]));
        let mut g = b.build();
        g.remove_factor(0);
        g.remove_variable(0);

        let mut b2 = FactorGraphBuilder::new();
        let us = b2.add_query_variables(2);
        let w2 = b2.tied_weight("w", 0.8, false);
        b2.add_factor(Factor::equal(w2, us[0], us[1]));
        let fresh = b2.build();

        assert_eq!(g.num_variables(), fresh.num_variables());
        assert_eq!(g.num_factors(), fresh.num_factors());
        for v in 0..g.num_variables() {
            assert!((g.exact_marginal(v) - 0.5).abs() < 1e-12);
        }
        assert!((fresh.exact_marginal(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weight_value_roundtrip() {
        let mut g = chain();
        assert_eq!(g.weight_values(), vec![1.0, 2.0]);
        g.set_weight_value(0, -1.0);
        assert_eq!(g.weight(0).value, -1.0);
        g.set_weight_values(&[5.0]);
        assert_eq!(g.weight_values(), vec![5.0, 2.0]);
    }
}

//! # dd-factorgraph — factor graphs with DeepDive's rule semantics
//!
//! DeepDive's grounding phase turns a declarative program plus a database into a
//! *factor graph*: every tuple of the user schema becomes a Boolean random
//! variable, and every grounding of an inference rule becomes a factor over the
//! variables it mentions (paper §2.4–2.5).  This crate holds that data structure
//! and everything the samplers need from it:
//!
//! * [`Variable`]s, which are query variables or (positive/negative) evidence,
//!   and may be flagged *inactive* for the decomposition optimization of
//!   Appendix B.1;
//! * [`Weight`]s, shared ("tied") across factors as in rule `FE1` of the paper;
//! * [`Factor`]s of several kinds — conjunctions, implications, equality, and the
//!   per-rule *aggregate* factor that implements Equation 1 with the
//!   [`Semantics`] function `g` (Linear / Ratio / Logical, Figure 4);
//! * the [`FactorGraph`] itself with a variable→factor adjacency index, world
//!   evaluation, per-variable energy deltas (the quantity Gibbs sampling needs),
//!   and graph statistics;
//! * [`FlatGraph`] — the compiled, read-only representation the samplers run
//!   on: CSR adjacency, flat literal arenas, pre-resolved weight values, and
//!   single-pass energy deltas (see the [`flat`] module docs);
//! * [`GraphDelta`] — the (ΔV, ΔF) object produced by incremental grounding and
//!   consumed by incremental inference (paper §3.2).

pub mod delta;
pub mod factor;
pub mod flat;
pub mod graph;
pub mod semantics;
pub mod variable;
pub mod weight;
pub mod world;

pub use delta::{DeltaFactor, EvidenceChange, GraphDelta, NewVarRef, NewWeightRef, WeightChange};
pub use factor::{Factor, FactorId, FactorKind, Lit};
pub use flat::FlatGraph;
pub use graph::{FactorGraph, FactorGraphBuilder, GraphStats};
pub use semantics::Semantics;
pub use variable::{VarId, Variable, VariableRole};
pub use weight::{Weight, WeightId};
pub use world::{World, WorldView};

//! The transformation-group function `g` of Equation 1 (paper Figure 4).
//!
//! DeepDive extends Markov Logic with *implication semantics*: the weight a rule
//! contributes to a possible world is `w · sign(γ, I) · g(n(γ, I))`, where `n` is
//! the number of satisfied groundings.  Three choices of `g` are supported:
//!
//! | semantics | g(n)        | behaviour                                        |
//! |-----------|-------------|--------------------------------------------------|
//! | Linear    | `n`         | raw counts matter (classic MLN behaviour)         |
//! | Ratio     | `log(1+n)`  | vote *ratios* matter, robust to large raw counts  |
//! | Logical   | `1{n>0}`    | existence matters, strength of evidence ignored   |
//!
//! Example 2.5 (the Voting program) and Appendix A show that the choice changes
//! both output probabilities and Gibbs-sampling mixing time; Figure 10(b) shows
//! it changes end-to-end KBC quality by up to 10 % F1.

use serde::{Deserialize, Serialize};

/// The three rule semantics supported by DeepDive (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Semantics {
    /// `g(n) = n`
    Linear,
    /// `g(n) = log(1 + n)`
    #[default]
    Ratio,
    /// `g(n) = 1 if n > 0 else 0`
    Logical,
}

impl Semantics {
    /// Evaluate `g(n)`.
    pub fn g(self, n: usize) -> f64 {
        match self {
            Semantics::Linear => n as f64,
            Semantics::Ratio => (1.0 + n as f64).ln(),
            Semantics::Logical => {
                if n > 0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// All three semantics, in the order used by Figure 10(b).
    pub fn all() -> [Semantics; 3] {
        [Semantics::Linear, Semantics::Logical, Semantics::Ratio]
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Semantics::Linear => "Linear",
            Semantics::Ratio => "Ratio",
            Semantics::Logical => "Logical",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_identity_on_counts() {
        for n in 0..10 {
            assert_eq!(Semantics::Linear.g(n), n as f64);
        }
    }

    #[test]
    fn ratio_is_log1p() {
        assert_eq!(Semantics::Ratio.g(0), 0.0);
        assert!((Semantics::Ratio.g(1) - (2.0f64).ln()).abs() < 1e-12);
        assert!((Semantics::Ratio.g(9) - (10.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn logical_is_indicator() {
        assert_eq!(Semantics::Logical.g(0), 0.0);
        assert_eq!(Semantics::Logical.g(1), 1.0);
        assert_eq!(Semantics::Logical.g(1_000_000), 1.0);
    }

    #[test]
    fn monotonicity() {
        for s in Semantics::all() {
            for n in 0..20 {
                assert!(s.g(n + 1) >= s.g(n), "{s:?} not monotone at {n}");
            }
        }
    }

    /// Example 2.5: with |Up| = 10^6 and |Down| = 10^6 - 100, Linear semantics
    /// drives the probability of q to ~1 while Ratio keeps it near 0.5.
    #[test]
    fn voting_example_from_paper() {
        let up = 1_000_000usize;
        let down = up - 100;
        let prob = |s: Semantics| {
            let w = s.g(up) - s.g(down);
            (w).exp() / ((-w).exp() + w.exp())
        };
        assert!(prob(Semantics::Linear) > 0.999);
        assert!((prob(Semantics::Ratio) - 0.5).abs() < 0.01);
        assert!((prob(Semantics::Logical) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(Semantics::Linear.label(), "Linear");
        assert_eq!(Semantics::Ratio.label(), "Ratio");
        assert_eq!(Semantics::Logical.label(), "Logical");
    }
}

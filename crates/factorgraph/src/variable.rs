//! Boolean random variables of the factor graph.

use serde::{Deserialize, Serialize};

/// Index of a variable in its [`crate::FactorGraph`].
pub type VarId = usize;

/// Whether a variable is part of the evidence or is to be inferred.
///
/// Paper §2.4: "V has two parts: a set E of evidence variables (those fixed to a
/// specific value) and a set Q of query variables whose value the system will
/// infer", with evidence further split into positive and negative evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VariableRole {
    /// Value is inferred by sampling.
    Query,
    /// Fixed to `true` (positive evidence).
    PositiveEvidence,
    /// Fixed to `false` (negative evidence).
    NegativeEvidence,
}

impl VariableRole {
    /// The fixed value, if this role is evidence.
    pub fn fixed_value(self) -> Option<bool> {
        match self {
            VariableRole::Query => None,
            VariableRole::PositiveEvidence => Some(true),
            VariableRole::NegativeEvidence => Some(false),
        }
    }

    /// True if the variable is evidence of either polarity.
    pub fn is_evidence(self) -> bool {
        !matches!(self, VariableRole::Query)
    }
}

/// A Boolean random variable.
///
/// In the KBC setting each variable corresponds to one tuple of the user schema
/// (e.g. one `MarriedMentions(m1, m2)` candidate).  The `relation`/`key` pair is
/// carried along so marginal probabilities can be written back to the right
/// tuples after inference, and so incremental grounding can find the variable for
/// a changed tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    pub id: VarId,
    pub role: VariableRole,
    /// Initial value used when a sampler needs a starting world.
    pub initial_value: bool,
    /// Whether the variable is *active* for the next development iteration
    /// (Appendix B.1).  Inactive variables may be grouped and marginalized during
    /// materialization.
    pub active: bool,
    /// Name of the user relation this variable's tuple belongs to (may be empty
    /// for synthetic graphs).
    pub relation: String,
    /// Opaque key identifying the tuple within its relation.
    pub key: u64,
}

impl Variable {
    /// A fresh query variable.
    pub fn query(id: VarId) -> Self {
        Variable {
            id,
            role: VariableRole::Query,
            initial_value: false,
            active: true,
            relation: String::new(),
            key: id as u64,
        }
    }

    /// A fresh evidence variable fixed to `value`.
    pub fn evidence(id: VarId, value: bool) -> Self {
        Variable {
            id,
            role: if value {
                VariableRole::PositiveEvidence
            } else {
                VariableRole::NegativeEvidence
            },
            initial_value: value,
            active: true,
            relation: String::new(),
            key: id as u64,
        }
    }

    /// Attach a relation name and key (builder style).
    pub fn with_origin(mut self, relation: impl Into<String>, key: u64) -> Self {
        self.relation = relation.into();
        self.key = key;
        self
    }

    /// Mark the variable inactive (builder style).
    pub fn inactive(mut self) -> Self {
        self.active = false;
        self
    }

    /// True if the variable is evidence.
    pub fn is_evidence(&self) -> bool {
        self.role.is_evidence()
    }

    /// The value the variable is fixed to, if evidence.
    pub fn fixed_value(&self) -> Option<bool> {
        self.role.fixed_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles() {
        assert_eq!(VariableRole::Query.fixed_value(), None);
        assert_eq!(VariableRole::PositiveEvidence.fixed_value(), Some(true));
        assert_eq!(VariableRole::NegativeEvidence.fixed_value(), Some(false));
        assert!(!VariableRole::Query.is_evidence());
        assert!(VariableRole::PositiveEvidence.is_evidence());
    }

    #[test]
    fn constructors() {
        let q = Variable::query(3);
        assert_eq!(q.id, 3);
        assert!(!q.is_evidence());
        assert!(q.active);

        let e = Variable::evidence(4, true);
        assert!(e.is_evidence());
        assert_eq!(e.fixed_value(), Some(true));
        assert!(e.initial_value);

        let n = Variable::evidence(5, false);
        assert_eq!(n.fixed_value(), Some(false));
    }

    #[test]
    fn builders() {
        let v = Variable::query(0)
            .with_origin("MarriedMentions", 42)
            .inactive();
        assert_eq!(v.relation, "MarriedMentions");
        assert_eq!(v.key, 42);
        assert!(!v.active);
    }
}

//! Tied, learnable factor weights.

use serde::{Deserialize, Serialize};

/// Index of a weight in its [`crate::FactorGraph`].
pub type WeightId = usize;

/// A factor weight.
///
/// Weight *tying* (paper §2.3) means many factors share one weight: the rule
/// `MarriedMentions(m1,m2) :- … weight = phrase(m1,m2,sent)` creates one weight
/// per distinct phrase, shared by every mention pair exhibiting that phrase.  The
/// `description` carries the tying key (e.g. `"FE1:and his wife"`) so learned
/// weights can be inspected during error analysis and reused across program
/// snapshots (warmstart, Appendix B.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weight {
    pub id: WeightId,
    /// Current value (log-linear weight).
    pub value: f64,
    /// Fixed weights are not updated by learning (e.g. hard supervision priors).
    pub fixed: bool,
    /// Human-readable tying key, `"<rule>:<feature>"`.
    pub description: String,
}

impl Weight {
    /// A learnable weight starting at `value`.
    pub fn learnable(id: WeightId, value: f64, description: impl Into<String>) -> Self {
        Weight {
            id,
            value,
            fixed: false,
            description: description.into(),
        }
    }

    /// A fixed weight (never updated by learning).
    pub fn fixed(id: WeightId, value: f64, description: impl Into<String>) -> Self {
        Weight {
            id,
            value,
            fixed: true,
            description: description.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let w = Weight::learnable(0, 0.5, "FE1:and his wife");
        assert!(!w.fixed);
        assert_eq!(w.value, 0.5);
        assert_eq!(w.description, "FE1:and his wife");

        let f = Weight::fixed(1, -2.0, "prior");
        assert!(f.fixed);
        assert_eq!(f.value, -2.0);
    }
}

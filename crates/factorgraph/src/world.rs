//! Possible worlds (assignments of truth values to variables).

use crate::variable::VarId;
use serde::{Deserialize, Serialize};

/// Read-only view of a possible world.
///
/// Both the sequential sampler's [`World`] and the parallel sampler's atomic
/// assignment (in `dd-inference`) implement this, so factor energies can be
/// evaluated against either representation.
pub trait WorldView {
    /// Truth value of variable `v` in this world.
    fn value(&self, v: VarId) -> bool;
}

/// A dense possible world: one bool per variable.
///
/// Paper §2.4: "An assignment to each of the query variables yields a possible
/// world I that must contain all positive evidence variables … and must not
/// contain any negatives."  Evidence handling is done by the samplers, which
/// never flip evidence variables; `World` itself is just the assignment vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct World {
    values: Vec<bool>,
}

impl World {
    /// A world with all variables false.
    pub fn all_false(num_vars: usize) -> Self {
        World {
            values: vec![false; num_vars],
        }
    }

    /// A world from an explicit assignment vector.
    pub fn from_values(values: Vec<bool>) -> Self {
        World { values }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the world has no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Set the value of a variable.
    pub fn set(&mut self, v: VarId, value: bool) {
        self.values[v] = value;
    }

    /// Flip a variable, returning the new value.
    pub fn flip(&mut self, v: VarId) -> bool {
        self.values[v] = !self.values[v];
        self.values[v]
    }

    /// Underlying slice.
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Number of true variables.
    pub fn count_true(&self) -> usize {
        self.values.iter().filter(|&&b| b).count()
    }

    /// Hamming distance to another world of the same length.
    pub fn hamming_distance(&self, other: &World) -> usize {
        self.values
            .iter()
            .zip(other.values.iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Pack the world into bytes (8 variables per byte), the "1 bit per variable"
    /// tuple-bundle storage of the sampling materialization approach (§3.2.2).
    pub fn to_bitvec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.values.len().div_ceil(8)];
        for (i, &b) in self.values.iter().enumerate() {
            if b {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Unpack a bit-packed world.
    pub fn from_bitvec(bits: &[u8], num_vars: usize) -> Self {
        let mut values = vec![false; num_vars];
        for (i, v) in values.iter_mut().enumerate() {
            *v = (bits[i / 8] >> (i % 8)) & 1 == 1;
        }
        World { values }
    }

    /// Enumerate every possible world over `num_vars` variables (2^n of them).
    /// Used by the strawman materialization strategy and by exact-inference tests;
    /// callers must keep `num_vars` small.
    pub fn enumerate(num_vars: usize) -> impl Iterator<Item = World> {
        assert!(
            num_vars < usize::BITS as usize,
            "cannot enumerate worlds over {num_vars} variables"
        );
        (0..(1usize << num_vars)).map(move |mask| {
            World::from_values((0..num_vars).map(|i| (mask >> i) & 1 == 1).collect())
        })
    }
}

impl WorldView for World {
    fn value(&self, v: VarId) -> bool {
        self.values[v]
    }
}

impl WorldView for Vec<bool> {
    fn value(&self, v: VarId) -> bool {
        self[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_mutation() {
        let mut w = World::all_false(4);
        assert_eq!(w.len(), 4);
        assert_eq!(w.count_true(), 0);
        w.set(2, true);
        assert!(w.value(2));
        assert!(!w.value(0));
        assert!(w.flip(0));
        assert!(!w.flip(0));
        assert_eq!(w.count_true(), 1);
    }

    #[test]
    fn hamming_distance() {
        let a = World::from_values(vec![true, false, true]);
        let b = World::from_values(vec![true, true, false]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn bitvec_round_trip() {
        let w = World::from_values((0..37).map(|i| i % 3 == 0).collect());
        let bits = w.to_bitvec();
        assert_eq!(bits.len(), 5);
        let back = World::from_bitvec(&bits, 37);
        assert_eq!(w, back);
    }

    #[test]
    fn bitvec_is_one_bit_per_variable() {
        let w = World::all_false(1024);
        assert_eq!(w.to_bitvec().len(), 128);
    }

    #[test]
    fn enumerate_covers_all_worlds() {
        let worlds: Vec<World> = World::enumerate(3).collect();
        assert_eq!(worlds.len(), 8);
        let distinct: std::collections::HashSet<Vec<bool>> =
            worlds.iter().map(|w| w.values().to_vec()).collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn worldview_for_vec() {
        let v = vec![false, true];
        assert!(!WorldView::value(&v, 0));
        assert!(WorldView::value(&v, 1));
    }
}

//! Possible worlds (assignments of truth values to variables).

use crate::variable::VarId;
use serde::{Deserialize, Serialize};

/// Read-only view of a possible world.
///
/// Both the sequential sampler's [`World`] and the parallel sampler's atomic
/// assignment (in `dd-inference`) implement this, so factor energies can be
/// evaluated against either representation.
pub trait WorldView {
    /// Truth value of variable `v` in this world.
    fn value(&self, v: VarId) -> bool;
}

/// A bit-packed possible world: one bit per variable, stored in `u64` words.
///
/// Paper §2.4: "An assignment to each of the query variables yields a possible
/// world I that must contain all positive evidence variables … and must not
/// contain any negatives."  Evidence handling is done by the samplers, which
/// never flip evidence variables; `World` itself is just the assignment vector.
///
/// The packed layout is the same "1 bit per variable" representation the
/// sampling materialization stores (§3.2.2), which makes `count_true` and
/// `hamming_distance` single popcount passes and lets `to_bitvec` be a
/// reinterpretation instead of a conversion.
///
/// Invariant: bits at positions `>= len` are always zero, so derived equality
/// and hashing over `words` are exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct World {
    words: Vec<u64>,
    len: usize,
}

impl World {
    /// A world with all variables false.
    pub fn all_false(num_vars: usize) -> Self {
        World {
            words: vec![0u64; num_vars.div_ceil(64)],
            len: num_vars,
        }
    }

    /// A world from an explicit assignment vector.
    pub fn from_values(values: Vec<bool>) -> Self {
        let mut world = World::all_false(values.len());
        for (i, &b) in values.iter().enumerate() {
            if b {
                world.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        world
    }

    /// A world from raw words (e.g. a snapshot of the parallel sampler's atomic
    /// assignment).  Trailing bits beyond `num_vars` are cleared.
    pub fn from_words(mut words: Vec<u64>, num_vars: usize) -> Self {
        words.resize(num_vars.div_ceil(64), 0);
        let mut world = World {
            words,
            len: num_vars,
        };
        world.mask_tail();
        world
    }

    /// The underlying 64-variable words (low bit of word 0 is variable 0).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the world has no variables.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set the value of a variable.
    #[inline]
    pub fn set(&mut self, v: VarId, value: bool) {
        assert!(v < self.len, "variable {v} out of bounds ({})", self.len);
        let bit = 1u64 << (v % 64);
        if value {
            self.words[v / 64] |= bit;
        } else {
            self.words[v / 64] &= !bit;
        }
    }

    /// Flip a variable, returning the new value.
    #[inline]
    pub fn flip(&mut self, v: VarId) -> bool {
        assert!(v < self.len, "variable {v} out of bounds ({})", self.len);
        let bit = 1u64 << (v % 64);
        self.words[v / 64] ^= bit;
        self.words[v / 64] & bit != 0
    }

    /// The assignment as a dense vector (boundary/interop use only; the hot
    /// paths stay on the packed words).
    pub fn to_vec(&self) -> Vec<bool> {
        (0..self.len).map(|v| self.value(v)).collect()
    }

    /// Iterate the truth values in variable order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |v| self.value(v))
    }

    /// Number of true variables (popcount over the words).
    pub fn count_true(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another world of the same length (xor + popcount).
    pub fn hamming_distance(&self, other: &World) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Pack the world into bytes (8 variables per byte), the "1 bit per variable"
    /// tuple-bundle storage of the sampling materialization approach (§3.2.2).
    pub fn to_bitvec(&self) -> Vec<u8> {
        self.words
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .take(self.len.div_ceil(8))
            .collect()
    }

    /// Unpack a bit-packed world.
    pub fn from_bitvec(bits: &[u8], num_vars: usize) -> Self {
        let mut world = World::all_false(num_vars);
        for (i, &byte) in bits.iter().enumerate() {
            if byte != 0 {
                world.words[i / 8] |= (byte as u64) << ((i % 8) * 8);
            }
        }
        world.mask_tail();
        world
    }

    /// Enumerate every possible world over `num_vars` variables (2^n of them).
    /// Used by the strawman materialization strategy and by exact-inference tests;
    /// callers must keep `num_vars` small.
    pub fn enumerate(num_vars: usize) -> impl Iterator<Item = World> {
        assert!(
            num_vars < usize::BITS as usize,
            "cannot enumerate worlds over {num_vars} variables"
        );
        (0..(1usize << num_vars)).map(move |mask| World::from_words(vec![mask as u64], num_vars))
    }

    /// Clear any bits at positions `>= len` to preserve the Eq/Hash invariant.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl WorldView for World {
    #[inline]
    fn value(&self, v: VarId) -> bool {
        self.words[v / 64] >> (v % 64) & 1 == 1
    }
}

impl WorldView for Vec<bool> {
    fn value(&self, v: VarId) -> bool {
        self[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_mutation() {
        let mut w = World::all_false(4);
        assert_eq!(w.len(), 4);
        assert_eq!(w.count_true(), 0);
        w.set(2, true);
        assert!(w.value(2));
        assert!(!w.value(0));
        assert!(w.flip(0));
        assert!(!w.flip(0));
        assert_eq!(w.count_true(), 1);
    }

    #[test]
    fn hamming_distance() {
        let a = World::from_values(vec![true, false, true]);
        let b = World::from_values(vec![true, true, false]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn bitvec_round_trip() {
        let w = World::from_values((0..37).map(|i| i % 3 == 0).collect());
        let bits = w.to_bitvec();
        assert_eq!(bits.len(), 5);
        let back = World::from_bitvec(&bits, 37);
        assert_eq!(w, back);
    }

    #[test]
    fn bitvec_is_one_bit_per_variable() {
        let w = World::all_false(1024);
        assert_eq!(w.to_bitvec().len(), 128);
    }

    #[test]
    fn enumerate_covers_all_worlds() {
        let worlds: Vec<World> = World::enumerate(3).collect();
        assert_eq!(worlds.len(), 8);
        let distinct: std::collections::HashSet<Vec<bool>> =
            worlds.iter().map(|w| w.to_vec()).collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn worldview_for_vec() {
        let v = vec![false, true];
        assert!(!WorldView::value(&v, 0));
        assert!(WorldView::value(&v, 1));
    }

    #[test]
    fn words_round_trip_across_boundaries() {
        // 130 variables spans three words; pattern straddles word edges.
        let values: Vec<bool> = (0..130).map(|i| i % 7 == 0 || i == 63 || i == 64).collect();
        let w = World::from_values(values.clone());
        assert_eq!(w.to_vec(), values);
        let back = World::from_words(w.as_words().to_vec(), 130);
        assert_eq!(back, w);
        assert_eq!(w.count_true(), values.iter().filter(|&&b| b).count());
    }

    #[test]
    fn from_words_masks_tail_bits() {
        // Give a word with garbage above bit 2; equality must ignore it.
        let w = World::from_words(vec![0b1111_1111], 3);
        assert_eq!(w.count_true(), 3);
        assert_eq!(w, World::from_values(vec![true, true, true]));
    }

    #[test]
    fn eq_is_content_based_across_representations() {
        let a = World::from_values(vec![true, false, true, false, true]);
        let mut b = World::all_false(5);
        b.set(0, true);
        b.set(2, true);
        b.set(4, true);
        assert_eq!(a, b);
        b.flip(1);
        assert_ne!(a, b);
    }
}

//! The rule AST of the DeepDive language.

use dd_factorgraph::Semantics;
use dd_relstore::view::{Filter, QueryAtom, Term};
use dd_relstore::ConjunctiveQuery;
use serde::{Deserialize, Serialize};

/// The four workload categories the paper's experiments group rules into
/// (Figure 8: A1, FE1/FE2, S1/S2, I1), plus candidate mappings which feed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleKind {
    /// SQL-like ETL producing candidate tuples of a derived relation (rule R1).
    CandidateMapping,
    /// Attaches a tied-weight factor to a variable relation (rules FE1, FE2).
    FeatureExtraction,
    /// Labels variables as positive/negative evidence — distant supervision
    /// (rules S1, S2).
    Supervision,
    /// Adds correlations between variable relations (rule I1).
    Inference,
    /// Error-analysis query: reads marginals, changes nothing (rule A1).
    ErrorAnalysis,
}

impl RuleKind {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            RuleKind::CandidateMapping => "candidate",
            RuleKind::FeatureExtraction => "feature",
            RuleKind::Supervision => "supervision",
            RuleKind::Inference => "inference",
            RuleKind::ErrorAnalysis => "analysis",
        }
    }
}

/// One atom of a rule (head or body).
pub type RuleAtom = QueryAtom;

/// How the weight of a rule's factors is determined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WeightSpec {
    /// A fixed (non-learnable) weight, e.g. hard constraints.
    Fixed(f64),
    /// One learnable weight shared by every grounding of the rule (classic MLN).
    Learnable { initial: f64 },
    /// Weight tying through a UDF: `weight = udf(arg_vars…)`.  Every grounding
    /// whose UDF output matches shares one learnable weight (paper §2.3).
    Tied { udf: String, args: Vec<String> },
    /// Supervision rules label variables instead of weighting factors; the bool
    /// is the label polarity.
    Label(bool),
    /// Error-analysis rules carry no weight at all.
    None,
}

/// A DeepDive rule: `head :- body [filters] weight = … (kind, semantics)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Rule name (e.g. "FE1"); used for weight descriptions and reporting.
    pub name: String,
    pub kind: RuleKind,
    /// The head atom.  Its relation is a derived relation (candidate mappings) or
    /// a variable relation (feature extraction / supervision / inference).
    pub head: RuleAtom,
    /// Body atoms.
    pub body: Vec<RuleAtom>,
    /// Comparison filters over bound variables.
    pub filters: Vec<Filter>,
    pub weight: WeightSpec,
    /// The semantics `g` used when groundings of this rule are aggregated
    /// (paper Figure 4); only meaningful for weighted rules.
    pub semantics: Semantics,
}

impl Rule {
    /// Create a rule with default (Ratio) semantics and no filters.
    pub fn new(
        name: impl Into<String>,
        kind: RuleKind,
        head: RuleAtom,
        body: Vec<RuleAtom>,
        weight: WeightSpec,
    ) -> Self {
        Rule {
            name: name.into(),
            kind,
            head,
            body,
            filters: Vec::new(),
            weight,
            semantics: Semantics::default(),
        }
    }

    /// Builder: add filters.
    pub fn with_filters(mut self, filters: Vec<Filter>) -> Self {
        self.filters = filters;
        self
    }

    /// Builder: set the semantics.
    pub fn with_semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Variables appearing in the head atom.
    pub fn head_vars(&self) -> Vec<String> {
        self.head
            .terms
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(v.clone()),
                Term::Const(_) => None,
            })
            .collect()
    }

    /// Variables appearing anywhere in the body.
    pub fn body_vars(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for atom in &self.body {
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
            }
        }
        out
    }

    /// All variables needed to evaluate this rule's body query: the head
    /// variables plus any variables the weight UDF needs.
    pub fn projection_vars(&self) -> Vec<String> {
        let mut vars = self.head_vars();
        if let WeightSpec::Tied { args, .. } = &self.weight {
            for a in args {
                if !vars.contains(a) {
                    vars.push(a.clone());
                }
            }
        }
        vars
    }

    /// The body as a [`ConjunctiveQuery`] projecting onto [`Self::projection_vars`].
    pub fn body_query(&self) -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            format!("{}::body", self.name),
            self.projection_vars(),
            self.body.clone(),
        )
        .with_filters(self.filters.clone())
    }

    /// The relations read by the body.
    pub fn body_relations(&self) -> Vec<&str> {
        self.body.iter().map(|a| a.relation.as_str()).collect()
    }

    /// A rule is *hierarchical* (Definition A.3) if its head has no variables or
    /// there is a single variable shared by every body atom.
    pub fn is_hierarchical(&self) -> bool {
        let head_vars = self.head_vars();
        if head_vars.is_empty() {
            return true;
        }
        head_vars.iter().any(|hv| {
            self.body.iter().all(|atom| {
                atom.terms
                    .iter()
                    .any(|t| matches!(t, Term::Var(v) if v == hv))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_relstore::view::Term;

    fn atom(rel: &str, vars: &[&str]) -> RuleAtom {
        RuleAtom::new(rel, vars.iter().map(|v| Term::var(*v)).collect())
    }

    /// R1 from the paper: MarriedCandidate(m1,m2) :- PersonCandidate(s,m1), PersonCandidate(s,m2).
    fn r1() -> Rule {
        Rule::new(
            "R1",
            RuleKind::CandidateMapping,
            atom("MarriedCandidate", &["m1", "m2"]),
            vec![
                atom("PersonCandidate", &["s", "m1"]),
                atom("PersonCandidate", &["s", "m2"]),
            ],
            WeightSpec::None,
        )
    }

    /// FE1: MarriedMentions(m1,m2) :- MarriedCandidate(m1,m2), Sentence(s,sent)
    ///       weight = phrase(m1, m2, sent).
    fn fe1() -> Rule {
        Rule::new(
            "FE1",
            RuleKind::FeatureExtraction,
            atom("MarriedMentions", &["m1", "m2"]),
            vec![
                atom("MarriedCandidate", &["m1", "m2"]),
                atom("Sentence", &["s", "sent"]),
            ],
            WeightSpec::Tied {
                udf: "phrase".into(),
                args: vec!["m1".into(), "m2".into(), "sent".into()],
            },
        )
    }

    #[test]
    fn head_and_body_vars() {
        let r = r1();
        assert_eq!(r.head_vars(), vec!["m1", "m2"]);
        assert_eq!(r.body_vars(), vec!["s", "m1", "m2"]);
        assert_eq!(
            r.body_relations(),
            vec!["PersonCandidate", "PersonCandidate"]
        );
    }

    #[test]
    fn projection_includes_udf_args() {
        let r = fe1();
        let vars = r.projection_vars();
        assert!(vars.contains(&"m1".to_string()));
        assert!(vars.contains(&"m2".to_string()));
        assert!(vars.contains(&"sent".to_string()));
        let q = r.body_query();
        assert_eq!(q.head_vars, vars);
        assert_eq!(q.atoms.len(), 2);
    }

    #[test]
    fn hierarchical_check() {
        // r1 is not hierarchical: no single variable appears in both body atoms
        // *and* the head… actually `m1` is in the head and only in the first atom,
        // while `s` spans both atoms but is not needed; per Definition A.3 we need
        // one head variable present in every body atom, which fails here.
        assert!(!r1().is_hierarchical());

        // A classifier rule Class(x) :- R(x, f) is hierarchical.
        let classifier = Rule::new(
            "C",
            RuleKind::FeatureExtraction,
            atom("Class", &["x"]),
            vec![atom("R", &["x", "f"])],
            WeightSpec::Tied {
                udf: "identity".into(),
                args: vec!["f".into()],
            },
        );
        assert!(classifier.is_hierarchical());

        // A boolean rule q() :- Up(x) is trivially hierarchical.
        let voting = Rule::new(
            "V",
            RuleKind::Inference,
            RuleAtom::new("q", vec![]),
            vec![atom("Up", &["x"])],
            WeightSpec::Learnable { initial: 1.0 },
        );
        assert!(voting.is_hierarchical());
    }

    #[test]
    fn builders_and_labels() {
        let r = r1()
            .with_filters(vec![Filter::Lt("m1".into(), "m2".into())])
            .with_semantics(Semantics::Logical);
        assert_eq!(r.filters.len(), 1);
        assert_eq!(r.semantics, Semantics::Logical);
        assert_eq!(RuleKind::FeatureExtraction.label(), "feature");
        assert_eq!(RuleKind::ErrorAnalysis.label(), "analysis");
    }
}

//! Typed errors for program validation and grounding.
//!
//! Grounding can fail for two reasons: the program itself is ill-formed
//! ([`ProgramError`]) or a rule evaluation hit the relational substrate with a
//! malformed query ([`dd_relstore::RelError`]).  [`GroundingError`] wraps both
//! with a `source()` chain so callers (the engine, examples, tests) can match
//! on the failure class instead of parsing strings.

use crate::ast::RuleKind;
use crate::program::RelationRole;
use dd_relstore::RelError;
use std::fmt;

/// A structural problem with a DeepDive program, detected by
/// [`crate::Program::validate`] before any rule is evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A rule heads into a relation that was never declared.
    UndeclaredHead { rule: String, relation: String },
    /// A rule body reads a relation that was never declared.
    UndeclaredBody { rule: String, relation: String },
    /// A weighted or supervision rule heads into a non-variable relation.
    NonVariableHead {
        rule: String,
        kind: RuleKind,
        relation: String,
        role: RelationRole,
    },
    /// A candidate-mapping rule writes into a base relation.
    CandidateHeadIsBase { rule: String, relation: String },
    /// The candidate-mapping rules have a cyclic dependency and cannot be
    /// stratified.
    CyclicCandidateRules,
    /// A rule was referenced by name (e.g. by persisted state) but does not
    /// exist in the program.
    UnknownRule { rule: String },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UndeclaredHead { rule, relation } => {
                write!(f, "rule `{rule}` heads into undeclared relation `{relation}`")
            }
            ProgramError::UndeclaredBody { rule, relation } => {
                write!(f, "rule `{rule}` reads undeclared relation `{relation}`")
            }
            ProgramError::NonVariableHead {
                rule,
                kind,
                relation,
                role,
            } => write!(
                f,
                "rule `{rule}` ({kind:?}) must head into a variable relation, but `{relation}` is {role:?}"
            ),
            ProgramError::CandidateHeadIsBase { rule, relation } => {
                write!(f, "candidate rule `{rule}` cannot write into base relation `{relation}`")
            }
            ProgramError::CyclicCandidateRules => {
                write!(f, "candidate-mapping rules are cyclic and cannot be stratified")
            }
            ProgramError::UnknownRule { rule } => {
                write!(f, "no rule named `{rule}` exists in the program")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// Any failure raised by the grounding layer.
#[derive(Debug, Clone, PartialEq)]
pub enum GroundingError {
    /// The program failed structural validation.
    Program(ProgramError),
    /// A rule evaluation failed inside the relational substrate.
    Relational(RelError),
    /// A retraction could not be applied incrementally: the update implies
    /// removing a grounding the grounder has no record of, or drives a
    /// binding's derivation support negative (deleting tuples that were never
    /// inserted).  A deletion is never silently dropped — it either retracts
    /// cleanly or surfaces here.
    Retraction { rule: String, detail: String },
}

impl fmt::Display for GroundingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundingError::Program(e) => write!(f, "invalid program: {e}"),
            GroundingError::Relational(e) => write!(f, "rule evaluation failed: {e}"),
            GroundingError::Retraction { rule, detail } => {
                write!(f, "cannot retract grounding of rule `{rule}`: {detail}")
            }
        }
    }
}

impl std::error::Error for GroundingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GroundingError::Program(e) => Some(e),
            GroundingError::Relational(e) => Some(e),
            GroundingError::Retraction { .. } => None,
        }
    }
}

impl From<ProgramError> for GroundingError {
    fn from(e: ProgramError) -> Self {
        GroundingError::Program(e)
    }
}

impl From<RelError> for GroundingError {
    fn from(e: RelError) -> Self {
        GroundingError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_rule_and_relation() {
        let e = ProgramError::UndeclaredBody {
            rule: "FE1".into(),
            relation: "Nowhere".into(),
        };
        assert!(e.to_string().contains("FE1"));
        assert!(e.to_string().contains("Nowhere"));
    }

    #[test]
    fn source_chain_reaches_the_relational_error() {
        use std::error::Error;
        let e = GroundingError::from(RelError::NoSuchTable("Mentions".into()));
        let source = e.source().expect("has a source");
        assert!(source.to_string().contains("Mentions"));
    }

    #[test]
    fn program_errors_convert() {
        let e: GroundingError = ProgramError::CyclicCandidateRules.into();
        assert!(matches!(
            e,
            GroundingError::Program(ProgramError::CyclicCandidateRules)
        ));
    }
}

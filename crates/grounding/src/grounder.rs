//! Full grounding: program + database → factor graph.
//!
//! "Grounding: … one evaluates a sequence of SQL queries to produce a data
//! structure called a factor graph … Essentially, every tuple in the database or
//! result of a query is a random variable (node) in this factor graph" (§1,
//! Figure 3).  The [`Grounder`] owns the database, the catalogs mapping tuples to
//! variables and tying keys to weights, and the factor graph it produces; the
//! incremental grounder in [`crate::incremental`] updates all of them in place.

use crate::ast::{Rule, RuleKind, WeightSpec};
use crate::error::{GroundingError, ProgramError};
use crate::program::{Program, RelationRole};
use crate::udf::UdfRegistry;
use dd_factorgraph::{
    EvidenceChange, Factor, FactorGraph, FactorId, FactorKind, Lit, Semantics, VarId, Variable,
    VariableRole, Weight, WeightId,
};
use dd_relstore::view::Term;
use dd_relstore::{Database, MaterializedView, RelError, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Summary of one grounding run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundingResult {
    pub num_variables: usize,
    pub num_factors: usize,
    pub num_weights: usize,
    pub num_evidence: usize,
    /// Per-rule number of groundings produced.
    pub groundings_per_rule: HashMap<String, usize>,
}

/// One operation against a relation's published catalog shard.  The grounder
/// emits these in chronological order; the publisher nets them per tuple
/// (last op wins) and re-indexes only the relations that appear — the same
/// O(Δ) contract the grow-only dirty-set had, extended with removals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogOp {
    /// The tuple maps to this variable id (new variable, or an existing
    /// variable whose id moved during compaction).
    Upsert(Tuple, VarId),
    /// The tuple's variable was retracted.
    Remove(Tuple),
}

/// Book-keeping for one grounded binding of a weighted or supervision rule.
///
/// `support` counts the binding's derivations in the rule's body query —
/// the Z-set multiplicity.  Positive deltas raise it, negative deltas lower
/// it; at zero the grounding's artifacts (factor or label) are retracted.
/// Driving it below zero is a typed [`GroundingError::Retraction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundingRecord {
    pub support: i64,
    /// The factor this grounding created (weighted rules).  Kept current
    /// across `swap_remove` compaction moves.
    pub factor: Option<FactorId>,
    /// The label this grounding contributed (supervision rules); `None` when
    /// the head's supervision is suppressed by `retract_supervision`.
    pub label: Option<bool>,
}

/// Per-variable usage counters, keyed by the stable `(relation, tuple)`
/// identity (never by `VarId`, which moves under compaction).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VarUse {
    /// Grounding records referencing the variable (head or body).
    pub refs: i64,
    /// Grounding records whose *head* is this variable.
    pub head_refs: i64,
    /// Positive supervision labels currently attached.
    pub pos_labels: i64,
    /// Negative supervision labels currently attached.
    pub neg_labels: i64,
}

impl VarUse {
    /// The role the label counts imply: negative evidence dominates positive
    /// (a deliberate, order-independent policy — last-writer-wins would make
    /// incremental and from-scratch grounding diverge on conflicting labels).
    pub fn role(&self) -> VariableRole {
        if self.neg_labels > 0 {
            VariableRole::NegativeEvidence
        } else if self.pos_labels > 0 {
            VariableRole::PositiveEvidence
        } else {
            VariableRole::Query
        }
    }
}

/// The grounding engine.
pub struct Grounder {
    pub(crate) program: Program,
    pub(crate) db: Database,
    pub(crate) udfs: UdfRegistry,
    pub(crate) graph: FactorGraph,
    /// (relation, tuple) → variable id.
    pub(crate) var_catalog: HashMap<(String, Tuple), VarId>,
    /// Catalog ops recorded since the last [`Grounder::take_catalog_delta`]
    /// drain, grouped per relation — the dirty-set a sharded snapshot publish
    /// consumes to re-index only the relations that actually changed.
    pub(crate) fresh_catalog: BTreeMap<String, Vec<CatalogOp>>,
    /// weight description → weight id, covering only weights with at least one
    /// referencing factor.  Orphaned weight slots stay in the graph (learned
    /// weight vectors are indexed by `WeightId`) but leave the catalog.
    pub(crate) weight_catalog: HashMap<String, WeightId>,
    /// rule name → grounded body-query bindings with their support records.
    /// `BTreeMap` so retraction sweeps are deterministic per seed.
    pub(crate) grounded_bindings: HashMap<String, BTreeMap<Tuple, GroundingRecord>>,
    /// Per-variable reference/label counters, keyed by stable identity.
    pub(crate) var_use: HashMap<(String, Tuple), VarUse>,
    /// factor id → (rule, binding) that owns it, kept current across
    /// compaction moves; the inverse of `GroundingRecord::factor`.
    pub(crate) factor_owners: HashMap<FactorId, (String, Tuple)>,
    /// weight id → number of referencing factors.
    pub(crate) weight_use: HashMap<WeightId, i64>,
    /// Heads whose supervision labels are suppressed (sticky): existing labels
    /// were un-pinned and future labels are recorded but not applied.
    pub(crate) suppressed_labels: BTreeSet<(String, Tuple)>,
    /// Monotonic origin-key counter for new variables.  Never reused after a
    /// removal, so `(relation, key)` origins stay unique for the graph's
    /// lifetime (a catalog-length counter would collide after shrinkage).
    pub(crate) next_var_key: u64,
    /// Materialized views for candidate-mapping rules (incremental maintenance).
    pub(crate) candidate_views: HashMap<String, MaterializedView>,
}

impl Grounder {
    /// Create a grounder over a program, database, and UDF registry.  Declared
    /// relations missing from the database are created empty.
    pub fn new(
        program: Program,
        mut db: Database,
        udfs: UdfRegistry,
    ) -> Result<Self, GroundingError> {
        program.validate()?;
        program.create_schema(&mut db);
        Ok(Grounder {
            program,
            db,
            udfs,
            graph: FactorGraph::new(),
            var_catalog: HashMap::new(),
            fresh_catalog: BTreeMap::new(),
            weight_catalog: HashMap::new(),
            grounded_bindings: HashMap::new(),
            var_use: HashMap::new(),
            factor_owners: HashMap::new(),
            weight_use: HashMap::new(),
            suppressed_labels: BTreeSet::new(),
            next_var_key: 0,
            candidate_views: HashMap::new(),
        })
    }

    // ---------------------------------------------------------------- accessors

    /// The current factor graph.
    pub fn graph(&self) -> &FactorGraph {
        &self.graph
    }

    /// Mutable access to the factor graph (the engine's learner needs it).
    pub fn graph_mut(&mut self) -> &mut FactorGraph {
        &mut self.graph
    }

    /// The database (post-grounding it also holds derived candidate tuples).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (used to load base data before grounding).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The UDF registry.
    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// Variable id of a tuple, if it has one.
    pub fn variable_for(&self, relation: &str, tuple: &Tuple) -> Option<VarId> {
        self.var_catalog
            .get(&(relation.to_string(), tuple.clone()))
            .copied()
    }

    /// Iterate over the `(relation, tuple) → variable` catalog.
    pub fn variable_catalog(&self) -> impl Iterator<Item = (&(String, Tuple), &VarId)> {
        self.var_catalog.iter()
    }

    /// Number of entries in the `(relation, tuple) → variable` catalog.
    pub fn num_catalogued_variables(&self) -> usize {
        self.var_catalog.len()
    }

    /// Drain the catalog ops recorded since the last drain, grouped by
    /// relation in sorted order.  The keys are exactly the relations a
    /// publisher must re-index — every other relation's index is unchanged —
    /// which is what makes snapshot publication O(Δ) instead of O(catalog).
    /// Ops within a relation are chronological; netting them per tuple
    /// (last op wins) yields the upserts and removals to apply.
    pub fn take_catalog_delta(&mut self) -> BTreeMap<String, Vec<CatalogOp>> {
        std::mem::take(&mut self.fresh_catalog)
    }

    /// Weight id for a tying key, if it has at least one live factor.
    pub fn weight_for(&self, description: &str) -> Option<WeightId> {
        self.weight_catalog.get(description).copied()
    }

    /// Number of distinct bindings grounded for a rule so far.
    pub fn groundings_of(&self, rule: &str) -> usize {
        self.grounded_bindings
            .get(rule)
            .map(|s| s.len())
            .unwrap_or(0)
    }

    /// The support record of one grounded binding, if any.
    pub fn grounding_record(&self, rule: &str, binding: &Tuple) -> Option<&GroundingRecord> {
        self.grounded_bindings.get(rule)?.get(binding)
    }

    /// True if supervision labels on this head are suppressed.
    pub fn is_supervision_suppressed(&self, relation: &str, tuple: &Tuple) -> bool {
        self.suppressed_labels
            .contains(&(relation.to_string(), tuple.clone()))
    }

    // ---------------------------------------------------------------- grounding

    /// Ground the whole program from scratch.
    pub fn ground(&mut self) -> Result<GroundingResult, GroundingError> {
        // Phase 1: candidate mappings in stratified order.
        let ordered: Vec<Rule> = self
            .program
            .stratified_candidate_rules()
            .ok_or(ProgramError::CyclicCandidateRules)?
            .into_iter()
            .cloned()
            .collect();
        for rule in &ordered {
            self.evaluate_candidate_rule(rule)?;
        }

        // Phase 2: weighted and supervision rules.
        let rules: Vec<Rule> = self
            .program
            .rules
            .iter()
            .filter(|r| {
                matches!(
                    r.kind,
                    RuleKind::FeatureExtraction | RuleKind::Inference | RuleKind::Supervision
                )
            })
            .cloned()
            .collect();
        for rule in &rules {
            self.ground_rule(rule)?;
        }

        Ok(self.result())
    }

    /// Ground a single rule (weighted or supervision) over the current database,
    /// skipping bindings already grounded.  Used both by full grounding and when
    /// a brand-new rule is added incrementally.
    pub fn ground_rule(&mut self, rule: &Rule) -> Result<usize, RelError> {
        let query = rule.body_query();
        let bindings = query.evaluate(&self.db)?;
        let tuples: Vec<(Tuple, i64)> = bindings
            .iter_counted()
            .map(|(t, c)| (t.clone(), c))
            .collect();
        let mut new_groundings = 0usize;
        for (binding, count) in tuples {
            if self.ground_binding_counted(rule, &binding, count)? {
                new_groundings += 1;
            }
        }
        Ok(new_groundings)
    }

    /// Evaluate one candidate-mapping rule, inserting the (distinct) head tuples
    /// into the head relation and remembering the materialized view.
    pub fn evaluate_candidate_rule(&mut self, rule: &Rule) -> Result<usize, RelError> {
        let head_vars = rule.head_vars();
        let query = dd_relstore::ConjunctiveQuery::new(
            rule.head.relation.clone(),
            head_vars,
            rule.body.clone(),
        )
        .with_filters(rule.filters.clone());
        let view = MaterializedView::materialize(query, &self.db)?;
        let mut inserted = 0usize;
        {
            let head_table = self.db.table_mut(&rule.head.relation)?;
            for tuple in view.result().iter() {
                if !head_table.contains(tuple) {
                    head_table.insert(tuple.clone())?;
                    inserted += 1;
                }
            }
        }
        self.candidate_views.insert(rule.name.clone(), view);
        Ok(inserted)
    }

    /// Ground one body-query binding of a weighted/supervision rule.  Returns
    /// `false` if the binding was grounded before.
    pub fn ground_binding(&mut self, rule: &Rule, binding: &Tuple) -> Result<bool, RelError> {
        self.ground_binding_counted(rule, binding, 1)
    }

    /// [`Grounder::ground_binding`] with an explicit derivation count, which
    /// becomes the new record's retraction support.
    pub fn ground_binding_counted(
        &mut self,
        rule: &Rule,
        binding: &Tuple,
        count: i64,
    ) -> Result<bool, RelError> {
        if self
            .grounded_bindings
            .get(&rule.name)
            .is_some_and(|m| m.contains_key(binding))
        {
            return Ok(false);
        }

        let projection_vars = rule.projection_vars();
        let value_of = |var: &str| -> Value {
            projection_vars
                .iter()
                .position(|v| v == var)
                .and_then(|i| binding.get(i).cloned())
                .unwrap_or(Value::Null)
        };

        // Resolve the head tuple and its variable.
        let head_tuple = Self::instantiate_atom_tuple(&rule.head.terms, &value_of);
        let head_var = self.var_for_tuple(&rule.head.relation, &head_tuple);
        let head_key = (rule.head.relation.clone(), head_tuple.clone());

        let mut record = GroundingRecord {
            support: count.max(1),
            factor: None,
            label: None,
        };

        match (&rule.kind, &rule.weight) {
            (RuleKind::Supervision, WeightSpec::Label(polarity)) => {
                if !self.suppressed_labels.contains(&head_key) {
                    record.label = Some(*polarity);
                    let usage = self.var_use.entry(head_key.clone()).or_default();
                    if *polarity {
                        usage.pos_labels += 1;
                    } else {
                        usage.neg_labels += 1;
                    }
                    let role = usage.role();
                    let var = self.graph.variable_mut(head_var);
                    var.role = role;
                    var.initial_value = role.fixed_value().unwrap_or(false);
                }
            }
            _ => {
                let weight_id = self.weight_for_rule(rule, &value_of);
                // Body atoms over variable relations become body literals.
                let mut body_lits = Vec::new();
                for atom in &rule.body {
                    if self.program.role_of(&atom.relation) == RelationRole::Variable {
                        let t = Self::instantiate_atom_tuple(&atom.terms, &value_of);
                        let v = self.var_for_tuple(&atom.relation, &t);
                        body_lits.push(Lit {
                            var: v,
                            positive: !atom.negated,
                        });
                    }
                }
                let factor = Self::make_factor(weight_id, body_lits, head_var, rule.semantics);
                let fid = self.graph.add_factor(factor);
                record.factor = Some(fid);
                self.factor_owners
                    .insert(fid, (rule.name.clone(), binding.clone()));
                *self.weight_use.entry(weight_id).or_insert(0) += 1;
            }
        }

        // Reference counting by stable identity, for retraction.
        for key in Self::record_var_keys(&self.program, rule, binding) {
            self.var_use.entry(key).or_default().refs += 1;
        }
        self.var_use.entry(head_key).or_default().head_refs += 1;

        self.grounded_bindings
            .entry(rule.name.clone())
            .or_default()
            .insert(binding.clone(), record);

        // Make sure the head tuple exists in its relation so error-analysis
        // queries can see it.
        if let Ok(table) = self.db.table_mut(&rule.head.relation) {
            if !table.contains(&head_tuple) && table.schema().check(head_tuple.values()) {
                let _ = table.insert(head_tuple);
            }
        }
        Ok(true)
    }

    /// The distinct `(relation, tuple)` variable identities a grounding of
    /// `rule` under `binding` references: the head plus every body atom over a
    /// variable relation.  Sorted and deduplicated, so live bookkeeping and
    /// state reconstruction count identically.
    pub(crate) fn record_var_keys(
        program: &Program,
        rule: &Rule,
        binding: &Tuple,
    ) -> Vec<(String, Tuple)> {
        let projection_vars = rule.projection_vars();
        let value_of = |var: &str| -> Value {
            projection_vars
                .iter()
                .position(|v| v == var)
                .and_then(|i| binding.get(i).cloned())
                .unwrap_or(Value::Null)
        };
        let mut keys = vec![(
            rule.head.relation.clone(),
            Self::instantiate_atom_tuple(&rule.head.terms, &value_of),
        )];
        for atom in &rule.body {
            if program.role_of(&atom.relation) == RelationRole::Variable {
                keys.push((
                    atom.relation.clone(),
                    Self::instantiate_atom_tuple(&atom.terms, &value_of),
                ));
            }
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Build the factor for one grounding.  With Linear semantics (or an empty
    /// body) this is the classic per-grounding factor; with Ratio/Logical
    /// semantics a single-grounding Aggregate factor carries the `g` function.
    pub(crate) fn make_factor(
        weight_id: WeightId,
        body_lits: Vec<Lit>,
        head_var: VarId,
        semantics: Semantics,
    ) -> Factor {
        if body_lits.is_empty() {
            return Factor::is_true(weight_id, head_var);
        }
        match semantics {
            Semantics::Linear => Factor::new(
                weight_id,
                FactorKind::Imply {
                    body: body_lits,
                    head: Lit::pos(head_var),
                },
            ),
            _ => Factor::new(
                weight_id,
                FactorKind::Aggregate {
                    head: Lit::pos(head_var),
                    semantics,
                    groundings: vec![body_lits],
                },
            ),
        }
    }

    /// Instantiate an atom's terms under a binding.
    pub(crate) fn instantiate_atom_tuple<F>(terms: &[Term], value_of: &F) -> Tuple
    where
        F: Fn(&str) -> Value,
    {
        Tuple::new(
            terms
                .iter()
                .map(|t| match t {
                    Term::Const(v) => v.clone(),
                    Term::Var(v) => value_of(v),
                })
                .collect(),
        )
    }

    /// Get or create the random variable for a tuple of a variable relation.
    pub(crate) fn var_for_tuple(&mut self, relation: &str, tuple: &Tuple) -> VarId {
        let key = (relation.to_string(), tuple.clone());
        if let Some(&v) = self.var_catalog.get(&key) {
            return v;
        }
        let origin_key = self.next_var_key;
        self.next_var_key += 1;
        let id = self
            .graph
            .add_variable(Variable::query(0).with_origin(relation, origin_key));
        self.var_catalog.insert(key, id);
        self.fresh_catalog
            .entry(relation.to_string())
            .or_default()
            .push(CatalogOp::Upsert(tuple.clone(), id));
        id
    }

    /// The weight descriptor of one grounding: `(tying key, initial value, fixed)`.
    pub(crate) fn weight_descriptor<F>(
        udfs: &UdfRegistry,
        rule: &Rule,
        value_of: &F,
    ) -> (String, f64, bool)
    where
        F: Fn(&str) -> Value,
    {
        match &rule.weight {
            WeightSpec::Fixed(w) => (format!("{}::fixed", rule.name), *w, true),
            WeightSpec::Learnable { initial } => (format!("{}::rule", rule.name), *initial, false),
            WeightSpec::Tied { udf, args } => {
                let arg_values: Vec<Value> = args.iter().map(|a| value_of(a)).collect();
                let key = udfs.call(udf, &arg_values);
                (format!("{}::{}", rule.name, key), 0.0, false)
            }
            WeightSpec::Label(_) | WeightSpec::None => (format!("{}::none", rule.name), 0.0, true),
        }
    }

    /// Resolve the weight for one grounding of a rule, creating it on first use.
    pub(crate) fn weight_for_rule<F>(&mut self, rule: &Rule, value_of: &F) -> WeightId
    where
        F: Fn(&str) -> Value,
    {
        let (description, initial, fixed) = Self::weight_descriptor(&self.udfs, rule, value_of);
        if let Some(&w) = self.weight_catalog.get(&description) {
            return w;
        }
        let weight = if fixed {
            Weight::fixed(0, initial, &description)
        } else {
            Weight::learnable(0, initial, &description)
        };
        let id = self.graph.add_weight(weight);
        self.weight_catalog.insert(description, id);
        id
    }

    /// Summary of the current grounding state.
    pub fn result(&self) -> GroundingResult {
        let stats = self.graph.stats();
        GroundingResult {
            num_variables: stats.num_variables,
            num_factors: stats.num_factors,
            num_weights: stats.num_weights,
            num_evidence: stats.num_evidence_variables,
            groundings_per_rule: self
                .grounded_bindings
                .iter()
                .map(|(k, v)| (k.clone(), v.len()))
                .collect(),
        }
    }

    /// Write marginal probabilities back into a `<relation>_marginal` table:
    /// `(original columns…, probability)`.  This mirrors DeepDive reloading each
    /// tuple into the database with its marginal probability (§2.5).  The slice
    /// is indexed by variable id; variables beyond its end are skipped.
    pub fn write_back_marginals(&mut self, marginals: &[f64]) {
        let mut rows: HashMap<String, Vec<(Tuple, f64)>> = HashMap::new();
        for ((relation, tuple), &var) in &self.var_catalog {
            if let Some(&p) = marginals.get(var) {
                rows.entry(relation.clone())
                    .or_default()
                    .push((tuple.clone(), p));
            }
        }
        for (relation, tuples) in rows {
            let table_name = format!("{relation}_marginal");
            let base_schema = match self.db.table(&relation) {
                Ok(t) => t.schema().clone(),
                Err(_) => continue,
            };
            let mut cols: Vec<(String, dd_relstore::DataType)> = base_schema
                .columns()
                .iter()
                .map(|c| (c.name.clone(), c.data_type))
                .collect();
            cols.push(("probability".to_string(), dd_relstore::DataType::Float));
            let schema = dd_relstore::Schema::new(
                cols.into_iter()
                    .map(|(n, t)| dd_relstore::Column::new(n, t))
                    .collect(),
            );
            self.db.create_or_replace_table(&table_name, schema);
            let table = self.db.table_mut(&table_name).expect("just created");
            for (tuple, p) in tuples {
                let mut values = tuple.into_values();
                values.push(Value::Float(p));
                let _ = table.insert(Tuple::new(values));
            }
        }
    }

    /// Permanently suppress supervision for one head tuple and un-pin any
    /// labels it already carries.
    ///
    /// The suppression is *sticky*: the head joins `suppressed_labels`, so
    /// labels from supervision-rule groundings that arrive later (including a
    /// from-scratch rebuild replaying the same updates) are recorded with
    /// `label: None` and never pin the variable.  Existing label-carrying
    /// records have their label taken and the usage counters decremented; if
    /// the variable's implied role changes, it is updated in place and the
    /// corresponding [`EvidenceChange`] is returned so callers can replay the
    /// transition through a [`dd_factorgraph::GraphDelta`].
    pub fn apply_supervision_retraction(
        &mut self,
        relation: &str,
        tuple: &Tuple,
    ) -> Vec<EvidenceChange> {
        let head_key = (relation.to_string(), tuple.clone());
        self.suppressed_labels.insert(head_key.clone());

        let mut pos_cleared = 0i64;
        let mut neg_cleared = 0i64;
        let supervision_rules: Vec<Rule> = self
            .program
            .rules
            .iter()
            .filter(|r| r.kind == RuleKind::Supervision && r.head.relation == relation)
            .cloned()
            .collect();
        for rule in &supervision_rules {
            let Some(records) = self.grounded_bindings.get_mut(&rule.name) else {
                continue;
            };
            let projection_vars = rule.projection_vars();
            for (binding, record) in records.iter_mut() {
                if record.label.is_none() {
                    continue;
                }
                let value_of = |var: &str| -> Value {
                    projection_vars
                        .iter()
                        .position(|v| v == var)
                        .and_then(|i| binding.get(i).cloned())
                        .unwrap_or(Value::Null)
                };
                let head_tuple = Self::instantiate_atom_tuple(&rule.head.terms, &value_of);
                if head_tuple != *tuple {
                    continue;
                }
                match record.label.take() {
                    Some(true) => pos_cleared += 1,
                    Some(false) => neg_cleared += 1,
                    None => unreachable!(),
                }
            }
        }

        if pos_cleared > 0 || neg_cleared > 0 {
            if let Some(usage) = self.var_use.get_mut(&head_key) {
                usage.pos_labels -= pos_cleared;
                usage.neg_labels -= neg_cleared;
            }
        }
        let role = self
            .var_use
            .get(&head_key)
            .map(VarUse::role)
            .unwrap_or(VariableRole::Query);
        let mut changes = Vec::new();
        if let Some(&var) = self.var_catalog.get(&head_key) {
            let v = self.graph.variable_mut(var);
            if v.role != role {
                v.role = role;
                v.initial_value = role.fixed_value().unwrap_or(false);
                changes.push(EvidenceChange {
                    var,
                    new_role: role,
                });
            }
        }
        changes
    }

    // ------------------------------------------------------------- persistence

    /// Export every piece of grounder state a checkpoint must carry, in
    /// deterministic (sorted) order.
    ///
    /// The UDF registry is deliberately absent: it holds function pointers
    /// and cannot be serialized — [`Grounder::from_state`] takes it back as
    /// an argument.  Candidate-mapping views are represented by rule *name*
    /// only; restore re-materializes them from the restored database, which
    /// reproduces the maintained view exactly (view maintenance is
    /// deterministic in the database contents).
    pub fn export_state(&self) -> GrounderState {
        let mut var_catalog: Vec<(String, Tuple, VarId)> = self
            .var_catalog
            .iter()
            .map(|((rel, tuple), &var)| (rel.clone(), tuple.clone(), var))
            .collect();
        var_catalog.sort();
        let mut grounded_bindings: Vec<(String, Vec<(Tuple, GroundingRecord)>)> = self
            .grounded_bindings
            .iter()
            .map(|(rule, records)| {
                (
                    rule.clone(),
                    records
                        .iter()
                        .map(|(t, r)| (t.clone(), r.clone()))
                        .collect(),
                )
            })
            .collect();
        grounded_bindings.sort_by(|a, b| a.0.cmp(&b.0));
        let mut view_rules: Vec<String> = self.candidate_views.keys().cloned().collect();
        view_rules.sort();
        GrounderState {
            program: self.program.clone(),
            db: self.db.clone(),
            graph: self.graph.clone(),
            var_catalog,
            catalog_ops: self
                .fresh_catalog
                .iter()
                .map(|(rel, ops)| (rel.clone(), ops.clone()))
                .collect(),
            grounded_bindings,
            view_rules,
            suppressed_labels: self.suppressed_labels.iter().cloned().collect(),
            next_var_key: self.next_var_key,
        }
    }

    /// Rebuild a grounder from exported state plus a (re-supplied) UDF
    /// registry.
    ///
    /// Derived bookkeeping is reconstructed rather than persisted: the weight
    /// catalog and per-weight refcounts come from scanning the graph's factors
    /// (so orphaned weight slots stay out of the catalog), per-variable usage
    /// counters are recomputed from the grounding records via
    /// `Grounder::record_var_keys` (the same computation live bookkeeping
    /// uses), and candidate views are re-materialized from the restored
    /// database.
    pub fn from_state(state: GrounderState, udfs: UdfRegistry) -> Result<Self, GroundingError> {
        // Per-weight refcounts and the live-weight catalog, from the factors.
        let mut weight_use: HashMap<WeightId, i64> = HashMap::new();
        for factor in state.graph.factors() {
            *weight_use.entry(factor.weight_id).or_insert(0) += 1;
        }
        let weight_catalog: HashMap<String, WeightId> = state
            .graph
            .weights()
            .iter()
            .filter(|w| weight_use.get(&w.id).copied().unwrap_or(0) > 0)
            .map(|w| (w.description.clone(), w.id))
            .collect();
        // Per-variable usage and factor ownership, from the records.
        let mut var_use: HashMap<(String, Tuple), VarUse> = HashMap::new();
        let mut factor_owners: HashMap<FactorId, (String, Tuple)> = HashMap::new();
        for (rule_name, records) in &state.grounded_bindings {
            let rule = state
                .program
                .rules
                .iter()
                .find(|r| r.name == *rule_name)
                .ok_or(GroundingError::Program(ProgramError::UnknownRule {
                    rule: rule_name.clone(),
                }))?;
            for (binding, record) in records {
                for key in Self::record_var_keys(&state.program, rule, binding) {
                    var_use.entry(key).or_default().refs += 1;
                }
                let projection_vars = rule.projection_vars();
                let value_of = |var: &str| -> Value {
                    projection_vars
                        .iter()
                        .position(|v| v == var)
                        .and_then(|i| binding.get(i).cloned())
                        .unwrap_or(Value::Null)
                };
                let head_key = (
                    rule.head.relation.clone(),
                    Self::instantiate_atom_tuple(&rule.head.terms, &value_of),
                );
                let usage = var_use.entry(head_key).or_default();
                usage.head_refs += 1;
                match record.label {
                    Some(true) => usage.pos_labels += 1,
                    Some(false) => usage.neg_labels += 1,
                    None => {}
                }
                if let Some(fid) = record.factor {
                    factor_owners.insert(fid, (rule_name.clone(), binding.clone()));
                }
            }
        }
        let mut grounder = Grounder {
            program: state.program,
            db: state.db,
            udfs,
            graph: state.graph,
            var_catalog: state
                .var_catalog
                .into_iter()
                .map(|(rel, tuple, var)| ((rel, tuple), var))
                .collect(),
            fresh_catalog: state.catalog_ops.into_iter().collect(),
            weight_catalog,
            grounded_bindings: state
                .grounded_bindings
                .into_iter()
                .map(|(rule, records)| (rule, records.into_iter().collect()))
                .collect(),
            var_use,
            factor_owners,
            weight_use,
            suppressed_labels: state.suppressed_labels.into_iter().collect(),
            next_var_key: state.next_var_key,
            candidate_views: HashMap::new(),
        };
        for rule_name in state.view_rules {
            let rule = grounder
                .program
                .rules
                .iter()
                .find(|r| r.name == rule_name)
                .cloned()
                .ok_or(GroundingError::Program(ProgramError::UnknownRule {
                    rule: rule_name,
                }))?;
            grounder.evaluate_candidate_rule(&rule)?;
        }
        Ok(grounder)
    }
}

/// Serializable snapshot of a [`Grounder`], produced by
/// [`Grounder::export_state`] and consumed by [`Grounder::from_state`].
/// All collections are sorted so that encoding the same state twice yields
/// identical bytes.
#[derive(Debug, Clone)]
pub struct GrounderState {
    pub program: Program,
    pub db: Database,
    pub graph: FactorGraph,
    /// `(relation, tuple, variable id)`, sorted.
    pub var_catalog: Vec<(String, Tuple, VarId)>,
    /// Undrained catalog ops, per relation (sorted by relation, chronological
    /// within a relation).
    pub catalog_ops: Vec<(String, Vec<CatalogOp>)>,
    /// Rule name → sorted bindings already grounded, with support records.
    pub grounded_bindings: Vec<(String, Vec<(Tuple, GroundingRecord)>)>,
    /// Names of candidate-mapping rules with a materialized view.
    pub view_rules: Vec<String>,
    /// Heads with suppressed supervision, sorted.
    pub suppressed_labels: Vec<(String, Tuple)>,
    /// Monotonic origin-key counter for new variables.
    pub next_var_key: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::RuleAtom;
    use crate::program::RelationDecl;
    use crate::udf::standard_udfs;
    use dd_relstore::view::Filter;
    use dd_relstore::{tuple, DataType, Schema};

    fn atom(rel: &str, vars: &[&str]) -> RuleAtom {
        RuleAtom::new(rel, vars.iter().map(|v| Term::var(*v)).collect())
    }

    /// The running spouse example (Figure 2), scaled to a handful of tuples.
    fn spouse_program() -> Program {
        Program::new()
            .declare(RelationDecl::new(
                "Sentence",
                Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "PersonCandidate",
                Schema::of(&[
                    ("s", DataType::Int),
                    ("m", DataType::Int),
                    ("text", DataType::Text),
                ]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "EL",
                Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "Married",
                Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "MarriedCandidate",
                Schema::of(&[("m1", DataType::Int), ("m2", DataType::Int)]),
                RelationRole::Derived,
            ))
            .declare(RelationDecl::new(
                "MarriedMentions",
                Schema::of(&[("m1", DataType::Int), ("m2", DataType::Int)]),
                RelationRole::Variable,
            ))
            // R1: candidate generation
            .rule(
                Rule::new(
                    "R1",
                    RuleKind::CandidateMapping,
                    atom("MarriedCandidate", &["m1", "m2"]),
                    vec![
                        RuleAtom::new(
                            "PersonCandidate",
                            vec![Term::var("s"), Term::var("m1"), Term::var("t1")],
                        ),
                        RuleAtom::new(
                            "PersonCandidate",
                            vec![Term::var("s"), Term::var("m2"), Term::var("t2")],
                        ),
                    ],
                    WeightSpec::None,
                )
                .with_filters(vec![Filter::Lt("m1".into(), "m2".into())]),
            )
            // FE1: phrase feature between the two mentions
            .rule(Rule::new(
                "FE1",
                RuleKind::FeatureExtraction,
                atom("MarriedMentions", &["m1", "m2"]),
                vec![
                    atom("MarriedCandidate", &["m1", "m2"]),
                    RuleAtom::new(
                        "PersonCandidate",
                        vec![Term::var("s"), Term::var("m1"), Term::var("t1")],
                    ),
                    RuleAtom::new(
                        "PersonCandidate",
                        vec![Term::var("s"), Term::var("m2"), Term::var("t2")],
                    ),
                    RuleAtom::new("Sentence", vec![Term::var("s"), Term::var("content")]),
                ],
                WeightSpec::Tied {
                    udf: "phrase".into(),
                    args: vec!["t1".into(), "t2".into(), "content".into()],
                },
            ))
            // S1: distant supervision from the Married KB
            .rule(Rule::new(
                "S1",
                RuleKind::Supervision,
                atom("MarriedMentions", &["m1", "m2"]),
                vec![
                    atom("MarriedCandidate", &["m1", "m2"]),
                    RuleAtom::new("EL", vec![Term::var("m1"), Term::var("e1")]),
                    RuleAtom::new("EL", vec![Term::var("m2"), Term::var("e2")]),
                    RuleAtom::new("Married", vec![Term::var("e1"), Term::var("e2")]),
                ],
                WeightSpec::Label(true),
            ))
    }

    fn spouse_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Sentence",
            Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
        )
        .unwrap();
        db.create_table(
            "PersonCandidate",
            Schema::of(&[
                ("s", DataType::Int),
                ("m", DataType::Int),
                ("text", DataType::Text),
            ]),
        )
        .unwrap();
        db.create_table(
            "EL",
            Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
        )
        .unwrap();
        db.create_table(
            "Married",
            Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
        )
        .unwrap();
        db.insert_all(
            "Sentence",
            vec![
                tuple![1i64, "Barack and his wife Michelle attended the dinner"],
                tuple![2i64, "Malia and Sasha attended the state dinner"],
            ],
        )
        .unwrap();
        db.insert_all(
            "PersonCandidate",
            vec![
                tuple![1i64, 10i64, "Barack"],
                tuple![1i64, 11i64, "Michelle"],
                tuple![2i64, 20i64, "Malia"],
                tuple![2i64, 21i64, "Sasha"],
            ],
        )
        .unwrap();
        db.insert_all(
            "EL",
            vec![
                tuple![10i64, "Barack_Obama_1"],
                tuple![11i64, "Michelle_Obama_1"],
            ],
        )
        .unwrap();
        db.insert_all(
            "Married",
            vec![tuple!["Barack_Obama_1", "Michelle_Obama_1"]],
        )
        .unwrap();
        db
    }

    fn grounder() -> Grounder {
        Grounder::new(spouse_program(), spouse_db(), standard_udfs()).unwrap()
    }

    #[test]
    fn full_grounding_produces_expected_structure() {
        let mut g = grounder();
        let result = g.ground().unwrap();

        // Two candidate pairs: (10,11) in sentence 1 and (20,21) in sentence 2.
        let candidates = g.database().table("MarriedCandidate").unwrap();
        assert_eq!(candidates.len(), 2);
        assert!(candidates.contains(&tuple![10i64, 11i64]));
        assert!(candidates.contains(&tuple![20i64, 21i64]));

        // Two MarriedMentions variables; (10,11) is positive evidence via S1.
        assert_eq!(result.num_variables, 2);
        assert_eq!(result.num_evidence, 1);
        let v = g
            .variable_for("MarriedMentions", &tuple![10i64, 11i64])
            .unwrap();
        assert!(g.graph().variable(v).is_evidence());
        let v2 = g
            .variable_for("MarriedMentions", &tuple![20i64, 21i64])
            .unwrap();
        assert!(!g.graph().variable(v2).is_evidence());

        // FE1 grounds one factor per candidate pair, with distinct phrase weights.
        assert_eq!(result.groundings_per_rule["FE1"], 2);
        assert!(g.weight_for("FE1::and his wife").is_some());
        assert!(g.weight_for("FE1::and").is_some());
        assert!(result.num_factors >= 2);
    }

    #[test]
    fn weight_tying_shares_weights_across_identical_phrases() {
        let mut g = grounder();
        // Add a second sentence with the same "and his wife" phrase.
        g.database_mut()
            .insert_all(
                "Sentence",
                vec![tuple![3i64, "George and his wife Laura were married"]],
            )
            .unwrap();
        g.database_mut()
            .insert_all(
                "PersonCandidate",
                vec![tuple![3i64, 30i64, "George"], tuple![3i64, 31i64, "Laura"]],
            )
            .unwrap();
        let result = g.ground().unwrap();
        assert_eq!(result.groundings_per_rule["FE1"], 3);
        // "and his wife" appears twice but creates only one weight.
        let tied = g.weight_for("FE1::and his wife").unwrap();
        let shared_factor_count = g
            .graph()
            .factors()
            .iter()
            .filter(|f| f.weight_id == tied)
            .count();
        assert_eq!(shared_factor_count, 2);
    }

    #[test]
    fn grounding_twice_does_not_duplicate_factors() {
        let mut g = grounder();
        let first = g.ground().unwrap();
        let second = g.ground().unwrap();
        assert_eq!(first.num_factors, second.num_factors);
        assert_eq!(first.num_variables, second.num_variables);
    }

    #[test]
    fn inference_rule_connects_two_variables() {
        // Symmetry rule: MarriedMentions(m2, m1) :- MarriedMentions(m1, m2).
        let program = spouse_program().rule(Rule::new(
            "I1",
            RuleKind::Inference,
            atom("MarriedMentions", &["m2", "m1"]),
            vec![atom("MarriedMentions", &["m1", "m2"])],
            WeightSpec::Fixed(3.0),
        ));
        let mut g = Grounder::new(program, spouse_db(), standard_udfs()).unwrap();
        let result = g.ground().unwrap();
        // Symmetric counterparts (11,10) and (21,20) now exist as variables too.
        assert!(g
            .variable_for("MarriedMentions", &tuple![11i64, 10i64])
            .is_some());
        assert_eq!(result.num_variables, 4);
        // The I1 factors are Aggregate (default Ratio semantics) implications.
        let has_aggregate = g
            .graph()
            .factors()
            .iter()
            .any(|f| matches!(f.kind, FactorKind::Aggregate { .. }));
        assert!(has_aggregate);
    }

    #[test]
    fn linear_semantics_emits_imply_factors() {
        let program = spouse_program().rule(
            Rule::new(
                "I1",
                RuleKind::Inference,
                atom("MarriedMentions", &["m2", "m1"]),
                vec![atom("MarriedMentions", &["m1", "m2"])],
                WeightSpec::Fixed(3.0),
            )
            .with_semantics(Semantics::Linear),
        );
        let mut g = Grounder::new(program, spouse_db(), standard_udfs()).unwrap();
        g.ground().unwrap();
        let has_imply = g
            .graph()
            .factors()
            .iter()
            .any(|f| matches!(f.kind, FactorKind::Imply { .. }));
        assert!(has_imply);
    }

    #[test]
    fn marginal_write_back_creates_probability_table() {
        let mut g = grounder();
        g.ground().unwrap();
        let n = g.graph().num_variables();
        let marginals: Vec<f64> = (0..n).map(|i| 0.25 + 0.5 * (i % 2) as f64).collect();
        g.write_back_marginals(&marginals);
        // A short slice writes back only the variables it covers.
        g.write_back_marginals(&marginals[..0]);
        let t = g.database().table("MarriedMentions_marginal").unwrap();
        assert_eq!(t.len(), n);
        assert_eq!(t.schema().arity(), 3);
    }

    #[test]
    fn invalid_program_is_rejected_at_construction() {
        let bad = Program::new().rule(Rule::new(
            "X",
            RuleKind::CandidateMapping,
            atom("Nowhere", &["x"]),
            vec![atom("AlsoNowhere", &["x"])],
            WeightSpec::None,
        ));
        assert!(Grounder::new(bad, Database::new(), standard_udfs()).is_err());
    }
}

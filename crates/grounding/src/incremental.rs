//! Incremental grounding (paper §3.1).
//!
//! A KBC iteration changes the input data (new documents, new labels) and/or the
//! program (new feature-extraction, supervision, or inference rules).  Incremental
//! grounding turns such a [`KbcUpdate`] into the factor-graph delta (ΔV, ΔF) that
//! incremental inference consumes:
//!
//! 1. base-relation deltas are cascaded through the candidate-mapping rules using
//!    the counting/DRed delta rules of the relational substrate (the derived
//!    relations are materialized views);
//! 2. the weighted and supervision rules are differentiated against the combined
//!    base + derived deltas, producing new groundings;
//! 3. brand-new rules are grounded in full against the post-update database;
//! 4. everything is packaged as a [`GraphDelta`] and applied to the grounder's
//!    own factor graph, keeping its tuple→variable and key→weight catalogs in
//!    sync.
//!
//! Deletions of existing groundings are detected and counted but their factors
//! are left in place (with the same effect as a zero-probability derivation); the
//! paper's inference-phase techniques likewise focus on additions and
//! modifications, and a full DRed over-delete/re-derive pass on the factor graph
//! is orthogonal to the materialization tradeoff being studied.

use crate::ast::{Rule, RuleKind, WeightSpec};
use crate::error::{GroundingError, ProgramError};
use crate::grounder::Grounder;
use crate::program::RelationRole;
use dd_factorgraph::{
    DeltaFactor, EvidenceChange, Factor, FactorKind, GraphDelta, Lit, NewVarRef, NewWeightRef,
    Semantics, Variable, VariableRole, Weight,
};
use dd_relstore::{DeltaRelation, MaterializedView, Tuple, Value};
use std::collections::{BTreeSet, HashMap, HashSet};

/// One update to a KBC system: data changes and/or new rules.
#[derive(Debug, Clone, Default)]
pub struct KbcUpdate {
    /// Changes to base relations, keyed by relation name.
    pub base_deltas: HashMap<String, DeltaRelation>,
    /// Rules added in this iteration.
    pub new_rules: Vec<Rule>,
}

impl KbcUpdate {
    pub fn new() -> Self {
        KbcUpdate::default()
    }

    /// Record an insertion into a base relation.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> &mut Self {
        self.base_deltas
            .entry(relation.to_string())
            .or_insert_with(|| DeltaRelation::new(relation))
            .insert(tuple);
        self
    }

    /// Record a deletion from a base relation.
    pub fn delete(&mut self, relation: &str, tuple: Tuple) -> &mut Self {
        self.base_deltas
            .entry(relation.to_string())
            .or_insert_with(|| DeltaRelation::new(relation))
            .delete(tuple);
        self
    }

    /// Add a new rule.
    pub fn add_rule(&mut self, rule: Rule) -> &mut Self {
        self.new_rules.push(rule);
        self
    }

    /// True if the update changes nothing.
    pub fn is_empty(&self) -> bool {
        self.new_rules.is_empty() && self.base_deltas.values().all(|d| d.is_empty())
    }
}

/// Outcome of one incremental grounding run.
#[derive(Debug, Clone, Default)]
pub struct IncrementalGrounding {
    /// The factor-graph delta (already applied to the grounder's graph).
    pub delta: GraphDelta,
    /// Derived-relation deltas produced by cascading through candidate rules.
    pub derived_deltas: HashMap<String, DeltaRelation>,
    /// Number of new groundings (factors or labels) produced.
    pub new_groundings: usize,
    /// Number of grounding deletions detected but not removed from the graph.
    pub skipped_deletions: usize,
    /// Variable relations that gained catalog entries in this run — the
    /// publish dirty-set: only these relations' snapshot shards need
    /// re-indexing, every other shard can be shared with the previous epoch.
    pub touched_relations: BTreeSet<String>,
}

/// Accumulates graph changes in delta form before they are applied.
#[derive(Default)]
struct DeltaBuilder {
    delta: GraphDelta,
    pending_vars: HashMap<(String, Tuple), usize>,
    pending_var_keys: Vec<(String, Tuple)>,
    pending_weights: HashMap<String, usize>,
    pending_weight_keys: Vec<String>,
    new_bindings: Vec<(String, Tuple)>,
    seen_bindings: HashSet<(String, Tuple)>,
    evidence_changed: HashSet<usize>,
    /// Head tuples to insert into their relation's table once the update lands.
    pending_head_tuples: Vec<(String, Tuple)>,
    new_groundings: usize,
}

impl DeltaBuilder {
    /// Resolve a `(relation, tuple)` to an existing variable or a pending new one.
    fn var_ref(&mut self, grounder: &Grounder, relation: &str, tuple: &Tuple) -> NewVarRef {
        if let Some(v) = grounder.variable_for(relation, tuple) {
            return NewVarRef::Existing(v);
        }
        let key = (relation.to_string(), tuple.clone());
        if let Some(&i) = self.pending_vars.get(&key) {
            return NewVarRef::New(i);
        }
        let i = self.delta.new_variables.len();
        self.delta.new_variables.push(
            Variable::query(0).with_origin(relation, (grounder.graph().num_variables() + i) as u64),
        );
        self.pending_vars.insert(key.clone(), i);
        self.pending_var_keys.push(key);
        NewVarRef::New(i)
    }

    /// Resolve the weight of one grounding to an existing or pending new weight.
    fn weight_ref<F>(&mut self, grounder: &Grounder, rule: &Rule, value_of: &F) -> NewWeightRef
    where
        F: Fn(&str) -> Value,
    {
        let (description, initial, fixed) =
            Grounder::weight_descriptor(grounder.udfs(), rule, value_of);
        if let Some(w) = grounder.weight_for(&description) {
            return NewWeightRef::Existing(w);
        }
        if let Some(&i) = self.pending_weights.get(&description) {
            return NewWeightRef::New(i);
        }
        let i = self.delta.new_weights.len();
        let weight = if fixed {
            Weight::fixed(0, initial, &description)
        } else {
            Weight::learnable(0, initial, &description)
        };
        self.delta.new_weights.push(weight);
        self.pending_weights.insert(description.clone(), i);
        self.pending_weight_keys.push(description);
        NewWeightRef::New(i)
    }

    /// Ground one binding of a weighted or supervision rule, in delta form.
    fn ground_binding(&mut self, grounder: &Grounder, rule: &Rule, binding: &Tuple) -> bool {
        let binding_key = (rule.name.clone(), binding.clone());
        if self.seen_bindings.contains(&binding_key)
            || grounder.grounded_binding_exists(&rule.name, binding)
        {
            return false;
        }
        self.seen_bindings.insert(binding_key.clone());
        self.new_bindings.push(binding_key);

        let projection_vars = rule.projection_vars();
        let value_of = |var: &str| -> Value {
            projection_vars
                .iter()
                .position(|v| v == var)
                .and_then(|i| binding.get(i).cloned())
                .unwrap_or(Value::Null)
        };

        let head_tuple = Grounder::instantiate_atom_tuple(&rule.head.terms, &value_of);
        let head_ref = self.var_ref(grounder, &rule.head.relation, &head_tuple);
        self.pending_head_tuples
            .push((rule.head.relation.clone(), head_tuple));

        match (&rule.kind, &rule.weight) {
            (RuleKind::Supervision, WeightSpec::Label(polarity)) => {
                let role = if *polarity {
                    VariableRole::PositiveEvidence
                } else {
                    VariableRole::NegativeEvidence
                };
                match head_ref {
                    NewVarRef::Existing(v) => {
                        if self.evidence_changed.insert(v) {
                            self.delta.evidence_changes.push(EvidenceChange {
                                var: v,
                                new_role: role,
                            });
                        }
                    }
                    NewVarRef::New(i) => {
                        let var = &mut self.delta.new_variables[i];
                        var.role = role;
                        var.initial_value = *polarity;
                    }
                }
            }
            _ => {
                let weight = self.weight_ref(grounder, rule, &value_of);
                let mut var_refs = Vec::new();
                let slot_of = |refs: &mut Vec<NewVarRef>, r: NewVarRef| -> usize {
                    refs.push(r);
                    refs.len() - 1
                };
                let mut body_lits = Vec::new();
                for atom in &rule.body {
                    if grounder.program().role_of(&atom.relation) == RelationRole::Variable {
                        let t = Grounder::instantiate_atom_tuple(&atom.terms, &value_of);
                        let r = self.var_ref(grounder, &atom.relation, &t);
                        let slot = slot_of(&mut var_refs, r);
                        body_lits.push(Lit {
                            var: slot,
                            positive: !atom.negated,
                        });
                    }
                }
                let head_slot = slot_of(&mut var_refs, head_ref);
                let template = if body_lits.is_empty() {
                    Factor::is_true(0, head_slot)
                } else {
                    match rule.semantics {
                        Semantics::Linear => Factor::new(
                            0,
                            FactorKind::Imply {
                                body: body_lits,
                                head: Lit::pos(head_slot),
                            },
                        ),
                        s => Factor::new(
                            0,
                            FactorKind::Aggregate {
                                head: Lit::pos(head_slot),
                                semantics: s,
                                groundings: vec![body_lits],
                            },
                        ),
                    }
                };
                self.delta.new_factors.push(DeltaFactor {
                    weight,
                    template,
                    var_refs,
                });
            }
        }
        self.new_groundings += 1;
        true
    }
}

impl Grounder {
    /// True if a binding of `rule` has already produced a factor/label.
    pub(crate) fn grounded_binding_exists(&self, rule: &str, binding: &Tuple) -> bool {
        self.grounded_bindings
            .get(rule)
            .map(|s| s.contains(binding))
            .unwrap_or(false)
    }

    /// Incrementally ground an update, mutating the database, the catalogs, and
    /// the factor graph, and returning the applied [`GraphDelta`] plus statistics.
    pub fn ground_incremental(
        &mut self,
        update: &KbcUpdate,
    ) -> Result<IncrementalGrounding, GroundingError> {
        let mut accumulated: HashMap<String, DeltaRelation> = update
            .base_deltas
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut derived_deltas: HashMap<String, DeltaRelation> = HashMap::new();
        let mut skipped_deletions = 0usize;

        // ---- 1. cascade through candidate-mapping rules (pre-update database).
        let ordered: Vec<Rule> = self
            .program
            .stratified_candidate_rules()
            .ok_or(ProgramError::CyclicCandidateRules)?
            .into_iter()
            .cloned()
            .collect();
        // Candidate rules that have never been evaluated (e.g. the program was
        // created and updates were applied without an explicit initial run) are
        // grounded now, against the pre-update state, so their derived tuples are
        // visible to the weighted rules below.
        for rule in &ordered {
            if !self.candidate_views.contains_key(&rule.name) {
                self.evaluate_candidate_rule(rule)?;
            }
        }
        for rule in &ordered {
            let touches_change = rule
                .body_relations()
                .iter()
                .any(|r| accumulated.contains_key(*r));
            if !touches_change {
                continue;
            }
            let head_rel = rule.head.relation.clone();
            let head_table_pre: HashSet<Tuple> = self
                .db
                .table(&head_rel)
                .map(|t| t.iter().cloned().collect())
                .unwrap_or_default();

            let view_delta = match self.candidate_views.get_mut(&rule.name) {
                Some(view) => view.refresh_incremental(&self.db, &accumulated)?,
                None => {
                    // The rule was never grounded (e.g. added in an earlier update
                    // without data): materialize it now against the pre-update
                    // state and differentiate.
                    let q = dd_relstore::ConjunctiveQuery::new(
                        head_rel.clone(),
                        rule.head_vars(),
                        rule.body.clone(),
                    )
                    .with_filters(rule.filters.clone());
                    let mut view = MaterializedView::materialize(q, &self.db)?;
                    let d = view.refresh_incremental(&self.db, &accumulated)?;
                    self.candidate_views.insert(rule.name.clone(), view);
                    d
                }
            };

            // Translate derivation-count changes into distinct tuple changes.
            let view_after = self
                .candidate_views
                .get(&rule.name)
                .expect("view just refreshed")
                .result();
            let mut distinct_delta = DeltaRelation::new(head_rel.clone());
            for (tuple, count) in view_delta.iter() {
                if count > 0 && !head_table_pre.contains(tuple) && view_after.contains(tuple) {
                    distinct_delta.insert(tuple.clone());
                } else if count < 0 && head_table_pre.contains(tuple) && !view_after.contains(tuple)
                {
                    distinct_delta.delete(tuple.clone());
                }
            }
            if !distinct_delta.is_empty() {
                derived_deltas
                    .entry(head_rel.clone())
                    .or_insert_with(|| DeltaRelation::new(head_rel.clone()))
                    .merge(&distinct_delta);
                accumulated
                    .entry(head_rel.clone())
                    .or_insert_with(|| DeltaRelation::new(head_rel))
                    .merge(&distinct_delta);
            }
        }

        // ---- 2. differentiate the weighted and supervision rules (pre-update db).
        let mut builder = DeltaBuilder::default();
        let weighted: Vec<Rule> = self
            .program
            .rules
            .iter()
            .filter(|r| {
                matches!(
                    r.kind,
                    RuleKind::FeatureExtraction | RuleKind::Inference | RuleKind::Supervision
                )
            })
            .cloned()
            .collect();
        for rule in &weighted {
            let touches_change = rule
                .body_relations()
                .iter()
                .any(|r| accumulated.contains_key(*r));
            if !touches_change {
                continue;
            }
            let query = rule.body_query();
            let delta = query.delta_evaluate(&self.db, &accumulated)?;
            for (binding, count) in delta.iter() {
                if count > 0 {
                    builder.ground_binding(self, rule, binding);
                } else {
                    skipped_deletions += 1;
                }
            }
        }

        // ---- 3. apply the relational deltas to the database.
        for (relation, delta) in accumulated.iter() {
            if let Ok(table) = self.db.table_mut(relation) {
                delta.apply_to(table);
            }
        }

        // ---- 4. ground brand-new rules in full against the post-update database.
        for rule in &update.new_rules {
            self.program.rules.push(rule.clone());
            match rule.kind {
                RuleKind::CandidateMapping => {
                    // Full evaluation of the new candidate rule; the inserted
                    // tuples immediately become visible to subsequently added
                    // rules and to later incremental updates.
                    self.evaluate_candidate_rule(rule)?;
                }
                RuleKind::FeatureExtraction | RuleKind::Inference | RuleKind::Supervision => {
                    let query = rule.body_query();
                    let bindings = query.evaluate(&self.db)?;
                    for binding in bindings.iter() {
                        builder.ground_binding(self, rule, binding);
                    }
                }
                RuleKind::ErrorAnalysis => {}
            }
        }

        // ---- 5. apply the factor-graph delta and update the catalogs.
        let delta = builder.delta.clone();
        let base_weight_count = self.graph.num_weights();
        let (new_var_ids, _new_factor_ids) = self.graph.apply_delta(&delta);
        let mut touched_relations = BTreeSet::new();
        for (key, id) in builder.pending_var_keys.iter().zip(new_var_ids.iter()) {
            self.var_catalog.insert(key.clone(), *id);
            touched_relations.insert(key.0.clone());
            self.fresh_catalog
                .entry(key.0.clone())
                .or_default()
                .push((key.1.clone(), *id));
        }
        for (i, key) in builder.pending_weight_keys.iter().enumerate() {
            self.weight_catalog
                .insert(key.clone(), base_weight_count + i);
        }
        for (rule, binding) in builder.new_bindings {
            self.grounded_bindings
                .entry(rule)
                .or_default()
                .insert(binding);
        }
        for (relation, tuple) in builder.pending_head_tuples {
            if let Ok(table) = self.db.table_mut(&relation) {
                if !table.contains(&tuple) && table.schema().check(tuple.values()) {
                    let _ = table.insert(tuple);
                }
            }
        }

        Ok(IncrementalGrounding {
            delta,
            derived_deltas,
            new_groundings: builder.new_groundings,
            skipped_deletions,
            touched_relations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::RuleAtom;
    use crate::program::{Program, RelationDecl};
    use crate::udf::standard_udfs;
    use dd_relstore::view::{Filter, Term};
    use dd_relstore::{tuple, DataType, Database, Schema};

    fn atom(rel: &str, vars: &[&str]) -> RuleAtom {
        RuleAtom::new(rel, vars.iter().map(|v| Term::var(*v)).collect())
    }

    /// Same spouse program as the grounder tests, without the supervision rule.
    fn program() -> Program {
        Program::new()
            .declare(RelationDecl::new(
                "Sentence",
                Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "PersonCandidate",
                Schema::of(&[
                    ("s", DataType::Int),
                    ("m", DataType::Int),
                    ("text", DataType::Text),
                ]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "EL",
                Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "Married",
                Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "MarriedCandidate",
                Schema::of(&[("m1", DataType::Int), ("m2", DataType::Int)]),
                RelationRole::Derived,
            ))
            .declare(RelationDecl::new(
                "MarriedMentions",
                Schema::of(&[("m1", DataType::Int), ("m2", DataType::Int)]),
                RelationRole::Variable,
            ))
            .rule(
                Rule::new(
                    "R1",
                    RuleKind::CandidateMapping,
                    atom("MarriedCandidate", &["m1", "m2"]),
                    vec![
                        RuleAtom::new(
                            "PersonCandidate",
                            vec![Term::var("s"), Term::var("m1"), Term::var("t1")],
                        ),
                        RuleAtom::new(
                            "PersonCandidate",
                            vec![Term::var("s"), Term::var("m2"), Term::var("t2")],
                        ),
                    ],
                    WeightSpec::None,
                )
                .with_filters(vec![Filter::Lt("m1".into(), "m2".into())]),
            )
            .rule(Rule::new(
                "FE1",
                RuleKind::FeatureExtraction,
                atom("MarriedMentions", &["m1", "m2"]),
                vec![
                    atom("MarriedCandidate", &["m1", "m2"]),
                    RuleAtom::new(
                        "PersonCandidate",
                        vec![Term::var("s"), Term::var("m1"), Term::var("t1")],
                    ),
                    RuleAtom::new(
                        "PersonCandidate",
                        vec![Term::var("s"), Term::var("m2"), Term::var("t2")],
                    ),
                    RuleAtom::new("Sentence", vec![Term::var("s"), Term::var("content")]),
                ],
                WeightSpec::Tied {
                    udf: "phrase".into(),
                    args: vec!["t1".into(), "t2".into(), "content".into()],
                },
            ))
    }

    fn base_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Sentence",
            Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
        )
        .unwrap();
        db.create_table(
            "PersonCandidate",
            Schema::of(&[
                ("s", DataType::Int),
                ("m", DataType::Int),
                ("text", DataType::Text),
            ]),
        )
        .unwrap();
        db.create_table(
            "EL",
            Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
        )
        .unwrap();
        db.create_table(
            "Married",
            Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
        )
        .unwrap();
        db.insert_all(
            "Sentence",
            vec![tuple![
                1i64,
                "Barack and his wife Michelle attended the dinner"
            ]],
        )
        .unwrap();
        db.insert_all(
            "PersonCandidate",
            vec![
                tuple![1i64, 10i64, "Barack"],
                tuple![1i64, 11i64, "Michelle"],
            ],
        )
        .unwrap();
        db.insert_all(
            "EL",
            vec![
                tuple![10i64, "Barack_Obama_1"],
                tuple![11i64, "Michelle_Obama_1"],
            ],
        )
        .unwrap();
        db.insert_all(
            "Married",
            vec![tuple!["Barack_Obama_1", "Michelle_Obama_1"]],
        )
        .unwrap();
        db
    }

    fn grounded() -> Grounder {
        let mut g = Grounder::new(program(), base_db(), standard_udfs()).unwrap();
        g.ground().unwrap();
        g
    }

    #[test]
    fn new_document_cascades_to_new_variable_and_factor() {
        let mut g = grounded();
        let vars_before = g.graph().num_variables();
        let factors_before = g.graph().num_factors();

        // A new document with a new person pair arrives.
        let mut update = KbcUpdate::new();
        update
            .insert(
                "Sentence",
                tuple![2i64, "George and his wife Laura were married"],
            )
            .insert("PersonCandidate", tuple![2i64, 20i64, "George"])
            .insert("PersonCandidate", tuple![2i64, 21i64, "Laura"]);

        let inc = g.ground_incremental(&update).unwrap();

        // The candidate pair (20, 21) is derived and the MarriedMentions variable
        // plus its FE1 factor are created.
        assert!(inc.derived_deltas.contains_key("MarriedCandidate"));
        assert_eq!(inc.new_groundings, 1);
        assert_eq!(g.graph().num_variables(), vars_before + 1);
        assert_eq!(g.graph().num_factors(), factors_before + 1);
        assert!(g
            .database()
            .table("MarriedCandidate")
            .unwrap()
            .contains(&tuple![20i64, 21i64]));
        assert!(g
            .variable_for("MarriedMentions", &tuple![20i64, 21i64])
            .is_some());
        // The "and his wife" weight is shared with the original grounding.
        assert!(inc.delta.new_weights.is_empty());

        // The publish dirty-set reports exactly the grown relation, and the
        // drainable catalog delta carries its new entry (on top of the
        // entries still pending from the initial full grounding).
        assert!(inc.touched_relations.contains("MarriedMentions"));
        assert_eq!(inc.touched_relations.len(), 1);
        let fresh = g.take_new_catalog_entries();
        assert!(fresh["MarriedMentions"]
            .iter()
            .any(|(t, _)| *t == tuple![20i64, 21i64]));
        // Drained: a second drain with no new grounding is empty.
        assert!(g.take_new_catalog_entries().is_empty());
    }

    #[test]
    fn incremental_matches_rerun_from_scratch() {
        // Ground incrementally, then compare against grounding the post-update
        // database from scratch: same number of variables, factors, weights.
        let mut inc_grounder = grounded();
        let mut update = KbcUpdate::new();
        update
            .insert("Sentence", tuple![2i64, "Ann and her colleague Bob met"])
            .insert("PersonCandidate", tuple![2i64, 20i64, "Ann"])
            .insert("PersonCandidate", tuple![2i64, 21i64, "Bob"]);
        inc_grounder.ground_incremental(&update).unwrap();

        let mut rerun_db = base_db();
        rerun_db
            .insert_all(
                "Sentence",
                vec![tuple![2i64, "Ann and her colleague Bob met"]],
            )
            .unwrap();
        rerun_db
            .insert_all(
                "PersonCandidate",
                vec![tuple![2i64, 20i64, "Ann"], tuple![2i64, 21i64, "Bob"]],
            )
            .unwrap();
        let mut rerun = Grounder::new(program(), rerun_db, standard_udfs()).unwrap();
        rerun.ground().unwrap();

        assert_eq!(
            inc_grounder.graph().num_variables(),
            rerun.graph().num_variables()
        );
        assert_eq!(
            inc_grounder.graph().num_factors(),
            rerun.graph().num_factors()
        );
        assert_eq!(
            inc_grounder.graph().num_weights(),
            rerun.graph().num_weights()
        );
    }

    #[test]
    fn new_supervision_rule_changes_evidence() {
        let mut g = grounded();
        assert_eq!(g.graph().stats().num_evidence_variables, 0);

        let s1 = Rule::new(
            "S1",
            RuleKind::Supervision,
            atom("MarriedMentions", &["m1", "m2"]),
            vec![
                atom("MarriedCandidate", &["m1", "m2"]),
                RuleAtom::new("EL", vec![Term::var("m1"), Term::var("e1")]),
                RuleAtom::new("EL", vec![Term::var("m2"), Term::var("e2")]),
                RuleAtom::new("Married", vec![Term::var("e1"), Term::var("e2")]),
            ],
            WeightSpec::Label(true),
        );
        let mut update = KbcUpdate::new();
        update.add_rule(s1);
        let inc = g.ground_incremental(&update).unwrap();

        assert_eq!(inc.delta.evidence_changes.len(), 1);
        assert_eq!(g.graph().stats().num_evidence_variables, 1);
        let v = g
            .variable_for("MarriedMentions", &tuple![10i64, 11i64])
            .unwrap();
        assert_eq!(g.graph().variable(v).fixed_value(), Some(true));
    }

    #[test]
    fn new_feature_rule_adds_weights_and_factors() {
        let mut g = grounded();
        let weights_before = g.graph().num_weights();

        // FE2: a coarser feature keyed on the sentence id bucket.
        let fe2 = Rule::new(
            "FE2",
            RuleKind::FeatureExtraction,
            atom("MarriedMentions", &["m1", "m2"]),
            vec![atom("MarriedCandidate", &["m1", "m2"])],
            WeightSpec::Learnable { initial: 0.0 },
        );
        let mut update = KbcUpdate::new();
        update.add_rule(fe2);
        let inc = g.ground_incremental(&update).unwrap();

        assert!(inc.delta.introduces_new_features());
        assert_eq!(g.graph().num_weights(), weights_before + 1);
        assert_eq!(inc.new_groundings, 1);
        assert!(g.weight_for("FE2::rule").is_some());
    }

    #[test]
    fn deletion_is_detected_but_factor_left_in_place() {
        let mut g = grounded();
        let factors_before = g.graph().num_factors();
        let mut update = KbcUpdate::new();
        update.delete("PersonCandidate", tuple![1i64, 11i64, "Michelle"]);
        let inc = g.ground_incremental(&update).unwrap();
        assert!(inc.skipped_deletions > 0);
        assert_eq!(g.graph().num_factors(), factors_before);
        // the base table itself was updated
        assert!(!g
            .database()
            .table("PersonCandidate")
            .unwrap()
            .contains(&tuple![1i64, 11i64, "Michelle"]));
    }

    #[test]
    fn empty_update_is_a_noop() {
        let mut g = grounded();
        let before = g.graph().stats();
        let inc = g.ground_incremental(&KbcUpdate::new()).unwrap();
        assert!(inc.delta.is_empty());
        assert_eq!(inc.new_groundings, 0);
        assert_eq!(g.graph().stats(), before);
        assert!(KbcUpdate::new().is_empty());
    }

    #[test]
    fn repeated_identical_update_grounds_nothing_new() {
        let mut g = grounded();
        let mut update = KbcUpdate::new();
        update
            .insert(
                "Sentence",
                tuple![2i64, "Carol and her husband Dave laughed"],
            )
            .insert("PersonCandidate", tuple![2i64, 20i64, "Carol"])
            .insert("PersonCandidate", tuple![2i64, 21i64, "Dave"]);
        let first = g.ground_incremental(&update).unwrap();
        assert_eq!(first.new_groundings, 1);
        // Applying an update that changes nothing further (its tuples are already
        // present, so the base delta adds derivation counts only) must not create
        // duplicate variables or factors.
        let factors_after_first = g.graph().num_factors();
        let second = g.ground_incremental(&update).unwrap();
        assert_eq!(second.new_groundings, 0);
        assert_eq!(g.graph().num_factors(), factors_after_first);
    }
}

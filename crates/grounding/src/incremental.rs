//! Incremental grounding with retraction (paper §3.1).
//!
//! A KBC iteration changes the input data (new documents, new labels, and —
//! since facts get corrected — *deleted* tuples and *retracted* supervision)
//! and/or the program (new rules).  Incremental grounding turns such a
//! [`KbcUpdate`] into the factor-graph delta (ΔV, ΔF) that incremental
//! inference consumes:
//!
//! 1. supervision retractions are applied first: the head joins the grounder's
//!    sticky suppression set, existing labels are un-pinned, and the evidence
//!    transition is recorded in the delta;
//! 2. base-relation deltas are cascaded through the candidate-mapping rules as
//!    signed multiplicities (Z-sets).  Each rule's materialized view runs a
//!    DRed-style distinct refresh ([`MaterializedView::refresh_dred`]); a
//!    deletion reported by one view is cancelled when a sibling rule with the
//!    same head still derives the tuple (re-derivation);
//! 3. the weighted and supervision rules are differentiated against the
//!    combined base + derived deltas.  Positive binding counts raise the
//!    support of existing groundings or create new ones; negative counts lower
//!    support, and a grounding whose support reaches zero is *retracted*: its
//!    factor is removed from the graph (`swap_remove` compaction), its label
//!    contribution is withdrawn, and variables left without any referencing
//!    grounding are removed along with their catalog entries;
//! 4. brand-new rules are grounded in full against the post-update database;
//! 5. everything is packaged as a [`GraphDelta`] — removals first, then
//!    additions, then evidence transitions — which replays id-exactly on a
//!    clone of the pre-update graph, and the grounder's tuple→variable and
//!    key→weight catalogs shrink or grow in lock-step.
//!
//! A deletion is never silently dropped: retracting a grounding the grounder
//! has no record of, or driving a binding's derivation support negative, is a
//! typed [`GroundingError::Retraction`].

use crate::ast::{Rule, RuleKind, WeightSpec};
use crate::error::{GroundingError, ProgramError};
use crate::grounder::{CatalogOp, Grounder, GroundingRecord, VarUse};
use crate::program::RelationRole;
use dd_factorgraph::{
    DeltaFactor, EvidenceChange, Factor, FactorId, FactorKind, GraphDelta, Lit, NewVarRef,
    NewWeightRef, Semantics, VarId, Variable, VariableRole, Weight,
};
use dd_relstore::{DeltaRelation, MaterializedView, Tuple, Value};
use std::collections::{BTreeSet, HashMap, HashSet};

/// One update to a KBC system: data changes, supervision retractions, and/or
/// new rules.
#[derive(Debug, Clone, Default)]
pub struct KbcUpdate {
    /// Changes to base relations, keyed by relation name.
    pub base_deltas: HashMap<String, DeltaRelation>,
    /// Supervision heads `(relation, tuple)` whose labels are withdrawn and
    /// permanently suppressed.
    pub retracted_supervision: Vec<(String, Tuple)>,
    /// Rules added in this iteration.
    pub new_rules: Vec<Rule>,
}

impl KbcUpdate {
    pub fn new() -> Self {
        KbcUpdate::default()
    }

    /// Record an insertion into a base relation.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> &mut Self {
        self.base_deltas
            .entry(relation.to_string())
            .or_insert_with(|| DeltaRelation::new(relation))
            .insert(tuple);
        self
    }

    /// Record a deletion from a base relation.
    pub fn delete(&mut self, relation: &str, tuple: Tuple) -> &mut Self {
        self.base_deltas
            .entry(relation.to_string())
            .or_insert_with(|| DeltaRelation::new(relation))
            .delete(tuple);
        self
    }

    /// Withdraw supervision from one head tuple (sticky: later labels for the
    /// same head are recorded but never pin the variable again).
    pub fn retract_supervision(&mut self, relation: &str, tuple: Tuple) -> &mut Self {
        self.retracted_supervision
            .push((relation.to_string(), tuple));
        self
    }

    /// Add a new rule.
    pub fn add_rule(&mut self, rule: Rule) -> &mut Self {
        self.new_rules.push(rule);
        self
    }

    /// True if the update changes nothing.
    pub fn is_empty(&self) -> bool {
        self.new_rules.is_empty()
            && self.retracted_supervision.is_empty()
            && self.base_deltas.values().all(|d| d.is_empty())
    }
}

/// Outcome of one incremental grounding run.
#[derive(Debug, Clone, Default)]
pub struct IncrementalGrounding {
    /// The factor-graph delta (already applied to the grounder's graph).
    /// Replaying it on a clone of the pre-update graph reproduces the
    /// post-update graph id-exactly, removals included.
    pub delta: GraphDelta,
    /// Derived-relation deltas produced by cascading through candidate rules.
    pub derived_deltas: HashMap<String, DeltaRelation>,
    /// Number of new groundings (factors or labels) produced.
    pub new_groundings: usize,
    /// Number of groundings whose support reached zero and whose artifacts
    /// (factor, label, orphaned variables) were removed from the graph.
    pub retracted_groundings: usize,
    /// Variable relations whose catalog changed in this run — gained entries,
    /// lost entries, or had entries re-pointed by compaction.  This is the
    /// publish dirty-set: only these relations' snapshot shards need
    /// re-indexing, every other shard can be shared with the previous epoch.
    pub touched_relations: BTreeSet<String>,
}

/// One new grounding staged by the [`DeltaBuilder`], resolved to graph ids
/// after the delta is applied.
struct NewBinding {
    rule: String,
    binding: Tuple,
    support: i64,
    label: Option<bool>,
    /// Index into `delta.new_factors`, for weighted rules.
    factor_slot: Option<usize>,
}

/// Accumulates graph additions in delta form before they are applied.
/// Removals and evidence transitions are handled by the retraction sweep and
/// the final evidence pass in [`Grounder::ground_incremental`]; the builder
/// only ever grows the graph.
#[derive(Default)]
struct DeltaBuilder {
    delta: GraphDelta,
    /// Origin-key base for pending variables: the grounder's `next_var_key`
    /// at builder creation (pending var `i` gets origin key `base + i`).
    base_var_key: u64,
    pending_vars: HashMap<(String, Tuple), usize>,
    pending_var_keys: Vec<(String, Tuple)>,
    pending_weights: HashMap<String, usize>,
    pending_weight_keys: Vec<String>,
    new_bindings: Vec<NewBinding>,
    seen_bindings: HashSet<(String, Tuple)>,
    /// Head tuples to insert into their relation's table once the update lands.
    pending_head_tuples: Vec<(String, Tuple)>,
    new_groundings: usize,
}

impl DeltaBuilder {
    fn new(base_var_key: u64) -> Self {
        DeltaBuilder {
            base_var_key,
            ..DeltaBuilder::default()
        }
    }

    /// Resolve a `(relation, tuple)` to an existing variable or a pending new one.
    fn var_ref(&mut self, grounder: &Grounder, relation: &str, tuple: &Tuple) -> NewVarRef {
        if let Some(v) = grounder.variable_for(relation, tuple) {
            return NewVarRef::Existing(v);
        }
        let key = (relation.to_string(), tuple.clone());
        if let Some(&i) = self.pending_vars.get(&key) {
            return NewVarRef::New(i);
        }
        let i = self.delta.new_variables.len();
        self.delta
            .new_variables
            .push(Variable::query(0).with_origin(relation, self.base_var_key + i as u64));
        self.pending_vars.insert(key.clone(), i);
        self.pending_var_keys.push(key);
        NewVarRef::New(i)
    }

    /// Resolve the weight of one grounding to an existing or pending new weight.
    fn weight_ref<F>(&mut self, grounder: &Grounder, rule: &Rule, value_of: &F) -> NewWeightRef
    where
        F: Fn(&str) -> Value,
    {
        let (description, initial, fixed) =
            Grounder::weight_descriptor(grounder.udfs(), rule, value_of);
        if let Some(w) = grounder.weight_for(&description) {
            return NewWeightRef::Existing(w);
        }
        if let Some(&i) = self.pending_weights.get(&description) {
            return NewWeightRef::New(i);
        }
        let i = self.delta.new_weights.len();
        let weight = if fixed {
            Weight::fixed(0, initial, &description)
        } else {
            Weight::learnable(0, initial, &description)
        };
        self.delta.new_weights.push(weight);
        self.pending_weights.insert(description.clone(), i);
        self.pending_weight_keys.push(description);
        NewWeightRef::New(i)
    }

    /// Ground one binding of a weighted or supervision rule, in delta form,
    /// with an explicit derivation count (its retraction support).  Label roles
    /// are *not* assigned here — the final evidence pass derives every role
    /// from the usage counters, so incremental and from-scratch grounding agree
    /// on conflicting labels.
    fn ground_binding(
        &mut self,
        grounder: &Grounder,
        rule: &Rule,
        binding: &Tuple,
        count: i64,
    ) -> bool {
        let binding_key = (rule.name.clone(), binding.clone());
        if self.seen_bindings.contains(&binding_key)
            || grounder.grounded_binding_exists(&rule.name, binding)
        {
            return false;
        }
        self.seen_bindings.insert(binding_key);

        let projection_vars = rule.projection_vars();
        let value_of = |var: &str| -> Value {
            projection_vars
                .iter()
                .position(|v| v == var)
                .and_then(|i| binding.get(i).cloned())
                .unwrap_or(Value::Null)
        };

        let head_tuple = Grounder::instantiate_atom_tuple(&rule.head.terms, &value_of);
        let head_ref = self.var_ref(grounder, &rule.head.relation, &head_tuple);
        self.pending_head_tuples
            .push((rule.head.relation.clone(), head_tuple.clone()));

        let mut label = None;
        let mut factor_slot = None;
        match (&rule.kind, &rule.weight) {
            (RuleKind::Supervision, WeightSpec::Label(polarity)) => {
                if !grounder.is_supervision_suppressed(&rule.head.relation, &head_tuple) {
                    label = Some(*polarity);
                }
            }
            _ => {
                let weight = self.weight_ref(grounder, rule, &value_of);
                let mut var_refs = Vec::new();
                let slot_of = |refs: &mut Vec<NewVarRef>, r: NewVarRef| -> usize {
                    refs.push(r);
                    refs.len() - 1
                };
                let mut body_lits = Vec::new();
                for atom in &rule.body {
                    if grounder.program().role_of(&atom.relation) == RelationRole::Variable {
                        let t = Grounder::instantiate_atom_tuple(&atom.terms, &value_of);
                        let r = self.var_ref(grounder, &atom.relation, &t);
                        let slot = slot_of(&mut var_refs, r);
                        body_lits.push(Lit {
                            var: slot,
                            positive: !atom.negated,
                        });
                    }
                }
                let head_slot = slot_of(&mut var_refs, head_ref);
                let template = if body_lits.is_empty() {
                    Factor::is_true(0, head_slot)
                } else {
                    match rule.semantics {
                        Semantics::Linear => Factor::new(
                            0,
                            FactorKind::Imply {
                                body: body_lits,
                                head: Lit::pos(head_slot),
                            },
                        ),
                        s => Factor::new(
                            0,
                            FactorKind::Aggregate {
                                head: Lit::pos(head_slot),
                                semantics: s,
                                groundings: vec![body_lits],
                            },
                        ),
                    }
                };
                factor_slot = Some(self.delta.new_factors.len());
                self.delta.new_factors.push(DeltaFactor {
                    weight,
                    template,
                    var_refs,
                });
            }
        }
        self.new_bindings.push(NewBinding {
            rule: rule.name.clone(),
            binding: binding.clone(),
            support: count.max(1),
            label,
            factor_slot,
        });
        self.new_groundings += 1;
        true
    }
}

impl Grounder {
    /// True if a binding of `rule` has already produced a factor/label.
    pub(crate) fn grounded_binding_exists(&self, rule: &str, binding: &Tuple) -> bool {
        self.grounded_bindings
            .get(rule)
            .map(|s| s.contains_key(binding))
            .unwrap_or(false)
    }

    /// Remove one factor from the graph, keeping ownership bookkeeping and
    /// weight refcounts current across the `swap_remove` move, and record the
    /// removal op for replay.
    fn retract_factor(&mut self, fid: FactorId, ops: &mut Vec<FactorId>) {
        let weight_id = self.graph.factor(fid).weight_id;
        self.factor_owners.remove(&fid);
        let moved = self.graph.remove_factor(fid);
        ops.push(fid);
        if let Some(old_last) = moved {
            if let Some(owner) = self.factor_owners.remove(&old_last) {
                if let Some(rec) = self
                    .grounded_bindings
                    .get_mut(&owner.0)
                    .and_then(|m| m.get_mut(&owner.1))
                {
                    rec.factor = Some(fid);
                }
                self.factor_owners.insert(fid, owner);
            }
        }
        let uses = self.weight_use.entry(weight_id).or_insert(0);
        *uses -= 1;
        if *uses <= 0 {
            self.weight_use.remove(&weight_id);
            let description = self.graph.weight(weight_id).description.clone();
            // The weight slot itself stays in the graph (learned-weight vectors
            // are indexed by WeightId); only the catalog forgets it.
            if self.weight_catalog.get(&description) == Some(&weight_id) {
                self.weight_catalog.remove(&description);
            }
        }
    }

    /// Incrementally ground an update, mutating the database, the catalogs, and
    /// the factor graph, and returning the applied [`GraphDelta`] plus statistics.
    pub fn ground_incremental(
        &mut self,
        update: &KbcUpdate,
    ) -> Result<IncrementalGrounding, GroundingError> {
        let mut accumulated: HashMap<String, DeltaRelation> = update
            .base_deltas
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut derived_deltas: HashMap<String, DeltaRelation> = HashMap::new();
        let mut touched_relations = BTreeSet::new();

        // ---- 0. supervision retractions (sticky suppression + un-pinning).
        // The graph is mutated in place; the evidence transitions themselves
        // are emitted by the final evidence pass, once every removal and
        // addition has settled the variable ids, so the replayed delta applies
        // them to the right (post-compaction) variables.
        let mut forced_evidence: BTreeSet<(String, Tuple)> = BTreeSet::new();
        for (relation, tuple) in &update.retracted_supervision {
            self.apply_supervision_retraction(relation, tuple);
            forced_evidence.insert((relation.clone(), tuple.clone()));
        }

        // ---- 1. cascade through candidate-mapping rules (pre-update database).
        let ordered: Vec<Rule> = self
            .program
            .stratified_candidate_rules()
            .ok_or(ProgramError::CyclicCandidateRules)?
            .into_iter()
            .cloned()
            .collect();
        // Candidate rules that have never been evaluated (e.g. the program was
        // created and updates were applied without an explicit initial run) are
        // grounded now, against the pre-update state, so their derived tuples are
        // visible to the weighted rules below.
        for rule in &ordered {
            if !self.candidate_views.contains_key(&rule.name) {
                self.evaluate_candidate_rule(rule)?;
            }
        }
        for rule in &ordered {
            let touches_change = rule
                .body_relations()
                .iter()
                .any(|r| accumulated.contains_key(*r));
            if !touches_change {
                continue;
            }
            let head_rel = rule.head.relation.clone();

            // DRed distinct refresh of this rule's view: ±1 presence
            // transitions within the view, over-deletions already cancelled
            // against the view's own remaining derivations.
            let view_delta = match self.candidate_views.get_mut(&rule.name) {
                Some(view) => view.refresh_dred(&self.db, &accumulated)?,
                None => {
                    // The rule was never grounded (e.g. added in an earlier update
                    // without data): materialize it now against the pre-update
                    // state and differentiate.
                    let q = dd_relstore::ConjunctiveQuery::new(
                        head_rel.clone(),
                        rule.head_vars(),
                        rule.body.clone(),
                    )
                    .with_filters(rule.filters.clone());
                    let mut view = MaterializedView::materialize(q, &self.db)?;
                    let d = view.refresh_dred(&self.db, &accumulated)?;
                    self.candidate_views.insert(rule.name.clone(), view);
                    d
                }
            };

            // Cross-rule re-derivation and dedup: a tuple deleted from this
            // view survives if a sibling rule with the same head still derives
            // it; a tuple added by this view is only new if the head relation
            // did not already carry it (base table + deltas accumulated so far).
            let mut distinct_delta = DeltaRelation::new(head_rel.clone());
            for (tuple, transition) in view_delta.iter() {
                let head_count = self
                    .db
                    .table(&head_rel)
                    .map(|t| t.count(tuple))
                    .unwrap_or(0);
                let pending = accumulated
                    .get(&head_rel)
                    .map(|d| d.count(tuple))
                    .unwrap_or(0);
                let present_before = head_count + pending > 0;
                if transition > 0 {
                    if !present_before {
                        distinct_delta.insert(tuple.clone());
                    }
                } else if present_before {
                    let rederived = self.candidate_views.iter().any(|(name, sibling)| {
                        name != &rule.name
                            && sibling.query().name == head_rel
                            && sibling.result().contains(tuple)
                    });
                    if !rederived {
                        distinct_delta.delete(tuple.clone());
                    }
                }
            }
            if !distinct_delta.is_empty() {
                derived_deltas
                    .entry(head_rel.clone())
                    .or_insert_with(|| DeltaRelation::new(head_rel.clone()))
                    .merge(&distinct_delta);
                accumulated
                    .entry(head_rel.clone())
                    .or_insert_with(|| DeltaRelation::new(head_rel))
                    .merge(&distinct_delta);
            }
        }

        // ---- 2. differentiate the weighted and supervision rules (pre-update db).
        let weighted: Vec<Rule> = self
            .program
            .rules
            .iter()
            .filter(|r| {
                matches!(
                    r.kind,
                    RuleKind::FeatureExtraction | RuleKind::Inference | RuleKind::Supervision
                )
            })
            .cloned()
            .collect();
        let mut rule_deltas: Vec<(Rule, DeltaRelation)> = Vec::new();
        for rule in &weighted {
            let touches_change = rule
                .body_relations()
                .iter()
                .any(|r| accumulated.contains_key(*r));
            if !touches_change {
                continue;
            }
            let query = rule.body_query();
            let delta = query.delta_evaluate(&self.db, &accumulated)?;
            if !delta.is_empty() {
                rule_deltas.push((rule.clone(), delta));
            }
        }

        // ---- 2b. retraction sweep: negative binding counts lower support;
        // support hitting zero retracts the grounding (factor out, label
        // withdrawn, refcounts down), and variables left unreferenced are
        // removed afterwards in sorted key order.
        let mut removed_factor_ops: Vec<FactorId> = Vec::new();
        let mut removed_var_ops: Vec<VarId> = Vec::new();
        let mut label_dirty: BTreeSet<(String, Tuple)> = BTreeSet::new();
        let mut dead_var_keys: BTreeSet<(String, Tuple)> = BTreeSet::new();
        let mut retracted_groundings = 0usize;
        for (rule, delta) in &rule_deltas {
            for (binding, count) in delta.iter() {
                if count >= 0 {
                    continue;
                }
                let Some(record) = self
                    .grounded_bindings
                    .get_mut(&rule.name)
                    .and_then(|m| m.get_mut(binding))
                else {
                    return Err(GroundingError::Retraction {
                        rule: rule.name.clone(),
                        detail: format!(
                            "no grounding recorded for binding {binding:?} (delta {count})"
                        ),
                    });
                };
                if record.support + count < 0 {
                    return Err(GroundingError::Retraction {
                        rule: rule.name.clone(),
                        detail: format!(
                            "binding {binding:?} has support {} but delta {count} \
                             (more deletions than derivations)",
                            record.support
                        ),
                    });
                }
                record.support += count;
                if record.support > 0 {
                    continue;
                }
                let record = self
                    .grounded_bindings
                    .get_mut(&rule.name)
                    .expect("checked above")
                    .remove(binding)
                    .expect("checked above");
                retracted_groundings += 1;

                if let Some(fid) = record.factor {
                    self.retract_factor(fid, &mut removed_factor_ops);
                }

                let projection_vars = rule.projection_vars();
                let value_of = |var: &str| -> Value {
                    projection_vars
                        .iter()
                        .position(|v| v == var)
                        .and_then(|i| binding.get(i).cloned())
                        .unwrap_or(Value::Null)
                };
                let head_key = (
                    rule.head.relation.clone(),
                    Self::instantiate_atom_tuple(&rule.head.terms, &value_of),
                );
                if let Some(label) = record.label {
                    if let Some(usage) = self.var_use.get_mut(&head_key) {
                        if label {
                            usage.pos_labels -= 1;
                        } else {
                            usage.neg_labels -= 1;
                        }
                    }
                    label_dirty.insert(head_key.clone());
                }
                for key in Self::record_var_keys(&self.program, rule, binding) {
                    if let Some(usage) = self.var_use.get_mut(&key) {
                        usage.refs -= 1;
                        if usage.refs <= 0 {
                            dead_var_keys.insert(key);
                        }
                    }
                }
                if let Some(usage) = self.var_use.get_mut(&head_key) {
                    usage.head_refs -= 1;
                    if usage.head_refs <= 0 {
                        // Withdraw the derivation this grounding inserted into
                        // the head's variable relation.
                        if let Ok(table) = self.db.table_mut(&rule.head.relation) {
                            table.delete(&head_key.1);
                        }
                    }
                }
            }
        }
        if !dead_var_keys.is_empty() {
            // Reverse map VarId → catalog key, maintained through swap_remove
            // moves so each removal patches at most one other entry.
            let mut reverse: HashMap<VarId, (String, Tuple)> = self
                .var_catalog
                .iter()
                .map(|(k, &v)| (v, k.clone()))
                .collect();
            for key in &dead_var_keys {
                let Some(vid) = self.var_catalog.remove(key) else {
                    continue;
                };
                self.var_use.remove(key);
                reverse.remove(&vid);
                let moved = self.graph.remove_variable(vid);
                removed_var_ops.push(vid);
                self.fresh_catalog
                    .entry(key.0.clone())
                    .or_default()
                    .push(CatalogOp::Remove(key.1.clone()));
                touched_relations.insert(key.0.clone());
                if let Some(old_last) = moved {
                    if let Some(moved_key) = reverse.remove(&old_last) {
                        self.var_catalog.insert(moved_key.clone(), vid);
                        reverse.insert(vid, moved_key.clone());
                        self.fresh_catalog
                            .entry(moved_key.0.clone())
                            .or_default()
                            .push(CatalogOp::Upsert(moved_key.1.clone(), vid));
                        touched_relations.insert(moved_key.0);
                    }
                }
            }
        }

        // ---- 3. apply the relational deltas to the database.
        for (relation, delta) in accumulated.iter() {
            if let Ok(table) = self.db.table_mut(relation) {
                delta.apply_to(table);
            }
        }

        // ---- 4. additions: positive binding counts, resolved against the
        // post-removal graph, plus brand-new rules grounded in full against
        // the post-update database.
        let mut builder = DeltaBuilder::new(self.next_var_key);
        for (rule, delta) in &rule_deltas {
            for (binding, count) in delta.iter() {
                if count <= 0 {
                    continue;
                }
                if let Some(record) = self
                    .grounded_bindings
                    .get_mut(&rule.name)
                    .and_then(|m| m.get_mut(binding))
                {
                    // Already grounded: the new derivations only raise support.
                    record.support += count;
                } else {
                    builder.ground_binding(self, rule, binding, count);
                }
            }
        }
        for rule in &update.new_rules {
            self.program.rules.push(rule.clone());
            match rule.kind {
                RuleKind::CandidateMapping => {
                    // Full evaluation of the new candidate rule; the inserted
                    // tuples immediately become visible to subsequently added
                    // rules and to later incremental updates.
                    self.evaluate_candidate_rule(rule)?;
                }
                RuleKind::FeatureExtraction | RuleKind::Inference | RuleKind::Supervision => {
                    let query = rule.body_query();
                    let bindings = query.evaluate(&self.db)?;
                    for (binding, count) in bindings.iter_counted() {
                        builder.ground_binding(self, rule, binding, count);
                    }
                }
                RuleKind::ErrorAnalysis => {}
            }
        }

        // ---- 5. apply the additions, update the catalogs and usage counters,
        // then derive every dirty variable's evidence role from the counters.
        let additions = builder.delta.clone();
        let base_weight_count = self.graph.num_weights();
        let (new_var_ids, new_factor_ids) = self.graph.apply_delta(&additions);
        self.next_var_key += builder.pending_var_keys.len() as u64;
        for (key, id) in builder.pending_var_keys.iter().zip(new_var_ids.iter()) {
            self.var_catalog.insert(key.clone(), *id);
            touched_relations.insert(key.0.clone());
            self.fresh_catalog
                .entry(key.0.clone())
                .or_default()
                .push(CatalogOp::Upsert(key.1.clone(), *id));
        }
        for (i, key) in builder.pending_weight_keys.iter().enumerate() {
            self.weight_catalog
                .insert(key.clone(), base_weight_count + i);
        }
        for staged in builder.new_bindings {
            let rule = self
                .program
                .rules
                .iter()
                .find(|r| r.name == staged.rule)
                .cloned()
                .expect("staged binding's rule is in the program");
            let factor = staged.factor_slot.map(|slot| new_factor_ids[slot]);
            if let Some(fid) = factor {
                self.factor_owners
                    .insert(fid, (staged.rule.clone(), staged.binding.clone()));
                let weight_id = self.graph.factor(fid).weight_id;
                *self.weight_use.entry(weight_id).or_insert(0) += 1;
            }
            let projection_vars = rule.projection_vars();
            let value_of = |var: &str| -> Value {
                projection_vars
                    .iter()
                    .position(|v| v == var)
                    .and_then(|i| staged.binding.get(i).cloned())
                    .unwrap_or(Value::Null)
            };
            let head_key = (
                rule.head.relation.clone(),
                Self::instantiate_atom_tuple(&rule.head.terms, &value_of),
            );
            for key in Self::record_var_keys(&self.program, &rule, &staged.binding) {
                self.var_use.entry(key).or_default().refs += 1;
            }
            let usage = self.var_use.entry(head_key.clone()).or_default();
            usage.head_refs += 1;
            if let Some(label) = staged.label {
                if label {
                    usage.pos_labels += 1;
                } else {
                    usage.neg_labels += 1;
                }
                label_dirty.insert(head_key);
            }
            self.grounded_bindings
                .entry(staged.rule)
                .or_default()
                .insert(
                    staged.binding,
                    GroundingRecord {
                        support: staged.support,
                        factor,
                        label: staged.label,
                    },
                );
        }
        for (relation, tuple) in builder.pending_head_tuples {
            if let Ok(table) = self.db.table_mut(&relation) {
                if !table.contains(&tuple) && table.schema().check(tuple.values()) {
                    let _ = table.insert(tuple);
                }
            }
        }

        // Evidence pass: every variable whose label counts changed (or whose
        // supervision was forcibly retracted) gets the role its counters imply.
        // Forced keys emit unconditionally — their in-place role was already
        // updated in phase 0, but a replayed delta still needs the transition.
        let mut evidence_changes = Vec::new();
        for key in label_dirty.union(&forced_evidence) {
            let Some(&var) = self.var_catalog.get(key) else {
                continue;
            };
            let role = self
                .var_use
                .get(key)
                .map(VarUse::role)
                .unwrap_or(VariableRole::Query);
            if forced_evidence.contains(key) || self.graph.variable(var).role != role {
                let v = self.graph.variable_mut(var);
                v.role = role;
                v.initial_value = role.fixed_value().unwrap_or(false);
                evidence_changes.push(EvidenceChange {
                    var,
                    new_role: role,
                });
            }
        }

        let mut delta = additions;
        delta.removed_factors = removed_factor_ops;
        delta.removed_variables = removed_var_ops;
        delta.evidence_changes = evidence_changes;

        Ok(IncrementalGrounding {
            delta,
            derived_deltas,
            new_groundings: builder.new_groundings,
            retracted_groundings,
            touched_relations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::RuleAtom;
    use crate::program::{Program, RelationDecl};
    use crate::udf::standard_udfs;
    use dd_relstore::view::{Filter, Term};
    use dd_relstore::{tuple, DataType, Database, Schema};

    fn atom(rel: &str, vars: &[&str]) -> RuleAtom {
        RuleAtom::new(rel, vars.iter().map(|v| Term::var(*v)).collect())
    }

    /// Same spouse program as the grounder tests, without the supervision rule.
    fn program() -> Program {
        Program::new()
            .declare(RelationDecl::new(
                "Sentence",
                Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "PersonCandidate",
                Schema::of(&[
                    ("s", DataType::Int),
                    ("m", DataType::Int),
                    ("text", DataType::Text),
                ]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "EL",
                Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "Married",
                Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "MarriedCandidate",
                Schema::of(&[("m1", DataType::Int), ("m2", DataType::Int)]),
                RelationRole::Derived,
            ))
            .declare(RelationDecl::new(
                "MarriedMentions",
                Schema::of(&[("m1", DataType::Int), ("m2", DataType::Int)]),
                RelationRole::Variable,
            ))
            .rule(
                Rule::new(
                    "R1",
                    RuleKind::CandidateMapping,
                    atom("MarriedCandidate", &["m1", "m2"]),
                    vec![
                        RuleAtom::new(
                            "PersonCandidate",
                            vec![Term::var("s"), Term::var("m1"), Term::var("t1")],
                        ),
                        RuleAtom::new(
                            "PersonCandidate",
                            vec![Term::var("s"), Term::var("m2"), Term::var("t2")],
                        ),
                    ],
                    WeightSpec::None,
                )
                .with_filters(vec![Filter::Lt("m1".into(), "m2".into())]),
            )
            .rule(Rule::new(
                "FE1",
                RuleKind::FeatureExtraction,
                atom("MarriedMentions", &["m1", "m2"]),
                vec![
                    atom("MarriedCandidate", &["m1", "m2"]),
                    RuleAtom::new(
                        "PersonCandidate",
                        vec![Term::var("s"), Term::var("m1"), Term::var("t1")],
                    ),
                    RuleAtom::new(
                        "PersonCandidate",
                        vec![Term::var("s"), Term::var("m2"), Term::var("t2")],
                    ),
                    RuleAtom::new("Sentence", vec![Term::var("s"), Term::var("content")]),
                ],
                WeightSpec::Tied {
                    udf: "phrase".into(),
                    args: vec!["t1".into(), "t2".into(), "content".into()],
                },
            ))
    }

    fn base_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Sentence",
            Schema::of(&[("s", DataType::Int), ("content", DataType::Text)]),
        )
        .unwrap();
        db.create_table(
            "PersonCandidate",
            Schema::of(&[
                ("s", DataType::Int),
                ("m", DataType::Int),
                ("text", DataType::Text),
            ]),
        )
        .unwrap();
        db.create_table(
            "EL",
            Schema::of(&[("m", DataType::Int), ("e", DataType::Text)]),
        )
        .unwrap();
        db.create_table(
            "Married",
            Schema::of(&[("e1", DataType::Text), ("e2", DataType::Text)]),
        )
        .unwrap();
        db.insert_all(
            "Sentence",
            vec![tuple![
                1i64,
                "Barack and his wife Michelle attended the dinner"
            ]],
        )
        .unwrap();
        db.insert_all(
            "PersonCandidate",
            vec![
                tuple![1i64, 10i64, "Barack"],
                tuple![1i64, 11i64, "Michelle"],
            ],
        )
        .unwrap();
        db.insert_all(
            "EL",
            vec![
                tuple![10i64, "Barack_Obama_1"],
                tuple![11i64, "Michelle_Obama_1"],
            ],
        )
        .unwrap();
        db.insert_all(
            "Married",
            vec![tuple!["Barack_Obama_1", "Michelle_Obama_1"]],
        )
        .unwrap();
        db
    }

    fn grounded() -> Grounder {
        let mut g = Grounder::new(program(), base_db(), standard_udfs()).unwrap();
        g.ground().unwrap();
        g
    }

    #[test]
    fn new_document_cascades_to_new_variable_and_factor() {
        let mut g = grounded();
        let vars_before = g.graph().num_variables();
        let factors_before = g.graph().num_factors();

        // A new document with a new person pair arrives.
        let mut update = KbcUpdate::new();
        update
            .insert(
                "Sentence",
                tuple![2i64, "George and his wife Laura were married"],
            )
            .insert("PersonCandidate", tuple![2i64, 20i64, "George"])
            .insert("PersonCandidate", tuple![2i64, 21i64, "Laura"]);

        let inc = g.ground_incremental(&update).unwrap();

        // The candidate pair (20, 21) is derived and the MarriedMentions variable
        // plus its FE1 factor are created.
        assert!(inc.derived_deltas.contains_key("MarriedCandidate"));
        assert_eq!(inc.new_groundings, 1);
        assert_eq!(g.graph().num_variables(), vars_before + 1);
        assert_eq!(g.graph().num_factors(), factors_before + 1);
        assert!(g
            .database()
            .table("MarriedCandidate")
            .unwrap()
            .contains(&tuple![20i64, 21i64]));
        assert!(g
            .variable_for("MarriedMentions", &tuple![20i64, 21i64])
            .is_some());
        // The "and his wife" weight is shared with the original grounding.
        assert!(inc.delta.new_weights.is_empty());

        // The publish dirty-set reports exactly the grown relation, and the
        // drainable catalog delta carries its new entry (on top of the
        // entries still pending from the initial full grounding).
        assert!(inc.touched_relations.contains("MarriedMentions"));
        assert_eq!(inc.touched_relations.len(), 1);
        let fresh = g.take_catalog_delta();
        assert!(fresh["MarriedMentions"]
            .iter()
            .any(|op| matches!(op, CatalogOp::Upsert(t, _) if *t == tuple![20i64, 21i64])));
        // Drained: a second drain with no new grounding is empty.
        assert!(g.take_catalog_delta().is_empty());
    }

    #[test]
    fn incremental_matches_rerun_from_scratch() {
        // Ground incrementally, then compare against grounding the post-update
        // database from scratch: same number of variables, factors, weights.
        let mut inc_grounder = grounded();
        let mut update = KbcUpdate::new();
        update
            .insert("Sentence", tuple![2i64, "Ann and her colleague Bob met"])
            .insert("PersonCandidate", tuple![2i64, 20i64, "Ann"])
            .insert("PersonCandidate", tuple![2i64, 21i64, "Bob"]);
        inc_grounder.ground_incremental(&update).unwrap();

        let mut rerun_db = base_db();
        rerun_db
            .insert_all(
                "Sentence",
                vec![tuple![2i64, "Ann and her colleague Bob met"]],
            )
            .unwrap();
        rerun_db
            .insert_all(
                "PersonCandidate",
                vec![tuple![2i64, 20i64, "Ann"], tuple![2i64, 21i64, "Bob"]],
            )
            .unwrap();
        let mut rerun = Grounder::new(program(), rerun_db, standard_udfs()).unwrap();
        rerun.ground().unwrap();

        assert_eq!(
            inc_grounder.graph().num_variables(),
            rerun.graph().num_variables()
        );
        assert_eq!(
            inc_grounder.graph().num_factors(),
            rerun.graph().num_factors()
        );
        assert_eq!(
            inc_grounder.graph().num_weights(),
            rerun.graph().num_weights()
        );
    }

    #[test]
    fn new_supervision_rule_changes_evidence() {
        let mut g = grounded();
        assert_eq!(g.graph().stats().num_evidence_variables, 0);

        let s1 = Rule::new(
            "S1",
            RuleKind::Supervision,
            atom("MarriedMentions", &["m1", "m2"]),
            vec![
                atom("MarriedCandidate", &["m1", "m2"]),
                RuleAtom::new("EL", vec![Term::var("m1"), Term::var("e1")]),
                RuleAtom::new("EL", vec![Term::var("m2"), Term::var("e2")]),
                RuleAtom::new("Married", vec![Term::var("e1"), Term::var("e2")]),
            ],
            WeightSpec::Label(true),
        );
        let mut update = KbcUpdate::new();
        update.add_rule(s1);
        let inc = g.ground_incremental(&update).unwrap();

        assert_eq!(inc.delta.evidence_changes.len(), 1);
        assert_eq!(g.graph().stats().num_evidence_variables, 1);
        let v = g
            .variable_for("MarriedMentions", &tuple![10i64, 11i64])
            .unwrap();
        assert_eq!(g.graph().variable(v).fixed_value(), Some(true));
    }

    #[test]
    fn new_feature_rule_adds_weights_and_factors() {
        let mut g = grounded();
        let weights_before = g.graph().num_weights();

        // FE2: a coarser feature keyed on the sentence id bucket.
        let fe2 = Rule::new(
            "FE2",
            RuleKind::FeatureExtraction,
            atom("MarriedMentions", &["m1", "m2"]),
            vec![atom("MarriedCandidate", &["m1", "m2"])],
            WeightSpec::Learnable { initial: 0.0 },
        );
        let mut update = KbcUpdate::new();
        update.add_rule(fe2);
        let inc = g.ground_incremental(&update).unwrap();

        assert!(inc.delta.introduces_new_features());
        assert_eq!(g.graph().num_weights(), weights_before + 1);
        assert_eq!(inc.new_groundings, 1);
        assert!(g.weight_for("FE2::rule").is_some());
    }

    #[test]
    fn deletion_retracts_the_factor_and_orphaned_variable() {
        let mut g = grounded();
        assert_eq!(g.graph().num_factors(), 1);
        assert_eq!(g.graph().num_variables(), 1);
        let mut update = KbcUpdate::new();
        update.delete("PersonCandidate", tuple![1i64, 11i64, "Michelle"]);
        let inc = g.ground_incremental(&update).unwrap();
        assert_eq!(inc.retracted_groundings, 1);
        assert_eq!(inc.delta.removed_factors.len(), 1);
        assert_eq!(inc.delta.removed_variables.len(), 1);
        // The grounding, its factor, and the now-unreferenced variable are gone.
        assert_eq!(g.graph().num_factors(), 0);
        assert_eq!(g.graph().num_variables(), 0);
        assert!(g
            .variable_for("MarriedMentions", &tuple![10i64, 11i64])
            .is_none());
        assert!(inc.touched_relations.contains("MarriedMentions"));
        // Base table, derived candidate, and head variable relation all shrank.
        assert!(!g
            .database()
            .table("PersonCandidate")
            .unwrap()
            .contains(&tuple![1i64, 11i64, "Michelle"]));
        assert!(!g
            .database()
            .table("MarriedCandidate")
            .unwrap()
            .contains(&tuple![10i64, 11i64]));
        assert!(!g
            .database()
            .table("MarriedMentions")
            .unwrap()
            .contains(&tuple![10i64, 11i64]));
        // The catalog delta records the removal for the snapshot publisher.
        let fresh = g.take_catalog_delta();
        assert!(fresh["MarriedMentions"]
            .iter()
            .any(|op| matches!(op, CatalogOp::Remove(t) if *t == tuple![10i64, 11i64])));
    }

    #[test]
    fn deleting_more_derivations_than_exist_is_a_typed_error() {
        let mut g = grounded();
        let mut update = KbcUpdate::new();
        // Two deletions of a tuple that carries one derivation.
        update.delete(
            "Sentence",
            tuple![1i64, "Barack and his wife Michelle attended the dinner"],
        );
        update.delete(
            "Sentence",
            tuple![1i64, "Barack and his wife Michelle attended the dinner"],
        );
        let err = g.ground_incremental(&update).unwrap_err();
        assert!(matches!(err, GroundingError::Retraction { .. }));
    }

    #[test]
    fn insert_then_delete_round_trips_to_the_original_graph() {
        let mut g = grounded();
        let baseline = g.graph().clone();
        let mut grow = KbcUpdate::new();
        grow.insert(
            "Sentence",
            tuple![2i64, "George and his wife Laura were married"],
        )
        .insert("PersonCandidate", tuple![2i64, 20i64, "George"])
        .insert("PersonCandidate", tuple![2i64, 21i64, "Laura"]);
        g.ground_incremental(&grow).unwrap();
        assert_eq!(g.graph().num_variables(), 2);

        let mut shrink = KbcUpdate::new();
        shrink
            .delete(
                "Sentence",
                tuple![2i64, "George and his wife Laura were married"],
            )
            .delete("PersonCandidate", tuple![2i64, 20i64, "George"])
            .delete("PersonCandidate", tuple![2i64, 21i64, "Laura"]);
        let inc = g.ground_incremental(&shrink).unwrap();
        assert_eq!(inc.retracted_groundings, 1);
        assert_eq!(g.graph().num_variables(), baseline.num_variables());
        assert_eq!(g.graph().num_factors(), baseline.num_factors());
        // Zero full-rebuild fallbacks: the delta alone replays the transition.
        assert!(inc.delta.has_removals());
    }

    #[test]
    fn retraction_delta_replays_id_exact_on_the_pre_update_graph() {
        let mut g = grounded();
        let mut grow = KbcUpdate::new();
        grow.insert(
            "Sentence",
            tuple![2i64, "George and his wife Laura were married"],
        )
        .insert("PersonCandidate", tuple![2i64, 20i64, "George"])
        .insert("PersonCandidate", tuple![2i64, 21i64, "Laura"]);
        g.ground_incremental(&grow).unwrap();

        let pre = g.graph().clone();
        let mut shrink = KbcUpdate::new();
        shrink.delete("PersonCandidate", tuple![1i64, 11i64, "Michelle"]);
        let inc = g.ground_incremental(&shrink).unwrap();

        let mut replayed = pre;
        replayed.apply_delta(&inc.delta);
        assert_eq!(&replayed, g.graph());
    }

    #[test]
    fn empty_update_is_a_noop() {
        let mut g = grounded();
        let before = g.graph().stats();
        let inc = g.ground_incremental(&KbcUpdate::new()).unwrap();
        assert!(inc.delta.is_empty());
        assert_eq!(inc.new_groundings, 0);
        assert_eq!(inc.retracted_groundings, 0);
        assert_eq!(g.graph().stats(), before);
        assert!(KbcUpdate::new().is_empty());
    }

    #[test]
    fn repeated_identical_update_grounds_nothing_new() {
        let mut g = grounded();
        let mut update = KbcUpdate::new();
        update
            .insert(
                "Sentence",
                tuple![2i64, "Carol and her husband Dave laughed"],
            )
            .insert("PersonCandidate", tuple![2i64, 20i64, "Carol"])
            .insert("PersonCandidate", tuple![2i64, 21i64, "Dave"]);
        let first = g.ground_incremental(&update).unwrap();
        assert_eq!(first.new_groundings, 1);
        // Applying an update that changes nothing further (its tuples are already
        // present, so the base delta adds derivation counts only) must not create
        // duplicate variables or factors.
        let factors_after_first = g.graph().num_factors();
        let second = g.ground_incremental(&update).unwrap();
        assert_eq!(second.new_groundings, 0);
        assert_eq!(g.graph().num_factors(), factors_after_first);
    }

    #[test]
    fn retract_supervision_unpins_and_suppresses_future_labels() {
        let mut g = grounded();
        let s1 = Rule::new(
            "S1",
            RuleKind::Supervision,
            atom("MarriedMentions", &["m1", "m2"]),
            vec![
                atom("MarriedCandidate", &["m1", "m2"]),
                RuleAtom::new("EL", vec![Term::var("m1"), Term::var("e1")]),
                RuleAtom::new("EL", vec![Term::var("m2"), Term::var("e2")]),
                RuleAtom::new("Married", vec![Term::var("e1"), Term::var("e2")]),
            ],
            WeightSpec::Label(true),
        );
        let mut add = KbcUpdate::new();
        add.add_rule(s1);
        g.ground_incremental(&add).unwrap();
        assert_eq!(g.graph().stats().num_evidence_variables, 1);

        let mut retract = KbcUpdate::new();
        retract.retract_supervision("MarriedMentions", tuple![10i64, 11i64]);
        let inc = g.ground_incremental(&retract).unwrap();
        assert_eq!(inc.delta.evidence_changes.len(), 1);
        assert_eq!(g.graph().stats().num_evidence_variables, 0);
        let v = g
            .variable_for("MarriedMentions", &tuple![10i64, 11i64])
            .unwrap();
        assert_eq!(g.graph().variable(v).role, VariableRole::Query);
        assert!(!g.graph().variable(v).initial_value);
        assert!(g.is_supervision_suppressed("MarriedMentions", &tuple![10i64, 11i64]));
        // The suppressed record is still tracked, just label-free.
        let record = g.grounding_record("S1", &tuple![10i64, 11i64]).unwrap();
        assert_eq!(record.label, None);
    }
}

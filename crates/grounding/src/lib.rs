//! # dd-grounding — DeepDive's declarative rule language and grounding
//!
//! DeepDive programs are sets of datalog-style rules over a relational schema
//! (paper §2.2): *candidate mapping* rules populate derived relations,
//! *feature extraction* rules attach tied-weight factors to candidate tuples,
//! *supervision* rules label variables as positive/negative evidence (distant
//! supervision), and *inference* rules add correlations between variables.
//! Grounding evaluates those rules against the database and emits a factor graph
//! in which every tuple of a variable relation is a Boolean random variable and
//! every rule grounding is a factor (§2.4–2.5, Figure 3).
//!
//! This crate contains:
//!
//! * [`ast`] — the rule AST ([`Rule`], [`RuleKind`], [`WeightSpec`]);
//! * [`program`] — relation declarations, whole programs, stratification and the
//!   hierarchical-program check of Appendix A;
//! * [`udf`] — the user-defined-function registry used for feature extraction
//!   and weight tying (`weight = phrase(m1, m2, sent)`);
//! * [`parser`] — a small text syntax for writing programs in examples/tests;
//! * [`grounder`] — full grounding: rules + database → factor graph;
//! * [`incremental`] — incremental grounding: base-relation deltas and/or new
//!   rules → cascaded view deltas (DRed, §3.1) → a factor-graph
//!   [`dd_factorgraph::GraphDelta`].

pub mod ast;
pub mod error;
pub mod grounder;
pub mod incremental;
pub mod parser;
pub mod program;
pub mod udf;

pub use ast::{Rule, RuleAtom, RuleKind, WeightSpec};
pub use error::{GroundingError, ProgramError};
pub use grounder::{CatalogOp, Grounder, GrounderState, GroundingResult};
pub use incremental::{IncrementalGrounding, KbcUpdate};
pub use parser::{parse_program, parse_rule, ParseError};
pub use program::{Program, RelationDecl, RelationRole};
pub use udf::{standard_udfs, UdfRegistry};

//! A small text syntax for DeepDive programs.
//!
//! The original DeepDive exposes a datalog-flavoured language (DDlog); this
//! module provides an equivalent, deliberately tiny, line-oriented syntax so
//! examples and tests can declare programs as text:
//!
//! ```text
//! # The running spouse example.
//! relation Sentence(s: int, content: text) base.
//! relation PersonCandidate(s: int, m: int, t: text) base.
//! relation MarriedCandidate(m1: int, m2: int) derived.
//! relation MarriedMentions(m1: int, m2: int) variable.
//!
//! rule R1 candidate:
//!   MarriedCandidate(m1, m2) :- PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), m1 < m2.
//! rule FE1 feature:
//!   MarriedMentions(m1, m2) :- MarriedCandidate(m1, m2), Sentence(s, content)
//!   weight = phrase(t1, t2, content).
//! rule S1 supervision+:
//!   MarriedMentions(m1, m2) :- MarriedCandidate(m1, m2), Married(m1, m2).
//! ```
//!
//! * relation roles: `base`, `derived`, `variable`;
//! * rule kinds: `candidate`, `feature`, `inference`, `analysis`,
//!   `supervision+` / `supervision-`;
//! * an optional `@linear` / `@ratio` / `@logical` after the kind selects the
//!   rule semantics (Figure 4);
//! * weights: `weight = 1.5` (fixed), `weight = learn(0.0)` (one learnable
//!   weight), `weight = udf(x, y)` (tied through a UDF);
//! * `!Atom(x, y)` negates an atom; `a < b`, `a != b`, `a = b` are filters.

use crate::ast::{Rule, RuleAtom, RuleKind, WeightSpec};
use crate::program::{Program, RelationDecl, RelationRole};
use dd_factorgraph::Semantics;
use dd_relstore::view::{Filter, QueryAtom, Term};
use dd_relstore::{Column, DataType, Schema, Value};

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Parse a whole program.  Statements end with `.`; `#` starts a comment.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut program = Program::new();
    for statement in split_statements(text) {
        let s = statement.trim();
        if s.is_empty() {
            continue;
        }
        if let Some(rest) = s.strip_prefix("relation ") {
            program.relations.push(parse_relation(rest)?);
        } else if let Some(rest) = s.strip_prefix("rule ") {
            program.rules.push(parse_rule_body(rest)?);
        } else {
            return err(format!("unknown statement: `{s}`"));
        }
    }
    Ok(program)
}

/// Parse one rule written as `rule NAME kind: head :- body …` (without the
/// trailing period).
pub fn parse_rule(text: &str) -> Result<Rule, ParseError> {
    let t = text.trim();
    let t = t.strip_prefix("rule ").unwrap_or(t);
    let t = t.strip_suffix('.').unwrap_or(t);
    parse_rule_body(t)
}

/// Split source text into `.`-terminated statements, dropping comments.
fn split_statements(text: &str) -> Vec<String> {
    let no_comments: String = text
        .lines()
        .map(|l| match l.find('#') {
            Some(i) => &l[..i],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n");
    // A '.' ends a statement only when followed by whitespace/EOF, so decimal
    // numbers like 1.5 survive.
    let mut statements = Vec::new();
    let mut current = String::new();
    let chars: Vec<char> = no_comments.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '.' {
            let next = chars.get(i + 1);
            if next.is_none() || next.map(|n| n.is_whitespace()).unwrap_or(false) {
                statements.push(std::mem::take(&mut current));
                continue;
            }
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        statements.push(current);
    }
    statements
}

/// `Name(col: type, …) role`
fn parse_relation(text: &str) -> Result<RelationDecl, ParseError> {
    let open = text.find('(').ok_or(ParseError("expected `(`".into()))?;
    let close = text.rfind(')').ok_or(ParseError("expected `)`".into()))?;
    let name = text[..open].trim().to_string();
    let cols_text = &text[open + 1..close];
    let role_text = text[close + 1..].trim();
    let role = match role_text {
        "base" => RelationRole::Base,
        "derived" => RelationRole::Derived,
        "variable" => RelationRole::Variable,
        other => return err(format!("unknown relation role `{other}`")),
    };
    let mut columns = Vec::new();
    for col in cols_text.split(',') {
        let col = col.trim();
        if col.is_empty() {
            continue;
        }
        let (cname, ctype) = col
            .split_once(':')
            .ok_or_else(|| ParseError(format!("column `{col}` must be `name: type`")))?;
        let dt = match ctype.trim() {
            "int" => DataType::Int,
            "text" => DataType::Text,
            "bool" => DataType::Bool,
            "float" => DataType::Float,
            other => return err(format!("unknown column type `{other}`")),
        };
        columns.push(Column::new(cname.trim(), dt));
    }
    Ok(RelationDecl::new(name, Schema::new(columns), role))
}

/// `NAME kind[@semantics]: head :- body [weight = …]`
fn parse_rule_body(text: &str) -> Result<Rule, ParseError> {
    let (header, rest) = text
        .split_once(':')
        .ok_or(ParseError("expected `:` after the rule header".into()))?;
    let mut header_parts = header.split_whitespace();
    let name = header_parts
        .next()
        .ok_or(ParseError("missing rule name".into()))?
        .to_string();
    let kind_text = header_parts
        .next()
        .ok_or(ParseError("missing rule kind".into()))?;
    let (kind_text, semantics) = match kind_text.split_once('@') {
        Some((k, s)) => (k, parse_semantics(s)?),
        None => (kind_text, Semantics::default()),
    };
    let (kind, label) = match kind_text {
        "candidate" => (RuleKind::CandidateMapping, None),
        "feature" => (RuleKind::FeatureExtraction, None),
        "inference" => (RuleKind::Inference, None),
        "analysis" => (RuleKind::ErrorAnalysis, None),
        "supervision+" => (RuleKind::Supervision, Some(true)),
        "supervision-" => (RuleKind::Supervision, Some(false)),
        other => return err(format!("unknown rule kind `{other}`")),
    };

    // Split off the weight clause, if any.
    let (body_text, weight_text) = match rest.find("weight") {
        Some(i) if rest[i..].trim_start().starts_with("weight") => {
            let clause = &rest[i..];
            let eq = clause
                .find('=')
                .ok_or(ParseError("expected `=` after weight".into()))?;
            (&rest[..i], Some(clause[eq + 1..].trim()))
        }
        _ => (rest, None),
    };

    let (head_text, body_atoms_text) = body_text
        .split_once(":-")
        .map(|(h, b)| (h, Some(b)))
        .unwrap_or((body_text, None));

    let head = parse_atom(head_text.trim())?;
    let mut body = Vec::new();
    let mut filters = Vec::new();
    if let Some(atoms_text) = body_atoms_text {
        for part in split_top_level(atoms_text, ',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(filter) = try_parse_filter(part) {
                filters.push(filter);
            } else {
                body.push(parse_atom(part)?);
            }
        }
    }

    let weight = match (kind, label, weight_text) {
        (RuleKind::Supervision, Some(polarity), _) => WeightSpec::Label(polarity),
        (RuleKind::CandidateMapping | RuleKind::ErrorAnalysis, _, _) => WeightSpec::None,
        (_, _, None) => WeightSpec::Learnable { initial: 0.0 },
        (_, _, Some(spec)) => parse_weight_spec(spec)?,
    };

    Ok(Rule {
        name,
        kind,
        head,
        body,
        filters,
        weight,
        semantics,
    })
}

fn parse_semantics(s: &str) -> Result<Semantics, ParseError> {
    match s {
        "linear" => Ok(Semantics::Linear),
        "ratio" => Ok(Semantics::Ratio),
        "logical" => Ok(Semantics::Logical),
        other => err(format!("unknown semantics `{other}`")),
    }
}

fn parse_weight_spec(spec: &str) -> Result<WeightSpec, ParseError> {
    let spec = spec.trim();
    if let Ok(v) = spec.parse::<f64>() {
        return Ok(WeightSpec::Fixed(v));
    }
    if let Some(inner) = spec
        .strip_prefix("learn(")
        .and_then(|s| s.strip_suffix(')'))
    {
        let initial = inner.trim().parse::<f64>().unwrap_or(0.0);
        return Ok(WeightSpec::Learnable { initial });
    }
    // udf(arg1, arg2, …)
    let open = spec
        .find('(')
        .ok_or_else(|| ParseError(format!("cannot parse weight spec `{spec}`")))?;
    let close = spec
        .rfind(')')
        .ok_or_else(|| ParseError(format!("cannot parse weight spec `{spec}`")))?;
    let udf = spec[..open].trim().to_string();
    let args = spec[open + 1..close]
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    Ok(WeightSpec::Tied { udf, args })
}

/// `Name(term, …)` possibly prefixed by `!` for negation.
fn parse_atom(text: &str) -> Result<RuleAtom, ParseError> {
    let text = text.trim();
    let (negated, text) = match text.strip_prefix('!') {
        Some(rest) => (true, rest.trim()),
        None => (false, text),
    };
    let open = text
        .find('(')
        .ok_or_else(|| ParseError(format!("atom `{text}` is missing `(`")))?;
    let close = text
        .rfind(')')
        .ok_or_else(|| ParseError(format!("atom `{text}` is missing `)`")))?;
    let relation = text[..open].trim().to_string();
    if relation.is_empty() {
        return err("atom with empty relation name");
    }
    let mut terms = Vec::new();
    for t in split_top_level(&text[open + 1..close], ',') {
        let t = t.trim();
        if t.is_empty() {
            continue;
        }
        terms.push(parse_term(t)?);
    }
    let atom = QueryAtom::new(relation, terms);
    Ok(if negated { atom.negated() } else { atom })
}

fn parse_term(t: &str) -> Result<Term, ParseError> {
    if let Some(s) = t.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
        return Ok(Term::Const(Value::text(s)));
    }
    if let Some(s) = t.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        return Ok(Term::Const(Value::text(s)));
    }
    if let Ok(i) = t.parse::<i64>() {
        return Ok(Term::Const(Value::Int(i)));
    }
    if t == "true" || t == "false" {
        return Ok(Term::Const(Value::Bool(t == "true")));
    }
    if t.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Ok(Term::var(t));
    }
    err(format!("cannot parse term `{t}`"))
}

fn try_parse_filter(text: &str) -> Option<Filter> {
    for (op, build) in [
        ("!=", Filter::Ne as fn(String, String) -> Filter),
        ("<", Filter::Lt as fn(String, String) -> Filter),
        ("=", Filter::Eq as fn(String, String) -> Filter),
    ] {
        if let Some((a, b)) = text.split_once(op) {
            let (a, b) = (a.trim(), b.trim());
            let is_var =
                |s: &str| !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_');
            if is_var(a) && is_var(b) && !text.contains('(') {
                return Some(build(a.to_string(), b.to_string()));
            }
        }
    }
    None
}

/// Split on `sep` at paren depth 0.
fn split_top_level(text: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            c if c == sep && depth == 0 => out.push(std::mem::take(&mut current)),
            c => current.push(c),
        }
    }
    out.push(current);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPOUSE: &str = r#"
        # The running spouse example from the paper (Figure 2).
        relation Sentence(s: int, content: text) base.
        relation PersonCandidate(s: int, m: int, t: text) base.
        relation EL(m: int, e: text) base.
        relation Married(e1: text, e2: text) base.
        relation MarriedCandidate(m1: int, m2: int) derived.
        relation MarriedMentions(m1: int, m2: int) variable.

        rule R1 candidate:
          MarriedCandidate(m1, m2) :-
            PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2), m1 < m2.

        rule FE1 feature:
          MarriedMentions(m1, m2) :-
            MarriedCandidate(m1, m2),
            PersonCandidate(s, m1, t1), PersonCandidate(s, m2, t2),
            Sentence(s, content)
          weight = phrase(t1, t2, content).

        rule S1 supervision+:
          MarriedMentions(m1, m2) :-
            MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).

        rule I1 inference@logical:
          MarriedMentions(m2, m1) :- MarriedMentions(m1, m2)
          weight = 3.0.
    "#;

    #[test]
    fn parses_the_spouse_program() {
        let p = parse_program(SPOUSE).unwrap();
        assert_eq!(p.relations.len(), 6);
        assert_eq!(p.rules.len(), 4);
        assert!(p.validate().is_ok());

        let r1 = &p.rules[0];
        assert_eq!(r1.name, "R1");
        assert_eq!(r1.kind, RuleKind::CandidateMapping);
        assert_eq!(r1.body.len(), 2);
        assert_eq!(r1.filters, vec![Filter::Lt("m1".into(), "m2".into())]);

        let fe1 = &p.rules[1];
        assert_eq!(fe1.kind, RuleKind::FeatureExtraction);
        assert_eq!(
            fe1.weight,
            WeightSpec::Tied {
                udf: "phrase".into(),
                args: vec!["t1".into(), "t2".into(), "content".into()],
            }
        );

        let s1 = &p.rules[2];
        assert_eq!(s1.kind, RuleKind::Supervision);
        assert_eq!(s1.weight, WeightSpec::Label(true));

        let i1 = &p.rules[3];
        assert_eq!(i1.kind, RuleKind::Inference);
        assert_eq!(i1.semantics, Semantics::Logical);
        assert_eq!(i1.weight, WeightSpec::Fixed(3.0));
    }

    #[test]
    fn relation_roles_and_types() {
        let p = parse_program("relation R(x: int, y: float, z: bool, w: text) variable.").unwrap();
        let r = &p.relations[0];
        assert_eq!(r.role, RelationRole::Variable);
        assert_eq!(r.schema.arity(), 4);
        assert_eq!(r.schema.type_at(1), Some(DataType::Float));
        assert_eq!(r.schema.type_at(2), Some(DataType::Bool));
    }

    #[test]
    fn constants_and_negation() {
        let rule = parse_rule(
            "rule N supervision-: Spam(m) :- Labeled(m, 'ham'), !Whitelist(m), Count(m, 3).",
        )
        .unwrap();
        assert_eq!(rule.weight, WeightSpec::Label(false));
        assert_eq!(rule.body.len(), 3);
        assert_eq!(rule.body[0].terms[1], Term::Const(Value::text("ham")));
        assert!(rule.body[1].negated);
        assert_eq!(rule.body[2].terms[1], Term::Const(Value::Int(3)));
    }

    #[test]
    fn learnable_weight_and_default_weight() {
        let r = parse_rule("rule F feature: A(x) :- B(x) weight = learn(0.5).").unwrap();
        assert_eq!(r.weight, WeightSpec::Learnable { initial: 0.5 });
        let r2 = parse_rule("rule F feature: A(x) :- B(x).").unwrap();
        assert_eq!(r2.weight, WeightSpec::Learnable { initial: 0.0 });
    }

    #[test]
    fn decimal_weights_do_not_break_statement_splitting() {
        let p = parse_program(
            "relation A(x: int) variable. relation B(x: int) base. rule I inference: A(x) :- B(x) weight = 1.5.",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].weight, WeightSpec::Fixed(1.5));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_program("nonsense statement.").is_err());
        assert!(parse_program("relation Broken(x int) base.").is_err());
        assert!(parse_program("relation R(x: int) strange_role.").is_err());
        assert!(parse_rule("rule X weird: A(x) :- B(x).").is_err());
        assert!(parse_rule("rule X feature A(x) B(x)").is_err());
        let e = parse_program("relation R(x: wat) base.").unwrap_err();
        assert!(e.to_string().contains("wat"));
    }

    #[test]
    fn analysis_rules_have_no_weight() {
        let r =
            parse_rule("rule A1 analysis: Marginals(m1, m2) :- MarriedMentions(m1, m2).").unwrap();
        assert_eq!(r.kind, RuleKind::ErrorAnalysis);
        assert_eq!(r.weight, WeightSpec::None);
    }
}

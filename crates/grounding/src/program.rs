//! Programs: relation declarations plus rules, with stratification helpers.

use crate::ast::{Rule, RuleKind};
use crate::error::ProgramError;
use dd_relstore::{Database, Schema};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// How a relation participates in the probabilistic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationRole {
    /// Loaded data (documents, sentences, existing KBs, entity linking, …).
    Base,
    /// Populated by candidate-mapping rules; deterministic, not a random variable.
    Derived,
    /// Every tuple is a Boolean random variable whose marginal is inferred
    /// (e.g. `MarriedMentions`).
    Variable,
}

/// Declaration of one relation: name, schema, role.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationDecl {
    pub name: String,
    pub schema: Schema,
    pub role: RelationRole,
}

impl RelationDecl {
    pub fn new(name: impl Into<String>, schema: Schema, role: RelationRole) -> Self {
        RelationDecl {
            name: name.into(),
            schema,
            role,
        }
    }
}

/// A DeepDive program: declarations plus rules, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    pub relations: Vec<RelationDecl>,
    pub rules: Vec<Rule>,
}

impl Program {
    pub fn new() -> Self {
        Program::default()
    }

    /// Add a relation declaration (builder style).
    pub fn declare(mut self, decl: RelationDecl) -> Self {
        self.relations.push(decl);
        self
    }

    /// Add a rule (builder style).
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Look up a relation declaration by name.
    pub fn relation(&self, name: &str) -> Option<&RelationDecl> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// The role of a relation, defaulting to `Base` for undeclared names.
    pub fn role_of(&self, name: &str) -> RelationRole {
        self.relation(name)
            .map(|r| r.role)
            .unwrap_or(RelationRole::Base)
    }

    /// Rules of a given kind, in program order.
    pub fn rules_of_kind(&self, kind: RuleKind) -> Vec<&Rule> {
        self.rules.iter().filter(|r| r.kind == kind).collect()
    }

    /// Create every declared relation in a database (derived and variable
    /// relations start empty; base relations are expected to be loaded by the
    /// caller).
    pub fn create_schema(&self, db: &mut Database) {
        for decl in &self.relations {
            if !db.has_table(&decl.name) {
                db.create_or_replace_table(&decl.name, decl.schema.clone());
            }
        }
    }

    /// Candidate-mapping rules ordered so that a rule producing relation `R`
    /// comes before any rule reading `R` (topological order of the derived-
    /// relation dependency graph).  Returns `None` if the dependencies are
    /// cyclic (the program cannot be stratified).
    pub fn stratified_candidate_rules(&self) -> Option<Vec<&Rule>> {
        let candidates: Vec<&Rule> = self.rules_of_kind(RuleKind::CandidateMapping);
        // Map: derived relation -> indices of rules producing it.
        let mut producers: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, r) in candidates.iter().enumerate() {
            producers
                .entry(r.head.relation.as_str())
                .or_default()
                .push(i);
        }
        // Edges: rule i -> rule j if j reads i's head relation.
        let n = candidates.len();
        let mut in_degree = vec![0usize; n];
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, r) in candidates.iter().enumerate() {
            for rel in r.body_relations() {
                if let Some(prods) = producers.get(rel) {
                    for &i in prods {
                        if i != j {
                            edges[i].push(j);
                            in_degree[j] += 1;
                        }
                    }
                }
            }
        }
        // Kahn's algorithm.
        let mut queue: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(candidates[i]);
            for &j in &edges[i] {
                in_degree[j] -= 1;
                if in_degree[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// A program is hierarchical (Definition A.3) if every weighted rule is
    /// hierarchical and the candidate rules can be stratified.  The paper notes
    /// 13/14 KBC systems from the literature are hierarchical; hierarchical
    /// programs have polynomial mixing-time guarantees under Logical/Ratio
    /// semantics.
    pub fn is_hierarchical(&self) -> bool {
        self.stratified_candidate_rules().is_some()
            && self
                .rules
                .iter()
                .filter(|r| matches!(r.kind, RuleKind::FeatureExtraction | RuleKind::Inference))
                .all(|r| r.is_hierarchical())
    }

    /// Names of variable relations.
    pub fn variable_relations(&self) -> Vec<&str> {
        self.relations
            .iter()
            .filter(|r| r.role == RelationRole::Variable)
            .map(|r| r.name.as_str())
            .collect()
    }

    /// Structural validation: every relation referenced by a rule is declared,
    /// weighted rules head into variable relations, and the candidate-mapping
    /// rules can be stratified.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let declared: HashSet<&str> = self.relations.iter().map(|r| r.name.as_str()).collect();
        for rule in &self.rules {
            if rule.kind != RuleKind::ErrorAnalysis
                && !declared.contains(rule.head.relation.as_str())
            {
                return Err(ProgramError::UndeclaredHead {
                    rule: rule.name.clone(),
                    relation: rule.head.relation.clone(),
                });
            }
            for rel in rule.body_relations() {
                if !declared.contains(rel) {
                    return Err(ProgramError::UndeclaredBody {
                        rule: rule.name.clone(),
                        relation: rel.to_string(),
                    });
                }
            }
            match rule.kind {
                RuleKind::FeatureExtraction | RuleKind::Supervision | RuleKind::Inference => {
                    if self.role_of(&rule.head.relation) != RelationRole::Variable {
                        return Err(ProgramError::NonVariableHead {
                            rule: rule.name.clone(),
                            kind: rule.kind,
                            relation: rule.head.relation.clone(),
                            role: self.role_of(&rule.head.relation),
                        });
                    }
                }
                RuleKind::CandidateMapping => {
                    if self.role_of(&rule.head.relation) == RelationRole::Base {
                        return Err(ProgramError::CandidateHeadIsBase {
                            rule: rule.name.clone(),
                            relation: rule.head.relation.clone(),
                        });
                    }
                }
                RuleKind::ErrorAnalysis => {}
            }
        }
        if self.stratified_candidate_rules().is_none() {
            return Err(ProgramError::CyclicCandidateRules);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{RuleAtom, WeightSpec};
    use dd_relstore::view::Term;
    use dd_relstore::DataType;

    fn atom(rel: &str, vars: &[&str]) -> RuleAtom {
        RuleAtom::new(rel, vars.iter().map(|v| Term::var(*v)).collect())
    }

    fn spouse_program() -> Program {
        Program::new()
            .declare(RelationDecl::new(
                "PersonCandidate",
                Schema::of(&[("s", DataType::Int), ("m", DataType::Int)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "Sentence",
                Schema::of(&[("s", DataType::Int), ("sent", DataType::Text)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "MarriedCandidate",
                Schema::of(&[("m1", DataType::Int), ("m2", DataType::Int)]),
                RelationRole::Derived,
            ))
            .declare(RelationDecl::new(
                "MarriedMentions",
                Schema::of(&[("m1", DataType::Int), ("m2", DataType::Int)]),
                RelationRole::Variable,
            ))
            .rule(Rule::new(
                "R1",
                RuleKind::CandidateMapping,
                atom("MarriedCandidate", &["m1", "m2"]),
                vec![
                    atom("PersonCandidate", &["s", "m1"]),
                    atom("PersonCandidate", &["s", "m2"]),
                ],
                WeightSpec::None,
            ))
            .rule(Rule::new(
                "FE1",
                RuleKind::FeatureExtraction,
                atom("MarriedMentions", &["m1", "m2"]),
                vec![atom("MarriedCandidate", &["m1", "m2"])],
                WeightSpec::Learnable { initial: 0.0 },
            ))
    }

    #[test]
    fn roles_and_lookup() {
        let p = spouse_program();
        assert_eq!(p.role_of("PersonCandidate"), RelationRole::Base);
        assert_eq!(p.role_of("MarriedCandidate"), RelationRole::Derived);
        assert_eq!(p.role_of("MarriedMentions"), RelationRole::Variable);
        assert_eq!(p.role_of("Unknown"), RelationRole::Base);
        assert_eq!(p.variable_relations(), vec!["MarriedMentions"]);
        assert_eq!(p.rules_of_kind(RuleKind::CandidateMapping).len(), 1);
    }

    #[test]
    fn validation_passes_and_catches_errors() {
        let p = spouse_program();
        assert!(p.validate().is_ok());

        // Feature rule heading into a derived relation is rejected.
        let bad = spouse_program().rule(Rule::new(
            "BAD",
            RuleKind::FeatureExtraction,
            atom("MarriedCandidate", &["m1", "m2"]),
            vec![atom("PersonCandidate", &["s", "m1"])],
            WeightSpec::Learnable { initial: 0.0 },
        ));
        assert!(bad.validate().is_err());

        // Undeclared relation is rejected.
        let bad2 = spouse_program().rule(Rule::new(
            "BAD2",
            RuleKind::CandidateMapping,
            atom("MarriedCandidate", &["m1", "m2"]),
            vec![atom("Nowhere", &["m1", "m2"])],
            WeightSpec::None,
        ));
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn create_schema_builds_tables() {
        let p = spouse_program();
        let mut db = Database::new();
        p.create_schema(&mut db);
        assert!(db.has_table("PersonCandidate"));
        assert!(db.has_table("MarriedMentions"));
    }

    #[test]
    fn stratification_orders_dependent_rules() {
        // Two candidate rules where the second depends on the first, declared in
        // the "wrong" order.
        let p = Program::new()
            .declare(RelationDecl::new(
                "A",
                Schema::of(&[("x", DataType::Int)]),
                RelationRole::Base,
            ))
            .declare(RelationDecl::new(
                "B",
                Schema::of(&[("x", DataType::Int)]),
                RelationRole::Derived,
            ))
            .declare(RelationDecl::new(
                "C",
                Schema::of(&[("x", DataType::Int)]),
                RelationRole::Derived,
            ))
            .rule(Rule::new(
                "make_c",
                RuleKind::CandidateMapping,
                atom("C", &["x"]),
                vec![atom("B", &["x"])],
                WeightSpec::None,
            ))
            .rule(Rule::new(
                "make_b",
                RuleKind::CandidateMapping,
                atom("B", &["x"]),
                vec![atom("A", &["x"])],
                WeightSpec::None,
            ));
        let order = p.stratified_candidate_rules().unwrap();
        assert_eq!(order[0].name, "make_b");
        assert_eq!(order[1].name, "make_c");
        assert!(p.is_hierarchical());
    }

    #[test]
    fn cyclic_candidate_rules_cannot_be_stratified() {
        let p = Program::new()
            .declare(RelationDecl::new(
                "B",
                Schema::of(&[("x", DataType::Int)]),
                RelationRole::Derived,
            ))
            .declare(RelationDecl::new(
                "C",
                Schema::of(&[("x", DataType::Int)]),
                RelationRole::Derived,
            ))
            .rule(Rule::new(
                "b_from_c",
                RuleKind::CandidateMapping,
                atom("B", &["x"]),
                vec![atom("C", &["x"])],
                WeightSpec::None,
            ))
            .rule(Rule::new(
                "c_from_b",
                RuleKind::CandidateMapping,
                atom("C", &["x"]),
                vec![atom("B", &["x"])],
                WeightSpec::None,
            ));
        assert!(p.stratified_candidate_rules().is_none());
        assert!(!p.is_hierarchical());
        assert_eq!(p.validate(), Err(ProgramError::CyclicCandidateRules));
    }

    #[test]
    fn validation_errors_are_typed() {
        let bad = spouse_program().rule(Rule::new(
            "BAD2",
            RuleKind::CandidateMapping,
            atom("MarriedCandidate", &["m1", "m2"]),
            vec![atom("Nowhere", &["m1", "m2"])],
            WeightSpec::None,
        ));
        assert_eq!(
            bad.validate(),
            Err(ProgramError::UndeclaredBody {
                rule: "BAD2".into(),
                relation: "Nowhere".into(),
            })
        );
    }
}

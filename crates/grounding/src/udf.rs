//! User-defined functions for feature extraction and weight tying.
//!
//! DeepDive "allows users to write feature extraction code in familiar languages
//! (Python, SQL, and Scala)" (§2.3).  Here a UDF is a Rust closure from bound
//! values to a value; when used in a `weight = udf(…)` position its (stringified)
//! output is the weight-tying key, exactly like `phrase(m1, m2, sent)` in rule
//! FE1 returning "and his wife".

use dd_relstore::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A user-defined function over bound rule variables.
pub type Udf = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// A registry of named UDFs.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    udfs: HashMap<String, Udf>,
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&String> = self.udfs.keys().collect();
        names.sort();
        f.debug_struct("UdfRegistry").field("udfs", &names).finish()
    }
}

impl UdfRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        UdfRegistry::default()
    }

    /// Register a UDF under `name`.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&[Value]) -> Value + Send + Sync + 'static,
    {
        self.udfs.insert(name.into(), Arc::new(f));
    }

    /// Look up a UDF.
    pub fn get(&self, name: &str) -> Option<&Udf> {
        self.udfs.get(name)
    }

    /// Call a UDF, returning `Value::Null` if it is not registered (grounding
    /// treats a Null tying key as "one shared weight for the whole rule").
    pub fn call(&self, name: &str, args: &[Value]) -> Value {
        match self.udfs.get(name) {
            Some(f) => f(args),
            None => Value::Null,
        }
    }

    /// Names of all registered UDFs, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.udfs.keys().cloned().collect();
        names.sort();
        names
    }
}

/// The standard UDFs shipped with the engine, mirroring the feature extractors
/// the paper's example systems use.
pub fn standard_udfs() -> UdfRegistry {
    let mut reg = UdfRegistry::new();
    // identity: the feature value itself is the tying key (Example 2.6's
    // `weight = w(f)` classifier).
    reg.register("identity", |args: &[Value]| {
        args.first().cloned().unwrap_or(Value::Null)
    });
    // concat: join all arguments with '_' — a generic composite feature.
    reg.register("concat", |args: &[Value]| {
        Value::text(
            args.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("_"),
        )
    });
    // phrase: the words strictly between two mention tokens inside a sentence,
    // the "… and his wife …" feature of Example 2.3.  Arguments: mention1 text,
    // mention2 text, sentence text.
    reg.register("phrase", |args: &[Value]| {
        let (m1, m2, sent) = match (args.first(), args.get(1), args.get(2)) {
            (Some(a), Some(b), Some(c)) => (a.to_string(), b.to_string(), c.to_string()),
            _ => return Value::Null,
        };
        match (sent.find(&m1), sent.find(&m2)) {
            (Some(p1), Some(p2)) => {
                let (start, end) = if p1 < p2 {
                    (p1 + m1.len(), p2)
                } else {
                    (p2 + m2.len(), p1)
                };
                if start >= end {
                    Value::text("")
                } else {
                    Value::text(sent[start..end].trim())
                }
            }
            _ => Value::Null,
        }
    });
    // bucket: coarse numeric bucketing, useful for distance-style features.
    reg.register("bucket", |args: &[Value]| {
        match args.first().and_then(|v| v.as_float()) {
            Some(x) => Value::Int((x / 10.0).floor() as i64),
            None => Value::Null,
        }
    });
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_call() {
        let mut reg = UdfRegistry::new();
        reg.register("double", |args: &[Value]| {
            Value::Int(args[0].as_int().unwrap_or(0) * 2)
        });
        assert_eq!(reg.call("double", &[Value::Int(21)]), Value::Int(42));
        assert!(reg.get("double").is_some());
        assert_eq!(reg.call("missing", &[]), Value::Null);
        assert_eq!(reg.names(), vec!["double"]);
    }

    #[test]
    fn standard_identity_and_concat() {
        let reg = standard_udfs();
        assert_eq!(
            reg.call("identity", &[Value::text("dep_path")]),
            Value::text("dep_path")
        );
        assert_eq!(
            reg.call("concat", &[Value::text("a"), Value::Int(3)]),
            Value::text("a_3")
        );
        assert_eq!(reg.call("identity", &[]), Value::Null);
    }

    #[test]
    fn phrase_extracts_text_between_mentions() {
        let reg = standard_udfs();
        let sent = Value::text("B. Obama and his wife M. Obama were married");
        let out = reg.call(
            "phrase",
            &[
                Value::text("B. Obama"),
                Value::text("M. Obama"),
                sent.clone(),
            ],
        );
        assert_eq!(out, Value::text("and his wife"));
        // order of mentions does not matter
        let out2 = reg.call(
            "phrase",
            &[Value::text("M. Obama"), Value::text("B. Obama"), sent],
        );
        assert_eq!(out2, Value::text("and his wife"));
        // missing mention -> Null
        let out3 = reg.call(
            "phrase",
            &[
                Value::text("Nobody"),
                Value::text("M. Obama"),
                Value::text("nothing here"),
            ],
        );
        assert_eq!(out3, Value::Null);
    }

    #[test]
    fn bucket_udf() {
        let reg = standard_udfs();
        assert_eq!(reg.call("bucket", &[Value::Float(37.0)]), Value::Int(3));
        assert_eq!(reg.call("bucket", &[Value::Int(5)]), Value::Int(0));
        assert_eq!(reg.call("bucket", &[Value::text("x")]), Value::Null);
    }

    #[test]
    fn debug_output_lists_names() {
        let reg = standard_udfs();
        let dbg = format!("{reg:?}");
        assert!(dbg.contains("phrase"));
        assert!(dbg.contains("identity"));
    }
}

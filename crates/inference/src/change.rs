//! Description of how a distribution changed between the materialized factor
//! graph `Pr(0)` and the updated factor graph `Pr(Δ)`.
//!
//! All incremental-inference strategies need to evaluate
//! `ΔW(I) = log Pr(Δ)[I] − log Pr(0)[I] + const`, i.e. the log-weight
//! contribution of exactly the *changed* part of the graph:
//!
//! * factors that did not exist in the original graph,
//! * factors whose (tied) weight value changed, counted at the weight difference,
//! * evidence changes, which make inconsistent worlds impossible (−∞).
//!
//! The strawman looks this quantity up per enumerated world, the sampling
//! approach uses it in the Metropolis–Hastings acceptance test (where the
//! original-graph terms cancel), and the variational approach applies the raw
//! delta to its approximate graph instead.

use dd_factorgraph::{FactorGraph, FactorId, GraphDelta, VarId, WeightId, WorldView};
use serde::{Deserialize, Serialize};

/// The changed part of a distribution, expressed against the *updated* graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DistributionChange {
    /// Factors that are new in the updated graph.
    pub new_factors: Vec<FactorId>,
    /// Weights whose value changed: `(weight id, old value)`.  The new value is
    /// read from the updated graph.
    pub changed_weights: Vec<(WeightId, f64)>,
    /// Evidence assignments introduced by the update: `(variable, required value)`.
    pub new_evidence: Vec<(VarId, bool)>,
    /// Variables that are new in the updated graph (ΔV); they have no value in
    /// stored samples/worlds and must be sampled afresh.
    pub new_variables: Vec<VarId>,
}

impl DistributionChange {
    /// Build a change description by applying `delta` to `graph` (mutating it
    /// into the updated graph) and recording what changed.
    pub fn apply_and_describe(graph: &mut FactorGraph, delta: &GraphDelta) -> Self {
        let old_weight_values: Vec<(WeightId, f64)> = delta
            .weight_changes
            .iter()
            .map(|wc| (wc.weight_id, graph.weight(wc.weight_id).value))
            .collect();
        // Evidence changes refer to *post-apply* variable ids: a change may
        // target a variable created by this same delta (born `Query`, pinned
        // by the change), and removals compact ids before the change applies.
        // A forward reference has no old role; a compaction-moved id would
        // misread here, so treat any removal-carrying delta's old roles as
        // unknown (callers on the retraction path discard the description).
        let old_roles: Vec<(VarId, Option<bool>)> = delta
            .evidence_changes
            .iter()
            .map(|ec| {
                let old = if delta.has_removals() || ec.var >= graph.num_variables() {
                    None
                } else {
                    graph.variable(ec.var).fixed_value()
                };
                (ec.var, old)
            })
            .collect();

        let (new_vars, new_factors) = graph.apply_delta(delta);

        let changed_weights = old_weight_values
            .into_iter()
            .filter(|&(w, old)| (graph.weight(w).value - old).abs() > 0.0)
            .collect();
        let new_evidence = delta
            .evidence_changes
            .iter()
            .zip(old_roles.iter())
            .filter_map(|(ec, (var, old_fixed))| {
                let new_fixed = ec.new_role.fixed_value();
                match new_fixed {
                    Some(v) if Some(v) != *old_fixed => Some((*var, v)),
                    _ => None,
                }
            })
            .collect();

        DistributionChange {
            new_factors,
            changed_weights,
            new_evidence,
            new_variables: new_vars,
        }
    }

    /// True if the change is empty (distribution unchanged).
    pub fn is_empty(&self) -> bool {
        self.new_factors.is_empty()
            && self.changed_weights.is_empty()
            && self.new_evidence.is_empty()
            && self.new_variables.is_empty()
    }

    /// `ΔW(I)`: the log-weight difference contributed by the changed part of the
    /// graph, evaluated in `world` against the *updated* graph.  Returns
    /// `f64::NEG_INFINITY` for worlds inconsistent with new evidence.
    pub fn delta_log_weight<W: WorldView + ?Sized>(&self, updated: &FactorGraph, world: &W) -> f64 {
        for &(v, required) in &self.new_evidence {
            if world.value(v) != required {
                return f64::NEG_INFINITY;
            }
        }
        let mut total = 0.0;
        for &f in &self.new_factors {
            let factor = updated.factor(f);
            total += factor.energy(world, updated.weight(factor.weight_id).value);
        }
        for &(w, old_value) in &self.changed_weights {
            let diff = updated.weight(w).value - old_value;
            if diff == 0.0 {
                continue;
            }
            // Every factor tied to this weight contributes (w_new − w_old)·φ.
            for (fid, factor) in updated.factors().iter().enumerate() {
                if factor.weight_id == w && !self.new_factors.contains(&fid) {
                    total += diff * factor.feature_value(world);
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{
        DeltaFactor, EvidenceChange, Factor, FactorGraphBuilder, NewVarRef, NewWeightRef, Variable,
        VariableRole, Weight, WeightChange, World,
    };

    fn base() -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(2);
        let w = b.tied_weight("w0", 1.0, false);
        b.add_factor(Factor::is_true(w, vs[0]));
        b.add_factor(Factor::is_true(w, vs[1]));
        b.build()
    }

    #[test]
    fn describes_new_factor_and_variable() {
        let mut g = base();
        let delta = GraphDelta {
            new_variables: vec![Variable::query(0)],
            new_weights: vec![Weight::learnable(0, 2.0, "new")],
            new_factors: vec![DeltaFactor {
                weight: NewWeightRef::New(0),
                template: Factor::conjunction(0, &[0, 1]),
                var_refs: vec![NewVarRef::Existing(0), NewVarRef::New(0)],
            }],
            ..Default::default()
        };
        let change = DistributionChange::apply_and_describe(&mut g, &delta);
        assert_eq!(change.new_variables.len(), 1);
        assert_eq!(change.new_factors.len(), 1);
        assert!(!change.is_empty());

        // Δ log-weight is 2.0 only when both var 0 and the new var are true.
        let world_both = World::from_values(vec![true, false, true]);
        assert!((change.delta_log_weight(&g, &world_both) - 2.0).abs() < 1e-12);
        let world_one = World::from_values(vec![true, false, false]);
        assert_eq!(change.delta_log_weight(&g, &world_one), 0.0);
    }

    #[test]
    fn describes_weight_change() {
        let mut g = base();
        let delta = GraphDelta {
            weight_changes: vec![WeightChange {
                weight_id: 0,
                new_value: 1.5,
            }],
            ..Default::default()
        };
        let change = DistributionChange::apply_and_describe(&mut g, &delta);
        assert_eq!(change.changed_weights, vec![(0, 1.0)]);
        // Both variables true -> two factors tied to weight 0 -> Δ = 2 × 0.5.
        let world = World::from_values(vec![true, true]);
        assert!((change.delta_log_weight(&g, &world) - 1.0).abs() < 1e-12);
        let world0 = World::from_values(vec![false, false]);
        assert_eq!(change.delta_log_weight(&g, &world0), 0.0);
    }

    #[test]
    fn describes_evidence_change_as_hard_constraint() {
        let mut g = base();
        let delta = GraphDelta {
            evidence_changes: vec![EvidenceChange {
                var: 1,
                new_role: VariableRole::PositiveEvidence,
            }],
            ..Default::default()
        };
        let change = DistributionChange::apply_and_describe(&mut g, &delta);
        assert_eq!(change.new_evidence, vec![(1, true)]);
        let consistent = World::from_values(vec![false, true]);
        assert_eq!(change.delta_log_weight(&g, &consistent), 0.0);
        let inconsistent = World::from_values(vec![false, false]);
        assert_eq!(
            change.delta_log_weight(&g, &inconsistent),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn noop_delta_is_empty() {
        let mut g = base();
        let change = DistributionChange::apply_and_describe(&mut g, &GraphDelta::new());
        assert!(change.is_empty());
        let w = World::from_values(vec![true, true]);
        assert_eq!(change.delta_log_weight(&g, &w), 0.0);
    }
}

//! Empirical convergence / mixing-time measurement.
//!
//! Appendix A of the paper derives mixing-time bounds for the Voting program
//! under the three semantics (Figure 12) and measures, empirically, the number
//! of Gibbs iterations needed to get within 1 % of the correct marginal of the
//! query variable (Figure 13).  This module provides that measurement for any
//! factor graph with a known (or exactly computable) target marginal.

use crate::gibbs::GibbsSampler;
use dd_factorgraph::{FactorGraph, VarId, WorldView};
use serde::{Deserialize, Serialize};

/// The result of a convergence measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// Number of sweeps after which the running marginal estimate stayed within
    /// `tolerance` of the target.
    pub sweeps_to_converge: usize,
    /// Whether convergence was reached before the sweep budget ran out.
    pub converged: bool,
    /// The final running estimate.
    pub final_estimate: f64,
    /// The target marginal.
    pub target: f64,
}

/// Run Gibbs sampling on `graph` and report how many sweeps the *running*
/// estimate of `P(var = true)` needs before it first comes within `tolerance`
/// of `target` and stays there for `stability_window` consecutive sweeps.
///
/// `max_sweeps` bounds the run; if the estimate never stabilizes the report has
/// `converged == false` and `sweeps_to_converge == max_sweeps`.
pub fn iterations_to_converge(
    graph: &FactorGraph,
    var: VarId,
    target: f64,
    tolerance: f64,
    max_sweeps: usize,
    stability_window: usize,
    seed: u64,
) -> ConvergenceReport {
    let mut sampler = GibbsSampler::new(graph, seed);
    let mut true_count = 0usize;
    let mut within_since: Option<usize> = None;

    for sweep in 1..=max_sweeps {
        sampler.sweep();
        if sampler.world().value(var) {
            true_count += 1;
        }
        let estimate = true_count as f64 / sweep as f64;
        if (estimate - target).abs() <= tolerance {
            let since = *within_since.get_or_insert(sweep);
            if sweep - since + 1 >= stability_window {
                return ConvergenceReport {
                    sweeps_to_converge: since,
                    converged: true,
                    final_estimate: estimate,
                    target,
                };
            }
        } else {
            within_since = None;
        }
    }
    let final_estimate = true_count as f64 / max_sweeps.max(1) as f64;
    ConvergenceReport {
        sweeps_to_converge: max_sweeps,
        converged: false,
        final_estimate,
        target,
    }
}

/// Empirical total-variation distance between two sets of per-variable marginal
/// estimates, treating each variable as an independent Bernoulli — an upper
/// bound proxy used to compare convergence of different chains.
pub fn mean_marginal_tv(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
        / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{Factor, FactorGraphBuilder};

    fn prior_graph(w: f64) -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let v = b.add_query_variables(1)[0];
        let wid = b.tied_weight("prior", w, false);
        b.add_factor(Factor::is_true(wid, v));
        b.build()
    }

    #[test]
    fn converges_to_exact_marginal() {
        let g = prior_graph(0.0); // P(true) = 0.5
        let report = iterations_to_converge(&g, 0, 0.5, 0.05, 20_000, 50, 3);
        assert!(report.converged);
        assert!(report.sweeps_to_converge < 20_000);
        assert!((report.final_estimate - 0.5).abs() <= 0.06);
    }

    #[test]
    fn impossible_target_does_not_converge() {
        let g = prior_graph(0.0);
        let report = iterations_to_converge(&g, 0, 0.99, 0.001, 500, 10, 3);
        assert!(!report.converged);
        assert_eq!(report.sweeps_to_converge, 500);
    }

    #[test]
    fn tighter_tolerance_takes_at_least_as_long() {
        let g = prior_graph(0.4);
        let target = g.exact_marginal(0);
        let loose = iterations_to_converge(&g, 0, target, 0.1, 50_000, 20, 7);
        let tight = iterations_to_converge(&g, 0, target, 0.01, 50_000, 20, 7);
        assert!(loose.converged);
        assert!(tight.sweeps_to_converge >= loose.sweeps_to_converge);
    }

    #[test]
    fn tv_distance_helper() {
        assert_eq!(mean_marginal_tv(&[], &[]), 0.0);
        assert!((mean_marginal_tv(&[0.2, 0.8], &[0.4, 0.8]) - 0.1).abs() < 1e-12);
    }
}

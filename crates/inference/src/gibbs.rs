//! Sequential Gibbs sampling.
//!
//! "Like many other systems, DeepDive uses Gibbs sampling to estimate the
//! marginal probability of every tuple in the database" (paper §2.5).  The
//! sampler sweeps over the query variables; for each it computes the conditional
//! probability `P(v = 1 | rest) = σ(ΔE_v)` where `ΔE_v` is the energy difference
//! between the worlds with `v` set true and false (all other variables held), and
//! resamples `v` from that Bernoulli.
//!
//! The sweep runs on the compiled [`FlatGraph`] representation (CSR adjacency,
//! pre-resolved weights, single-pass energy deltas — see `dd_factorgraph::flat`),
//! not on the pointer-rich build-side [`FactorGraph`].

use crate::marginals::Marginals;
use dd_factorgraph::{FactorGraph, FlatGraph, VarId, World, WorldView};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// The RNG driving sampler sweeps.  A type alias so the generator can be
/// swapped in one place; sweeps are throughput-bound on RNG draws, so this
/// points at the fast small-state generator rather than `StdRng`.
pub type SweepRng = rand::rngs::SmallRng;

/// Options controlling a Gibbs run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GibbsOptions {
    /// Number of full sweeps used to estimate marginals.
    pub sweeps: usize,
    /// Sweeps discarded before collecting statistics.
    pub burn_in: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for GibbsOptions {
    fn default() -> Self {
        GibbsOptions {
            sweeps: 200,
            burn_in: 50,
            seed: 42,
        }
    }
}

impl GibbsOptions {
    /// Shorthand used by tests and benchmarks.
    pub fn new(sweeps: usize, burn_in: usize, seed: u64) -> Self {
        GibbsOptions {
            sweeps,
            burn_in,
            seed,
        }
    }
}

/// A set of worlds drawn from a factor graph — the "tuple bundles" that the
/// sampling materialization strategy stores (§3.2.2, after MCDB).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleSet {
    pub num_vars: usize,
    /// Bit-packed worlds, one entry per sample.
    bundles: Vec<Vec<u8>>,
}

impl SampleSet {
    /// An empty sample set over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        SampleSet {
            num_vars,
            bundles: Vec::new(),
        }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// True if no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// Store a world (bit-packed: one bit per variable).
    pub fn push(&mut self, world: &World) {
        debug_assert_eq!(world.len(), self.num_vars);
        self.bundles.push(world.to_bitvec());
    }

    /// Retrieve the `i`-th stored world.
    pub fn get(&self, i: usize) -> World {
        World::from_bitvec(&self.bundles[i], self.num_vars)
    }

    /// The raw bit-packed bundles (checkpoint codec access).
    pub fn bundles(&self) -> &[Vec<u8>] {
        &self.bundles
    }

    /// Rebuild a sample set from raw bundles, exactly as stored.
    pub fn from_bundles(num_vars: usize, bundles: Vec<Vec<u8>>) -> Self {
        SampleSet { num_vars, bundles }
    }

    /// Approximate storage size in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.bundles.iter().map(|b| b.len()).sum()
    }

    /// Empirical marginals of the stored samples, accumulated straight off the
    /// packed bits (no per-sample `World` is ever materialized).
    pub fn marginals(&self) -> Marginals {
        let mut counts = vec![0usize; self.num_vars];
        for bundle in &self.bundles {
            for (byte_index, &byte) in bundle.iter().enumerate() {
                let mut bits = byte;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    counts[byte_index * 8 + bit] += 1;
                    bits &= bits - 1;
                }
            }
        }
        let n = self.bundles.len().max(1) as f64;
        Marginals::from_values(counts.into_iter().map(|c| c as f64 / n).collect())
    }
}

/// A sequential Gibbs sampler bound to a compiled factor graph.
///
/// Construct it from a [`FactorGraph`] (compiling on the spot) or, when the
/// caller already holds a compiled graph — the learning loop, the MH
/// proposal-extension path — borrow one with [`GibbsSampler::from_flat`].
///
/// ```
/// use dd_factorgraph::{Factor, FactorGraphBuilder};
/// use dd_inference::{GibbsOptions, GibbsSampler};
///
/// // One query variable with a positive prior factor.
/// let mut b = FactorGraphBuilder::new();
/// let v = b.add_query_variables(1)[0];
/// let w = b.tied_weight("prior", 1.0, false);
/// b.add_factor(Factor::is_true(w, v));
/// let graph = b.build();
///
/// let mut sampler = GibbsSampler::new(&graph, 7);
/// let marginals = sampler.run(&GibbsOptions::new(4000, 200, 7));
/// // P(v) = sigmoid(1.0) ≈ 0.731; the chain estimate lands nearby.
/// assert!((marginals.get(v) - 0.731).abs() < 0.05);
/// // Runs are bit-deterministic for a fixed seed.
/// let again = GibbsSampler::new(&graph, 7).run(&GibbsOptions::new(4000, 200, 7));
/// assert_eq!(marginals.values(), again.values());
/// ```
pub struct GibbsSampler<'g> {
    flat: Cow<'g, FlatGraph>,
    rng: SweepRng,
    world: World,
    /// Query variables, the only ones resampled.
    free_vars: Vec<VarId>,
}

impl<'g> GibbsSampler<'g> {
    /// Create a sampler whose free variables are the graph's query variables and
    /// whose starting world is the graph's initial world.  Compiles `graph`;
    /// use [`GibbsSampler::from_flat`] to reuse an existing compilation.
    pub fn new(graph: &'g FactorGraph, seed: u64) -> Self {
        Self::from_owned_flat(graph.compile(), seed)
    }

    /// Create a sampler that resamples *every* variable, ignoring evidence — the
    /// "free" chain needed by the gradient estimator of weight learning.
    pub fn new_unclamped(graph: &'g FactorGraph, seed: u64) -> Self {
        let num_vars = graph.num_variables();
        Self::from_owned_flat(graph.compile(), seed).with_free_vars((0..num_vars).collect())
    }

    /// Create a sampler borrowing an already-compiled graph.
    pub fn from_flat(flat: &'g FlatGraph, seed: u64) -> Self {
        GibbsSampler {
            rng: SweepRng::seed_from_u64(seed),
            world: flat.initial_world(),
            free_vars: flat.query_variables().to_vec(),
            flat: Cow::Borrowed(flat),
        }
    }

    fn from_owned_flat(flat: FlatGraph, seed: u64) -> Self {
        GibbsSampler {
            rng: SweepRng::seed_from_u64(seed),
            world: flat.initial_world(),
            free_vars: flat.query_variables().to_vec(),
            flat: Cow::Owned(flat),
        }
    }

    /// Restrict the resampled variables to an explicit subset (used by the
    /// decomposition optimization, which samples one variable group at a time).
    pub fn with_free_vars(mut self, free_vars: Vec<VarId>) -> Self {
        self.free_vars = free_vars;
        self
    }

    /// Replace the current world (e.g. to continue from a stored sample).
    pub fn set_world(&mut self, world: World) {
        assert_eq!(world.len(), self.flat.num_variables());
        self.world = world;
    }

    /// The current world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The set of variables this sampler resamples.
    pub fn free_vars(&self) -> &[VarId] {
        &self.free_vars
    }

    /// The compiled graph this sampler runs on.
    pub fn flat(&self) -> &FlatGraph {
        &self.flat
    }

    /// Perform one full sweep (resample every free variable once).
    pub fn sweep(&mut self) {
        for &v in &self.free_vars {
            // Constant-folded conditional where possible; otherwise a single
            // traversal of v's incident factors, with no world mutation.
            let p_true = self.flat.conditional_p_true(v, &self.world);
            let value = self.rng.gen::<f64>() < p_true;
            self.world.set(v, value);
        }
    }

    /// Run `options.sweeps` sweeps after `options.burn_in` and return the
    /// marginal estimate for every variable (evidence variables get 0/1).
    pub fn run(&mut self, options: &GibbsOptions) -> Marginals {
        self.rng = SweepRng::seed_from_u64(options.seed);
        for _ in 0..options.burn_in {
            self.sweep();
        }
        // Only free variables can change between sweeps, so only they are
        // counted per sweep; everything else is filled in once at the end.
        let mut counts = vec![0usize; self.free_vars.len()];
        let sweeps = options.sweeps.max(1);
        for _ in 0..sweeps {
            self.sweep();
            for (i, &v) in self.free_vars.iter().enumerate() {
                if self.world.value(v) {
                    counts[i] += 1;
                }
            }
        }
        let mut values: Vec<f64> = self
            .world
            .iter()
            .map(|b| if b { 1.0 } else { 0.0 })
            .collect();
        for (i, &v) in self.free_vars.iter().enumerate() {
            values[v] = counts[i] as f64 / sweeps as f64;
        }
        Marginals::from_values(values)
    }

    /// Draw `n` samples (one per sweep, after burn-in) into a [`SampleSet`] —
    /// this is the materialization phase of the sampling approach.
    pub fn draw_samples(&mut self, n: usize, burn_in: usize) -> SampleSet {
        for _ in 0..burn_in {
            self.sweep();
        }
        let mut set = SampleSet::new(self.flat.num_variables());
        for _ in 0..n {
            self.sweep();
            set.push(&self.world);
        }
        set
    }

    /// Expected value (over `sweeps` Gibbs samples) of the total feature value of
    /// every weight: `E[Σ_{f: weight(f)=k} φ_f(I)]` for each weight `k`.  This is
    /// the sufficient statistic needed by the learning gradient.
    pub fn expected_feature_counts(&mut self, sweeps: usize) -> Vec<f64> {
        let mut totals = vec![0.0; self.flat.num_weights()];
        let sweeps = sweeps.max(1);
        for _ in 0..sweeps {
            self.sweep();
            self.flat
                .accumulate_feature_counts(&self.world, &mut totals);
        }
        for t in &mut totals {
            *t /= sweeps as f64;
        }
        totals
    }
}

/// Logistic function.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{Factor, FactorGraphBuilder};

    fn single_var_graph(weight: f64) -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let v = b.add_query_variables(1)[0];
        let w = b.tied_weight("prior", weight, false);
        b.add_factor(Factor::is_true(w, v));
        b.build()
    }

    fn pair_graph(prior: f64, coupling: f64) -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(2);
        let wp = b.tied_weight("prior", prior, false);
        let wc = b.tied_weight("couple", coupling, false);
        b.add_factor(Factor::is_true(wp, vs[0]));
        b.add_factor(Factor::equal(wc, vs[0], vs[1]));
        b.build()
    }

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
        // numerically stable for large negative inputs
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn gibbs_matches_exact_marginal_single_variable() {
        let g = single_var_graph(1.0);
        let mut s = GibbsSampler::new(&g, 7);
        let m = s.run(&GibbsOptions::new(4000, 200, 7));
        let expected = g.exact_marginal(0);
        assert!(
            (m.get(0) - expected).abs() < 0.03,
            "gibbs {} vs exact {}",
            m.get(0),
            expected
        );
    }

    #[test]
    fn gibbs_matches_exact_marginal_pair() {
        let g = pair_graph(0.8, 1.2);
        let mut s = GibbsSampler::new(&g, 11);
        let m = s.run(&GibbsOptions::new(6000, 500, 11));
        for v in 0..2 {
            let expected = g.exact_marginal(v);
            assert!(
                (m.get(v) - expected).abs() < 0.03,
                "var {v}: gibbs {} vs exact {}",
                m.get(v),
                expected
            );
        }
    }

    #[test]
    fn evidence_variables_are_never_flipped() {
        let mut b = FactorGraphBuilder::new();
        let q = b.add_query_variables(1)[0];
        let e = b.add_evidence_variable(true);
        let w = b.tied_weight("eq", -5.0, false);
        b.add_factor(Factor::equal(w, q, e));
        let g = b.build();
        let mut s = GibbsSampler::new(&g, 3);
        let m = s.run(&GibbsOptions::new(500, 50, 3));
        // evidence stays pinned at 1.0
        assert_eq!(m.get(e), 1.0);
        // strong negative coupling pushes q towards false
        assert!(m.get(q) < 0.15);
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let g = pair_graph(0.3, 0.9);
        let m1 = GibbsSampler::new(&g, 99).run(&GibbsOptions::new(300, 10, 99));
        let m2 = GibbsSampler::new(&g, 99).run(&GibbsOptions::new(300, 10, 99));
        assert_eq!(m1.values(), m2.values());
    }

    #[test]
    fn borrowed_and_owned_compilations_agree_exactly() {
        // Determinism across representations: a sampler compiled on the spot
        // and one borrowing a pre-compiled FlatGraph must walk the same chain.
        let g = pair_graph(0.3, 0.9);
        let flat = g.compile();
        let opts = GibbsOptions::new(300, 10, 99);
        let owned = GibbsSampler::new(&g, 99).run(&opts);
        let borrowed = GibbsSampler::from_flat(&flat, 99).run(&opts);
        assert_eq!(owned.values(), borrowed.values());
    }

    #[test]
    fn sample_set_round_trip_and_storage() {
        let g = pair_graph(0.0, 0.5);
        let mut s = GibbsSampler::new(&g, 5);
        let set = s.draw_samples(64, 10);
        assert_eq!(set.len(), 64);
        // 2 variables -> 1 byte per bundle
        assert_eq!(set.storage_bytes(), 64);
        let w = set.get(0);
        assert_eq!(w.len(), 2);
        let m = set.marginals();
        assert!(m.get(0) >= 0.0 && m.get(0) <= 1.0);
    }

    #[test]
    fn sample_set_marginals_match_per_world_counting() {
        let g = pair_graph(0.4, 0.2);
        let mut s = GibbsSampler::new(&g, 21);
        let set = s.draw_samples(200, 20);
        let fast = set.marginals();
        // Reference: unpack every world and count.
        let mut counts = vec![0usize; set.num_vars];
        for i in 0..set.len() {
            let w = set.get(i);
            for (v, c) in counts.iter_mut().enumerate() {
                if w.value(v) {
                    *c += 1;
                }
            }
        }
        for (v, &c) in counts.iter().enumerate() {
            assert!((fast.get(v) - c as f64 / set.len() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn unclamped_sampler_resamples_evidence() {
        let mut b = FactorGraphBuilder::new();
        let _q = b.add_query_variables(1)[0];
        let e = b.add_evidence_variable(true);
        let w = b.tied_weight("neg-prior", -8.0, false);
        b.add_factor(Factor::is_true(w, e));
        let g = b.build();
        let mut s = GibbsSampler::new_unclamped(&g, 1);
        let m = s.run(&GibbsOptions::new(400, 50, 1));
        // freed from the evidence pin, the strong negative prior wins
        assert!(m.get(e) < 0.1);
    }

    #[test]
    fn expected_feature_counts_reflect_marginals() {
        let g = single_var_graph(2.0);
        let mut s = GibbsSampler::new(&g, 17);
        for _ in 0..100 {
            s.sweep();
        }
        let counts = s.expected_feature_counts(2000);
        let expected = g.exact_marginal(0);
        assert!((counts[0] - expected).abs() < 0.05);
    }

    #[test]
    fn with_free_vars_restricts_resampling() {
        let g = pair_graph(5.0, 0.0);
        // only variable 1 is free; variable 0 keeps its initial (false) value.
        let mut s = GibbsSampler::new(&g, 2).with_free_vars(vec![1]);
        let m = s.run(&GibbsOptions::new(200, 10, 2));
        assert_eq!(m.get(0), 0.0);
    }
}

//! Weight learning: contrastive stochastic gradient descent with warmstart.
//!
//! "During inference, the values of all weights w are assumed to be known, while,
//! in learning, one finds the set of weights that maximizes the probability of
//! the evidence" (paper §2.4).  The gradient of the log-likelihood w.r.t. weight
//! `k` is the familiar difference of expectations
//!
//! ```text
//!   ∂L/∂w_k = E_clamped[ Σ_{f : weight(f)=k} φ_f(I) ] − E_free[ Σ φ_f(I) ]
//! ```
//!
//! where the *clamped* expectation fixes evidence variables to their observed
//! values and the *free* expectation samples them as well.  Both expectations are
//! estimated by Gibbs chains, which is exactly what DimmWitted does.
//!
//! Appendix B.3 compares three strategies for *incremental* learning after a KBC
//! update: stochastic gradient descent with warmstart (DeepDive's choice),
//! stochastic gradient descent from a cold start, and full-batch gradient descent
//! with warmstart.  [`LearnStrategy`] selects between them and
//! [`Learner::learn`] records a [`LearningTrace`] so Figure 16 can be reproduced.

use crate::gibbs::{sigmoid, GibbsSampler};
use crate::parallel::ParallelGibbs;
use crate::rng::mix_seed;
use dd_factorgraph::{FactorGraph, FlatGraph, World};
use rayon::ThreadPool;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Stream-id offset separating the free chain's RNG streams from the clamped
/// chain's in [`mix_seed`]'s stream space.
const FREE_STREAM: u64 = 0x8000_0000;

/// Which optimization strategy to use (Appendix B.3 / Figure 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LearnStrategy {
    /// Stochastic gradient descent: one (mini-batch) gradient estimate per epoch
    /// from short Gibbs chains.
    Sgd,
    /// Full-batch gradient descent: long Gibbs chains per epoch for a low-noise
    /// gradient estimate.
    GradientDescent,
}

/// Options controlling a learning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnOptions {
    pub strategy: LearnStrategy,
    /// Number of epochs (gradient steps).
    pub epochs: usize,
    /// Step size.
    pub learning_rate: f64,
    /// Multiplicative step-size decay per epoch.
    pub decay: f64,
    /// ℓ2 regularization strength.
    pub l2: f64,
    /// Gibbs sweeps per expectation estimate (SGD uses this number, full
    /// gradient descent uses 10×).
    pub sweeps_per_epoch: usize,
    /// If set, initialize weights from this vector instead of the graph's
    /// current values — "warmstart means that DeepDive uses the learned model in
    /// the last run as the starting point" (Appendix B.3).
    pub warmstart: Option<Vec<f64>>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LearnOptions {
    fn default() -> Self {
        LearnOptions {
            strategy: LearnStrategy::Sgd,
            epochs: 30,
            learning_rate: 0.1,
            decay: 0.97,
            l2: 1e-4,
            sweeps_per_epoch: 5,
            warmstart: None,
            seed: 7,
        }
    }
}

/// The loss and weight trajectory of one learning run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LearningTrace {
    /// Loss after each epoch (negative pseudo-log-likelihood of the evidence,
    /// averaged per evidence variable).
    pub losses: Vec<f64>,
    /// Final weight vector.
    pub final_weights: Vec<f64>,
}

impl LearningTrace {
    /// The best (lowest) loss observed.
    pub fn best_loss(&self) -> f64 {
        self.losses.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// First epoch whose loss is within `fraction` (e.g. 0.10) of `optimal`,
    /// or `None` if never reached — the measurement Figure 16 reports.
    pub fn epochs_to_within(&self, optimal: f64, fraction: f64) -> Option<usize> {
        let target = optimal * (1.0 + fraction);
        self.losses.iter().position(|&l| l <= target)
    }
}

/// Weight learner bound to a mutable factor graph.
///
/// The learner compiles the graph once and reuses both the compilation and
/// the Gibbs chain *states* across epochs: the clamped and free chains warm-
/// start each epoch from where the previous epoch left them (persistent
/// contrastive divergence), instead of re-burning a cold chain per gradient
/// step.  With [`Learner::with_pool`], expectation estimation for large
/// graphs runs on the persistent hogwild sampler instead of the sequential
/// one.
pub struct Learner<'g> {
    graph: &'g mut FactorGraph,
    pool: Option<Arc<ThreadPool>>,
    /// Minimum number of *query* variables before expectation estimation
    /// switches to the parallel sampler (hogwild pays off only on large
    /// graphs) — the same metric as `EngineConfig::parallel_threshold`.
    parallel_threshold: usize,
}

impl<'g> Learner<'g> {
    pub fn new(graph: &'g mut FactorGraph) -> Self {
        Learner {
            graph,
            pool: None,
            parallel_threshold: usize::MAX,
        }
    }

    /// Estimate gradient expectations on `pool` (hogwild) for graphs with at
    /// least `threshold` *query* variables; smaller graphs stay on the
    /// sequential sampler, whose single chain mixes faster than an
    /// under-utilized parallel dispatch.
    pub fn with_pool(mut self, pool: Arc<ThreadPool>, threshold: usize) -> Self {
        self.pool = Some(pool);
        self.parallel_threshold = threshold;
        self
    }

    /// Negative pseudo-log-likelihood of the evidence under the current weights:
    /// for every evidence variable `v`, `−log P(v = observed | rest of world)`
    /// with the rest of the world set to the evidence/initial assignment.
    /// Deterministic, cheap, and monotone in fit quality — the "loss" axis of
    /// Figure 16 and Figure 17.
    pub fn evidence_loss(&self) -> f64 {
        self.evidence_loss_on(&self.graph.compile())
    }

    /// [`Learner::evidence_loss`] against an existing compilation (the learning
    /// loop compiles once and refreshes weights instead of recompiling each
    /// epoch).
    fn evidence_loss_on(&self, flat: &FlatGraph) -> f64 {
        let graph = &*self.graph;
        let world = flat.initial_world();
        let evidence = graph.evidence_variables();
        if evidence.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for &v in &evidence {
            let observed = graph.variable(v).fixed_value().unwrap_or(false);
            let delta = flat.energy_delta(v, &world);
            let p_true = sigmoid(delta);
            let p_obs = if observed { p_true } else { 1.0 - p_true };
            total -= p_obs.max(1e-12).ln();
        }
        total / evidence.len() as f64
    }

    /// Run learning, mutating the graph's weights, and return the trace.
    pub fn learn(&mut self, options: &LearnOptions) -> LearningTrace {
        if let Some(ws) = &options.warmstart {
            self.graph.set_weight_values(ws);
        }

        let mut trace = LearningTrace::default();
        let mut lr = options.learning_rate;
        let (clamped_sweeps, free_sweeps) = match options.strategy {
            LearnStrategy::Sgd => (options.sweeps_per_epoch, options.sweeps_per_epoch),
            LearnStrategy::GradientDescent => {
                (options.sweeps_per_epoch * 10, options.sweeps_per_epoch * 10)
            }
        };

        // Compile once; each epoch only moves weight values, which
        // `refresh_weights` re-resolves in place without rebuilding topology.
        let mut flat = self.graph.compile();
        let all_vars: Vec<usize> = (0..self.graph.num_variables()).collect();

        // Large graph + pool => estimate expectations with persistent hogwild
        // samplers that live for the whole learning run.  The threshold counts
        // query variables, the same metric the engine's full-Gibbs routing
        // uses (clamped chains resample exactly those).
        let use_parallel = self.pool.as_ref().is_some_and(|pool| {
            pool.num_threads() > 1 && self.graph.query_variables().len() >= self.parallel_threshold
        });
        let mut hogwild = use_parallel.then(|| {
            let pool = self.pool.as_ref().expect("use_parallel implies pool");
            let clamped =
                ParallelGibbs::from_flat(flat.clone(), options.seed).with_pool(Arc::clone(pool));
            let free = ParallelGibbs::from_flat(flat.clone(), mix_seed(options.seed, FREE_STREAM))
                .with_pool(Arc::clone(pool))
                .with_free_vars(all_vars.clone());
            (clamped, free)
        });

        // Sequential chain states, persisted across epochs (PCD warmstart).
        let mut clamped_world: Option<World> = None;
        let mut free_world: Option<World> = None;

        for epoch in 0..options.epochs {
            // Expectations with evidence clamped / free.
            let (clamped, free) = match &mut hogwild {
                Some((clamped_chain, free_chain)) => (
                    clamped_chain.expected_feature_counts(clamped_sweeps),
                    free_chain.expected_feature_counts(free_sweeps),
                ),
                None => {
                    let clamped = {
                        let mut s =
                            GibbsSampler::from_flat(&flat, mix_seed(options.seed, epoch as u64));
                        if let Some(w) = clamped_world.take() {
                            s.set_world(w);
                        }
                        let counts = s.expected_feature_counts(clamped_sweeps);
                        clamped_world = Some(s.world().clone());
                        counts
                    };
                    let free = {
                        let mut s = GibbsSampler::from_flat(
                            &flat,
                            mix_seed(options.seed, FREE_STREAM + epoch as u64),
                        )
                        .with_free_vars(all_vars.clone());
                        if let Some(w) = free_world.take() {
                            s.set_world(w);
                        }
                        let counts = s.expected_feature_counts(free_sweeps);
                        free_world = Some(s.world().clone());
                        counts
                    };
                    (clamped, free)
                }
            };

            // Gradient ascent on the log-likelihood (descent on the loss).
            for k in 0..self.graph.num_weights() {
                if self.graph.weight(k).fixed {
                    continue;
                }
                let g = clamped[k] - free[k] - options.l2 * self.graph.weight(k).value;
                let new = self.graph.weight(k).value + lr * g;
                self.graph.set_weight_value(k, new);
            }
            lr *= options.decay;
            flat.refresh_weights(self.graph);
            if let Some((clamped_chain, free_chain)) = &mut hogwild {
                clamped_chain.refresh_weights(self.graph);
                free_chain.refresh_weights(self.graph);
            }
            trace.losses.push(self.evidence_loss_on(&flat));
        }
        trace.final_weights = self.graph.weight_values();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{Factor, FactorGraphBuilder};

    /// A logistic-regression-shaped graph: `Class(x) :- R(x, f) weight = w(f)`
    /// (Example 2.6).  Objects with feature A are labeled true, objects with
    /// feature B are labeled false; learning should drive w(A) up and w(B) down.
    fn classifier_graph(num_objects: usize) -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let w_a = b.tied_weight("feat:A", 0.0, false);
        let w_b = b.tied_weight("feat:B", 0.0, false);
        for i in 0..num_objects {
            let label = i % 2 == 0;
            let v = b.add_evidence_variable(label);
            let w = if label { w_a } else { w_b };
            b.add_factor(Factor::is_true(w, v));
        }
        b.build()
    }

    #[test]
    fn learning_separates_features() {
        let mut g = classifier_graph(40);
        let mut learner = Learner::new(&mut g);
        let initial_loss = learner.evidence_loss();
        let trace = learner.learn(&LearnOptions {
            epochs: 40,
            learning_rate: 0.3,
            sweeps_per_epoch: 3,
            ..Default::default()
        });
        assert!(g.weight(0).value > 0.5, "w(A) = {}", g.weight(0).value);
        assert!(g.weight(1).value < -0.5, "w(B) = {}", g.weight(1).value);
        assert!(trace.best_loss() < initial_loss);
        assert_eq!(trace.losses.len(), 40);
        assert_eq!(trace.final_weights.len(), 2);
    }

    #[test]
    fn pooled_learner_separates_features_too() {
        // Same learning problem, but with gradient expectations estimated by
        // the persistent hogwild chains (threshold 1 forces the parallel path).
        let mut g = classifier_graph(40);
        let pool = Arc::new(ThreadPool::new(2));
        let trace = Learner::new(&mut g)
            .with_pool(pool, 1)
            .learn(&LearnOptions {
                epochs: 40,
                learning_rate: 0.3,
                sweeps_per_epoch: 3,
                ..Default::default()
            });
        assert!(g.weight(0).value > 0.5, "w(A) = {}", g.weight(0).value);
        assert!(g.weight(1).value < -0.5, "w(B) = {}", g.weight(1).value);
        assert_eq!(trace.losses.len(), 40);
    }

    #[test]
    fn fixed_weights_are_not_updated() {
        let mut b = FactorGraphBuilder::new();
        let w_fixed = b.tied_weight("prior", 2.0, true);
        let v = b.add_evidence_variable(false);
        b.add_factor(Factor::is_true(w_fixed, v));
        let mut g = b.build();
        let mut learner = Learner::new(&mut g);
        learner.learn(&LearnOptions {
            epochs: 5,
            ..Default::default()
        });
        assert_eq!(g.weight(0).value, 2.0);
    }

    #[test]
    fn warmstart_initializes_from_previous_model() {
        let mut g = classifier_graph(20);
        let opts = LearnOptions {
            epochs: 1,
            warmstart: Some(vec![3.0, -3.0]),
            learning_rate: 0.0,
            ..Default::default()
        };
        let trace = Learner::new(&mut g).learn(&opts);
        // with zero learning rate the weights stay at the warmstart values
        assert_eq!(trace.final_weights, vec![3.0, -3.0]);
    }

    #[test]
    fn warmstart_converges_faster_than_cold_start() {
        // Learn a good model once, then restart learning warm vs cold and compare
        // the first-epoch loss.
        let mut g = classifier_graph(40);
        let good = Learner::new(&mut g)
            .learn(&LearnOptions {
                epochs: 40,
                learning_rate: 0.3,
                ..Default::default()
            })
            .final_weights;

        let mut g_warm = classifier_graph(40);
        let warm = Learner::new(&mut g_warm).learn(&LearnOptions {
            epochs: 1,
            learning_rate: 0.05,
            warmstart: Some(good),
            ..Default::default()
        });
        let mut g_cold = classifier_graph(40);
        let cold = Learner::new(&mut g_cold).learn(&LearnOptions {
            epochs: 1,
            learning_rate: 0.05,
            ..Default::default()
        });
        assert!(warm.losses[0] < cold.losses[0]);
    }

    #[test]
    fn epochs_to_within_threshold() {
        let trace = LearningTrace {
            losses: vec![1.0, 0.6, 0.45, 0.41, 0.40],
            final_weights: vec![],
        };
        assert_eq!(trace.epochs_to_within(0.40, 0.10), Some(3));
        assert_eq!(trace.epochs_to_within(0.40, 0.5), Some(1));
        assert_eq!(trace.epochs_to_within(0.1, 0.10), None);
        assert!((trace.best_loss() - 0.40).abs() < 1e-12);
    }

    #[test]
    fn loss_is_zero_without_evidence() {
        let mut b = FactorGraphBuilder::new();
        b.add_query_variables(3);
        let mut g = b.build();
        assert_eq!(Learner::new(&mut g).evidence_loss(), 0.0);
    }
}

//! # dd-inference — statistical inference and learning for DeepDive factor graphs
//!
//! This crate is the Rust counterpart of DimmWitted, the sampler the original
//! DeepDive delegates inference and learning to, *plus* the paper's novel
//! incremental-inference machinery (§3.2):
//!
//! * [`gibbs`] — sequential Gibbs sampling over a [`dd_factorgraph::FactorGraph`],
//!   producing marginal probabilities for every query variable;
//! * [`parallel`] — a lock-free, multi-threaded (hogwild-style) Gibbs sweep, the
//!   way DimmWitted actually runs on many cores, dispatched onto a persistent
//!   worker pool ([`rayon::ThreadPool`]) with per-chunk RNG streams and
//!   worker-local marginal counting;
//! * [`rng`] — splitmix-style seed mixing that fans one run seed out into
//!   decorrelated per-chunk RNG streams;
//! * [`marginals`] — marginal vectors, distances between them, and probability
//!   calibration;
//! * [`learning`] — weight learning by contrastive stochastic gradient descent
//!   and full-batch gradient descent, with warmstart (Appendix B.3);
//! * [`strawman`] — complete materialization of all possible worlds (§3.2.1);
//! * [`sampling`] — sample (tuple-bundle) materialization with independent
//!   Metropolis–Hastings incremental inference (§3.2.2);
//! * [`variational`] — the log-determinant/ℓ1 variational materialization of
//!   Algorithm 1 (§3.2.3);
//! * [`convergence`] — empirical mixing-time measurement used for Figures 12/13.

pub mod change;
pub mod convergence;
pub mod gibbs;
pub mod learning;
pub mod marginals;
pub mod parallel;
pub mod rng;
pub mod sampling;
pub mod strawman;
pub mod variational;

pub use change::DistributionChange;
pub use convergence::{iterations_to_converge, ConvergenceReport};
pub use gibbs::{sigmoid, GibbsOptions, GibbsSampler, SampleSet, SweepRng};
pub use learning::{LearnOptions, LearnStrategy, Learner, LearningTrace};
pub use marginals::{calibration_buckets, CalibrationBucket, Marginals};
pub use parallel::ParallelGibbs;
pub use rng::mix_seed;
pub use sampling::{MhOutcome, SampleMaterialization};
pub use strawman::StrawmanMaterialization;
pub use variational::{VariationalMaterialization, VariationalOptions};

//! Marginal probability vectors, distances, and calibration.

use serde::{Deserialize, Serialize};

/// Marginal probabilities, one per variable of a factor graph.
///
/// This is the output of inference: "the marginal probability of every tuple in
/// the database" (paper §1).  The comparison helpers implement the fact-level
/// similarity measures of §4.2 ("99 % of high-confidence facts also appear …
/// at most 4 % of facts differ by more than 0.05 in probability").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Marginals {
    values: Vec<f64>,
}

impl Marginals {
    /// Wrap a vector of probabilities.
    pub fn from_values(values: Vec<f64>) -> Self {
        Marginals { values }
    }

    /// All-zero marginals over `n` variables.
    pub fn zeros(n: usize) -> Self {
        Marginals {
            values: vec![0.0; n],
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Probability of variable `v`.
    pub fn get(&self, v: usize) -> f64 {
        self.values[v]
    }

    /// Set the probability of variable `v`.
    pub fn set(&mut self, v: usize, p: f64) {
        self.values[v] = p;
    }

    /// The underlying slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Largest absolute difference to another marginal vector (compared on the
    /// shared prefix, so graphs that grew by ΔV can still be compared).
    pub fn max_abs_diff(&self, other: &Marginals) -> f64 {
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Mean absolute difference on the shared prefix.
    pub fn mean_abs_diff(&self, other: &Marginals) -> f64 {
        let n = self.values.len().min(other.values.len());
        if n == 0 {
            return 0.0;
        }
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / n as f64
    }

    /// Fraction of variables whose probabilities differ by more than `eps`.
    pub fn fraction_differing(&self, other: &Marginals, eps: f64) -> f64 {
        let n = self.values.len().min(other.values.len());
        if n == 0 {
            return 0.0;
        }
        let d = self
            .values
            .iter()
            .zip(other.values.iter())
            .filter(|(a, b)| (*a - *b).abs() > eps)
            .count();
        d as f64 / n as f64
    }

    /// Of the variables with probability above `threshold` in `self`, the
    /// fraction that are also above `threshold` in `other` (the "99 % of
    /// high-confidence facts also appear" comparison of §4.2).
    pub fn high_confidence_overlap(&self, other: &Marginals, threshold: f64) -> f64 {
        let high: Vec<usize> = self
            .values
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > threshold)
            .map(|(i, _)| i)
            .collect();
        if high.is_empty() {
            return 1.0;
        }
        let kept = high
            .iter()
            .filter(|&&i| other.values.get(i).copied().unwrap_or(0.0) > threshold)
            .count();
        kept as f64 / high.len() as f64
    }

    /// Average per-variable symmetric KL divergence between the Bernoulli
    /// distributions described by the two marginal vectors.  Used by the λ-search
    /// protocol for the variational approach (§3.2.3).
    pub fn mean_symmetric_kl(&self, other: &Marginals) -> f64 {
        let n = self.values.len().min(other.values.len());
        if n == 0 {
            return 0.0;
        }
        let eps = 1e-6;
        let clamp = |p: f64| p.clamp(eps, 1.0 - eps);
        let kl = |p: f64, q: f64| {
            let (p, q) = (clamp(p), clamp(q));
            p * (p / q).ln() + (1.0 - p) * ((1.0 - p) / (1.0 - q)).ln()
        };
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(&a, &b)| 0.5 * (kl(a, b) + kl(b, a)))
            .sum::<f64>()
            / n as f64
    }
}

/// One calibration bucket: predicted-probability range vs empirical accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationBucket {
    pub low: f64,
    pub high: f64,
    pub count: usize,
    /// Fraction of facts in this bucket that are actually true.
    pub accuracy: f64,
}

/// Compute calibration buckets: DeepDive "produces marginal probabilities that
/// are calibrated: if one examined all facts with probability 0.9, we would
/// expect that approximately 90 % of these facts would be correct" (§1).
pub fn calibration_buckets(
    marginals: &Marginals,
    truth: &[bool],
    num_buckets: usize,
) -> Vec<CalibrationBucket> {
    assert!(num_buckets > 0);
    let mut counts = vec![0usize; num_buckets];
    let mut correct = vec![0usize; num_buckets];
    for (i, &p) in marginals.values().iter().enumerate() {
        if i >= truth.len() {
            break;
        }
        let b = ((p * num_buckets as f64) as usize).min(num_buckets - 1);
        counts[b] += 1;
        if truth[i] {
            correct[b] += 1;
        }
    }
    (0..num_buckets)
        .map(|b| CalibrationBucket {
            low: b as f64 / num_buckets as f64,
            high: (b + 1) as f64 / num_buckets as f64,
            count: counts[b],
            accuracy: if counts[b] == 0 {
                0.0
            } else {
                correct[b] as f64 / counts[b] as f64
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let mut m = Marginals::zeros(3);
        assert_eq!(m.len(), 3);
        m.set(1, 0.7);
        assert_eq!(m.get(1), 0.7);
        assert_eq!(m.values(), &[0.0, 0.7, 0.0]);
    }

    #[test]
    fn diff_metrics() {
        let a = Marginals::from_values(vec![0.9, 0.5, 0.1]);
        let b = Marginals::from_values(vec![0.88, 0.5, 0.4]);
        assert!((a.max_abs_diff(&b) - 0.3).abs() < 1e-12);
        assert!((a.mean_abs_diff(&b) - (0.02 + 0.0 + 0.3) / 3.0).abs() < 1e-12);
        assert!((a.fraction_differing(&b, 0.05) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.fraction_differing(&b, 0.5), 0.0);
    }

    #[test]
    fn high_confidence_overlap() {
        let a = Marginals::from_values(vec![0.95, 0.92, 0.2, 0.97]);
        let b = Marginals::from_values(vec![0.96, 0.4, 0.91, 0.99]);
        // a's high-confidence facts: {0, 1, 3}; of those, b keeps {0, 3}
        assert!((a.high_confidence_overlap(&b, 0.9) - 2.0 / 3.0).abs() < 1e-12);
        // no high-confidence facts -> vacuously 1.0
        let none = Marginals::from_values(vec![0.1, 0.2]);
        assert_eq!(none.high_confidence_overlap(&b, 0.9), 1.0);
    }

    #[test]
    fn symmetric_kl_is_zero_on_identical_and_positive_otherwise() {
        let a = Marginals::from_values(vec![0.3, 0.8]);
        assert!(a.mean_symmetric_kl(&a) < 1e-12);
        let b = Marginals::from_values(vec![0.7, 0.2]);
        assert!(a.mean_symmetric_kl(&b) > 0.1);
    }

    #[test]
    fn calibration_perfectly_calibrated_input() {
        // probabilities 0.05..0.95, truth assigned to match the probability
        let probs: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 100.0).collect();
        let truth: Vec<bool> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| (i * 7 % 100) as f64 / 100.0 < p)
            .collect();
        let m = Marginals::from_values(probs);
        let buckets = calibration_buckets(&m, &truth, 10);
        assert_eq!(buckets.len(), 10);
        // the top bucket should be much more accurate than the bottom bucket
        assert!(buckets[9].accuracy > buckets[0].accuracy + 0.5);
        let total: usize = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn calibration_handles_empty_buckets() {
        let m = Marginals::from_values(vec![0.95, 0.96]);
        let buckets = calibration_buckets(&m, &[true, false], 10);
        assert_eq!(buckets[0].count, 0);
        assert_eq!(buckets[0].accuracy, 0.0);
        assert_eq!(buckets[9].count, 2);
        assert!((buckets[9].accuracy - 0.5).abs() < 1e-12);
    }
}

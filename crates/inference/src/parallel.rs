//! Lock-free parallel Gibbs sampling (hogwild style).
//!
//! DimmWitted — the sampler behind DeepDive — runs Gibbs sweeps on many cores
//! concurrently without locking the assignment vector; races are tolerated
//! because each variable update only reads a small neighbourhood and the chain
//! remains ergodic.  We reproduce that design: the world lives in a vector of
//! `AtomicU64` bit-words (the same 1-bit-per-variable layout as the sequential
//! sampler's `World`), each sweep partitions the query variables across worker
//! threads, and every thread owns an independent RNG stream seeded from the run
//! seed and the sweep number (so results are reproducible for a fixed thread
//! partition).
//!
//! The energy computation is the *same* single-pass
//! [`FlatGraph::energy_delta`] the sequential sampler uses — it reads the
//! shared world through [`WorldView`] and overrides the variable being
//! resampled internally, so no per-thread scratch world or pinning wrapper is
//! needed and there is exactly one energy-delta implementation in the system.

use crate::gibbs::SweepRng;
use crate::marginals::Marginals;
use dd_factorgraph::{FactorGraph, FlatGraph, VarId, World, WorldView};
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, lock-free, bit-packed world representation.
struct AtomicWorld {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicWorld {
    fn from_world(world: &World) -> Self {
        AtomicWorld {
            words: world.as_words().iter().map(|&w| AtomicU64::new(w)).collect(),
            len: world.len(),
        }
    }

    fn to_world(&self) -> World {
        World::from_words(
            self.words
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            self.len,
        )
    }

    fn set(&self, v: VarId, value: bool) {
        let bit = 1u64 << (v % 64);
        if value {
            self.words[v / 64].fetch_or(bit, Ordering::Relaxed);
        } else {
            self.words[v / 64].fetch_and(!bit, Ordering::Relaxed);
        }
    }
}

impl WorldView for AtomicWorld {
    #[inline]
    fn value(&self, v: VarId) -> bool {
        self.words[v / 64].load(Ordering::Relaxed) >> (v % 64) & 1 == 1
    }
}

/// Multi-threaded Gibbs sampler over a compiled factor graph.
pub struct ParallelGibbs {
    flat: FlatGraph,
    world: AtomicWorld,
    free_vars: Vec<VarId>,
    seed: u64,
    /// Number of variable chunks per sweep; defaults to the rayon thread count.
    chunks: usize,
}

impl ParallelGibbs {
    /// Create a parallel sampler over the graph's query variables.
    pub fn new(graph: &FactorGraph, seed: u64) -> Self {
        Self::from_flat(graph.compile(), seed)
    }

    /// Create a parallel sampler from an already-compiled graph.
    pub fn from_flat(flat: FlatGraph, seed: u64) -> Self {
        let world = AtomicWorld::from_world(&flat.initial_world());
        let free_vars = flat.query_variables().to_vec();
        ParallelGibbs {
            flat,
            world,
            free_vars,
            seed,
            chunks: rayon::current_num_threads().max(1),
        }
    }

    /// Override the number of chunks the variable set is split into per sweep.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks.max(1);
        self
    }

    /// One hogwild sweep: every free variable is resampled exactly once, with
    /// the variable set partitioned across threads.
    pub fn sweep(&mut self, sweep_index: usize) {
        let chunk_size = self.free_vars.len().div_ceil(self.chunks).max(1);
        let flat = &self.flat;
        let world = &self.world;
        let seed = self.seed;
        self.free_vars
            .par_chunks(chunk_size)
            .enumerate()
            .for_each(|(chunk_id, vars)| {
                let mut rng =
                    SweepRng::seed_from_u64(seed ^ (sweep_index as u64) << 20 ^ chunk_id as u64);
                for &v in vars {
                    let p_true = flat.conditional_p_true(v, world);
                    world.set(v, rng.gen::<f64>() < p_true);
                }
            });
    }

    /// Run burn-in plus `sweeps` counting sweeps, returning marginals.
    pub fn run(&mut self, sweeps: usize, burn_in: usize) -> Marginals {
        for s in 0..burn_in {
            self.sweep(s);
        }
        // Only free variables change between sweeps; count just those and fill
        // the clamped remainder in once at the end.
        let mut counts = vec![0usize; self.free_vars.len()];
        let sweeps = sweeps.max(1);
        for s in 0..sweeps {
            self.sweep(burn_in + s);
            for (i, &v) in self.free_vars.iter().enumerate() {
                if self.world.value(v) {
                    counts[i] += 1;
                }
            }
        }
        let mut values: Vec<f64> = self
            .world
            .to_world()
            .iter()
            .map(|b| if b { 1.0 } else { 0.0 })
            .collect();
        for (i, &v) in self.free_vars.iter().enumerate() {
            values[v] = counts[i] as f64 / sweeps as f64;
        }
        Marginals::from_values(values)
    }

    /// Snapshot of the current world.
    pub fn world(&self) -> World {
        self.world.to_world()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{Factor, FactorGraphBuilder};

    fn chain_graph(n: usize, prior: f64, coupling: f64) -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(n);
        let wp = b.tied_weight("prior", prior, false);
        let wc = b.tied_weight("couple", coupling, false);
        b.add_factor(Factor::is_true(wp, vs[0]));
        for i in 1..n {
            b.add_factor(Factor::equal(wc, vs[i - 1], vs[i]));
        }
        b.build()
    }

    #[test]
    fn parallel_matches_exact_on_small_chain() {
        let g = chain_graph(4, 1.0, 0.8);
        let mut s = ParallelGibbs::new(&g, 123).with_chunks(2);
        let m = s.run(6000, 500);
        for v in 0..4 {
            let expected = g.exact_marginal(v);
            assert!(
                (m.get(v) - expected).abs() < 0.05,
                "var {v}: parallel {} vs exact {}",
                m.get(v),
                expected
            );
        }
    }

    #[test]
    fn evidence_is_respected() {
        let mut b = FactorGraphBuilder::new();
        let q = b.add_query_variables(1)[0];
        let e = b.add_evidence_variable(false);
        let w = b.tied_weight("eq", 4.0, false);
        b.add_factor(Factor::equal(w, q, e));
        let g = b.build();
        let mut s = ParallelGibbs::new(&g, 9);
        let m = s.run(800, 100);
        assert_eq!(m.get(e), 0.0);
        assert!(m.get(q) < 0.15);
    }

    #[test]
    fn world_snapshot_has_right_size() {
        let g = chain_graph(10, 0.0, 0.1);
        let mut s = ParallelGibbs::new(&g, 5);
        s.sweep(0);
        assert_eq!(s.world().len(), 10);
    }

    #[test]
    fn larger_graph_runs_quickly_and_in_bounds() {
        let g = chain_graph(500, 0.2, 0.3);
        let mut s = ParallelGibbs::new(&g, 77);
        let m = s.run(50, 10);
        for v in 0..500 {
            let p = m.get(v);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn single_chunk_parallel_is_deterministic_per_seed() {
        // With one chunk there is no cross-thread interleaving, so the chain
        // is exactly reproducible for a fixed seed.
        let g = chain_graph(32, 0.3, 0.4);
        let m1 = ParallelGibbs::new(&g, 41).with_chunks(1).run(200, 20);
        let m2 = ParallelGibbs::new(&g, 41).with_chunks(1).run(200, 20);
        assert_eq!(m1.values(), m2.values());
    }
}

//! Lock-free parallel Gibbs sampling (hogwild style).
//!
//! DimmWitted — the sampler behind DeepDive — runs Gibbs sweeps on many cores
//! concurrently without locking the assignment vector; races are tolerated
//! because each variable update only reads a small neighbourhood and the chain
//! remains ergodic.  We reproduce that design: the world lives in a vector of
//! `AtomicBool`, each sweep partitions the query variables across rayon worker
//! threads, and every thread owns an independent RNG stream seeded from the run
//! seed and the sweep number (so results are reproducible for a fixed thread
//! partition).

use crate::gibbs::sigmoid;
use crate::marginals::Marginals;
use dd_factorgraph::{FactorGraph, VarId, World, WorldView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Shared, lock-free world representation.
struct AtomicWorld {
    values: Vec<AtomicBool>,
}

impl AtomicWorld {
    fn from_world(world: &World) -> Self {
        AtomicWorld {
            values: world.values().iter().map(|&b| AtomicBool::new(b)).collect(),
        }
    }

    fn to_world(&self) -> World {
        World::from_values(
            self.values
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        )
    }

    fn set(&self, v: VarId, value: bool) {
        self.values[v].store(value, Ordering::Relaxed);
    }
}

impl WorldView for AtomicWorld {
    fn value(&self, v: VarId) -> bool {
        self.values[v].load(Ordering::Relaxed)
    }
}

/// Multi-threaded Gibbs sampler.
pub struct ParallelGibbs<'g> {
    graph: &'g FactorGraph,
    world: AtomicWorld,
    free_vars: Vec<VarId>,
    seed: u64,
    /// Number of variable chunks per sweep; defaults to the rayon thread count.
    chunks: usize,
}

impl<'g> ParallelGibbs<'g> {
    /// Create a parallel sampler over the graph's query variables.
    pub fn new(graph: &'g FactorGraph, seed: u64) -> Self {
        let world = AtomicWorld::from_world(&graph.initial_world());
        ParallelGibbs {
            graph,
            world,
            free_vars: graph.query_variables(),
            seed,
            chunks: rayon::current_num_threads().max(1),
        }
    }

    /// Override the number of chunks the variable set is split into per sweep.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks.max(1);
        self
    }

    /// One hogwild sweep: every free variable is resampled exactly once, with
    /// the variable set partitioned across threads.
    pub fn sweep(&mut self, sweep_index: usize) {
        let chunk_size = self.free_vars.len().div_ceil(self.chunks).max(1);
        let graph = self.graph;
        let world = &self.world;
        let seed = self.seed;
        self.free_vars
            .par_chunks(chunk_size)
            .enumerate()
            .for_each(|(chunk_id, vars)| {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (sweep_index as u64) << 20 ^ chunk_id as u64);
                let mut scratch = ScratchWorld { shared: world };
                for &v in vars {
                    let delta = energy_delta_atomic(graph, v, &mut scratch);
                    let p_true = sigmoid(delta);
                    world.set(v, rng.gen::<f64>() < p_true);
                }
            });
    }

    /// Run burn-in plus `sweeps` counting sweeps, returning marginals.
    pub fn run(&mut self, sweeps: usize, burn_in: usize) -> Marginals {
        for s in 0..burn_in {
            self.sweep(s);
        }
        let n = self.graph.num_variables();
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let sweeps = sweeps.max(1);
        for s in 0..sweeps {
            self.sweep(burn_in + s);
            counts.par_iter().enumerate().for_each(|(v, c)| {
                if self.world.value(v) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        Marginals::from_values(
            counts
                .into_iter()
                .map(|c| c.into_inner() as f64 / sweeps as f64)
                .collect(),
        )
    }

    /// Snapshot of the current world.
    pub fn world(&self) -> World {
        self.world.to_world()
    }
}

/// A world view that reads through to the shared atomic world but lets the
/// energy-delta computation temporarily pin the variable being resampled.
struct ScratchWorld<'a> {
    shared: &'a AtomicWorld,
}

impl WorldView for ScratchWorld<'_> {
    fn value(&self, v: VarId) -> bool {
        self.shared.value(v)
    }
}

/// Energy difference for flipping `v`, evaluated against the shared world.  The
/// variable's own value is overridden explicitly rather than written back, so
/// concurrent readers of other variables are unaffected.
fn energy_delta_atomic(graph: &FactorGraph, v: VarId, scratch: &mut ScratchWorld<'_>) -> f64 {
    struct Pinned<'a, 'b> {
        inner: &'a ScratchWorld<'b>,
        var: VarId,
        value: bool,
    }
    impl WorldView for Pinned<'_, '_> {
        fn value(&self, v: VarId) -> bool {
            if v == self.var {
                self.value
            } else {
                self.inner.value(v)
            }
        }
    }
    let pinned_true = Pinned {
        inner: scratch,
        var: v,
        value: true,
    };
    let e_true: f64 = graph
        .factors_of(v)
        .iter()
        .map(|&f| {
            graph
                .factor(f)
                .energy(&pinned_true, graph.factor_weight_value(f))
        })
        .sum();
    let pinned_false = Pinned {
        inner: scratch,
        var: v,
        value: false,
    };
    let e_false: f64 = graph
        .factors_of(v)
        .iter()
        .map(|&f| {
            graph
                .factor(f)
                .energy(&pinned_false, graph.factor_weight_value(f))
        })
        .sum();
    e_true - e_false
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{Factor, FactorGraphBuilder};

    fn chain_graph(n: usize, prior: f64, coupling: f64) -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(n);
        let wp = b.tied_weight("prior", prior, false);
        let wc = b.tied_weight("couple", coupling, false);
        b.add_factor(Factor::is_true(wp, vs[0]));
        for i in 1..n {
            b.add_factor(Factor::equal(wc, vs[i - 1], vs[i]));
        }
        b.build()
    }

    #[test]
    fn parallel_matches_exact_on_small_chain() {
        let g = chain_graph(4, 1.0, 0.8);
        let mut s = ParallelGibbs::new(&g, 123).with_chunks(2);
        let m = s.run(6000, 500);
        for v in 0..4 {
            let expected = g.exact_marginal(v);
            assert!(
                (m.get(v) - expected).abs() < 0.05,
                "var {v}: parallel {} vs exact {}",
                m.get(v),
                expected
            );
        }
    }

    #[test]
    fn evidence_is_respected() {
        let mut b = FactorGraphBuilder::new();
        let q = b.add_query_variables(1)[0];
        let e = b.add_evidence_variable(false);
        let w = b.tied_weight("eq", 4.0, false);
        b.add_factor(Factor::equal(w, q, e));
        let g = b.build();
        let mut s = ParallelGibbs::new(&g, 9);
        let m = s.run(800, 100);
        assert_eq!(m.get(e), 0.0);
        assert!(m.get(q) < 0.15);
    }

    #[test]
    fn world_snapshot_has_right_size() {
        let g = chain_graph(10, 0.0, 0.1);
        let mut s = ParallelGibbs::new(&g, 5);
        s.sweep(0);
        assert_eq!(s.world().len(), 10);
    }

    #[test]
    fn larger_graph_runs_quickly_and_in_bounds() {
        let g = chain_graph(500, 0.2, 0.3);
        let mut s = ParallelGibbs::new(&g, 77);
        let m = s.run(50, 10);
        for v in 0..500 {
            let p = m.get(v);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}

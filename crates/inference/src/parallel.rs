//! Lock-free parallel Gibbs sampling (hogwild style) on a persistent pool.
//!
//! DimmWitted — the sampler behind DeepDive — runs Gibbs sweeps on many cores
//! concurrently without locking the assignment vector; races are tolerated
//! because each variable update only reads a small neighbourhood and the chain
//! remains ergodic.  We reproduce that design: the world lives in a vector of
//! `AtomicU64` bit-words (the same 1-bit-per-variable layout as the sequential
//! sampler's `World`), and each sweep partitions the query variables into
//! chunks dispatched across worker threads.
//!
//! Three runtime properties distinguish this from a naive fork-join sweep:
//!
//! * **Persistent workers** — sweeps are dispatched onto a long-lived
//!   [`rayon::ThreadPool`] (the process-global one by default, or any pool
//!   given to [`ParallelGibbs::with_pool`]); workers park between sweeps
//!   instead of being respawned, so the per-sweep cost is an epoch-barrier
//!   wake rather than thread creation.  The retired spawn-per-sweep
//!   dispatcher is kept behind [`ParallelGibbs::with_spawn_dispatch`] as the
//!   benchmark baseline.
//! * **Persistent RNG streams** — every chunk owns a [`SweepRng`] seeded once
//!   via [`mix_seed`] (a splitmix64-style avalanche mixer)
//!   and advanced across the whole run, instead of reseeding from weakly
//!   mixed `(seed, sweep, chunk)` XORs every sweep.  Runs remain fully
//!   deterministic for a fixed `(seed, chunk count)` whenever chunks execute
//!   without interleaving (one chunk, or a pool of size 1); with real
//!   hogwild interleaving, per-chunk streams still make each chunk's draw
//!   sequence reproducible even though read timing is not.
//! * **Worker-local marginal counting** — during counting sweeps each chunk
//!   accumulates `true` counts for *its own* variables into a chunk-local
//!   buffer while it still holds them in cache; [`ParallelGibbs::run`] merges
//!   the buffers once at the end.  A variable's value only changes when its
//!   own chunk resamples it, so counting at resample time is exactly
//!   equivalent to (and much cheaper than) a sequential end-of-sweep scan of
//!   the shared world.
//!
//! The energy computation is the *same* single-pass
//! [`FlatGraph::energy_delta`] the sequential sampler uses — it reads the
//! shared world through [`WorldView`] and overrides the variable being
//! resampled internally, so no per-thread scratch world or pinning wrapper is
//! needed and there is exactly one energy-delta implementation in the system.

use crate::gibbs::SweepRng;
use crate::marginals::Marginals;
use crate::rng::mix_seed;
use dd_factorgraph::{FactorGraph, FlatGraph, VarId, World, WorldView};
use rand::{Rng, SeedableRng};
use rayon::ThreadPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Shared, lock-free, bit-packed world representation.
struct AtomicWorld {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicWorld {
    fn from_world(world: &World) -> Self {
        AtomicWorld {
            words: world
                .as_words()
                .iter()
                .map(|&w| AtomicU64::new(w))
                .collect(),
            len: world.len(),
        }
    }

    fn to_world(&self) -> World {
        World::from_words(
            self.words
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            self.len,
        )
    }

    fn set(&self, v: VarId, value: bool) {
        let bit = 1u64 << (v % 64);
        if value {
            self.words[v / 64].fetch_or(bit, Ordering::Relaxed);
        } else {
            self.words[v / 64].fetch_and(!bit, Ordering::Relaxed);
        }
    }
}

impl WorldView for AtomicWorld {
    #[inline]
    fn value(&self, v: VarId) -> bool {
        self.words[v / 64].load(Ordering::Relaxed) >> (v % 64) & 1 == 1
    }
}

/// State owned by one variable chunk, surviving across sweeps.
///
/// Exactly one worker touches a given chunk per sweep (chunks are the unit of
/// dispatch), so the mutex is uncontended — it exists to move mutable access
/// through the `&self` the pool job closure captures.
struct ChunkState {
    /// This chunk's RNG stream, advanced monotonically across the run.
    rng: SweepRng,
    /// Per-variable `true` counts for the current counting phase
    /// (`counts[j]` belongs to the chunk's `j`-th variable).
    counts: Vec<u64>,
}

/// Multi-threaded Gibbs sampler over a compiled factor graph.
///
/// ```
/// use dd_factorgraph::{Factor, FactorGraphBuilder};
/// use dd_inference::ParallelGibbs;
///
/// // A 3-variable chain with a prior on the first variable.
/// let mut b = FactorGraphBuilder::new();
/// let vs = b.add_query_variables(3);
/// let prior = b.tied_weight("prior", 1.5, false);
/// let couple = b.tied_weight("couple", 0.8, false);
/// b.add_factor(Factor::is_true(prior, vs[0]));
/// b.add_factor(Factor::equal(couple, vs[0], vs[1]));
/// b.add_factor(Factor::equal(couple, vs[1], vs[2]));
/// let graph = b.build();
///
/// // One chunk => a fully deterministic chain for a fixed seed.
/// let mut sampler = ParallelGibbs::new(&graph, 7).with_chunks(1);
/// let marginals = sampler.run(2000, 200);
/// assert!(marginals.get(vs[0]) > 0.5); // positive prior pulls it up
/// let again = ParallelGibbs::new(&graph, 7).with_chunks(1).run(2000, 200);
/// assert_eq!(marginals.values(), again.values());
/// ```
pub struct ParallelGibbs {
    flat: FlatGraph,
    world: AtomicWorld,
    free_vars: Vec<VarId>,
    seed: u64,
    /// Requested chunk count; `None` follows the dispatch pool's size.
    chunks: Option<usize>,
    /// The persistent worker pool sweeps are dispatched on; `None` means the
    /// process-global pool, resolved lazily at the first sweep so that
    /// constructing a sampler (or immediately overriding with
    /// [`ParallelGibbs::with_pool`]) never instantiates it.
    pool: Option<Arc<ThreadPool>>,
    /// Benchmark baseline: spawn scoped threads per sweep instead of using
    /// the pool (see [`ParallelGibbs::with_spawn_dispatch`]).
    spawn_dispatch: bool,
    /// Variables per chunk for the currently built `chunk_states`.
    chunk_size: usize,
    /// One state per chunk (RNG stream + count buffer), kept across sweeps;
    /// empty until the first sweep after a (re)configuration.
    chunk_states: Vec<Mutex<ChunkState>>,
}

impl ParallelGibbs {
    /// Create a parallel sampler over the graph's query variables, running on
    /// the process-global worker pool.
    pub fn new(graph: &FactorGraph, seed: u64) -> Self {
        Self::from_flat(graph.compile(), seed)
    }

    /// Create a parallel sampler from an already-compiled graph.
    pub fn from_flat(flat: FlatGraph, seed: u64) -> Self {
        let world = AtomicWorld::from_world(&flat.initial_world());
        let free_vars = flat.query_variables().to_vec();
        ParallelGibbs {
            flat,
            world,
            free_vars,
            seed,
            chunks: None,
            pool: None,
            spawn_dispatch: false,
            chunk_size: 1,
            chunk_states: Vec::new(),
        }
    }

    /// Run on `pool` instead of the process-global one, with one chunk per
    /// pool thread (call [`ParallelGibbs::with_chunks`] *after* this to
    /// override the chunk count).
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self.chunks = None;
        self.chunk_states.clear();
        self
    }

    /// Override the number of chunks the variable set is split into per sweep.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        self.chunks = Some(chunks.max(1));
        self.chunk_states.clear();
        self
    }

    /// Dispatch every sweep onto freshly spawned scoped threads (the
    /// pre-pool runtime), preserving chunk count and RNG streams.  This is
    /// the baseline leg of `bench_sweeps`' pooled-vs-spawn comparison; there
    /// is no reason to use it otherwise.
    pub fn with_spawn_dispatch(mut self) -> Self {
        self.spawn_dispatch = true;
        self
    }

    /// Restrict (or extend) the set of resampled variables — e.g. the free
    /// chain of weight learning resamples evidence variables too.
    pub fn with_free_vars(mut self, free_vars: Vec<VarId>) -> Self {
        self.free_vars = free_vars;
        self.chunk_states.clear();
        self
    }

    /// Re-resolve weight values from `graph` after learning moved them,
    /// without rebuilding topology, chunk layout, or RNG streams.
    pub fn refresh_weights(&mut self, graph: &FactorGraph) {
        self.flat.refresh_weights(graph);
    }

    /// The dispatch pool, falling back to the process-global one (and caching
    /// that choice) if none was configured.
    fn pool(&mut self) -> Arc<ThreadPool> {
        Arc::clone(
            self.pool
                .get_or_insert_with(|| Arc::clone(rayon::global_pool())),
        )
    }

    /// Build per-chunk state if the configuration changed since the last
    /// sweep: fix the chunk layout and seed one RNG stream per chunk
    /// (splitmix-mixed from the run seed).
    fn ensure_chunk_states(&mut self) {
        if !self.chunk_states.is_empty() || self.free_vars.is_empty() {
            return;
        }
        let chunks = match self.chunks {
            Some(c) => c,
            // Follow the pool's size; the spawn baseline without an explicit
            // pool falls back to the machine size rather than instantiating
            // the global pool it exists to avoid.
            None => match (&self.pool, self.spawn_dispatch) {
                (Some(pool), _) => pool.num_threads(),
                (None, false) => self.pool().num_threads(),
                (None, true) => std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            },
        }
        .max(1);
        self.chunk_size = self.free_vars.len().div_ceil(chunks).max(1);
        let num_chunks = self.free_vars.len().div_ceil(self.chunk_size);
        self.chunk_states = (0..num_chunks)
            .map(|chunk| {
                Mutex::new(ChunkState {
                    rng: SweepRng::seed_from_u64(mix_seed(self.seed, chunk as u64)),
                    counts: Vec::new(),
                })
            })
            .collect();
    }

    /// One hogwild sweep: every free variable is resampled exactly once, with
    /// the variable set partitioned across the pool's threads.
    pub fn sweep(&mut self) {
        self.sweep_internal(false);
    }

    fn sweep_internal(&mut self, count: bool) {
        self.ensure_chunk_states();
        // The spawn baseline never touches the pool; resolve it only for the
        // pooled path so `with_spawn_dispatch` cannot instantiate workers.
        let pool = (!self.spawn_dispatch).then(|| self.pool());
        let chunk_size = self.chunk_size;
        let flat = &self.flat;
        let world = &self.world;
        let free_vars = &self.free_vars;
        let chunk_states = &self.chunk_states;
        let run_chunk = |chunk: usize| {
            let range = chunk_range(chunk, chunk_size, free_vars.len());
            let mut state = lock_chunk(&chunk_states[chunk]);
            let state = &mut *state;
            for (j, &v) in free_vars[range].iter().enumerate() {
                let p_true = flat.conditional_p_true(v, world);
                let value = state.rng.gen::<f64>() < p_true;
                world.set(v, value);
                if count && value {
                    state.counts[j] += 1;
                }
            }
        };
        match pool {
            Some(pool) => pool.run_chunks(chunk_states.len(), &run_chunk),
            None => {
                // Equal-thread-count baseline: mirror the explicit pool's
                // parallelism, or one thread per chunk when unconfigured.
                let threads = match &self.pool {
                    Some(pool) => pool.num_threads(),
                    None => chunk_states.len(),
                };
                rayon::spawn_run_chunks(chunk_states.len(), threads, &run_chunk);
            }
        }
    }

    /// Run burn-in plus `sweeps` counting sweeps, returning marginals.
    pub fn run(&mut self, sweeps: usize, burn_in: usize) -> Marginals {
        self.ensure_chunk_states();
        for _ in 0..burn_in {
            self.sweep();
        }
        // Counting phase: chunks count their own variables locally during the
        // sweep (see module docs); zero the buffers first.
        let chunk_size = self.chunk_size;
        for (chunk, state) in self.chunk_states.iter().enumerate() {
            let range = chunk_range(chunk, chunk_size, self.free_vars.len());
            lock_chunk(state).counts = vec![0; range.len()];
        }
        let sweeps = sweeps.max(1);
        for _ in 0..sweeps {
            self.sweep_internal(true);
        }
        // Merge: clamped variables report their fixed value, free variables
        // their empirical frequency.
        let mut values: Vec<f64> = self
            .world
            .to_world()
            .iter()
            .map(|b| if b { 1.0 } else { 0.0 })
            .collect();
        for (chunk, state) in self.chunk_states.iter().enumerate() {
            let lo = chunk_range(chunk, chunk_size, self.free_vars.len()).start;
            let state = lock_chunk(state);
            for (j, &c) in state.counts.iter().enumerate() {
                values[self.free_vars[lo + j]] = c as f64 / sweeps as f64;
            }
        }
        Marginals::from_values(values)
    }

    /// Expected total feature value per weight over `sweeps` hogwild samples —
    /// the sufficient statistic of the learning gradient, estimated with the
    /// parallel chain (the pool-backed counterpart of
    /// [`GibbsSampler::expected_feature_counts`](crate::GibbsSampler::expected_feature_counts)).
    pub fn expected_feature_counts(&mut self, sweeps: usize) -> Vec<f64> {
        let mut totals = vec![0.0; self.flat.num_weights()];
        let sweeps = sweeps.max(1);
        for _ in 0..sweeps {
            self.sweep();
            self.flat
                .accumulate_feature_counts(&self.world, &mut totals);
        }
        for t in &mut totals {
            *t /= sweeps as f64;
        }
        totals
    }

    /// Snapshot of the current world.
    pub fn world(&self) -> World {
        self.world.to_world()
    }
}

/// The variable index range owned by `chunk` under a fixed chunk size.
fn chunk_range(chunk: usize, chunk_size: usize, num_vars: usize) -> std::ops::Range<usize> {
    let lo = chunk * chunk_size;
    lo..(lo + chunk_size).min(num_vars)
}

/// Chunk mutexes are uncontended by construction (one worker per chunk per
/// sweep); ignore poisoning so an aborted sweep doesn't brick the sampler.
fn lock_chunk(state: &Mutex<ChunkState>) -> MutexGuard<'_, ChunkState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{Factor, FactorGraphBuilder};

    fn chain_graph(n: usize, prior: f64, coupling: f64) -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(n);
        let wp = b.tied_weight("prior", prior, false);
        let wc = b.tied_weight("couple", coupling, false);
        b.add_factor(Factor::is_true(wp, vs[0]));
        for i in 1..n {
            b.add_factor(Factor::equal(wc, vs[i - 1], vs[i]));
        }
        b.build()
    }

    #[test]
    fn parallel_matches_exact_on_small_chain() {
        let g = chain_graph(4, 1.0, 0.8);
        let mut s = ParallelGibbs::new(&g, 123).with_chunks(2);
        let m = s.run(6000, 500);
        for v in 0..4 {
            let expected = g.exact_marginal(v);
            assert!(
                (m.get(v) - expected).abs() < 0.05,
                "var {v}: parallel {} vs exact {}",
                m.get(v),
                expected
            );
        }
    }

    #[test]
    fn evidence_is_respected() {
        let mut b = FactorGraphBuilder::new();
        let q = b.add_query_variables(1)[0];
        let e = b.add_evidence_variable(false);
        let w = b.tied_weight("eq", 4.0, false);
        b.add_factor(Factor::equal(w, q, e));
        let g = b.build();
        let mut s = ParallelGibbs::new(&g, 9);
        let m = s.run(800, 100);
        assert_eq!(m.get(e), 0.0);
        assert!(m.get(q) < 0.15);
    }

    #[test]
    fn world_snapshot_has_right_size() {
        let g = chain_graph(10, 0.0, 0.1);
        let mut s = ParallelGibbs::new(&g, 5);
        s.sweep();
        assert_eq!(s.world().len(), 10);
    }

    #[test]
    fn larger_graph_runs_quickly_and_in_bounds() {
        let g = chain_graph(500, 0.2, 0.3);
        let mut s = ParallelGibbs::new(&g, 77);
        let m = s.run(50, 10);
        for v in 0..500 {
            let p = m.get(v);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn single_chunk_parallel_is_deterministic_per_seed() {
        // With one chunk there is no cross-thread interleaving, so the chain
        // is exactly reproducible for a fixed seed.
        let g = chain_graph(32, 0.3, 0.4);
        let m1 = ParallelGibbs::new(&g, 41).with_chunks(1).run(200, 20);
        let m2 = ParallelGibbs::new(&g, 41).with_chunks(1).run(200, 20);
        assert_eq!(m1.values(), m2.values());
    }

    #[test]
    fn spawn_dispatch_baseline_agrees_with_pool_on_one_chunk() {
        // Same chunk layout + same persistent RNG streams => the dispatch
        // runtime must not change the chain.
        let g = chain_graph(32, 0.3, 0.4);
        let pooled = ParallelGibbs::new(&g, 41).with_chunks(1).run(200, 20);
        let spawned = ParallelGibbs::new(&g, 41)
            .with_chunks(1)
            .with_spawn_dispatch()
            .run(200, 20);
        assert_eq!(pooled.values(), spawned.values());
    }

    #[test]
    fn explicit_pool_runs_and_counts_correctly() {
        let g = chain_graph(64, 0.5, 0.2);
        let pool = Arc::new(ThreadPool::new(3));
        let mut s = ParallelGibbs::new(&g, 11).with_pool(Arc::clone(&pool));
        s.sweep();
        // Default chunking follows the explicit pool's size (built lazily at
        // the first sweep).
        assert_eq!(s.chunk_states.len(), 3);
        let m = s.run(400, 50);
        for v in 0..64 {
            assert!((0.0..=1.0).contains(&m.get(v)));
        }
        // Pool outlives the sampler and stays usable.
        drop(s);
        let mut s2 = ParallelGibbs::new(&g, 12).with_pool(pool);
        s2.sweep();
    }

    #[test]
    fn worker_local_counts_match_end_of_sweep_scan() {
        // Run the counting phase, then verify against marginals recomputed by
        // replaying the identical chain with a sequential end-of-sweep scan.
        let g = chain_graph(20, 0.4, 0.6);
        let m_fast = ParallelGibbs::new(&g, 99).with_chunks(1).run(300, 30);

        let mut s = ParallelGibbs::new(&g, 99).with_chunks(1);
        for _ in 0..30 {
            s.sweep();
        }
        let mut counts = vec![0usize; 20];
        for _ in 0..300 {
            s.sweep();
            let w = s.world();
            for (v, c) in counts.iter_mut().enumerate() {
                if w.value(v) {
                    *c += 1;
                }
            }
        }
        for v in 0..20 {
            assert!((m_fast.get(v) - counts[v] as f64 / 300.0).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_feature_counts_reflect_marginals() {
        let mut b = FactorGraphBuilder::new();
        let v = b.add_query_variables(1)[0];
        let w = b.tied_weight("prior", 2.0, false);
        b.add_factor(Factor::is_true(w, v));
        let g = b.build();
        let mut s = ParallelGibbs::new(&g, 17);
        for _ in 0..100 {
            s.sweep();
        }
        let counts = s.expected_feature_counts(3000);
        let expected = g.exact_marginal(0);
        assert!(
            (counts[0] - expected).abs() < 0.05,
            "{} vs {}",
            counts[0],
            expected
        );
    }
}

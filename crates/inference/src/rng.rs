//! Seed derivation for parallel RNG streams.
//!
//! Hogwild sweeps give every variable chunk its own RNG stream.  Deriving
//! those stream seeds by XOR-ing small integers into the run seed (the
//! original `seed ^ (sweep << 20) ^ chunk` scheme) is dangerously weak: XOR
//! of nearby counters flips only a handful of low bits, so streams for
//! adjacent chunks/sweeps start close together in seed space and can collide
//! outright (`seed ^ a ^ b == seed ^ b ^ a`).  [`mix_seed`] instead pushes the
//! `(seed, stream)` pair through the splitmix64 finalizer, whose avalanche
//! property flips every output bit with probability ≈ ½ for any single input
//! bit change — adjacent stream ids land in statistically unrelated states.

/// Derive the seed for RNG stream `stream` of a run seeded with `seed`.
///
/// This is the splitmix64 output function applied to `seed` advanced by
/// `stream` increments of the golden-gamma constant, i.e. the `stream`-th
/// output of a splitmix64 generator initialised at `seed` — the standard way
/// to fan one user seed out into many decorrelated generator seeds.
///
/// ```
/// use dd_inference::mix_seed;
/// // Streams of one seed are pairwise distinct and far apart.
/// assert_ne!(mix_seed(7, 0), mix_seed(7, 1));
/// // The old XOR scheme collided under operand swap; the mixer must not
/// // (mix(s, a) == mix(s', b) only when the full inputs match).
/// assert_ne!(mix_seed(7 ^ 1, 2), mix_seed(7 ^ 2, 1));
/// // Deterministic: same inputs, same stream seed.
/// assert_eq!(mix_seed(41, 3), mix_seed(41, 3));
/// ```
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_pairwise_distinct_across_nearby_seeds() {
        // The failure mode of the old scheme: nearby (seed, chunk) pairs
        // produced identical or near-identical stream seeds.
        let mut seen = HashSet::new();
        for seed in 0..64u64 {
            for stream in 0..64u64 {
                assert!(
                    seen.insert(mix_seed(seed, stream)),
                    "collision at seed {seed} stream {stream}"
                );
            }
        }
    }

    #[test]
    fn single_bit_input_changes_avalanche() {
        // Flipping one input bit should flip roughly half the output bits;
        // require at least 16 of 64 as a loose avalanche sanity check.
        let base = mix_seed(0xDEAD_BEEF, 5);
        for bit in 0..64 {
            let flipped = mix_seed(0xDEAD_BEEF ^ (1u64 << bit), 5);
            assert!(
                (base ^ flipped).count_ones() >= 16,
                "weak avalanche on seed bit {bit}"
            );
        }
        for bit in 0..8 {
            let flipped = mix_seed(0xDEAD_BEEF, 5 ^ (1u64 << bit));
            assert!(
                (base ^ flipped).count_ones() >= 16,
                "weak avalanche on stream bit {bit}"
            );
        }
    }
}

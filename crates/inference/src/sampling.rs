//! The sampling materialization strategy with independent Metropolis–Hastings
//! incremental inference (paper §3.2.2).
//!
//! *Materialization phase*: draw possible worlds from the original distribution
//! with Gibbs sampling and store them as bit-packed tuple bundles (after MCDB).
//!
//! *Inference phase*: the stored samples are proposals for an independent
//! Metropolis–Hastings chain targeting the updated distribution `Pr(Δ)`.  The
//! acceptance test only needs the changed factors (ΔF), the changed weights, and
//! the new evidence — "we may fetch many fewer factors than in the original
//! graph, but we still converge to the correct answer."  The fraction of accepted
//! proposals is the *acceptance rate*, the key performance parameter of the
//! approach (Figure 5b); when the stored samples are exhausted, the caller is
//! told so it can fall back to the variational approach or to fresh Gibbs
//! sampling (the optimizer rule of §3.3).

use crate::change::DistributionChange;
use crate::gibbs::{GibbsOptions, GibbsSampler, SampleSet};
use crate::marginals::Marginals;
use dd_factorgraph::{FactorGraph, FlatGraph, World, WorldView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of an incremental MH inference run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MhOutcome {
    /// Marginal estimates under the updated distribution.
    pub marginals: Marginals,
    /// Fraction of proposals accepted.
    pub acceptance_rate: f64,
    /// Number of stored samples consumed.
    pub proposals_used: usize,
    /// True if the run stopped because the stored samples were exhausted before
    /// the requested number of inference samples was reached.
    pub exhausted: bool,
}

/// The sampling materialization: stored tuple bundles plus bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleMaterialization {
    samples: SampleSet,
    /// Number of variables of the original graph.
    num_original_vars: usize,
}

impl SampleMaterialization {
    /// Materialize `num_samples` worlds from the original graph.
    pub fn materialize(graph: &FactorGraph, num_samples: usize, burn_in: usize, seed: u64) -> Self {
        let mut sampler = GibbsSampler::new(graph, seed);
        let samples = sampler.draw_samples(num_samples, burn_in);
        SampleMaterialization {
            samples,
            num_original_vars: graph.num_variables(),
        }
    }

    /// Build directly from an existing sample set (used when the engine shares
    /// one Gibbs run between the sampling and variational materializations).
    pub fn from_samples(samples: SampleSet, num_original_vars: usize) -> Self {
        SampleMaterialization {
            samples,
            num_original_vars,
        }
    }

    /// Number of stored samples.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// The stored tuple bundles (checkpoint codec access).
    pub fn samples(&self) -> &SampleSet {
        &self.samples
    }

    /// Number of variables of the original graph (checkpoint codec access).
    pub fn num_original_vars(&self) -> usize {
        self.num_original_vars
    }

    /// Approximate storage size in bytes (1 bit per variable per sample).
    pub fn storage_bytes(&self) -> usize {
        self.samples.storage_bytes()
    }

    /// Marginals of the original distribution, straight from the stored samples.
    pub fn original_marginals(&self) -> Marginals {
        self.samples.marginals()
    }

    /// Run independent Metropolis–Hastings against the updated distribution.
    ///
    /// * `updated` — the factor graph *after* the delta was applied.
    /// * `change`  — the [`DistributionChange`] describing ΔF / weight / evidence
    ///   changes (produced by `DistributionChange::apply_and_describe`).
    /// * `inference_samples` — number of chain steps requested (`S_I`).
    ///
    /// Each chain step consumes one stored proposal; if the store runs out the
    /// outcome is flagged `exhausted` and the marginals reflect the steps taken
    /// so far.
    pub fn infer(
        &self,
        updated: &FactorGraph,
        change: &DistributionChange,
        inference_samples: usize,
        seed: u64,
    ) -> MhOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let total_vars = updated.num_variables();
        let mut counts = vec![0usize; total_vars];
        let mut accepted = 0usize;
        let mut steps = 0usize;

        if self.samples.is_empty() {
            return MhOutcome {
                marginals: Marginals::zeros(total_vars),
                acceptance_rate: 0.0,
                proposals_used: 0,
                exhausted: true,
            };
        }

        // Proposal extension Gibbs-samples the new variables; compile the
        // updated graph once here instead of once per stored proposal.
        let flat = if change.new_variables.is_empty() {
            None
        } else {
            Some(updated.compile())
        };
        let init = updated.initial_world();

        // Proposals are consumed in a shuffled order.  Consecutive Gibbs sweeps
        // are autocorrelated; the independence-sampler analysis (and therefore
        // the chain's stationary distribution) requires each proposal to be
        // independent of the current state, which the shuffle restores while
        // keeping the "each stored sample is used at most once" exhaustion
        // semantics.
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        shuffle(&mut order, &mut rng);

        // The initial state: the first stored sample consistent with any new
        // evidence.  Repairing a sample (instead of rejecting it) would distort
        // the conditional distribution of the variables correlated with the
        // evidence, so consistency is found by scanning, and only if *no* stored
        // sample is consistent do we repair one as a last resort.
        let mut next_proposal = 0usize;
        let mut found: Option<(World, f64)> = None;
        while next_proposal < order.len() {
            let cand = self.extend_sample(flat.as_ref(), &init, change, order[next_proposal], seed);
            next_proposal += 1;
            let d = change.delta_log_weight(updated, &cand);
            if d > f64::NEG_INFINITY {
                found = Some((cand, d));
                break;
            }
        }
        let (mut current, mut current_delta) = match found {
            Some(pair) => pair,
            None => {
                let mut c = self.extend_sample(flat.as_ref(), &init, change, order[0], seed);
                for &(v, val) in &change.new_evidence {
                    c.set(v, val);
                }
                let d = change.delta_log_weight(updated, &c);
                let d = if d == f64::NEG_INFINITY { 0.0 } else { d };
                (c, d)
            }
        };

        let mut exhausted = false;
        for _ in 0..inference_samples {
            if next_proposal >= order.len() {
                exhausted = true;
                break;
            }
            let proposal = self.extend_sample(
                flat.as_ref(),
                &init,
                change,
                order[next_proposal],
                seed ^ 0x9e37,
            );
            next_proposal += 1;
            steps += 1;

            let proposal_delta = change.delta_log_weight(updated, &proposal);
            // Independence sampler acceptance: the Pr(0) terms cancel, leaving
            // exp(ΔW(I') − ΔW(I)).
            let log_alpha = proposal_delta - current_delta;
            if log_alpha >= 0.0 || rng.gen::<f64>() < log_alpha.exp() {
                current = proposal;
                current_delta = proposal_delta;
                accepted += 1;
            }
            for (v, c) in counts.iter_mut().enumerate() {
                if current.value(v) {
                    *c += 1;
                }
            }
        }

        let denom = steps.max(1) as f64;
        MhOutcome {
            marginals: Marginals::from_values(
                counts.into_iter().map(|c| c as f64 / denom).collect(),
            ),
            acceptance_rate: if steps == 0 {
                0.0
            } else {
                accepted as f64 / steps as f64
            },
            proposals_used: next_proposal,
            exhausted,
        }
    }

    /// Fetch stored sample `i` and extend it to the updated graph: new variables
    /// (ΔV) get values by Gibbs-sampling them conditioned on the stored part,
    /// and new evidence is honoured.  `flat` is the compiled updated graph,
    /// present exactly when the change introduces new variables; `init` is the
    /// updated graph's initial world.
    fn extend_sample(
        &self,
        flat: Option<&FlatGraph>,
        init: &World,
        change: &DistributionChange,
        i: usize,
        seed: u64,
    ) -> World {
        let stored = self.samples.get(i);
        let mut values = stored.to_vec();
        for v in self.num_original_vars..init.len() {
            values.push(init.value(v));
        }
        let world = World::from_values(values);
        let Some(flat) = flat else {
            return world;
        };
        // A few restricted Gibbs sweeps over only the new variables.
        let free: Vec<usize> = change
            .new_variables
            .iter()
            .copied()
            .filter(|&v| !flat.is_evidence(v))
            .collect();
        if free.is_empty() {
            return world;
        }
        let mut sampler =
            GibbsSampler::from_flat(flat, seed.wrapping_add(i as u64)).with_free_vars(free);
        sampler.set_world(world);
        for _ in 0..3 {
            sampler.sweep();
        }
        sampler.world().clone()
    }
}

/// Fisher–Yates shuffle (kept local to avoid pulling in rand's slice extension
/// trait just for this).
fn shuffle(indices: &mut [usize], rng: &mut StdRng) {
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
}

/// Convenience: run plain (non-incremental) Gibbs on a graph — the "Rerun"
/// baseline used throughout the experiments.
pub fn rerun_gibbs(graph: &FactorGraph, options: &GibbsOptions) -> Marginals {
    GibbsSampler::new(graph, options.seed).run(options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{
        DeltaFactor, EvidenceChange, Factor, FactorGraphBuilder, GraphDelta, NewVarRef,
        NewWeightRef, Variable, VariableRole, Weight, WeightChange,
    };

    fn graph(prior: f64) -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(4);
        let wp = b.tied_weight("prior", prior, false);
        let wc = b.tied_weight("couple", 0.7, false);
        b.add_factor(Factor::is_true(wp, vs[0]));
        b.add_factor(Factor::is_true(wp, vs[2]));
        b.add_factor(Factor::equal(wc, vs[0], vs[1]));
        b.add_factor(Factor::equal(wc, vs[2], vs[3]));
        b.build()
    }

    fn materialize(g: &FactorGraph, n: usize) -> SampleMaterialization {
        SampleMaterialization::materialize(g, n, 200, 13)
    }

    #[test]
    fn identity_update_has_full_acceptance() {
        let g0 = graph(0.5);
        let mat = materialize(&g0, 800);
        let mut g = g0.clone();
        let change = DistributionChange::apply_and_describe(&mut g, &GraphDelta::new());
        let out = mat.infer(&g, &change, 500, 3);
        assert!(!out.exhausted);
        assert_eq!(out.acceptance_rate, 1.0);
        // Marginals close to the exact ones of the (unchanged) distribution.
        for v in 0..4 {
            assert!((out.marginals.get(v) - g.exact_marginal(v)).abs() < 0.08);
        }
    }

    #[test]
    fn weight_change_lowers_acceptance_but_stays_accurate() {
        let g0 = graph(0.5);
        let mat = materialize(&g0, 3000);
        let mut g = g0.clone();
        let delta = GraphDelta {
            weight_changes: vec![WeightChange {
                weight_id: 0,
                new_value: 1.8,
            }],
            ..Default::default()
        };
        let change = DistributionChange::apply_and_describe(&mut g, &delta);
        let out = mat.infer(&g, &change, 2500, 5);
        assert!(out.acceptance_rate < 1.0);
        assert!(out.acceptance_rate > 0.05);
        for v in 0..4 {
            assert!(
                (out.marginals.get(v) - g.exact_marginal(v)).abs() < 0.1,
                "var {v}: {} vs {}",
                out.marginals.get(v),
                g.exact_marginal(v)
            );
        }
    }

    #[test]
    fn larger_change_means_lower_acceptance() {
        let g0 = graph(0.0);
        let mat = materialize(&g0, 2000);
        let mut acc = Vec::new();
        for &new_w in &[0.2, 1.0, 3.0] {
            let mut g = g0.clone();
            let delta = GraphDelta {
                weight_changes: vec![WeightChange {
                    weight_id: 0,
                    new_value: new_w,
                }],
                ..Default::default()
            };
            let change = DistributionChange::apply_and_describe(&mut g, &delta);
            let out = mat.infer(&g, &change, 1500, 11);
            acc.push(out.acceptance_rate);
        }
        assert!(acc[0] > acc[1]);
        assert!(acc[1] > acc[2]);
    }

    #[test]
    fn new_variable_and_factor_are_handled() {
        let g0 = graph(0.3);
        let mat = materialize(&g0, 2000);
        let mut g = g0.clone();
        let delta = GraphDelta {
            new_variables: vec![Variable::query(0)],
            new_weights: vec![Weight::learnable(0, 1.2, "new")],
            new_factors: vec![DeltaFactor {
                weight: NewWeightRef::New(0),
                template: Factor::equal(0, 0, 1),
                var_refs: vec![NewVarRef::Existing(0), NewVarRef::New(0)],
            }],
            ..Default::default()
        };
        let change = DistributionChange::apply_and_describe(&mut g, &delta);
        let out = mat.infer(&g, &change, 1500, 17);
        assert_eq!(out.marginals.len(), 5);
        for v in 0..5 {
            assert!(
                (out.marginals.get(v) - g.exact_marginal(v)).abs() < 0.12,
                "var {v}: {} vs {}",
                out.marginals.get(v),
                g.exact_marginal(v)
            );
        }
    }

    #[test]
    fn evidence_change_pins_variable() {
        let g0 = graph(0.0);
        let mat = materialize(&g0, 1500);
        let mut g = g0.clone();
        let delta = GraphDelta {
            evidence_changes: vec![EvidenceChange {
                var: 0,
                new_role: VariableRole::PositiveEvidence,
            }],
            ..Default::default()
        };
        let change = DistributionChange::apply_and_describe(&mut g, &delta);
        let out = mat.infer(&g, &change, 1000, 23);
        assert_eq!(out.marginals.get(0), 1.0);
        // variable 1 is coupled to 0, so its marginal should rise above 0.5
        assert!(out.marginals.get(1) > 0.55);
    }

    #[test]
    fn exhaustion_is_reported() {
        let g0 = graph(0.1);
        let mat = materialize(&g0, 50);
        let mut g = g0.clone();
        let change = DistributionChange::apply_and_describe(&mut g, &GraphDelta::new());
        let out = mat.infer(&g, &change, 500, 1);
        assert!(out.exhausted);
        assert!(out.proposals_used <= 50);
    }

    #[test]
    fn empty_materialization_is_immediately_exhausted() {
        let g0 = graph(0.1);
        let mat = SampleMaterialization::materialize(&g0, 0, 0, 1);
        let mut g = g0.clone();
        let change = DistributionChange::apply_and_describe(&mut g, &GraphDelta::new());
        let out = mat.infer(&g, &change, 10, 1);
        assert!(out.exhausted);
        assert_eq!(out.proposals_used, 0);
    }

    #[test]
    fn storage_is_one_bit_per_variable() {
        let g0 = graph(0.1);
        let mat = materialize(&g0, 100);
        // 4 variables -> 1 byte per sample
        assert_eq!(mat.storage_bytes(), 100);
        assert_eq!(mat.num_samples(), 100);
    }
}

//! The strawman strategy: complete materialization of all possible worlds
//! (paper §3.2.1).
//!
//! "We explicitly store the value of the probability `Pr[I]` for every possible
//! world I.  This approach has perfect fidelity, but storing all possible worlds
//! takes an exponential amount of space and time."  It exists to anchor the
//! tradeoff study (Figure 5a): it is exact and its incremental-inference phase is
//! extremely cheap, but it is infeasible beyond ~20 query variables.

use crate::change::DistributionChange;
use crate::marginals::Marginals;
use dd_factorgraph::{FactorGraph, VarId, World, WorldView};
use serde::{Deserialize, Serialize};

/// Hard cap on the number of query variables the strawman will enumerate.
pub const MAX_STRAWMAN_VARS: usize = 22;

/// Complete materialization: the log-weight of every possible world over the
/// query variables of the original graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrawmanMaterialization {
    /// Query variables enumerated, in bit order.
    query_vars: Vec<VarId>,
    /// Total number of variables of the original graph.
    num_vars: usize,
    /// Evidence/initial values for non-query variables.
    base_world: Vec<bool>,
    /// `log_weights[mask]` = unnormalized log-weight of the world where query
    /// variable `i` is true iff bit `i` of `mask` is set.
    log_weights: Vec<f64>,
}

impl StrawmanMaterialization {
    /// Enumerate and store every possible world.  Returns `None` if the graph
    /// has too many query variables to enumerate.
    pub fn materialize(graph: &FactorGraph) -> Option<Self> {
        let query_vars = graph.query_variables();
        if query_vars.len() > MAX_STRAWMAN_VARS {
            return None;
        }
        let mut world = graph.initial_world();
        let base_world = world.to_vec();
        let mut log_weights = Vec::with_capacity(1 << query_vars.len());
        for mask in 0u64..(1u64 << query_vars.len()) {
            for (i, &v) in query_vars.iter().enumerate() {
                world.set(v, (mask >> i) & 1 == 1);
            }
            log_weights.push(graph.log_weight(&world));
        }
        Some(StrawmanMaterialization {
            query_vars,
            num_vars: graph.num_variables(),
            base_world,
            log_weights,
        })
    }

    /// Rebuild a materialization from its stored parts, exactly (checkpoint
    /// codec access — pairs with the accessors below).
    pub fn from_parts(
        query_vars: Vec<VarId>,
        num_vars: usize,
        base_world: Vec<bool>,
        log_weights: Vec<f64>,
    ) -> Self {
        StrawmanMaterialization {
            query_vars,
            num_vars,
            base_world,
            log_weights,
        }
    }

    /// Query variables enumerated, in bit order (checkpoint codec access).
    pub fn query_vars(&self) -> &[VarId] {
        &self.query_vars
    }

    /// Total number of variables of the original graph (checkpoint codec
    /// access).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Evidence/initial values for non-query variables (checkpoint codec
    /// access).
    pub fn base_world(&self) -> &[bool] {
        &self.base_world
    }

    /// Stored per-world log-weights (checkpoint codec access).
    pub fn log_weights(&self) -> &[f64] {
        &self.log_weights
    }

    /// Number of stored worlds (2^|Q|).
    pub fn num_worlds(&self) -> usize {
        self.log_weights.len()
    }

    /// Approximate storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.log_weights.len() * std::mem::size_of::<f64>()
    }

    /// Exact marginals of the *original* distribution (no change applied).
    pub fn original_marginals(&self) -> Marginals {
        self.marginals_with(|_world| 0.0, self.num_vars)
    }

    /// Exact marginals of the *updated* distribution described by `change`
    /// against the updated graph.
    ///
    /// New variables introduced by the change are enumerated on the fly (their
    /// count must keep the total enumeration feasible); evidence changes are
    /// handled by `DistributionChange::delta_log_weight` returning −∞ for
    /// inconsistent worlds.
    pub fn incremental_marginals(
        &self,
        updated: &FactorGraph,
        change: &DistributionChange,
    ) -> Option<Marginals> {
        let new_vars = &change.new_variables;
        if self.query_vars.len() + new_vars.len() > MAX_STRAWMAN_VARS {
            return None;
        }
        let total_vars = updated.num_variables();
        let mut values = self.base_world.clone();
        // extend with the updated graph's initial values for new variables
        let init = updated.initial_world();
        for v in self.num_vars..total_vars {
            values.push(init.value(v));
        }
        let mut world = World::from_values(values);

        let mut z = 0.0f64;
        let mut p_true = vec![0.0f64; total_vars];
        // Normalize against the maximum exponent for stability.
        let max_base = self
            .log_weights
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);

        for (mask, &base_lw) in self.log_weights.iter().enumerate() {
            for (i, &v) in self.query_vars.iter().enumerate() {
                world.set(v, (mask >> i) & 1 == 1);
            }
            for new_mask in 0u64..(1u64 << new_vars.len()) {
                for (i, &v) in new_vars.iter().enumerate() {
                    world.set(v, (new_mask >> i) & 1 == 1);
                }
                let delta = change.delta_log_weight(updated, &world);
                if delta == f64::NEG_INFINITY {
                    continue;
                }
                let w = (base_lw - max_base + delta).exp();
                z += w;
                for (v, p) in p_true.iter_mut().enumerate() {
                    if world.value(v) {
                        *p += w;
                    }
                }
            }
        }
        if z == 0.0 {
            return None;
        }
        Some(Marginals::from_values(
            p_true.into_iter().map(|p| p / z).collect(),
        ))
    }

    fn marginals_with<F>(&self, extra: F, total_vars: usize) -> Marginals
    where
        F: Fn(&World) -> f64,
    {
        let mut world = World::from_values(self.base_world.clone());
        let mut z = 0.0f64;
        let mut p_true = vec![0.0f64; total_vars];
        let max_base = self
            .log_weights
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        for (mask, &base_lw) in self.log_weights.iter().enumerate() {
            for (i, &v) in self.query_vars.iter().enumerate() {
                world.set(v, (mask >> i) & 1 == 1);
            }
            let w = (base_lw - max_base + extra(&world)).exp();
            z += w;
            for (v, p) in p_true.iter_mut().enumerate() {
                if world.value(v) {
                    *p += w;
                }
            }
        }
        Marginals::from_values(p_true.into_iter().map(|p| p / z).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{
        DeltaFactor, EvidenceChange, Factor, FactorGraphBuilder, GraphDelta, NewVarRef,
        NewWeightRef, Variable, VariableRole, Weight, WeightChange,
    };

    fn small_graph() -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(3);
        let wp = b.tied_weight("prior", 0.6, false);
        let wc = b.tied_weight("couple", 0.9, false);
        b.add_factor(Factor::is_true(wp, vs[0]));
        b.add_factor(Factor::equal(wc, vs[0], vs[1]));
        b.add_factor(Factor::equal(wc, vs[1], vs[2]));
        b.build()
    }

    #[test]
    fn original_marginals_match_exact() {
        let g = small_graph();
        let m = StrawmanMaterialization::materialize(&g).unwrap();
        assert_eq!(m.num_worlds(), 8);
        let marg = m.original_marginals();
        for v in 0..3 {
            assert!((marg.get(v) - g.exact_marginal(v)).abs() < 1e-10);
        }
    }

    #[test]
    fn refuses_large_graphs() {
        let mut b = FactorGraphBuilder::new();
        b.add_query_variables(MAX_STRAWMAN_VARS + 1);
        let g = b.build();
        assert!(StrawmanMaterialization::materialize(&g).is_none());
    }

    #[test]
    fn incremental_weight_change_matches_exact() {
        let g0 = small_graph();
        let straw = StrawmanMaterialization::materialize(&g0).unwrap();

        let mut g = g0.clone();
        let delta = GraphDelta {
            weight_changes: vec![WeightChange {
                weight_id: 0,
                new_value: -1.0,
            }],
            ..Default::default()
        };
        let change = DistributionChange::apply_and_describe(&mut g, &delta);
        let marg = straw.incremental_marginals(&g, &change).unwrap();
        for v in 0..3 {
            assert!(
                (marg.get(v) - g.exact_marginal(v)).abs() < 1e-10,
                "var {v}: {} vs {}",
                marg.get(v),
                g.exact_marginal(v)
            );
        }
    }

    #[test]
    fn incremental_new_factor_and_variable_matches_exact() {
        let g0 = small_graph();
        let straw = StrawmanMaterialization::materialize(&g0).unwrap();

        let mut g = g0.clone();
        let delta = GraphDelta {
            new_variables: vec![Variable::query(0)],
            new_weights: vec![Weight::learnable(0, 1.3, "new")],
            new_factors: vec![DeltaFactor {
                weight: NewWeightRef::New(0),
                template: Factor::equal(0, 0, 1),
                var_refs: vec![NewVarRef::Existing(2), NewVarRef::New(0)],
            }],
            ..Default::default()
        };
        let change = DistributionChange::apply_and_describe(&mut g, &delta);
        let marg = straw.incremental_marginals(&g, &change).unwrap();
        for v in 0..4 {
            assert!(
                (marg.get(v) - g.exact_marginal(v)).abs() < 1e-10,
                "var {v}: {} vs {}",
                marg.get(v),
                g.exact_marginal(v)
            );
        }
    }

    #[test]
    fn incremental_evidence_change_matches_exact() {
        let g0 = small_graph();
        let straw = StrawmanMaterialization::materialize(&g0).unwrap();

        let mut g = g0.clone();
        let delta = GraphDelta {
            evidence_changes: vec![EvidenceChange {
                var: 2,
                new_role: VariableRole::PositiveEvidence,
            }],
            ..Default::default()
        };
        let change = DistributionChange::apply_and_describe(&mut g, &delta);
        let marg = straw.incremental_marginals(&g, &change).unwrap();
        assert_eq!(marg.get(2), 1.0);
        for v in 0..2 {
            assert!((marg.get(v) - g.exact_marginal(v)).abs() < 1e-10);
        }
    }

    #[test]
    fn storage_grows_exponentially() {
        let g = small_graph();
        let m = StrawmanMaterialization::materialize(&g).unwrap();
        assert_eq!(m.storage_bytes(), 8 * 8);
    }
}

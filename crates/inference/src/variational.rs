//! The variational materialization strategy (paper §3.2.3, Algorithm 1).
//!
//! Instead of storing samples of the original distribution, this strategy stores
//! a *sparser approximate factor graph*: Algorithm 1 draws N samples, estimates
//! the covariance matrix over variable pairs that co-occur in some factor (the
//! `NZ` set), and solves a log-determinant relaxation with an ℓ1/box constraint
//! controlled by the regularization parameter λ; every non-zero off-diagonal
//! entry of the resulting (inverse-covariance-like) matrix becomes one pairwise
//! factor of the approximate graph.  Inference after an update simply applies the
//! update to the approximate graph and runs Gibbs sampling on it — which is fast
//! when λ made the graph sparse (Figure 5c), at a small, λ-controlled cost in
//! quality (Figure 6).
//!
//! Two solvers are provided:
//!
//! * [`VariationalOptions::exact_solver_max_vars`] ≥ n: a dense projected
//!   gradient-ascent solver for `max log det X` subject to `X_kk = M_kk + 1/3`,
//!   `|X_kj − M_kj| ≤ λ`, `X_kj = 0` outside NZ (the literal Algorithm 1);
//! * otherwise a scalable per-edge approximation that inverts each 2×2
//!   covariance block and soft-thresholds the off-diagonal by λ.  It preserves
//!   the property the tradeoff study relies on — larger λ ⇒ fewer factors ⇒
//!   faster inference, at some quality cost — at O(|NZ|) cost.
//!
//! In both cases the approximate graph also carries per-variable unary factors
//! derived from the sample means, so single-variable marginals of the original
//! distribution are preserved before any update is applied.

use crate::gibbs::{GibbsOptions, GibbsSampler, SampleSet};
use crate::marginals::Marginals;
use dd_factorgraph::{Factor, FactorGraph, GraphDelta, VarId, Weight, World, WorldView};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Options for the variational materialization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariationalOptions {
    /// Number of Gibbs samples used to estimate the covariance matrix (N).
    pub num_samples: usize,
    /// Burn-in sweeps before collecting covariance samples.
    pub burn_in: usize,
    /// Regularization parameter λ controlling sparsity (§3.2.3, Figure 6).
    pub lambda: f64,
    /// Use the dense exact log-det solver when the graph has at most this many
    /// query variables; otherwise use the per-edge approximation.
    pub exact_solver_max_vars: usize,
    /// Iterations of projected gradient ascent for the exact solver.
    pub solver_iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VariationalOptions {
    fn default() -> Self {
        VariationalOptions {
            num_samples: 500,
            burn_in: 100,
            lambda: 0.01,
            exact_solver_max_vars: 120,
            solver_iterations: 60,
            seed: 19,
        }
    }
}

/// The stored approximate factor graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariationalMaterialization {
    approx_graph: FactorGraph,
    /// Number of pairwise factors retained (the quantity Figure 6 plots).
    pairwise_factors: usize,
    /// Number of candidate pairs (|NZ|) before sparsification.
    candidate_pairs: usize,
    lambda: f64,
}

impl VariationalMaterialization {
    /// Run Algorithm 1 against `graph`.
    pub fn materialize(graph: &FactorGraph, options: &VariationalOptions) -> Self {
        // Line 1: draw N samples from the original graph.
        let mut sampler = GibbsSampler::new(graph, options.seed);
        let samples = sampler.draw_samples(options.num_samples, options.burn_in);

        Self::from_samples(graph, &samples, options)
    }

    /// Run Algorithm 1 using an already-drawn sample set (so the engine can share
    /// one Gibbs run between the sampling and variational materializations, as
    /// §3.3 prescribes: "Both approaches need samples from the original factor
    /// graph, and this is the dominant cost during materialization").
    pub fn from_samples(
        graph: &FactorGraph,
        samples: &SampleSet,
        options: &VariationalOptions,
    ) -> Self {
        let query: Vec<VarId> = graph.query_variables();
        let index_of: HashMap<VarId, usize> =
            query.iter().enumerate().map(|(i, &v)| (v, i)).collect();

        // Line 2: NZ = pairs of query variables co-occurring in some factor.
        let mut nz: HashSet<(usize, usize)> = HashSet::new();
        for f in graph.factors() {
            let vars: Vec<usize> = f
                .variables()
                .into_iter()
                .filter_map(|v| index_of.get(&v).copied())
                .collect();
            for i in 0..vars.len() {
                for j in (i + 1)..vars.len() {
                    let (a, b) = (vars[i].min(vars[j]), vars[i].max(vars[j]));
                    if a != b {
                        nz.insert((a, b));
                    }
                }
            }
        }

        // Line 3: estimate means and the covariance matrix restricted to NZ.
        let n_samples = samples.len().max(1) as f64;
        let mut means = vec![0.0f64; query.len()];
        let worlds: Vec<World> = (0..samples.len()).map(|i| samples.get(i)).collect();
        for w in &worlds {
            for (qi, &v) in query.iter().enumerate() {
                if w.value(v) {
                    means[qi] += 1.0;
                }
            }
        }
        for m in &mut means {
            *m /= n_samples;
        }
        let mut cov: HashMap<(usize, usize), f64> = HashMap::new();
        for &(a, b) in &nz {
            let (va, vb) = (query[a], query[b]);
            let mut c = 0.0;
            for w in &worlds {
                let xa = if w.value(va) { 1.0 } else { 0.0 };
                let xb = if w.value(vb) { 1.0 } else { 0.0 };
                c += (xa - means[a]) * (xb - means[b]);
            }
            cov.insert((a, b), c / n_samples);
        }
        let variances: Vec<f64> = means.iter().map(|&m| m * (1.0 - m)).collect();

        // Line 4: estimate the sparse coupling matrix Xhat.
        let couplings = if query.len() <= options.exact_solver_max_vars && !query.is_empty() {
            exact_logdet_couplings(
                &variances,
                &cov,
                &nz,
                options.lambda,
                options.solver_iterations,
            )
        } else {
            blockwise_couplings(&variances, &cov, &nz, options.lambda)
        };

        // Lines 5-7: build the approximate graph — same variables, new factors.
        let mut approx = FactorGraph::new();
        for v in graph.variables() {
            approx.add_variable(v.clone());
        }
        // Unary factors from the sample means preserve original marginals.
        for (qi, &v) in query.iter().enumerate() {
            let p = means[qi].clamp(1e-3, 1.0 - 1e-3);
            let w = approx.add_weight(Weight::fixed(0, (p / (1.0 - p)).ln(), "var:unary"));
            approx.add_factor(Factor::is_true(w, v));
        }
        let mut pairwise = 0usize;
        for ((a, b), x) in couplings {
            if x.abs() < 1e-9 {
                continue;
            }
            let w = approx.add_weight(Weight::fixed(0, x, "var:pairwise"));
            approx.add_factor(Factor::equal(w, query[a], query[b]));
            pairwise += 1;
        }

        VariationalMaterialization {
            approx_graph: approx,
            pairwise_factors: pairwise,
            candidate_pairs: nz.len(),
            lambda: options.lambda,
        }
    }

    /// The approximate graph (for inspection and tests).
    /// Rebuild a materialization from its stored parts, exactly (checkpoint
    /// codec access — pairs with the accessors below).
    pub fn from_parts(
        approx_graph: FactorGraph,
        pairwise_factors: usize,
        candidate_pairs: usize,
        lambda: f64,
    ) -> Self {
        VariationalMaterialization {
            approx_graph,
            pairwise_factors,
            candidate_pairs,
            lambda,
        }
    }

    pub fn approx_graph(&self) -> &FactorGraph {
        &self.approx_graph
    }

    /// Number of pairwise factors retained.
    pub fn num_pairwise_factors(&self) -> usize {
        self.pairwise_factors
    }

    /// Number of candidate pairs before sparsification (|NZ|).
    pub fn num_candidate_pairs(&self) -> usize {
        self.candidate_pairs
    }

    /// The λ used.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Fraction of candidate pairs kept: 1.0 means no sparsification happened.
    pub fn retention(&self) -> f64 {
        if self.candidate_pairs == 0 {
            0.0
        } else {
            self.pairwise_factors as f64 / self.candidate_pairs as f64
        }
    }

    /// Marginals of the (un-updated) approximate graph.
    pub fn original_marginals(&self, options: &GibbsOptions) -> Marginals {
        GibbsSampler::new(&self.approx_graph, options.seed).run(options)
    }

    /// Incremental inference: apply the update to the approximate graph and run
    /// Gibbs sampling on the result.
    pub fn infer(&self, delta: &GraphDelta, options: &GibbsOptions) -> Marginals {
        let mut g = self.approx_graph.clone();
        g.apply_delta(delta);
        GibbsSampler::new(&g, options.seed).run(options)
    }

    /// Like [`Self::infer`] but also returns the updated approximate graph (used
    /// by the engine to report factor counts).
    pub fn infer_with_graph(
        &self,
        delta: &GraphDelta,
        options: &GibbsOptions,
    ) -> (Marginals, FactorGraph) {
        let mut g = self.approx_graph.clone();
        g.apply_delta(delta);
        let m = GibbsSampler::new(&g, options.seed).run(options);
        (m, g)
    }
}

/// Per-edge 2×2 block approximation with soft-thresholding by λ.
fn blockwise_couplings(
    variances: &[f64],
    cov: &HashMap<(usize, usize), f64>,
    nz: &HashSet<(usize, usize)>,
    lambda: f64,
) -> Vec<((usize, usize), f64)> {
    let mut out = Vec::new();
    for &(a, b) in nz {
        let c = cov.get(&(a, b)).copied().unwrap_or(0.0);
        // soft-threshold the covariance by λ (the ℓ1/box constraint)
        let shrunk = if c > lambda {
            c - lambda
        } else if c < -lambda {
            c + lambda
        } else {
            0.0
        };
        if shrunk == 0.0 {
            continue;
        }
        // Invert the regularized 2×2 block [[σa²+1/3, c],[c, σb²+1/3]].
        let saa = variances[a] + 1.0 / 3.0;
        let sbb = variances[b] + 1.0 / 3.0;
        let det = saa * sbb - shrunk * shrunk;
        if det <= 1e-9 {
            continue;
        }
        // Precision off-diagonal is −c/det; a positive correlation therefore
        // corresponds to a positive "Equal" coupling weight of c/det.
        let coupling = shrunk / det;
        out.push(((a, b), coupling));
    }
    out.sort_by_key(|&((a, b), _)| (a, b));
    out
}

/// Dense projected-gradient solver for Algorithm 1's optimization problem,
/// returning the retained off-diagonal couplings.
fn exact_logdet_couplings(
    variances: &[f64],
    cov: &HashMap<(usize, usize), f64>,
    nz: &HashSet<(usize, usize)>,
    lambda: f64,
    iterations: usize,
) -> Vec<((usize, usize), f64)> {
    let n = variances.len();
    if n == 0 {
        return Vec::new();
    }
    // X starts at the (feasible) diagonal matrix.
    let mut x = vec![0.0f64; n * n];
    for i in 0..n {
        x[i * n + i] = variances[i] + 1.0 / 3.0;
    }
    let mut step = 0.05;
    for _ in 0..iterations {
        let Some(inv) = invert_spd(&x, n) else { break };
        // gradient of log det X is X^{-1}; ascend and project.
        let mut candidate = x.clone();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue; // diagonal is fixed by the constraint
                }
                let (a, b) = (i.min(j), i.max(j));
                if !nz.contains(&(a, b)) {
                    continue; // stays exactly zero
                }
                let m = cov.get(&(a, b)).copied().unwrap_or(0.0);
                let updated = candidate[i * n + j] + step * inv[i * n + j];
                candidate[i * n + j] = updated.clamp(m - lambda, m + lambda);
            }
        }
        // keep symmetry
        for i in 0..n {
            for j in (i + 1)..n {
                let s = 0.5 * (candidate[i * n + j] + candidate[j * n + i]);
                candidate[i * n + j] = s;
                candidate[j * n + i] = s;
            }
        }
        if invert_spd(&candidate, n).is_some() {
            x = candidate;
        } else {
            step *= 0.5;
            if step < 1e-6 {
                break;
            }
        }
    }
    // Convert X̂ (a covariance-like matrix) into precision-style couplings by
    // inverting once more; the retained off-diagonals become factors.
    let precision = invert_spd(&x, n);
    let mut out = Vec::new();
    for &(a, b) in nz {
        let value = match &precision {
            Some(p) => -p[a * n + b],
            None => {
                // fall back to the block estimate for this edge
                let c = x[a * n + b];
                let det = x[a * n + a] * x[b * n + b] - c * c;
                if det <= 1e-9 {
                    0.0
                } else {
                    c / det
                }
            }
        };
        // Edges whose optimal X entry collapsed to (near) zero are dropped — this
        // is where λ produces sparsity.
        if x[a * n + b].abs() > 1e-6 && value.abs() > 1e-6 {
            out.push(((a, b), value));
        }
    }
    out.sort_by_key(|&((a, b), _)| (a, b));
    out
}

/// Cholesky-based inverse of a symmetric positive-definite matrix stored
/// row-major.  Returns `None` if the matrix is not positive definite.
fn invert_spd(m: &[f64], n: usize) -> Option<Vec<f64>> {
    // Cholesky decomposition m = L Lᵀ.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = m[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Invert L (lower triangular).
    let mut linv = vec![0.0f64; n * n];
    for i in 0..n {
        linv[i * n + i] = 1.0 / l[i * n + i];
        for j in 0..i {
            let mut sum = 0.0;
            for k in j..i {
                sum -= l[i * n + k] * linv[k * n + j];
            }
            linv[i * n + j] = sum / l[i * n + i];
        }
    }
    // m^{-1} = Lᵀ^{-1} L^{-1} = linvᵀ · linv.
    let mut inv = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0.0;
            for k in i.max(j)..n {
                sum += linv[k * n + i] * linv[k * n + j];
            }
            inv[i * n + j] = sum;
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_factorgraph::{Factor, FactorGraphBuilder, WeightChange};

    fn chain(n: usize, coupling: f64) -> FactorGraph {
        let mut b = FactorGraphBuilder::new();
        let vs = b.add_query_variables(n);
        let wp = b.tied_weight("prior", 0.4, false);
        let wc = b.tied_weight("couple", coupling, false);
        b.add_factor(Factor::is_true(wp, vs[0]));
        for i in 1..n {
            b.add_factor(Factor::equal(wc, vs[i - 1], vs[i]));
        }
        b.build()
    }

    #[test]
    fn invert_spd_matches_identity() {
        let m = vec![2.0, 0.5, 0.5, 1.0];
        let inv = invert_spd(&m, 2).unwrap();
        // m * inv = I
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += m[i * 2 + k] * inv[k * 2 + j];
                }
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((s - expected).abs() < 1e-9);
            }
        }
        // non-PSD rejected
        assert!(invert_spd(&[1.0, 2.0, 2.0, 1.0], 2).is_none());
    }

    #[test]
    fn approx_graph_has_unary_and_pairwise_factors() {
        let g = chain(6, 1.0);
        let mat = VariationalMaterialization::materialize(
            &g,
            &VariationalOptions {
                num_samples: 400,
                lambda: 0.001,
                ..Default::default()
            },
        );
        assert_eq!(mat.approx_graph().num_variables(), 6);
        // 5 chain edges are candidates
        assert_eq!(mat.num_candidate_pairs(), 5);
        assert!(mat.num_pairwise_factors() > 0);
        assert!(mat.num_pairwise_factors() <= 5);
    }

    #[test]
    fn larger_lambda_gives_sparser_graph() {
        let g = chain(10, 0.4);
        let count = |lambda: f64| {
            VariationalMaterialization::materialize(
                &g,
                &VariationalOptions {
                    num_samples: 300,
                    lambda,
                    exact_solver_max_vars: 0, // force the scalable solver
                    ..Default::default()
                },
            )
            .num_pairwise_factors()
        };
        let dense = count(0.0001);
        let sparse = count(0.2);
        assert!(
            dense >= sparse,
            "λ=0.0001 kept {dense}, λ=0.2 kept {sparse}"
        );
        assert!(sparse < 10);
    }

    #[test]
    fn approximate_marginals_track_original_for_small_lambda() {
        let g = chain(5, 0.8);
        let mat = VariationalMaterialization::materialize(
            &g,
            &VariationalOptions {
                num_samples: 1500,
                lambda: 0.005,
                ..Default::default()
            },
        );
        let approx = mat.original_marginals(&GibbsOptions::new(3000, 300, 5));
        for v in 0..5 {
            let exact = g.exact_marginal(v);
            assert!(
                (approx.get(v) - exact).abs() < 0.12,
                "var {v}: approx {} vs exact {}",
                approx.get(v),
                exact
            );
        }
    }

    #[test]
    fn inference_applies_delta_to_approx_graph() {
        let g = chain(5, 0.6);
        let mat = VariationalMaterialization::materialize(
            &g,
            &VariationalOptions {
                num_samples: 500,
                lambda: 0.01,
                ..Default::default()
            },
        );
        // The delta references weight ids of the approximate graph; use a fresh
        // weight + factor pinning variable 0 strongly true.
        let delta = GraphDelta {
            new_weights: vec![dd_factorgraph::Weight::fixed(0, 4.0, "pin")],
            new_factors: vec![dd_factorgraph::DeltaFactor {
                weight: dd_factorgraph::NewWeightRef::New(0),
                template: Factor::is_true(0, 0),
                var_refs: vec![dd_factorgraph::NewVarRef::Existing(0)],
            }],
            ..Default::default()
        };
        let m = mat.infer(&delta, &GibbsOptions::new(1500, 200, 9));
        assert!(m.get(0) > 0.9);
    }

    #[test]
    fn weight_change_delta_on_approx_graph() {
        let g = chain(4, 0.6);
        let mat = VariationalMaterialization::materialize(&g, &VariationalOptions::default());
        // Changing an existing (unary) weight of the approximate graph.
        let delta = GraphDelta {
            weight_changes: vec![WeightChange {
                weight_id: 0,
                new_value: 3.0,
            }],
            ..Default::default()
        };
        let (m, updated) = mat.infer_with_graph(&delta, &GibbsOptions::new(800, 100, 3));
        assert_eq!(updated.weight(0).value, 3.0);
        assert!(m.get(0) > 0.7);
    }

    #[test]
    fn exact_and_block_solvers_agree_on_sign() {
        let g = chain(4, 1.5);
        let exact = VariationalMaterialization::materialize(
            &g,
            &VariationalOptions {
                num_samples: 800,
                lambda: 0.01,
                exact_solver_max_vars: 100,
                ..Default::default()
            },
        );
        let block = VariationalMaterialization::materialize(
            &g,
            &VariationalOptions {
                num_samples: 800,
                lambda: 0.01,
                exact_solver_max_vars: 0,
                ..Default::default()
            },
        );
        // Both should keep positive couplings for a positively-coupled chain.
        let positive = |m: &VariationalMaterialization| {
            m.approx_graph()
                .weights()
                .iter()
                .filter(|w| w.description == "var:pairwise")
                .all(|w| w.value > 0.0)
        };
        assert!(positive(&exact));
        assert!(positive(&block));
    }

    #[test]
    fn retention_reports_fraction() {
        let g = chain(6, 0.4);
        let mat = VariationalMaterialization::materialize(
            &g,
            &VariationalOptions {
                lambda: 10.0, // absurdly large λ kills every edge
                exact_solver_max_vars: 0,
                ..Default::default()
            },
        );
        assert_eq!(mat.num_pairwise_factors(), 0);
        assert_eq!(mat.retention(), 0.0);
    }
}

//! A catalog of named tables.

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::table::Table;
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A database: a catalog of named [`Table`]s.
///
/// In DeepDive, "all data … is stored in a relational database" (§2.2); the user
/// schema, the evidence relations, the candidate/feature relations, and the delta
/// relations used by incremental grounding all live side by side here.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create a new table; errors if one with the same name exists.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> RelResult<()> {
        if self.tables.contains_key(name) {
            return Err(RelError::TableExists(name.to_string()));
        }
        self.tables
            .insert(name.to_string(), Table::new(name, schema));
        Ok(())
    }

    /// Create a table, replacing any previous one with the same name.
    pub fn create_or_replace_table(&mut self, name: &str, schema: Schema) {
        self.tables
            .insert(name.to_string(), Table::new(name, schema));
    }

    /// Drop a table; errors if absent.
    pub fn drop_table(&mut self, name: &str) -> RelResult<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RelError::NoSuchTable(name.to_string()))
    }

    /// True if a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> RelResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| RelError::NoSuchTable(name.to_string()))
    }

    /// Mutably borrow a table.
    pub fn table_mut(&mut self, name: &str) -> RelResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RelError::NoSuchTable(name.to_string()))
    }

    /// Insert one tuple into a named table.
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> RelResult<()> {
        self.table_mut(table)?.insert(tuple)
    }

    /// Bulk-insert tuples into a named table.
    pub fn insert_all<I: IntoIterator<Item = Tuple>>(
        &mut self,
        table: &str,
        tuples: I,
    ) -> RelResult<usize> {
        self.table_mut(table)?.extend(tuples)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Iterate over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Total number of stored tuples across all tables.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::tuple;

    #[test]
    fn create_insert_lookup() {
        let mut db = Database::new();
        db.create_table(
            "Sentence",
            Schema::of(&[("id", DataType::Int), ("content", DataType::Text)]),
        )
        .unwrap();
        db.insert(
            "Sentence",
            tuple![1i64, "B. Obama and Michelle were married"],
        )
        .unwrap();
        assert_eq!(db.table("Sentence").unwrap().len(), 1);
        assert!(db.has_table("Sentence"));
        assert!(!db.has_table("Missing"));
    }

    #[test]
    fn duplicate_table_creation_errors() {
        let mut db = Database::new();
        db.create_table("T", Schema::of(&[("x", DataType::Int)]))
            .unwrap();
        let err = db
            .create_table("T", Schema::of(&[("x", DataType::Int)]))
            .unwrap_err();
        assert_eq!(err, RelError::TableExists("T".into()));
        // but replace works
        db.create_or_replace_table("T", Schema::of(&[("y", DataType::Text)]));
        assert_eq!(db.table("T").unwrap().schema().columns()[0].name, "y");
    }

    #[test]
    fn missing_table_errors() {
        let mut db = Database::new();
        assert!(matches!(db.table("X"), Err(RelError::NoSuchTable(_))));
        assert!(matches!(
            db.insert("X", tuple![1i64]),
            Err(RelError::NoSuchTable(_))
        ));
        assert!(matches!(db.drop_table("X"), Err(RelError::NoSuchTable(_))));
    }

    #[test]
    fn drop_and_totals() {
        let mut db = Database::new();
        db.create_table("A", Schema::of(&[("x", DataType::Int)]))
            .unwrap();
        db.create_table("B", Schema::of(&[("x", DataType::Int)]))
            .unwrap();
        db.insert_all("A", (0..3).map(|i| tuple![i as i64]))
            .unwrap();
        db.insert_all("B", (0..2).map(|i| tuple![i as i64]))
            .unwrap();
        assert_eq!(db.total_tuples(), 5);
        assert_eq!(db.table_names(), vec!["A".to_string(), "B".to_string()]);
        db.drop_table("A").unwrap();
        assert_eq!(db.total_tuples(), 2);
    }
}

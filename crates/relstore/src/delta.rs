//! Delta relations: descriptions of change to a base relation.
//!
//! Incremental grounding (paper §3.1) starts from a set of *changes to the input*:
//! newly loaded documents, retracted supervision tuples, and so on.  A
//! [`DeltaRelation`] records such a change as a counted set of insertions and
//! deletions, mirroring the `Rδ` relations of the DRed algorithm.

use crate::table::Table;
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The direction of a single change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaOp {
    Insert,
    Delete,
}

/// A counted set of changes against one relation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeltaRelation {
    relation: String,
    /// tuple -> net count change (positive = insertions, negative = deletions).
    /// Ordered so delta iteration — and thus incremental grounding — is
    /// deterministic (see the note on [`Table`]).
    changes: BTreeMap<Tuple, i64>,
}

impl DeltaRelation {
    /// An empty delta against `relation`.
    pub fn new(relation: impl Into<String>) -> Self {
        DeltaRelation {
            relation: relation.into(),
            changes: BTreeMap::new(),
        }
    }

    /// Name of the relation this delta applies to.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Record an insertion of `tuple`.
    pub fn insert(&mut self, tuple: Tuple) {
        *self.changes.entry(tuple).or_insert(0) += 1;
    }

    /// Record a deletion of `tuple`.
    pub fn delete(&mut self, tuple: Tuple) {
        *self.changes.entry(tuple).or_insert(0) -= 1;
    }

    /// Record a change with an explicit count.
    pub fn change(&mut self, tuple: Tuple, count: i64) {
        if count != 0 {
            *self.changes.entry(tuple).or_insert(0) += count;
        }
    }

    /// Net change for a tuple.
    pub fn count(&self, tuple: &Tuple) -> i64 {
        self.changes.get(tuple).copied().unwrap_or(0)
    }

    /// Number of tuples with a non-zero net change.
    pub fn len(&self) -> usize {
        self.changes.values().filter(|&&c| c != 0).count()
    }

    /// True if there is no net change.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over `(tuple, net count)` pairs with non-zero net change.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.changes
            .iter()
            .filter(|(_, &c)| c != 0)
            .map(|(t, &c)| (t, c))
    }

    /// Only the insertions (positive part), as a counted table-like iterator.
    pub fn insertions(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.iter().filter(|(_, c)| *c > 0)
    }

    /// Only the deletions (negative part), with positive counts.
    pub fn deletions(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.changes
            .iter()
            .filter(|(_, &c)| c < 0)
            .map(|(t, &c)| (t, -c))
    }

    /// Apply this delta to a base table in place (counts merge; tuples whose
    /// count reaches zero disappear).  Schema checking is the caller's concern:
    /// deltas are produced by the same code paths that produced the base rows.
    pub fn apply_to(&self, table: &mut Table) {
        for (t, c) in self.iter() {
            table.merge_unchecked(t.clone(), c);
        }
    }

    /// Merge another delta into this one.
    pub fn merge(&mut self, other: &DeltaRelation) {
        for (t, c) in other.iter() {
            self.change(t.clone(), c);
        }
    }

    /// Materialize the positive part as a [`Table`] with the given schema-bearing
    /// prototype (usually the base table).
    pub fn positive_table(&self, proto: &Table, name: &str) -> Table {
        let mut t = Table::new(name, proto.schema().clone());
        for (tup, c) in self.insertions() {
            t.merge_unchecked(tup.clone(), c);
        }
        t
    }

    /// Materialize the negative part (deletions, positive counts) as a [`Table`].
    pub fn negative_table(&self, proto: &Table, name: &str) -> Table {
        let mut t = Table::new(name, proto.schema().clone());
        for (tup, c) in self.deletions() {
            t.merge_unchecked(tup.clone(), c);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use crate::tuple;

    #[test]
    fn insert_delete_cancel() {
        let mut d = DeltaRelation::new("R");
        d.insert(tuple![1i64]);
        d.insert(tuple![1i64]);
        d.delete(tuple![1i64]);
        assert_eq!(d.count(&tuple![1i64]), 1);
        d.delete(tuple![1i64]);
        assert!(d.is_empty());
    }

    #[test]
    fn positive_and_negative_parts() {
        let mut d = DeltaRelation::new("R");
        d.insert(tuple![1i64]);
        d.delete(tuple![2i64]);
        d.delete(tuple![2i64]);
        let ins: Vec<_> = d.insertions().collect();
        assert_eq!(ins.len(), 1);
        assert_eq!(ins[0].1, 1);
        let dels: Vec<_> = d.deletions().collect();
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].1, 2);
    }

    #[test]
    fn apply_to_table() {
        let mut t = Table::new("R", Schema::of(&[("x", DataType::Int)]));
        t.insert(tuple![1i64]).unwrap();
        t.insert(tuple![2i64]).unwrap();

        let mut d = DeltaRelation::new("R");
        d.delete(tuple![1i64]);
        d.insert(tuple![3i64]);
        d.apply_to(&mut t);

        assert!(!t.contains(&tuple![1i64]));
        assert!(t.contains(&tuple![2i64]));
        assert!(t.contains(&tuple![3i64]));
    }

    #[test]
    fn merge_deltas() {
        let mut a = DeltaRelation::new("R");
        a.insert(tuple![1i64]);
        let mut b = DeltaRelation::new("R");
        b.insert(tuple![1i64]);
        b.delete(tuple![2i64]);
        a.merge(&b);
        assert_eq!(a.count(&tuple![1i64]), 2);
        assert_eq!(a.count(&tuple![2i64]), -1);
    }

    #[test]
    fn materialized_parts_have_schema() {
        let proto = Table::new("R", Schema::of(&[("x", DataType::Int)]));
        let mut d = DeltaRelation::new("R");
        d.insert(tuple![5i64]);
        d.delete(tuple![6i64]);
        let pos = d.positive_table(&proto, "R_ins");
        let neg = d.negative_table(&proto, "R_del");
        assert_eq!(pos.len(), 1);
        assert!(pos.contains(&tuple![5i64]));
        assert_eq!(neg.len(), 1);
        assert!(neg.contains(&tuple![6i64]));
    }
}

//! Error type for the relational store.

use std::fmt;

/// Errors raised by the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name.
    NoSuchTable(String),
    /// No column with this name in the given table/schema.
    NoSuchColumn { table: String, column: String },
    /// A row did not match the schema it was inserted into.
    SchemaMismatch { table: String, detail: String },
    /// Two relations used in a set operation have different arities.
    ArityMismatch { left: usize, right: usize },
    /// A query referenced an unbound variable or is otherwise malformed.
    InvalidQuery(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::TableExists(t) => write!(f, "table `{t}` already exists"),
            RelError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            RelError::NoSuchColumn { table, column } => {
                write!(f, "no column `{column}` in table `{table}`")
            }
            RelError::SchemaMismatch { table, detail } => {
                write!(f, "schema mismatch inserting into `{table}`: {detail}")
            }
            RelError::ArityMismatch { left, right } => {
                write!(f, "arity mismatch: {left} vs {right}")
            }
            RelError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Result alias used throughout the crate.
pub type RelResult<T> = Result<T, RelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelError::NoSuchTable("Mentions".into());
        assert!(e.to_string().contains("Mentions"));
        let e = RelError::SchemaMismatch {
            table: "EL".into(),
            detail: "expected Int".into(),
        };
        assert!(e.to_string().contains("EL"));
        assert!(e.to_string().contains("expected Int"));
        let e = RelError::ArityMismatch { left: 2, right: 3 };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&RelError::InvalidQuery("x".into()));
    }
}

//! # dd-relstore — in-memory relational substrate for DeepDive
//!
//! The original DeepDive system stores every relation (documents, sentences,
//! candidate mentions, features, supervision labels, …) in Postgres/Greenplum and
//! performs grounding and incremental grounding with SQL queries.  This crate is
//! the Rust substitute for that substrate: a small, typed, in-memory relational
//! engine with
//!
//! * a catalog of named, schema-checked [`Table`]s collected in a [`Database`],
//! * the relational operators needed by rule-body evaluation
//!   (selection, projection, natural/hash join, union, difference, distinct),
//! * *counted* relations — every tuple carries a derivation count, which is the
//!   representation required by counting-based incremental view maintenance and
//!   by the DRed algorithm of Gupta, Mumick & Subrahmanian that DeepDive uses for
//!   incremental grounding (paper §3.1),
//! * [`delta::DeltaRelation`]s describing insertions/deletions, and
//! * [`view`] — materialized views over rule-shaped (conjunctive) queries with
//!   both full recomputation and incremental (delta-rule / DRed) maintenance.
//!
//! The crate is deliberately independent of the factor-graph and inference layers
//! so that it can be tested and benchmarked in isolation.

pub mod database;
pub mod delta;
pub mod error;
pub mod ops;
pub mod schema;
pub mod table;
pub mod tuple;
pub mod value;
pub mod view;

pub use database::Database;
pub use delta::{DeltaOp, DeltaRelation};
pub use error::{RelError, RelResult};
pub use ops::{difference, distinct, hash_join, project, select, union};
pub use schema::{Column, DataType, Schema};
pub use table::Table;
pub use tuple::Tuple;
pub use value::Value;
pub use view::{ConjunctiveQuery, MaterializedView, QueryAtom, Term};

//! Relational operators over counted tables.
//!
//! These are the building blocks for rule-body evaluation in grounding: every
//! DeepDive rule body is a conjunction of atoms, i.e. a multi-way join, possibly
//! followed by projection onto the head variables.  All operators preserve
//! derivation counts (bag semantics), which is what makes counting-based
//! incremental maintenance correct.

use crate::error::{RelError, RelResult};

use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Selection: keep the tuples satisfying `pred`, preserving counts.
pub fn select<F>(input: &Table, name: &str, pred: F) -> Table
where
    F: Fn(&Tuple) -> bool,
{
    let mut out = Table::new(name, input.schema().clone());
    for (t, c) in input.iter_counted() {
        if pred(t) {
            out.merge_unchecked(t.clone(), c);
        }
    }
    out
}

/// Projection onto column indices, preserving (and merging) counts.
pub fn project(input: &Table, name: &str, columns: &[usize]) -> Table {
    let schema = input.schema().project(columns);
    let mut out = Table::new(name, schema);
    for (t, c) in input.iter_counted() {
        out.merge_unchecked(t.project(columns), c);
    }
    out
}

/// Distinct: collapse multiplicities to 1.
pub fn distinct(input: &Table, name: &str) -> Table {
    let mut out = Table::new(name, input.schema().clone());
    for t in input.iter() {
        out.merge_unchecked(t.clone(), 1);
    }
    out
}

/// Hash equi-join on `left_keys` = `right_keys`.
///
/// The output schema is the concatenation of the two input schemas (duplicate
/// names suffixed `_r`), and output counts are products of input counts, which is
/// the bag-join semantics required for counting IVM.
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    name: &str,
) -> RelResult<Table> {
    if left_keys.len() != right_keys.len() {
        return Err(RelError::InvalidQuery(format!(
            "join key arity mismatch: {} vs {}",
            left_keys.len(),
            right_keys.len()
        )));
    }
    let schema = left.schema().concat(right.schema());
    let mut out = Table::new(name, schema);

    // Build on the smaller side.
    let (build, probe, build_keys, probe_keys, build_is_left) = if left.len() <= right.len() {
        (left, right, left_keys, right_keys, true)
    } else {
        (right, left, right_keys, left_keys, false)
    };

    let mut index: HashMap<Vec<Value>, Vec<(&Tuple, i64)>> = HashMap::new();
    for (t, c) in build.iter_counted() {
        index.entry(t.key(build_keys)).or_default().push((t, c));
    }

    for (pt, pc) in probe.iter_counted() {
        if let Some(matches) = index.get(&pt.key(probe_keys)) {
            for (bt, bc) in matches {
                let joined = if build_is_left {
                    bt.concat(pt)
                } else {
                    pt.concat(bt)
                };
                out.merge_unchecked(joined, bc * pc);
            }
        }
    }
    Ok(out)
}

/// Bag union: counts add.
pub fn union(left: &Table, right: &Table, name: &str) -> RelResult<Table> {
    if left.schema().arity() != right.schema().arity() {
        return Err(RelError::ArityMismatch {
            left: left.schema().arity(),
            right: right.schema().arity(),
        });
    }
    let mut out = Table::new(name, left.schema().clone());
    for (t, c) in left.iter_counted() {
        out.merge_unchecked(t.clone(), c);
    }
    for (t, c) in right.iter_counted() {
        out.merge_unchecked(t.clone(), c);
    }
    Ok(out)
}

/// Bag difference: counts subtract, clamped at zero.
pub fn difference(left: &Table, right: &Table, name: &str) -> RelResult<Table> {
    if left.schema().arity() != right.schema().arity() {
        return Err(RelError::ArityMismatch {
            left: left.schema().arity(),
            right: right.schema().arity(),
        });
    }
    let mut out = Table::new(name, left.schema().clone());
    for (t, c) in left.iter_counted() {
        let rc = right.count(t);
        let remaining = c - rc;
        if remaining > 0 {
            out.merge_unchecked(t.clone(), remaining);
        }
    }
    Ok(out)
}

/// Anti-join: tuples of `left` whose key has no match in `right`.
/// Used to evaluate negated atoms in supervision rules (e.g. "largely disjoint
/// relations generate negative examples", Example 2.4).
pub fn anti_join(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    name: &str,
) -> RelResult<Table> {
    if left_keys.len() != right_keys.len() {
        return Err(RelError::InvalidQuery(
            "anti-join key arity mismatch".to_string(),
        ));
    }
    let right_index = right.index_on(right_keys);
    let mut out = Table::new(name, left.schema().clone());
    for (t, c) in left.iter_counted() {
        if !right_index.contains_key(&t.key(left_keys)) {
            out.merge_unchecked(t.clone(), c);
        }
    }
    Ok(out)
}

/// A schema describing an empty relation of the same shape as `proto` — helper
/// used by view maintenance when a source relation is missing.
pub fn empty_like(proto: &Table, name: &str) -> Table {
    Table::new(name, proto.schema().clone())
}

/// Cross product (used for rule bodies with disconnected atoms).
pub fn cross(left: &Table, right: &Table, name: &str) -> Table {
    let schema = left.schema().concat(right.schema());
    let mut out = Table::new(name, schema);
    for (lt, lc) in left.iter_counted() {
        for (rt, rc) in right.iter_counted() {
            out.merge_unchecked(lt.concat(rt), lc * rc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use crate::tuple;

    fn table(name: &str, cols: &[(&str, DataType)], rows: Vec<Tuple>) -> Table {
        let mut t = Table::new(name, Schema::of(cols));
        for r in rows {
            t.insert(r).unwrap();
        }
        t
    }

    fn r() -> Table {
        table(
            "R",
            &[("x", DataType::Int), ("y", DataType::Int)],
            vec![
                tuple![1i64, 10i64],
                tuple![1i64, 11i64],
                tuple![2i64, 12i64],
            ],
        )
    }

    fn s() -> Table {
        table(
            "S",
            &[("y", DataType::Int)],
            vec![tuple![10i64], tuple![12i64]],
        )
    }

    #[test]
    fn select_filters_rows() {
        let out = select(&r(), "sel", |t| t.get(0) == Some(&Value::Int(1)));
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple![1i64, 10i64]));
        assert!(!out.contains(&tuple![2i64, 12i64]));
    }

    #[test]
    fn project_merges_counts() {
        let out = project(&r(), "p", &[0]);
        // two tuples with x = 1 collapse into one tuple with count 2
        assert_eq!(out.len(), 2);
        assert_eq!(out.count(&tuple![1i64]), 2);
        assert_eq!(out.count(&tuple![2i64]), 1);
        let d = distinct(&out, "d");
        assert_eq!(d.count(&tuple![1i64]), 1);
    }

    #[test]
    fn hash_join_matches_keys() {
        let out = hash_join(&r(), &s(), &[1], &[0], "j").unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple![1i64, 10i64, 10i64]));
        assert!(out.contains(&tuple![2i64, 12i64, 12i64]));
        assert_eq!(out.schema().arity(), 3);
    }

    #[test]
    fn hash_join_multiplies_counts() {
        let mut left = table("L", &[("k", DataType::Int)], vec![]);
        left.insert_with_count(tuple![1i64], 2).unwrap();
        let mut right = table("Rr", &[("k", DataType::Int)], vec![]);
        right.insert_with_count(tuple![1i64], 3).unwrap();
        let out = hash_join(&left, &right, &[0], &[0], "j").unwrap();
        assert_eq!(out.count(&tuple![1i64, 1i64]), 6);
    }

    #[test]
    fn join_key_mismatch_errors() {
        assert!(hash_join(&r(), &s(), &[0, 1], &[0], "j").is_err());
    }

    #[test]
    fn union_and_difference() {
        let a = table(
            "A",
            &[("x", DataType::Int)],
            vec![tuple![1i64], tuple![2i64]],
        );
        let b = table(
            "B",
            &[("x", DataType::Int)],
            vec![tuple![2i64], tuple![3i64]],
        );
        let u = union(&a, &b, "u").unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.count(&tuple![2i64]), 2);
        let d = difference(&u, &b, "d").unwrap();
        assert_eq!(d.count(&tuple![1i64]), 1);
        assert_eq!(d.count(&tuple![2i64]), 1);
        assert_eq!(d.count(&tuple![3i64]), 0);
    }

    #[test]
    fn union_arity_mismatch_errors() {
        let a = table("A", &[("x", DataType::Int)], vec![]);
        let b = table("B", &[("x", DataType::Int), ("y", DataType::Int)], vec![]);
        assert!(matches!(
            union(&a, &b, "u"),
            Err(RelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            difference(&a, &b, "d"),
            Err(RelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn anti_join_keeps_unmatched() {
        let out = anti_join(&r(), &s(), &[1], &[0], "aj").unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![1i64, 11i64]));
    }

    #[test]
    fn cross_product_counts() {
        let a = table(
            "A",
            &[("x", DataType::Int)],
            vec![tuple![1i64], tuple![2i64]],
        );
        let b = table("B", &[("y", DataType::Int)], vec![tuple![10i64]]);
        let out = cross(&a, &b, "c");
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple![1i64, 10i64]));
    }

    #[test]
    fn empty_like_copies_schema() {
        let e = empty_like(&r(), "E");
        assert_eq!(e.schema(), r().schema());
        assert!(e.is_empty());
    }
}

//! Relation schemas: named, typed columns.

pub use crate::value::DataType;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A single column: a name plus a data type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
}

impl Column {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
        }
    }
}

/// The schema of a relation: an ordered list of columns.
///
/// DeepDive user relations are small and wide-typed (mention ids, sentence ids,
/// feature strings, boolean labels); schema checking catches the most common
/// grounding-rule mistakes (arity mismatch, joining a text column against an id).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from slices of `(&str, DataType)`.
    pub fn of(cols: &[(&str, DataType)]) -> Self {
        Schema {
            columns: cols.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        }
    }

    /// Number of columns (arity).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Data type of the column at `idx`.
    pub fn type_at(&self, idx: usize) -> Option<DataType> {
        self.columns.get(idx).map(|c| c.data_type)
    }

    /// Check that a row of values is compatible with this schema.
    ///
    /// `Null` is accepted in any column; otherwise the value's type must match
    /// the declared column type exactly.
    pub fn check(&self, values: &[Value]) -> bool {
        values.len() == self.arity()
            && values
                .iter()
                .zip(self.columns.iter())
                .all(|(v, c)| v.is_null() || v.data_type() == c.data_type)
    }

    /// A new schema that is the concatenation of `self` and `other`
    /// (used by joins; duplicate names are suffixed with `_r`).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        for c in &other.columns {
            let name = if self.index_of(&c.name).is_some() {
                format!("{}_r", c.name)
            } else {
                c.name.clone()
            };
            columns.push(Column::new(name, c.data_type));
        }
        Schema { columns }
    }

    /// Project this schema onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices
                .iter()
                .filter_map(|&i| self.columns.get(i).cloned())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_schema() -> Schema {
        Schema::of(&[
            ("sentence_id", DataType::Int),
            ("mention_id", DataType::Int),
            ("text", DataType::Text),
        ])
    }

    #[test]
    fn arity_and_lookup() {
        let s = person_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("mention_id"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.type_at(2), Some(DataType::Text));
        assert_eq!(s.type_at(5), None);
    }

    #[test]
    fn check_accepts_matching_rows() {
        let s = person_schema();
        assert!(s.check(&[Value::Int(1), Value::Int(10), Value::text("Obama")]));
        assert!(s.check(&[Value::Int(1), Value::Null, Value::text("Obama")]));
    }

    #[test]
    fn check_rejects_bad_rows() {
        let s = person_schema();
        // wrong arity
        assert!(!s.check(&[Value::Int(1), Value::Int(10)]));
        // wrong type
        assert!(!s.check(&[Value::Int(1), Value::text("x"), Value::text("Obama")]));
    }

    #[test]
    fn concat_renames_duplicates() {
        let a = Schema::of(&[("id", DataType::Int), ("x", DataType::Text)]);
        let b = Schema::of(&[("id", DataType::Int), ("y", DataType::Text)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.columns()[2].name, "id_r");
        assert_eq!(c.index_of("y"), Some(3));
    }

    #[test]
    fn project_selects_columns() {
        let s = person_schema();
        let p = s.project(&[2, 0]);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.columns()[0].name, "text");
        assert_eq!(p.columns()[1].name, "sentence_id");
    }
}
